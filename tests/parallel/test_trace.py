"""Tests for execution traces."""

from __future__ import annotations

import pytest

from repro.parallel.trace import ExecutionTrace, PhaseRecord


class TestPhaseRecord:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            PhaseRecord("sampling", -1.0)


class TestExecutionTrace:
    def test_totals(self):
        t = ExecutionTrace()
        t.record("a", 1.0)
        t.record("b", 2.0)
        t.record("a", 3.0)
        assert t.total() == 6.0
        assert t.total("a") == 4.0
        assert t.totals_by_phase() == {"a": 4.0, "b": 2.0}

    def test_breakdown_sums_to_one(self):
        t = ExecutionTrace()
        t.record("a", 1.0)
        t.record("b", 3.0)
        b = t.breakdown()
        assert sum(b.values()) == pytest.approx(1.0)
        assert b["b"] == pytest.approx(0.75)

    def test_breakdown_empty(self):
        assert ExecutionTrace().breakdown() == {}

    def test_phases_order_of_first_appearance(self):
        t = ExecutionTrace()
        t.record("z", 1.0)
        t.record("a", 1.0)
        t.record("z", 1.0)
        assert t.phases() == ["z", "a"]

    def test_merge(self):
        a = ExecutionTrace()
        a.record("x", 1.0)
        b = ExecutionTrace()
        b.record("y", 2.0)
        a.merge(b)
        assert a.total() == 3.0


class TestExport:
    def test_csv_roundtrip(self, tmp_path):
        t = ExecutionTrace()
        t.record("sampling", 1.5, 0)
        t.record("weight_application", 2.25, 0)
        t.record("sampling", 0.5, 1)
        path = tmp_path / "trace.csv"
        t.to_csv(path)
        loaded = ExecutionTrace.from_csv(path)
        assert loaded.totals_by_phase() == t.totals_by_phase()
        assert [r.iteration for r in loaded.records] == [0, 0, 1]

    def test_json_export(self, tmp_path):
        import json

        t = ExecutionTrace()
        t.record("a", 3.0)
        t.record("b", 1.0)
        path = tmp_path / "trace.json"
        t.to_json(path)
        doc = json.loads(path.read_text())
        assert doc["totals_by_phase"] == {"a": 3.0, "b": 1.0}
        assert doc["breakdown"]["a"] == pytest.approx(0.75)
        assert len(doc["records"]) == 2
