"""Tests for the work-span executor."""

from __future__ import annotations

import pytest

from repro.parallel.executor import (
    ParallelRegion,
    WorkSpanExecutor,
    static_chunk_makespan,
)
from repro.parallel.machine import xeon_40core


class TestStaticChunking:
    def test_single_worker(self):
        assert static_chunk_makespan([1.0, 2.0, 3.0], 1) == 6.0

    def test_even_split(self):
        assert static_chunk_makespan([1.0, 1.0, 1.0, 1.0], 2) == 2.0

    def test_imbalanced_costs(self):
        """Static chunking splits by count, so a heavy chunk dominates."""
        costs = [10.0, 1.0, 1.0, 1.0]
        assert static_chunk_makespan(costs, 2) == 11.0

    def test_more_workers_than_tasks(self):
        assert static_chunk_makespan([2.0, 3.0], 8) == 3.0

    def test_empty(self):
        assert static_chunk_makespan([], 4) == 0.0

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            static_chunk_makespan([1.0], 0)


class TestParallelRegion:
    def test_total_work(self):
        r = ParallelRegion("probe", (1.0, 2.0), serial_cost=0.5)
        assert r.total_work == 3.5

    def test_static_vs_dynamic(self):
        costs = (10.0, 1.0, 1.0, 1.0)
        static = ParallelRegion("r", costs, schedule="static")
        dynamic = ParallelRegion("r", costs, schedule="dynamic")
        # Dynamic (LPT) balances the heavy task; static can't.
        assert dynamic.makespan(2) <= static.makespan(2)

    def test_serial_cost_added(self):
        r = ParallelRegion("r", (4.0, 4.0), serial_cost=1.0)
        assert r.makespan(2) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelRegion("r", (1.0,), schedule="guided")
        with pytest.raises(ValueError):
            ParallelRegion("r", (-1.0,))


class TestExecutor:
    def test_work_span_speedup(self):
        ex = WorkSpanExecutor(xeon_40core(), workers=4)
        ex.run(ParallelRegion("a", (1.0,) * 8))
        ex.run(ParallelRegion("b", (2.0,) * 4))
        assert ex.work == 16.0
        assert ex.span == pytest.approx(2.0 + 2.0)
        assert ex.speedup == pytest.approx(4.0)

    def test_amdahl_via_serial_cost(self):
        ex = WorkSpanExecutor(xeon_40core(), workers=8)
        ex.run(ParallelRegion("r", (1.0,) * 8, serial_cost=1.0))
        assert ex.speedup == pytest.approx(9.0 / 2.0)

    def test_region_breakdown_accumulates(self):
        ex = WorkSpanExecutor(xeon_40core(), workers=2)
        ex.run(ParallelRegion("probe", (1.0, 1.0)))
        ex.run(ParallelRegion("probe", (1.0, 1.0)))
        ex.run(ParallelRegion("update", (3.0,)))
        bd = ex.region_breakdown()
        assert bd["probe"] == pytest.approx(2.0)
        assert bd["update"] == pytest.approx(3.0)

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            WorkSpanExecutor(xeon_40core(), workers=0)
        with pytest.raises(ValueError):
            WorkSpanExecutor(xeon_40core(), workers=100)

    def test_algorithm4_shape(self):
        """Simulate Algorithm 4's pop: probing (dynamic, until success)
        then chunked invalidation (static over deg entries). The chunked
        phase scales; the probe phase is the sequential bottleneck —
        matching Theorem 1's structure."""
        machine = xeon_40core()
        deg = 64
        for workers in (1, 8):
            ex = WorkSpanExecutor(machine, workers=workers)
            ex.run(ParallelRegion("probe", (1.0,), schedule="dynamic"))
            ex.run(ParallelRegion("invalidate", (1.0,) * deg, schedule="static"))
            if workers == 1:
                t1 = ex.span
            else:
                t8 = ex.span
        assert t1 / t8 < 8.0  # probe term caps the speedup
        assert t1 / t8 > 4.0  # but the chunked bulk still scales
