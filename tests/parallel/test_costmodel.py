"""Tests for cost accounting and parallel-time conversion."""

from __future__ import annotations

import pytest

from repro.parallel.costmodel import CostCounter, parallel_time, simulated_time
from repro.parallel.machine import MachineSpec, xeon_40core


class TestCostCounter:
    def test_vector_op_accounting(self):
        c = CostCounter()
        c.count_vector_op(10, 8)
        assert c.vector_elements == 10
        assert c.vector_chunks == 2  # ceil(10/8)

    def test_vector_op_exact_multiple(self):
        c = CostCounter()
        c.count_vector_op(16, 8)
        assert c.vector_chunks == 2

    def test_vector_op_validation(self):
        with pytest.raises(ValueError):
            CostCounter().count_vector_op(-1, 8)
        with pytest.raises(ValueError):
            CostCounter().count_vector_op(1, 0)

    def test_lane_utilization(self):
        c = CostCounter()
        c.count_vector_op(4, 8)  # half-full chunk
        assert c.lane_utilization == 4.0
        assert CostCounter().lane_utilization == 1.0

    def test_add_and_copy(self):
        a = CostCounter(rand_ops=1, mem_ops=2, flops=3)
        b = a.copy()
        b.add(CostCounter(rand_ops=10))
        assert b.rand_ops == 11
        assert a.rand_ops == 1  # copy is independent

    def test_serial_cost(self):
        m = MachineSpec()
        c = CostCounter(rand_ops=2, mem_ops=3, private_mem_ops=1, dram_bytes=8, flops=10)
        c.count_vector_op(5, 8)
        expected = (
            2 * m.cost_rand
            + 4 * m.cost_mem
            + 8 * m.dram_cost_per_byte
            + 10 * m.cost_flop
            + 5 * m.cost_mem
        )
        assert c.serial_cost(m) == pytest.approx(expected)


class TestSimulatedTime:
    def test_scalar_vs_vector(self):
        m = xeon_40core()
        c = CostCounter()
        c.count_vector_op(80, 8)
        scalar = simulated_time(c, m, cores=1, vectorized=False, numa_shared=False)
        vector = simulated_time(c, m, cores=1, vectorized=True, numa_shared=False)
        assert scalar == pytest.approx(8 * vector)

    def test_cores_divide_parallel_work(self):
        m = xeon_40core()
        c = CostCounter(mem_ops=100)
        t1 = simulated_time(c, m, cores=1, numa_shared=False)
        t10 = simulated_time(c, m, cores=10, numa_shared=False)
        assert t1 == pytest.approx(10 * t10)

    def test_serial_fraction_amdahl(self):
        m = xeon_40core()
        c = CostCounter(flops=1000)
        t = simulated_time(c, m, cores=10, serial_fraction=0.5, numa_shared=False)
        full = 1000 * m.cost_flop
        assert t == pytest.approx(0.5 * full + 0.5 * full / 10)

    def test_numa_applies_to_shared_only(self):
        m = xeon_40core()
        shared = CostCounter(mem_ops=100)
        private = CostCounter(private_mem_ops=100)
        t_shared = simulated_time(shared, m, cores=40)
        t_private = simulated_time(private, m, cores=40)
        assert t_shared > t_private

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            simulated_time(CostCounter(), xeon_40core(), cores=0)


class TestParallelTime:
    def test_serial_sum(self):
        assert parallel_time([1.0, 2.0, 3.0], 1) == 6.0

    def test_perfect_split(self):
        assert parallel_time([1.0, 1.0, 1.0, 1.0], 4) == 1.0

    def test_lpt_makespan(self):
        # Tasks 3,3,2,2,2 on 2 workers: LPT gives [3,2,2]=7? no: LPT assigns
        # 3->w1, 3->w2, 2->w1(5), 2->w2(5), 2->w1(7) -> makespan 6? Let's
        # verify the invariant instead: >= max task and >= total/workers.
        tasks = [3.0, 3.0, 2.0, 2.0, 2.0]
        t = parallel_time(tasks, 2)
        assert t >= max(tasks)
        assert t >= sum(tasks) / 2
        assert t <= sum(tasks)

    def test_more_workers_never_slower(self):
        tasks = [5.0, 1.0, 4.0, 2.0, 3.0]
        times = [parallel_time(tasks, c) for c in (1, 2, 4, 8)]
        assert all(b <= a for a, b in zip(times, times[1:]))

    def test_bounded_by_max_task(self):
        assert parallel_time([10.0, 0.1], 8) == 10.0

    def test_empty(self):
        assert parallel_time([], 4) == 0.0

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            parallel_time([1.0], 0)
