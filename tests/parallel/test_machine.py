"""Tests for the simulated machine specification."""

from __future__ import annotations

import pytest

from repro.parallel.machine import MachineSpec, laptop_4core, xeon_40core


class TestSpecValidation:
    def test_defaults_are_the_paper_platform(self):
        m = xeon_40core()
        assert m.num_cores == 40
        assert m.cores_per_socket == 20
        assert m.num_sockets == 2
        assert m.vector_lanes == 8
        assert m.l2_bytes == 256 * 1024

    def test_laptop(self):
        m = laptop_4core()
        assert m.num_sockets == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_cores=0),
            dict(num_cores=30, cores_per_socket=20),
            dict(vector_lanes=0),
            dict(l2_bytes=0),
            dict(numa_remote_penalty=0.5),
            dict(cost_mem=-1.0),
            dict(gemm_serial_fraction=1.0),
            dict(dram_saturation_cores=0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            MachineSpec(**kwargs)


class TestNumaFactor:
    def test_single_socket_no_penalty(self):
        m = xeon_40core()
        for c in (1, 10, 20):
            assert m.numa_factor(c) == 1.0

    def test_two_sockets_blended(self):
        m = xeon_40core()
        expected = (20 + 20 * m.numa_remote_penalty) / 40
        assert m.numa_factor(40) == pytest.approx(expected)

    def test_monotone(self):
        m = xeon_40core()
        assert m.numa_factor(25) < m.numa_factor(40)

    def test_sockets_used(self):
        m = xeon_40core()
        assert m.sockets_used(1) == 1
        assert m.sockets_used(20) == 1
        assert m.sockets_used(21) == 2
        with pytest.raises(ValueError):
            m.sockets_used(0)


class TestContention:
    def test_one_instance_no_contention(self):
        assert xeon_40core().sampler_contention_factor(1) == 1.0

    def test_monotone_increasing(self):
        m = xeon_40core()
        vals = [m.sampler_contention_factor(p) for p in (1, 5, 10, 20, 30, 40)]
        assert all(b > a for a, b in zip(vals, vals[1:]))

    def test_cross_socket_slope_steeper(self):
        m = xeon_40core()
        within = m.sampler_contention_factor(20) - m.sampler_contention_factor(19)
        across = m.sampler_contention_factor(22) - m.sampler_contention_factor(21)
        assert across > within

    def test_invalid(self):
        with pytest.raises(ValueError):
            xeon_40core().sampler_contention_factor(0)


class TestWithCores:
    def test_shrink(self):
        m = xeon_40core().with_cores(8)
        assert m.num_cores == 8
        assert m.num_cores % m.cores_per_socket == 0
