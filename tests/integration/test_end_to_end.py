"""Integration tests: the whole pipeline, cross-module behaviour.

These are the claims a user of the library cares about:

* the proposed trainer reaches baseline-level accuracy (Section VI-B),
* graph structure helps (a GCN beats the same net without aggregation),
* all four methods run on both task types,
* the public API in ``repro.__init__`` is sufficient for the quickstart.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    GraphSamplingTrainer,
    TrainConfig,
    make_dataset,
)
from repro.baselines import (
    BatchedGCNConfig,
    BatchedGCNTrainer,
    FastGCNConfig,
    FastGCNTrainer,
    GraphSAGETrainer,
    SageConfig,
)


@pytest.fixture(scope="module")
def reddit():
    return make_dataset("reddit", scale=0.006, seed=5)


class TestAccuracyParity:
    """Section VI-B: the proposed method matches baseline accuracy."""

    def test_proposed_matches_graphsage(self, reddit):
        gs = GraphSamplingTrainer(
            reddit,
            TrainConfig(
                hidden_dims=(32, 32),
                frontier_size=40,
                budget=230,
                lr=0.005,
                epochs=10,
                eval_every=10,
                seed=1,
            ),
        ).train()
        sage = GraphSAGETrainer(
            reddit,
            SageConfig(
                hidden_dims=(32, 32),
                fanouts=(10, 10),
                batch_size=128,
                lr=0.01,
                epochs=3,
                eval_every=3,
                seed=1,
            ),
        ).train()
        assert gs.final_val_f1 > 0.75
        # Within the paper's stochastic slack of the baseline (generous
        # margin at this tiny scale).
        assert gs.final_val_f1 >= sage.final_val_f1 - 0.1

    def test_proposed_beats_featureless_baseline(self, reddit):
        """Sanity: the trained model does far better than majority-class."""
        result = GraphSamplingTrainer(
            reddit,
            TrainConfig(
                hidden_dims=(32, 32),
                frontier_size=40,
                budget=230,
                lr=0.005,
                epochs=8,
                eval_every=8,
                seed=2,
            ),
        ).train()
        labels = reddit.labels[reddit.val_idx]
        majority = np.bincount(labels).max() / labels.size
        assert result.final_val_f1 > majority + 0.2


class TestAllMethodsAllTasks:
    @pytest.mark.parametrize("task_ds", ["reddit", "ppi"])
    def test_every_trainer_runs(self, task_ds, reddit, ppi_small):
        ds = reddit if task_ds == "reddit" else ppi_small
        hidden = (16, 16)
        results = {}
        results["proposed"] = GraphSamplingTrainer(
            ds,
            TrainConfig(
                hidden_dims=hidden, frontier_size=20, budget=120, epochs=2,
                eval_every=2, seed=0,
            ),
        ).train()
        results["graphsage"] = GraphSAGETrainer(
            ds,
            SageConfig(hidden_dims=hidden, fanouts=(5, 5), epochs=1, seed=0),
        ).train()
        results["fastgcn"] = FastGCNTrainer(
            ds,
            FastGCNConfig(hidden_dims=hidden, layer_sizes=(100, 100), epochs=1, seed=0),
        ).train()
        results["batched"] = BatchedGCNTrainer(
            ds, BatchedGCNConfig(hidden_dims=hidden, epochs=1, seed=0)
        ).train()
        for name, res in results.items():
            assert np.isfinite(res.epochs[-1].train_loss), name
            last_eval = [r.val for r in res.epochs if r.val is not None]
            assert last_eval, name
            assert 0.0 <= last_eval[-1].f1_micro <= 1.0, name


class TestTopologyMatters:
    def test_gcn_beats_mlp_on_smoothed_features(self):
        """With heavily smoothed features + label noise, aggregation over
        neighbors recovers signal a pure MLP (zero-hidden-layer GCN on a
        self-loop-only graph) cannot."""
        from repro.graphs.csr import edges_to_csr
        from repro.train.evaluation import Evaluator

        ds = make_dataset("reddit", scale=0.004, seed=8)
        cfg = TrainConfig(
            hidden_dims=(32,),
            frontier_size=20,
            budget=150,
            lr=0.005,
            epochs=8,
            eval_every=8,
            seed=3,
        )
        gcn_result = GraphSamplingTrainer(ds, cfg).train()

        # Same pipeline, but the graph is replaced by isolated self-loops:
        # aggregation returns the vertex's own features (MLP-equivalent).
        n = ds.graph.num_vertices
        loops = np.column_stack([np.arange(n), np.arange(n)])
        lonely_graph = edges_to_csr(loops, n, symmetrize=False, dedup=False)
        from dataclasses import replace

        ds_lonely = replace(ds, graph=lonely_graph)
        mlp_result = GraphSamplingTrainer(ds_lonely, cfg).train()
        assert gcn_result.final_val_f1 > mlp_result.final_val_f1


class TestTrainEvalConsistency:
    def test_weights_shared_between_subgraph_and_full_graph(self, reddit):
        """Training improves full-graph evaluation monotonically-ish:
        final F1 far above the untrained model's."""
        from repro.train.evaluation import Evaluator

        trainer = GraphSamplingTrainer(
            reddit,
            TrainConfig(
                hidden_dims=(32, 32), frontier_size=40, budget=230, lr=0.005,
                epochs=6, eval_every=6, seed=4,
            ),
        )
        before = trainer.evaluator.evaluate(trainer.model, "val").f1_micro
        result = trainer.train()
        assert result.final_val_f1 > before + 0.3
