"""Tests for the cache simulator and the Theorem-2 mechanism check."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import DCSBMParams, dcsbm_graph
from repro.propagation.cache_model import (
    CacheSim,
    propagation_trace,
    simulate_propagation_misses,
)
from repro.propagation.partition_model import theorem2_plan


class TestCacheSim:
    def test_compulsory_misses_only_when_fits(self):
        sim = CacheSim(64 * 64, line_bytes=64, ways=8)  # 64 lines
        addrs = np.repeat(np.arange(16) * 64, 4)  # 16 lines, touched 4x
        sim.access(addrs)
        assert sim.misses == 16  # one compulsory miss per line
        assert sim.accesses == 64

    def test_thrashing_when_working_set_exceeds_capacity(self):
        sim = CacheSim(8 * 64, line_bytes=64, ways=2)  # 8 lines
        # Cycle through 64 lines twice: everything evicted before reuse.
        addrs = np.tile(np.arange(64) * 64, 2)
        sim.access(addrs)
        assert sim.stats.miss_rate > 0.9

    def test_lru_keeps_hot_line(self):
        sim = CacheSim(2 * 64, line_bytes=64, ways=2)  # one set of 2 ways
        # Touch A, B, A, C, A: A stays resident (LRU evicts B then C).
        addrs = np.array([0, 64, 0, 128, 0]) + 0
        sim.access(addrs)
        # Misses: A, B, C = 3; the repeat As hit.
        assert sim.misses == 3

    def test_same_line_hits(self):
        sim = CacheSim(64 * 64)
        sim.access(np.array([0, 8, 16, 56]))  # all within one 64B line
        assert sim.misses == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheSim(0)
        with pytest.raises(ValueError):
            CacheSim(64, line_bytes=64, ways=8)


class TestPropagationTrace:
    def test_trace_length(self, clique_ring):
        trace = propagation_trace(clique_ring, f=4, q=2)
        assert trace.shape[0] == clique_ring.num_edges_directed * 4

    def test_q_validation(self, clique_ring):
        with pytest.raises(ValueError):
            propagation_trace(clique_ring, f=4, q=8)


class TestTheorem2Mechanism:
    @pytest.fixture(scope="class")
    def dense_graph(self):
        params = DCSBMParams(num_vertices=300, num_blocks=2, avg_degree=16.0)
        g, _ = dcsbm_graph(params, rng=np.random.default_rng(0))
        return g

    @staticmethod
    def _theorem2_q(graph, f: int, cache_bytes: int) -> int:
        """Q chosen against half the capacity and rounded up to a
        power-of-two divisor of f.

        Two practicalities on top of Theorem 2's idealized bound: (1) LRU
        under a cyclic scan of a working set exactly at capacity
        degenerates to zero reuse (the classic scanning pathology), so
        implementations leave slack; (2) ragged chunk widths straddle
        cache lines and waste spatial locality, so implementations round Q
        to divide the feature dimension evenly.
        """
        plan = theorem2_plan(
            n=graph.num_vertices,
            d=graph.average_degree,
            f=f,
            cores=1,
            cache_bytes=cache_bytes // 2,
        )
        q = 1
        while q < min(plan.q, f):
            q *= 2
        return min(q, f)

    def test_partitioning_cuts_miss_rate(self, dense_graph):
        """The actual mechanism of Algorithm 6: once the per-round working
        set is cache-resident, gathers after the first per vertex hit, and
        the miss rate collapses relative to the unpartitioned pass.

        Fully-associative cache: the theorem reasons about capacity;
        power-of-two row strides would otherwise add conflict misses the
        model does not (and need not) capture.
        """
        f = 64
        cache_bytes = 16 * 1024  # deliberately small vs 300*64*8 = 150 KB
        q = self._theorem2_q(dense_graph, f, cache_bytes)
        full_ways = cache_bytes // 64
        sim_unpart = CacheSim(cache_bytes, line_bytes=64, ways=full_ways)
        sim_unpart.access(propagation_trace(dense_graph, f=f, q=1))
        sim_part = CacheSim(cache_bytes, line_bytes=64, ways=full_ways)
        sim_part.access(propagation_trace(dense_graph, f=f, q=q))
        assert sim_part.stats.miss_rate < 0.5 * sim_unpart.stats.miss_rate

    def test_partitioned_near_compulsory_floor(self, dense_graph):
        """With cache-resident rounds, misses approach the compulsory
        floor: roughly one miss per distinct feature line per round."""
        f = 64
        cache_bytes = 16 * 1024
        q = self._theorem2_q(dense_graph, f, cache_bytes)
        sim = CacheSim(cache_bytes, line_bytes=64, ways=cache_bytes // 64)
        sim.access(propagation_trace(dense_graph, f=f, q=q))
        n = dense_graph.num_vertices
        # Per round: each vertex's chunk spans <= ceil(width*8/64) + 1 lines.
        width = f // q
        lines_per_round = n * (width * 8 // 64 + 2)
        compulsory = q * lines_per_round
        assert sim.misses <= 2.0 * compulsory
