"""Tests for Algorithm 6 partitioned propagation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.machine import MachineSpec, xeon_40core
from repro.propagation.feature_prop import PartitionedPropagator, PropagationReport
from repro.propagation.spmm import MeanAggregator


class TestEquivalence:
    def test_forward_matches_unpartitioned(self, medium_graph, rng):
        h = rng.standard_normal((medium_graph.num_vertices, 37))
        prop = PartitionedPropagator(medium_graph, xeon_40core(), cores=8)
        ref = MeanAggregator(medium_graph)
        assert np.allclose(prop.forward(h), ref.forward(h))

    def test_backward_matches_unpartitioned(self, medium_graph, rng):
        g = rng.standard_normal((medium_graph.num_vertices, 24))
        prop = PartitionedPropagator(medium_graph, xeon_40core(), cores=8)
        ref = MeanAggregator(medium_graph)
        assert np.allclose(prop.backward(g), ref.backward(g))

    def test_single_column(self, medium_graph, rng):
        h = rng.standard_normal((medium_graph.num_vertices, 1))
        prop = PartitionedPropagator(medium_graph, xeon_40core(), cores=4)
        assert np.allclose(
            prop.forward(h), MeanAggregator(medium_graph).forward(h)
        )

    def test_shape_validation(self, medium_graph, rng):
        prop = PartitionedPropagator(medium_graph, xeon_40core(), cores=4)
        with pytest.raises(ValueError):
            prop.forward(rng.standard_normal((3, 2)))


class TestQChoice:
    def test_q_at_least_cores(self, medium_graph):
        prop = PartitionedPropagator(medium_graph, xeon_40core(), cores=16)
        assert prop.choose_q(64) >= min(16, 64)

    def test_q_capped_at_f(self, medium_graph):
        prop = PartitionedPropagator(medium_graph, xeon_40core(), cores=40)
        assert prop.choose_q(8) <= 8

    def test_q_grows_with_working_set(self, medium_graph):
        tiny_cache = MachineSpec(l2_bytes=16 * 1024)
        big_cache = MachineSpec(l2_bytes=16 * 1024 * 1024)
        q_small = PartitionedPropagator(medium_graph, tiny_cache, cores=1).choose_q(512)
        q_big = PartitionedPropagator(medium_graph, big_cache, cores=1).choose_q(512)
        assert q_small > q_big

    def test_invalid_cores(self, medium_graph):
        with pytest.raises(ValueError):
            PartitionedPropagator(medium_graph, xeon_40core(), cores=0)


class TestReports:
    def test_one_report_per_pass(self, medium_graph, rng):
        prop = PartitionedPropagator(medium_graph, xeon_40core(), cores=4)
        h = rng.standard_normal((medium_graph.num_vertices, 16))
        prop.forward(h)
        prop.backward(h)
        assert len(prop.reports) == 2
        prop.reset_reports()
        assert not prop.reports

    def test_report_contents(self, medium_graph, rng):
        prop = PartitionedPropagator(medium_graph, xeon_40core(), cores=4)
        h = rng.standard_normal((medium_graph.num_vertices, 16))
        prop.forward(h)
        rep = prop.reports[0]
        assert rep.n == medium_graph.num_vertices
        assert rep.f == 16
        assert rep.comp_ops == pytest.approx(
            medium_graph.num_vertices * medium_graph.average_degree * 16
        )
        assert rep.comm_bytes > 0

    def test_simulated_time_decreases_with_cores(self, medium_graph, rng):
        prop = PartitionedPropagator(medium_graph, xeon_40core(), cores=4)
        h = rng.standard_normal((medium_graph.num_vertices, 32))
        prop.forward(h)
        rep = prop.reports[0]
        machine = xeon_40core()
        t1 = rep.simulated_time(machine, cores=1)
        t10 = rep.simulated_time(machine, cores=10)
        t40 = rep.simulated_time(machine, cores=40)
        assert t1 > t10 > t40

    def test_bandwidth_ceiling(self, medium_graph, rng):
        """Beyond dram_saturation_cores, speedup flattens."""
        prop = PartitionedPropagator(medium_graph, xeon_40core(), cores=4)
        h = rng.standard_normal((medium_graph.num_vertices, 32))
        prop.forward(h)
        rep = prop.reports[0]
        machine = xeon_40core()
        sat = int(machine.dram_saturation_cores)
        t_sat = rep.simulated_time(machine, cores=sat)
        t_more = rep.simulated_time(machine, cores=machine.num_cores)
        assert t_more == pytest.approx(t_sat)

    def test_invalid_report(self):
        with pytest.raises(ValueError):
            PropagationReport(
                n=1, f=1, q=1, rounds=1, comp_ops=1.0, comm_bytes=1.0,
                cache_bytes_per_round=1.0,
            ).simulated_time(xeon_40core(), cores=0)

    def test_total_simulated_time_sums(self, medium_graph, rng):
        prop = PartitionedPropagator(medium_graph, xeon_40core(), cores=4)
        h = rng.standard_normal((medium_graph.num_vertices, 16))
        prop.forward(h)
        prop.backward(h)
        total = prop.total_simulated_time()
        parts = sum(r.simulated_time(prop.machine, cores=4) for r in prop.reports)
        assert total == pytest.approx(parts)
