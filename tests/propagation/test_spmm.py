"""Tests for sparse aggregation kernels: backends agree, adjoints exact."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.csr import edges_to_csr
from repro.propagation.spmm import MeanAggregator, spmm_sum_numpy, spmm_sum_scipy


class TestSumBackends:
    def test_backends_agree(self, medium_graph, rng):
        h = rng.standard_normal((medium_graph.num_vertices, 9))
        assert np.allclose(
            spmm_sum_numpy(medium_graph, h), spmm_sum_scipy(medium_graph, h)
        )

    def test_matches_dense_oracle(self, clique_ring, rng):
        h = rng.standard_normal((clique_ring.num_vertices, 4))
        dense = np.zeros((clique_ring.num_vertices,) * 2)
        for u, v in clique_ring.edge_list():
            dense[u, v] = 1.0
        assert np.allclose(spmm_sum_numpy(clique_ring, h), dense @ h)

    def test_zero_degree_rows(self, rng):
        g = edges_to_csr(np.array([[0, 1]]), 4)
        h = rng.standard_normal((4, 3))
        out = spmm_sum_numpy(g, h)
        assert np.all(out[2] == 0) and np.all(out[3] == 0)
        assert np.allclose(out[0], h[1])

    def test_empty_graph(self, rng):
        g = edges_to_csr(np.empty((0, 2)), 3)
        h = rng.standard_normal((3, 2))
        assert np.all(spmm_sum_numpy(g, h) == 0)


class TestMeanAggregator:
    def test_mean_of_neighbors(self, star_graph, rng):
        h = rng.standard_normal((6, 3))
        agg = MeanAggregator(star_graph)
        out = agg.forward(h)
        assert np.allclose(out[0], h[1:].mean(axis=0))
        for leaf in range(1, 6):
            assert np.allclose(out[leaf], h[0])

    def test_backends_identical(self, medium_graph, rng):
        h = rng.standard_normal((medium_graph.num_vertices, 5))
        a = MeanAggregator(medium_graph, backend="scipy").forward(h)
        b = MeanAggregator(medium_graph, backend="numpy").forward(h)
        assert np.allclose(a, b)

    def test_unknown_backend(self, star_graph):
        with pytest.raises(ValueError):
            MeanAggregator(star_graph, backend="torch")

    def test_adjoint_dot_product_identity(self, medium_graph, rng):
        """<M x, y> == <x, M^T y> for random x, y — the exact property
        backprop relies on."""
        agg = MeanAggregator(medium_graph)
        x = rng.standard_normal((medium_graph.num_vertices, 4))
        y = rng.standard_normal((medium_graph.num_vertices, 4))
        lhs = float(np.sum(agg.forward(x) * y))
        rhs = float(np.sum(x * agg.backward(y)))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_dense_matches_forward(self, clique_ring):
        agg = MeanAggregator(clique_ring)
        m = agg.dense()
        assert np.allclose(m.sum(axis=1), 1.0)  # row-stochastic

    def test_shape_validation(self, star_graph, rng):
        agg = MeanAggregator(star_graph)
        with pytest.raises(ValueError):
            agg.forward(rng.standard_normal((3, 2)))
        with pytest.raises(ValueError):
            agg.backward(rng.standard_normal((3, 2)))

    def test_zero_degree_to_zero(self, rng):
        g = edges_to_csr(np.array([[0, 1]]), 3)
        agg = MeanAggregator(g)
        out = agg.forward(rng.standard_normal((3, 2)))
        assert np.all(out[2] == 0)

    def test_constant_features_fixed_point(self, clique_ring):
        """Mean aggregation preserves constant features (min degree >= 1)."""
        h = np.full((clique_ring.num_vertices, 3), 2.5)
        assert np.allclose(MeanAggregator(clique_ring).forward(h), 2.5)
