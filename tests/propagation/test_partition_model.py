"""Tests for the communication model and Theorem 2."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import DCSBMParams, dcsbm_graph
from repro.propagation.partition_model import (
    BYTES_PER_FEATURE,
    BYTES_PER_INDEX,
    brute_force_optimum,
    g_comm,
    g_comp,
    gamma_lower_bound,
    gamma_of_partition,
    gamma_random_partition,
    gcomm_lower_bound,
    random_vertex_partition,
    theorem2_conditions_hold,
    theorem2_plan,
)


class TestFormulas:
    def test_g_comp_independent_of_partition(self):
        assert g_comp(1000, 15.0, 512) == 1000 * 15 * 512

    def test_g_comm_formula(self):
        # 2*Q*n*d + 8*P*n*f*gamma
        val = g_comm(100, 10.0, 64, p=2, q=4, gamma_p=0.6)
        assert val == pytest.approx(
            BYTES_PER_INDEX * 4 * 100 * 10 + BYTES_PER_FEATURE * 2 * 100 * 64 * 0.6
        )

    def test_g_comm_validation(self):
        with pytest.raises(ValueError):
            g_comm(10, 1.0, 4, p=0, q=1, gamma_p=0.5)
        with pytest.raises(ValueError):
            g_comm(10, 1.0, 4, p=1, q=1, gamma_p=1.5)

    def test_lower_bound(self):
        assert gcomm_lower_bound(100, 64) == 8 * 100 * 64


class TestGamma:
    def test_lower_bound(self):
        assert gamma_lower_bound(4) == 0.25

    def test_random_partition_p1(self):
        assert gamma_random_partition(1, np.array([3, 4])) == 1.0

    def test_random_partition_decreases_with_p(self):
        degrees = np.full(100, 10.0)
        g2 = gamma_random_partition(2, degrees)
        g8 = gamma_random_partition(8, degrees)
        assert g2 > g8 > gamma_lower_bound(8)

    def test_random_partition_matches_measurement(self):
        """The closed-form expectation matches a measured random partition."""
        params = DCSBMParams(num_vertices=600, num_blocks=1, avg_degree=8.0, mixing=1.0)
        graph, _ = dcsbm_graph(params, rng=np.random.default_rng(3))
        p = 4
        rng = np.random.default_rng(0)
        measured = np.mean(
            [
                gamma_of_partition(
                    graph, random_vertex_partition(graph.num_vertices, p, rng)
                )
                for _ in range(5)
            ]
        )
        predicted = gamma_random_partition(p, graph.degrees)
        assert measured == pytest.approx(predicted, rel=0.1)

    def test_gamma_of_partition_identity(self, clique_ring):
        """P=1 partition: every vertex is a source."""
        assignment = np.zeros(clique_ring.num_vertices, dtype=np.int64)
        assert gamma_of_partition(clique_ring, assignment) == 1.0


class TestTheorem2:
    def test_plan_structure(self):
        plan = theorem2_plan(n=4000, d=15.0, f=512, cores=40, cache_bytes=256 * 1024)
        assert plan.p == 1
        assert plan.gamma_p == 1.0
        assert plan.q == max(40, int(np.ceil(8 * 4000 * 512 / (256 * 1024))))
        assert plan.feasible

    def test_cache_constraint_satisfied(self):
        plan = theorem2_plan(n=8000, d=15.0, f=1024, cores=40, cache_bytes=256 * 1024)
        assert plan.cache_bytes_per_round <= 256 * 1024

    def test_cores_bound_when_cache_loose(self):
        # Tiny feature matrix: Q = C.
        plan = theorem2_plan(n=100, d=5.0, f=16, cores=40, cache_bytes=10**9)
        assert plan.q == 40

    def test_conditions(self):
        assert theorem2_conditions_hold(
            n=4000, d=15.0, f=512, cores=40, cache_bytes=256 * 1024
        )
        # Large C violates C <= 4f/d.
        assert not theorem2_conditions_hold(
            n=4000, d=15.0, f=512, cores=1000, cache_bytes=256 * 1024
        )
        # Huge graph violates 2nd <= cache.
        assert not theorem2_conditions_hold(
            n=10**7, d=15.0, f=512, cores=40, cache_bytes=256 * 1024
        )

    @pytest.mark.parametrize(
        "n,f",
        [(1000, 512), (4000, 512), (8000, 512), (2000, 1024), (8000, 1024)],
    )
    def test_two_approximation(self, n, f):
        """Theorem 2: the P=1 plan is within 2x of the ideal optimum
        whenever the preconditions hold."""
        d, cores, cache = 15.0, 40, 256 * 1024
        assert theorem2_conditions_hold(n=n, d=d, f=f, cores=cores, cache_bytes=cache)
        ours = theorem2_plan(n=n, d=d, f=f, cores=cores, cache_bytes=cache)
        ideal = brute_force_optimum(n=n, d=d, f=f, cores=cores, cache_bytes=cache)
        assert ours.comm_bytes <= 2.0 * ideal.comm_bytes + 1e-9

    def test_two_approximation_vs_lower_bound(self):
        """Even against the unachievable 8nf bound the ratio is <= 2."""
        n, d, f, cores, cache = 6000, 12.0, 768, 40, 256 * 1024
        assert theorem2_conditions_hold(n=n, d=d, f=f, cores=cores, cache_bytes=cache)
        ours = theorem2_plan(n=n, d=d, f=f, cores=cores, cache_bytes=cache)
        assert ours.comm_bytes <= 2.0 * gcomm_lower_bound(n, f)

    def test_bound_can_exceed_two_outside_conditions(self):
        """When 2nd > S_cache the guarantee no longer holds — the paper's
        preconditions are tight, not decorative."""
        n, d, f, cores = 1000, 128.0, 128, 40  # very dense, small features
        cache = 64 * 1024
        assert not theorem2_conditions_hold(
            n=n, d=d, f=f, cores=cores, cache_bytes=cache
        )
        ours = theorem2_plan(n=n, d=d, f=f, cores=cores, cache_bytes=cache)
        ideal = brute_force_optimum(n=n, d=d, f=f, cores=cores, cache_bytes=cache)
        assert ours.comm_bytes > 2.0 * ideal.comm_bytes


class TestBruteForce:
    def test_returns_feasible_minimum(self):
        plan = brute_force_optimum(n=1000, d=10.0, f=256, cores=16, cache_bytes=10**6)
        assert plan.p * plan.q >= 16

    def test_realistic_gamma_never_beats_ideal(self):
        degrees = np.full(2000, 15.0)
        ideal = brute_force_optimum(
            n=2000, d=15.0, f=512, cores=40, cache_bytes=256 * 1024
        )
        realistic = brute_force_optimum(
            n=2000,
            d=15.0,
            f=512,
            cores=40,
            cache_bytes=256 * 1024,
            gamma_fn=lambda p: gamma_random_partition(p, degrees),
        )
        assert realistic.comm_bytes >= ideal.comm_bytes

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            brute_force_optimum(
                n=10**6, d=10.0, f=4096, cores=40, cache_bytes=1024, max_q=2
            )
