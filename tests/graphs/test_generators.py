"""Tests for the synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import (
    DCSBMParams,
    chung_lu_graph,
    dcsbm_graph,
    ensure_min_degree,
    grid_graph,
    power_law_weights,
    ring_of_cliques,
)


class TestPowerLawWeights:
    def test_bounds(self, rng):
        w = power_law_weights(5000, 2.5, w_min=1.0, w_max=50.0, rng=rng)
        assert w.min() >= 1.0
        assert w.max() <= 50.0

    def test_heavier_tail_with_smaller_exponent(self, rng):
        w_heavy = power_law_weights(20000, 1.8, w_max=1000.0, rng=rng)
        w_light = power_law_weights(
            20000, 3.5, w_max=1000.0, rng=np.random.default_rng(12345)
        )
        assert w_heavy.mean() > w_light.mean()

    def test_invalid_exponent(self, rng):
        with pytest.raises(ValueError, match="exponent"):
            power_law_weights(10, 1.0, rng=rng)

    def test_invalid_bounds(self, rng):
        with pytest.raises(ValueError, match="w_max"):
            power_law_weights(10, 2.5, w_min=5.0, w_max=1.0, rng=rng)


class TestDCSBMParams:
    def test_valid(self):
        DCSBMParams(num_vertices=100, num_blocks=4, avg_degree=5.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_vertices=0, num_blocks=1, avg_degree=5.0),
            dict(num_vertices=10, num_blocks=20, avg_degree=5.0),
            dict(num_vertices=10, num_blocks=2, avg_degree=-1.0),
            dict(num_vertices=10, num_blocks=2, avg_degree=5.0, mixing=1.5),
            dict(
                num_vertices=10,
                num_blocks=2,
                avg_degree=5.0,
                block_sizes=(3, 3),
            ),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            DCSBMParams(**kwargs)


class TestDCSBM:
    def test_basic_properties(self, rng):
        params = DCSBMParams(num_vertices=500, num_blocks=5, avg_degree=10.0)
        graph, blocks = dcsbm_graph(params, rng=rng)
        assert graph.num_vertices == 500
        assert blocks.shape == (500,)
        assert set(np.unique(blocks)) <= set(range(5))
        assert graph.is_symmetric()
        assert not graph.has_edge(0, 0)  # no self-loops anywhere
        src = graph.edge_sources()
        assert not np.any(src == graph.indices)

    def test_average_degree_near_target(self, rng):
        params = DCSBMParams(num_vertices=2000, num_blocks=4, avg_degree=16.0)
        graph, _ = dcsbm_graph(params, rng=rng)
        # Dedup and self-loop removal shave some edges; allow 30% slack.
        assert 0.7 * 16.0 <= graph.average_degree <= 1.1 * 16.0

    def test_min_degree_one(self, rng):
        params = DCSBMParams(num_vertices=400, num_blocks=4, avg_degree=3.0)
        graph, _ = dcsbm_graph(params, rng=rng)
        assert graph.degrees.min() >= 1

    def test_assortative_mixing(self, rng):
        """Low mixing puts most edges within blocks."""
        params = DCSBMParams(
            num_vertices=1000, num_blocks=4, avg_degree=12.0, mixing=0.1
        )
        graph, blocks = dcsbm_graph(params, rng=rng)
        src = graph.edge_sources()
        within = float(np.mean(blocks[src] == blocks[graph.indices]))
        assert within > 0.6

    def test_no_community_signal_when_mixing_one(self, rng):
        params = DCSBMParams(
            num_vertices=1000, num_blocks=4, avg_degree=12.0, mixing=1.0
        )
        graph, blocks = dcsbm_graph(params, rng=rng)
        src = graph.edge_sources()
        within = float(np.mean(blocks[src] == blocks[graph.indices]))
        assert within < 0.45  # ~0.25 expected for 4 equal blocks

    def test_determinism(self):
        params = DCSBMParams(num_vertices=300, num_blocks=3, avg_degree=8.0)
        g1, b1 = dcsbm_graph(params, rng=np.random.default_rng(5))
        g2, b2 = dcsbm_graph(params, rng=np.random.default_rng(5))
        assert np.array_equal(g1.indices, g2.indices)
        assert np.array_equal(b1, b2)

    def test_degree_skew_grows_with_weight_ratio(self, rng):
        lo = DCSBMParams(
            num_vertices=2000, num_blocks=2, avg_degree=15.0, max_weight_ratio=3.0
        )
        hi = DCSBMParams(
            num_vertices=2000,
            num_blocks=2,
            avg_degree=15.0,
            max_weight_ratio=2000.0,
            exponent=2.05,
        )
        g_lo, _ = dcsbm_graph(lo, rng=np.random.default_rng(1))
        g_hi, _ = dcsbm_graph(hi, rng=np.random.default_rng(1))
        assert g_hi.degrees.max() > 2 * g_lo.degrees.max()

    def test_explicit_block_sizes(self, rng):
        params = DCSBMParams(
            num_vertices=100,
            num_blocks=2,
            avg_degree=6.0,
            block_sizes=(30, 70),
        )
        _, blocks = dcsbm_graph(params, rng=rng)
        counts = np.bincount(blocks, minlength=2)
        assert counts[0] == 30 and counts[1] == 70


class TestChungLu:
    def test_single_block(self, rng):
        g = chung_lu_graph(500, 8.0, rng=rng)
        assert g.num_vertices == 500
        assert g.is_symmetric()


class TestEnsureMinDegree:
    def test_patches_isolated(self, rng):
        from repro.graphs.csr import edges_to_csr

        g = edges_to_csr(np.array([[0, 1]]), 5)
        patched = ensure_min_degree(g, 1, rng=rng)
        assert patched.degrees.min() >= 1
        assert patched.num_vertices == 5

    def test_noop_when_satisfied(self, clique_ring, rng):
        patched = ensure_min_degree(clique_ring, 1, rng=rng)
        assert patched is clique_ring

    def test_min_degree_two(self, rng):
        from repro.graphs.csr import edges_to_csr

        g = edges_to_csr(np.array([[0, 1], [2, 3]]), 6)
        patched = ensure_min_degree(g, 2, rng=rng)
        assert patched.degrees.min() >= 2


class TestFixtureGraphs:
    def test_ring_of_cliques_structure(self):
        g = ring_of_cliques(3, 4)
        assert g.num_vertices == 12
        # 3 cliques of C(4,2)=6 edges + 3 bridges
        assert g.num_edges == 3 * 6 + 3

    def test_ring_of_two_cliques_single_bridge(self):
        g = ring_of_cliques(2, 3)
        assert g.num_edges == 2 * 3 + 1

    def test_ring_validation(self):
        with pytest.raises(ValueError):
            ring_of_cliques(0, 5)
        with pytest.raises(ValueError):
            ring_of_cliques(3, 1)

    def test_grid_structure(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # rows*(cols-1) + (rows-1)*cols
        # Corner has degree 2, center degree 4.
        assert g.degree(0) == 2
        assert g.degree(5) == 4

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            grid_graph(0, 3)
