"""Tests for feature and label synthesis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.features import (
    gaussian_class_features,
    multi_label_from_blocks,
    single_label_from_blocks,
    smooth_features,
    svd_compressed_features,
)
from repro.graphs.generators import ring_of_cliques


class TestGaussianFeatures:
    def test_shape_and_dtype(self, rng):
        blocks = rng.integers(0, 4, size=100)
        f = gaussian_class_features(blocks, 16, rng=rng)
        assert f.shape == (100, 16)
        assert f.dtype == np.float64

    def test_class_separability(self, rng):
        """Same-class vertices are closer to their centroid than others."""
        blocks = np.repeat(np.arange(4), 50)
        f = gaussian_class_features(blocks, 32, signal=3.0, noise=0.5, rng=rng)
        centroids = np.stack([f[blocks == b].mean(axis=0) for b in range(4)])
        assigned = np.argmin(
            np.linalg.norm(f[:, None, :] - centroids[None], axis=2), axis=1
        )
        assert np.mean(assigned == blocks) > 0.95

    def test_no_signal_when_zero(self, rng):
        blocks = np.repeat(np.arange(2), 500)
        f = gaussian_class_features(blocks, 8, signal=0.0, noise=1.0, rng=rng)
        gap = np.linalg.norm(f[blocks == 0].mean(0) - f[blocks == 1].mean(0))
        assert gap < 0.5


class TestSVDFeatures:
    def test_shape(self, rng):
        blocks = rng.integers(0, 5, size=120)
        f = svd_compressed_features(blocks, 20, rng=rng)
        assert f.shape == (120, 20)

    def test_block_informative(self, rng):
        """Nearest-centroid accuracy well above chance."""
        blocks = np.repeat(np.arange(4), 60)
        f = svd_compressed_features(blocks, 24, rng=rng)
        centroids = np.stack([f[blocks == b].mean(axis=0) for b in range(4)])
        assigned = np.argmin(
            np.linalg.norm(f[:, None, :] - centroids[None], axis=2), axis=1
        )
        assert np.mean(assigned == blocks) > 0.6


class TestSmoothing:
    def test_preserves_shape(self, rng):
        g = ring_of_cliques(4, 5)
        f = rng.standard_normal((20, 8))
        out = smooth_features(g, f, hops=2)
        assert out.shape == f.shape

    def test_increases_edge_correlation(self, rng):
        g = ring_of_cliques(6, 6)
        f = rng.standard_normal((36, 4))
        out = smooth_features(g, f, hops=2, alpha=0.7)
        src = g.edge_sources()

        def edge_corr(x):
            a, b = x[src], x[g.indices]
            return float(
                np.mean(
                    np.sum((a - a.mean(0)) * (b - b.mean(0)), axis=1)
                    / (np.linalg.norm(a - a.mean(0), axis=1) * np.linalg.norm(b - b.mean(0), axis=1) + 1e-12)
                )
            )

        assert edge_corr(out) > edge_corr(f)

    def test_zero_hops_identity(self, rng):
        g = ring_of_cliques(3, 4)
        f = rng.standard_normal((12, 3))
        assert np.array_equal(smooth_features(g, f, hops=0), f)

    def test_shape_mismatch_raises(self, rng):
        g = ring_of_cliques(3, 4)
        with pytest.raises(ValueError, match="row count"):
            smooth_features(g, rng.standard_normal((5, 3)))


class TestLabels:
    def test_single_label_range(self, rng):
        blocks = rng.integers(0, 10, size=200)
        y = single_label_from_blocks(blocks, 7, rng=rng)
        assert y.shape == (200,)
        assert y.min() >= 0 and y.max() < 7

    def test_single_label_deterministic_mapping(self, rng):
        blocks = np.array([0, 1, 2, 7, 8])
        y = single_label_from_blocks(blocks, 7, flip_prob=0.0, rng=rng)
        assert np.array_equal(y, [0, 1, 2, 0, 1])

    def test_single_label_flips(self):
        blocks = np.zeros(5000, dtype=np.int64)
        y = single_label_from_blocks(
            blocks, 10, flip_prob=0.5, rng=np.random.default_rng(0)
        )
        assert 0.3 < np.mean(y != 0) < 0.6

    def test_multi_label_shape_and_density(self, rng):
        blocks = rng.integers(0, 6, size=300)
        y = multi_label_from_blocks(blocks, 20, labels_per_block=5, flip_prob=0.0, rng=rng)
        assert y.shape == (300, 20)
        assert set(np.unique(y)) <= {0.0, 1.0}
        assert np.allclose(y.sum(axis=1), 5)

    def test_multi_label_same_block_same_labels(self, rng):
        blocks = np.array([2, 2, 2, 3])
        y = multi_label_from_blocks(blocks, 10, flip_prob=0.0, rng=rng)
        assert np.array_equal(y[0], y[1])
        assert np.array_equal(y[1], y[2])
        assert not np.array_equal(y[0], y[3]) or True  # may coincide rarely

    def test_multi_label_flip_noise(self):
        blocks = np.zeros(2000, dtype=np.int64)
        y = multi_label_from_blocks(
            blocks, 10, labels_per_block=3, flip_prob=0.2,
            rng=np.random.default_rng(3),
        )
        base = multi_label_from_blocks(
            blocks, 10, labels_per_block=3, flip_prob=0.0,
            rng=np.random.default_rng(3),
        )
        flip_rate = float(np.mean(y != base))
        assert 0.1 < flip_rate < 0.3
