"""Tests for dataset profiles and generation (Table I substrate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.datasets import PROFILES, Dataset, make_dataset, table1_rows


class TestProfiles:
    def test_all_four_present(self):
        assert set(PROFILES) == {"ppi", "reddit", "yelp", "amazon"}

    def test_table1_published_stats(self):
        """The profile constants are the paper's Table I, verbatim."""
        p = PROFILES["ppi"]
        assert (p.full_num_vertices, p.full_num_edges) == (14_755, 225_270)
        assert (p.attribute_dim, p.num_classes, p.task) == (50, 121, "multi")
        r = PROFILES["reddit"]
        assert (r.full_num_vertices, r.full_num_edges) == (232_965, 11_606_919)
        assert (r.attribute_dim, r.num_classes, r.task) == (602, 41, "single")
        y = PROFILES["yelp"]
        assert (y.full_num_vertices, y.full_num_edges) == (716_847, 6_977_410)
        assert (y.attribute_dim, y.num_classes, y.task) == (300, 100, "multi")
        a = PROFILES["amazon"]
        assert (a.full_num_vertices, a.full_num_edges) == (1_598_960, 132_169_734)
        assert (a.attribute_dim, a.num_classes, a.task) == (200, 107, "multi")

    def test_full_avg_degree(self):
        r = PROFILES["reddit"]
        assert r.full_avg_degree == pytest.approx(99.65, abs=0.1)


class TestMakeDataset:
    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            make_dataset("citeseer")

    @pytest.mark.parametrize("name", list(PROFILES))
    def test_generation_invariants(self, name):
        ds = make_dataset(name, scale=0.003 if name != "ppi" else 0.03, seed=1)
        profile = PROFILES[name]
        assert ds.attribute_dim == profile.attribute_dim
        assert ds.num_classes == profile.num_classes
        assert ds.task == profile.task
        assert ds.graph.degrees.min() >= 1
        assert ds.graph.is_symmetric()
        # Splits partition the vertex set.
        total = ds.train_idx.size + ds.val_idx.size + ds.test_idx.size
        assert total == ds.num_vertices
        if profile.task == "multi":
            assert ds.labels.shape == (ds.num_vertices, profile.num_classes)
        else:
            assert ds.labels.shape == (ds.num_vertices,)

    def test_scale_controls_size(self):
        small = make_dataset("ppi", scale=0.02, seed=0)
        large = make_dataset("ppi", scale=0.06, seed=0)
        assert large.num_vertices == pytest.approx(3 * small.num_vertices, rel=0.05)

    def test_determinism(self):
        a = make_dataset("yelp", scale=0.002, seed=9)
        b = make_dataset("yelp", scale=0.002, seed=9)
        assert np.array_equal(a.graph.indices, b.graph.indices)
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)
        assert np.array_equal(a.train_idx, b.train_idx)

    def test_seed_changes_instance(self):
        a = make_dataset("yelp", scale=0.002, seed=1)
        b = make_dataset("yelp", scale=0.002, seed=2)
        assert not np.array_equal(a.features, b.features)

    def test_degree_cap(self):
        capped = make_dataset("reddit", scale=0.004, seed=0, avg_degree_cap=20.0)
        assert capped.graph.average_degree <= 22.0

    def test_amazon_skew(self):
        ds = make_dataset("amazon", scale=0.002, seed=0)
        degs = ds.graph.degrees
        # Heavy-tailed: max degree an order of magnitude above the mean.
        assert degs.max() > 8 * degs.mean()

    def test_split_fractions(self):
        ds = make_dataset("ppi", scale=0.05, seed=0, train_frac=0.5, val_frac=0.25)
        n = ds.num_vertices
        assert ds.train_idx.size == pytest.approx(0.5 * n, abs=2)
        assert ds.val_idx.size == pytest.approx(0.25 * n, abs=2)


class TestDatasetValidation:
    def test_split_overlap_rejected(self, ppi_small):
        ds = ppi_small
        with pytest.raises(ValueError, match="overlap"):
            Dataset(
                name="bad",
                graph=ds.graph,
                features=ds.features,
                labels=ds.labels,
                train_idx=ds.train_idx,
                val_idx=ds.train_idx[:1],
                test_idx=ds.test_idx,
                task=ds.task,
                num_classes=ds.num_classes,
            )

    def test_feature_rows_checked(self, ppi_small):
        ds = ppi_small
        with pytest.raises(ValueError, match="features"):
            Dataset(
                name="bad",
                graph=ds.graph,
                features=ds.features[:-1],
                labels=ds.labels,
                train_idx=ds.train_idx,
                val_idx=ds.val_idx,
                test_idx=ds.test_idx,
                task=ds.task,
                num_classes=ds.num_classes,
            )

    def test_labels_of(self, ppi_small):
        ds = ppi_small
        idx = ds.val_idx[:3]
        assert np.array_equal(ds.labels_of(idx), ds.labels[idx])


class TestTable1Rows:
    def test_rows_without_datasets(self):
        rows = table1_rows()
        assert len(rows) == 4
        assert rows[0]["paper_vertices"] == 14_755
        assert "generated_vertices" not in rows[0]

    def test_rows_with_datasets(self, ppi_small):
        rows = table1_rows({"ppi": ppi_small})
        ppi_row = next(r for r in rows if r["dataset"] == "PPI")
        assert ppi_row["generated_vertices"] == ppi_small.num_vertices
