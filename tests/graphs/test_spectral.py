"""Tests for spectral connectivity measures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.csr import edges_to_csr
from repro.graphs.generators import ring_of_cliques
from repro.graphs.spectral import (
    estrada_index_proxy,
    second_eigenvalue_normalized,
    spectral_radius_normalized,
    spectral_summary,
)


class TestSpectralRadius:
    def test_stochastic_matrix_radius_one(self, clique_ring, medium_graph):
        for g in (clique_ring, medium_graph):
            assert spectral_radius_normalized(g) == pytest.approx(1.0, abs=1e-6)


class TestSecondEigenvalue:
    def test_matches_dense_eig_small_graph(self, clique_ring):
        from repro.propagation.spmm import MeanAggregator

        m = MeanAggregator(clique_ring).dense()
        eigs = np.sort(np.abs(np.linalg.eigvals(m)))[::-1]
        ours = second_eigenvalue_normalized(clique_ring, iters=500)
        assert ours == pytest.approx(eigs[1], abs=1e-3)

    def test_complete_graph_small_gap_vs_ring(self):
        """A clique mixes fast (small |lambda_2|); a long cycle mixes
        slowly (|lambda_2| near 1)."""
        clique = ring_of_cliques(1, 12)
        cycle_edges = np.array([[i, (i + 1) % 30] for i in range(30)])
        cycle = edges_to_csr(cycle_edges, 30)
        lam_clique = second_eigenvalue_normalized(clique, iters=400)
        lam_cycle = second_eigenvalue_normalized(cycle, iters=400)
        assert lam_clique < 0.3
        assert lam_cycle > 0.9

    def test_disconnected_graph_lambda2_one(self):
        """Two components: multiplicity-2 eigenvalue 1 => |lambda_2| = 1."""
        edges = np.array([[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5]])
        g = edges_to_csr(edges, 6)
        assert second_eigenvalue_normalized(g, iters=400) == pytest.approx(
            1.0, abs=1e-3
        )

    def test_zero_degree_rejected(self):
        g = edges_to_csr(np.array([[0, 1]]), 3)
        with pytest.raises(ValueError, match="min degree"):
            second_eigenvalue_normalized(g)


class TestEstrada:
    def test_finite_and_size_monotone(self):
        small = ring_of_cliques(2, 4)
        large = ring_of_cliques(10, 4)
        e_small = estrada_index_proxy(small)
        e_large = estrada_index_proxy(large)
        assert np.isfinite(e_small) and np.isfinite(e_large)


class TestSummary:
    def test_keys(self, clique_ring):
        s = spectral_summary(clique_ring)
        assert set(s) == {"spectral_radius", "second_eigenvalue", "estrada_proxy"}

    def test_nan_for_zero_degree(self):
        g = edges_to_csr(np.array([[0, 1]]), 3)
        assert np.isnan(spectral_summary(g)["second_eigenvalue"])
