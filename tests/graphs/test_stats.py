"""Tests for graph statistics against networkx oracles and known values."""

from __future__ import annotations

import numpy as np
import networkx as nx
import pytest

from repro.graphs.csr import edges_to_csr
from repro.graphs.stats import (
    average_local_clustering,
    connected_components,
    connectivity_summary,
    degree_assortativity,
    degree_histogram,
    degree_ks_distance,
    global_clustering_coefficient,
    largest_component_fraction,
)


def to_nx(graph):
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from(map(tuple, graph.edge_list()))
    return g


class TestDegreeHistogram:
    def test_star(self, star_graph):
        hist = degree_histogram(star_graph)
        assert hist[1] == 5 and hist[5] == 1


class TestKSDistance:
    def test_identical_graphs_zero(self, clique_ring):
        assert degree_ks_distance(clique_ring, clique_ring) == 0.0

    def test_star_vs_triangle(self, star_graph, triangle_graph):
        d = degree_ks_distance(star_graph, triangle_graph)
        assert 0.0 < d <= 1.0

    def test_symmetry(self, star_graph, grid5):
        assert degree_ks_distance(star_graph, grid5) == pytest.approx(
            degree_ks_distance(grid5, star_graph)
        )


class TestComponents:
    def test_connected_graph(self, clique_ring):
        comp = connected_components(clique_ring)
        assert np.all(comp == 0)
        assert largest_component_fraction(clique_ring) == 1.0

    def test_two_components(self):
        g = edges_to_csr(np.array([[0, 1], [2, 3]]), 5)
        comp = connected_components(g)
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert comp[0] != comp[2]
        assert len(set(comp.tolist())) == 3  # the isolated vertex 4 too
        assert largest_component_fraction(g) == pytest.approx(2 / 5)

    def test_vs_networkx(self, medium_graph):
        ours = connected_components(medium_graph)
        theirs = list(nx.connected_components(to_nx(medium_graph)))
        assert len(set(ours.tolist())) == len(theirs)
        sizes_ours = sorted(np.bincount(ours).tolist())
        sizes_theirs = sorted(len(c) for c in theirs)
        assert sizes_ours == sizes_theirs


class TestClustering:
    def test_triangle(self, triangle_graph):
        assert global_clustering_coefficient(triangle_graph) == pytest.approx(1.0)
        assert average_local_clustering(triangle_graph) == pytest.approx(1.0)

    def test_star_no_triangles(self, star_graph):
        assert global_clustering_coefficient(star_graph) == 0.0
        assert average_local_clustering(star_graph) == 0.0

    def test_vs_networkx_transitivity(self, clique_ring, medium_graph):
        for g in (clique_ring, medium_graph):
            assert global_clustering_coefficient(g) == pytest.approx(
                nx.transitivity(to_nx(g)), abs=1e-9
            )

    def test_vs_networkx_average_clustering(self, clique_ring):
        assert average_local_clustering(clique_ring) == pytest.approx(
            nx.average_clustering(to_nx(clique_ring)), abs=1e-9
        )


class TestAssortativity:
    def test_vs_networkx(self, medium_graph):
        ours = degree_assortativity(medium_graph)
        theirs = nx.degree_assortativity_coefficient(to_nx(medium_graph))
        assert ours == pytest.approx(theirs, abs=1e-6)

    def test_star_negative(self, star_graph):
        # Hubs connect to leaves only: strongly disassortative.
        assert degree_assortativity(star_graph) < 0.0 or np.isnan(
            degree_assortativity(star_graph)
        ) is False

    def test_regular_graph_zero_variance(self, triangle_graph):
        assert degree_assortativity(triangle_graph) == 0.0


class TestSummary:
    def test_keys_and_values(self, clique_ring):
        s = connectivity_summary(clique_ring)
        assert s["num_vertices"] == 20
        assert s["largest_component_fraction"] == 1.0
        assert 0.0 <= s["global_clustering"] <= 1.0
