"""Tests for structural validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.csr import CSRGraph, edges_to_csr
from repro.graphs.validate import ValidationError, validate_dataset, validate_graph


class TestValidateGraph:
    def test_clean_graph_passes(self, clique_ring):
        assert validate_graph(clique_ring, require_min_degree=1) == []

    def test_asymmetric_flagged(self):
        g = edges_to_csr(np.array([[0, 1]]), 2, symmetrize=False)
        problems = validate_graph(g, raise_on_error=False)
        assert any("symmetric" in p for p in problems)
        with pytest.raises(ValidationError, match="symmetric"):
            validate_graph(g)

    def test_min_degree_flagged(self):
        g = edges_to_csr(np.array([[0, 1]]), 3)
        problems = validate_graph(
            g, require_min_degree=1, raise_on_error=False
        )
        assert any("min degree" in p for p in problems)

    def test_self_loops_flagged(self):
        g = edges_to_csr(np.array([[0, 0], [0, 1]]), 2)
        problems = validate_graph(
            g, forbid_self_loops=True, raise_on_error=False
        )
        assert any("self-loop" in p for p in problems)

    def test_unsorted_neighbors_flagged(self):
        g = CSRGraph(
            indptr=np.array([0, 2, 2]),
            indices=np.array([1, 0], dtype=np.int32),  # [1, 0] not sorted
        )
        problems = validate_graph(g, require_symmetric=False, raise_on_error=False)
        assert any("sorted" in p for p in problems)

    def test_error_carries_all_problems(self):
        g = edges_to_csr(np.array([[0, 0]]), 3, symmetrize=False)
        with pytest.raises(ValidationError) as exc:
            validate_graph(g, require_min_degree=1, forbid_self_loops=True)
        assert len(exc.value.problems) >= 2


class TestValidateDataset:
    def test_generated_datasets_pass(self, ppi_small, reddit_small):
        assert validate_dataset(ppi_small) == []
        assert validate_dataset(reddit_small) == []

    def test_nonfinite_features_flagged(self, reddit_small):
        from dataclasses import replace

        feats = reddit_small.features.copy()
        feats[0, 0] = np.nan
        bad = replace(reddit_small, features=feats)
        problems = validate_dataset(bad, raise_on_error=False)
        assert any("non-finite" in p for p in problems)

    def test_bad_multilabel_values_flagged(self, ppi_small):
        from dataclasses import replace

        labels = ppi_small.labels.copy()
        labels[0, 0] = 0.5
        bad = replace(ppi_small, labels=labels)
        problems = validate_dataset(bad, raise_on_error=False)
        assert any("0/1" in p for p in problems)

    def test_roundtripped_dataset_passes(self, ppi_small, tmp_path):
        from repro.graphs.io import load_dataset, save_dataset

        path = save_dataset(ppi_small, tmp_path / "d")
        assert validate_dataset(load_dataset(path)) == []
