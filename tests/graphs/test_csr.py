"""Unit tests for the CSR graph engine."""

from __future__ import annotations

import numpy as np
import networkx as nx
import pytest

from repro.graphs.csr import CSRGraph, edges_to_csr, induced_subgraph, _ranges_within


class TestConstruction:
    def test_triangle_basic(self, triangle_graph):
        g = triangle_graph
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.num_edges_directed == 6
        assert g.average_degree == 2.0

    def test_neighbors_sorted(self, triangle_graph):
        for v in range(3):
            nbrs = triangle_graph.neighbors(v)
            assert np.all(np.diff(nbrs) > 0)

    def test_degrees(self, star_graph):
        assert star_graph.degree(0) == 5
        for leaf in range(1, 6):
            assert star_graph.degree(leaf) == 1
        assert np.array_equal(star_graph.degrees, [5, 1, 1, 1, 1, 1])

    def test_isolated_vertices_allowed(self):
        g = edges_to_csr(np.array([[0, 1]]), 4)
        assert g.num_vertices == 4
        assert g.degree(2) == 0
        assert g.neighbors(3).size == 0

    def test_empty_edge_list(self):
        g = edges_to_csr(np.empty((0, 2)), 3)
        assert g.num_vertices == 3
        assert g.num_edges == 0

    def test_dedup_parallel_edges(self):
        g = edges_to_csr(np.array([[0, 1], [0, 1], [1, 0]]), 2)
        assert g.num_edges_directed == 2

    def test_keep_parallel_edges_when_requested(self):
        g = edges_to_csr(np.array([[0, 1], [0, 1]]), 2, dedup=False)
        assert g.num_edges_directed == 4

    def test_no_symmetrize(self):
        g = edges_to_csr(np.array([[0, 1]]), 2, symmetrize=False)
        assert g.degree(0) == 1
        assert g.degree(1) == 0
        assert not g.is_symmetric()

    def test_drop_self_loops(self):
        g = edges_to_csr(np.array([[0, 0], [0, 1]]), 2, drop_self_loops=True)
        assert g.num_edges_directed == 2
        assert not g.has_edge(0, 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            edges_to_csr(np.array([[0, 5]]), 3)
        with pytest.raises(ValueError, match="out of range"):
            edges_to_csr(np.array([[-1, 0]]), 3)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            edges_to_csr(np.array([1, 2, 3]), 3)

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.array([0, 2, 1]), indices=np.array([0, 1], dtype=np.int32))
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.array([1, 2]), indices=np.array([0], dtype=np.int32))

    def test_indices_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out-of-range"):
            CSRGraph(indptr=np.array([0, 1]), indices=np.array([5], dtype=np.int32))

    def test_arrays_read_only(self, triangle_graph):
        with pytest.raises(ValueError):
            triangle_graph.indices[0] = 0
        with pytest.raises(ValueError):
            triangle_graph.indptr[0] = 1


class TestAccessors:
    def test_has_edge(self, path_graph):
        assert path_graph.has_edge(0, 1)
        assert path_graph.has_edge(1, 0)
        assert not path_graph.has_edge(0, 2)
        assert not path_graph.has_edge(0, 3)

    def test_edge_list_roundtrip(self, clique_ring):
        edges = clique_ring.edge_list()
        rebuilt = edges_to_csr(edges, clique_ring.num_vertices, symmetrize=False)
        assert np.array_equal(rebuilt.indptr, clique_ring.indptr)
        assert np.array_equal(rebuilt.indices, clique_ring.indices)

    def test_edge_sources_lengths(self, star_graph):
        src = star_graph.edge_sources()
        assert src.shape[0] == star_graph.num_edges_directed
        assert np.count_nonzero(src == 0) == 5

    def test_len(self, grid5):
        assert len(grid5) == 25

    def test_random_neighbor_valid(self, medium_graph, rng):
        for _ in range(50):
            v = int(rng.integers(medium_graph.num_vertices))
            if medium_graph.degree(v) == 0:
                continue
            u = medium_graph.random_neighbor(v, rng)
            assert medium_graph.has_edge(v, u)

    def test_random_neighbor_isolated_raises(self, rng):
        g = edges_to_csr(np.array([[0, 1]]), 3)
        with pytest.raises(ValueError, match="no neighbors"):
            g.random_neighbor(2, rng)

    def test_random_neighbors_vectorized(self, medium_graph, rng):
        vs = rng.choice(medium_graph.num_vertices, size=100)
        out = medium_graph.random_neighbors(vs, rng)
        assert out.shape == vs.shape
        for v, u in zip(vs, out):
            assert medium_graph.has_edge(int(v), int(u))

    def test_random_neighbors_uniformity(self, star_graph, rng):
        # Center of the star: each of the 5 leaves equally likely.
        draws = star_graph.random_neighbors(np.zeros(5000, dtype=np.int64), rng)
        counts = np.bincount(draws, minlength=6)[1:]
        assert counts.min() > 800  # expectation 1000, generous slack


class TestDerivedGraphs:
    def test_with_self_loops(self, path_graph):
        g = path_graph.with_self_loops()
        for v in range(4):
            assert g.has_edge(v, v)
        assert g.num_edges_directed == path_graph.num_edges_directed + 4

    def test_with_self_loops_idempotent_on_loops(self):
        g = edges_to_csr(np.array([[0, 0], [0, 1]]), 2, dedup=True)
        g2 = g.with_self_loops()
        assert g2.has_edge(0, 0) and g2.has_edge(1, 1)
        # vertex 0's loop was already present: exactly one copy remains
        assert np.count_nonzero(g2.neighbors(0) == 0) == 1

    def test_is_symmetric(self, clique_ring):
        assert clique_ring.is_symmetric()

    def test_induced_subgraph_path(self, path_graph):
        sub, vmap = path_graph.induced_subgraph(np.array([0, 1, 3]))
        assert np.array_equal(vmap, [0, 1, 3])
        assert sub.num_vertices == 3
        # Only the 0-1 edge survives; 3 is stranded.
        assert sub.num_edges == 1
        assert sub.has_edge(0, 1)
        assert sub.degree(2) == 0

    def test_induced_subgraph_duplicates_collapsed(self, path_graph):
        sub, vmap = path_graph.induced_subgraph(np.array([1, 1, 2, 2]))
        assert np.array_equal(vmap, [1, 2])
        assert sub.num_edges == 1

    def test_induced_subgraph_empty(self, path_graph):
        sub, vmap = path_graph.induced_subgraph(np.array([], dtype=np.int64))
        assert sub.num_vertices == 0
        assert vmap.size == 0

    def test_induced_subgraph_full_is_identity(self, clique_ring):
        sub, vmap = clique_ring.induced_subgraph(
            np.arange(clique_ring.num_vertices)
        )
        assert np.array_equal(sub.indptr, clique_ring.indptr)
        assert np.array_equal(sub.indices, clique_ring.indices)

    def test_induced_subgraph_vs_networkx(self, medium_graph, rng):
        nxg = nx.Graph()
        nxg.add_nodes_from(range(medium_graph.num_vertices))
        nxg.add_edges_from(map(tuple, medium_graph.edge_list()))
        keep = rng.choice(medium_graph.num_vertices, size=200, replace=False)
        sub, vmap = medium_graph.induced_subgraph(keep)
        nx_sub = nxg.subgraph(keep.tolist())
        assert sub.num_vertices == nx_sub.number_of_nodes()
        assert sub.num_edges == nx_sub.number_of_edges()
        # Spot-check edges map back correctly.
        for u, v in list(nx_sub.edges())[:50]:
            iu = int(np.searchsorted(vmap, u))
            iv = int(np.searchsorted(vmap, v))
            assert sub.has_edge(iu, iv)

    def test_induced_subgraph_preserves_symmetry(self, medium_graph, rng):
        keep = rng.choice(medium_graph.num_vertices, size=150, replace=False)
        sub, _ = induced_subgraph(medium_graph, keep)
        assert sub.is_symmetric()


class TestRangesWithin:
    def test_simple(self):
        out = _ranges_within(np.array([3, 2, 1]))
        assert np.array_equal(out, [0, 1, 2, 0, 1, 0])

    def test_with_zeros(self):
        out = _ranges_within(np.array([0, 2, 0, 3, 0]))
        assert np.array_equal(out, [0, 1, 0, 1, 2])

    def test_all_zeros(self):
        assert _ranges_within(np.array([0, 0])).size == 0

    def test_empty(self):
        assert _ranges_within(np.array([], dtype=np.int64)).size == 0
