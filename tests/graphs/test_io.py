"""Tests for graph/dataset serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.io import (
    load_dataset,
    load_graph,
    read_edge_list,
    save_dataset,
    save_graph,
    write_edge_list,
)


class TestGraphNpz:
    def test_roundtrip(self, medium_graph, tmp_path):
        path = save_graph(medium_graph, tmp_path / "g")
        assert path.suffix == ".npz"
        loaded = load_graph(path)
        assert np.array_equal(loaded.indptr, medium_graph.indptr)
        assert np.array_equal(loaded.indices, medium_graph.indices)


class TestDatasetNpz:
    def test_roundtrip(self, ppi_small, tmp_path):
        path = save_dataset(ppi_small, tmp_path / "ds")
        loaded = load_dataset(path)
        assert loaded.name == ppi_small.name
        assert loaded.task == ppi_small.task
        assert loaded.num_classes == ppi_small.num_classes
        assert np.array_equal(loaded.graph.indices, ppi_small.graph.indices)
        assert np.array_equal(loaded.features, ppi_small.features)
        assert np.array_equal(loaded.labels, ppi_small.labels)
        assert np.array_equal(loaded.train_idx, ppi_small.train_idx)

    def test_single_label_roundtrip(self, reddit_small, tmp_path):
        path = save_dataset(reddit_small, tmp_path / "rd")
        loaded = load_dataset(path)
        assert loaded.task == "single"
        assert loaded.labels.ndim == 1


class TestEdgeList:
    def test_roundtrip(self, clique_ring, tmp_path):
        path = write_edge_list(clique_ring, tmp_path / "edges.txt")
        loaded = read_edge_list(path, num_vertices=clique_ring.num_vertices)
        assert np.array_equal(loaded.indptr, clique_ring.indptr)
        assert np.array_equal(loaded.indices, clique_ring.indices)

    def test_undirected_writes_each_edge_once(self, triangle_graph, tmp_path):
        path = write_edge_list(triangle_graph, tmp_path / "t.txt")
        lines = [
            l for l in path.read_text().splitlines() if not l.startswith("#")
        ]
        assert len(lines) == 3

    def test_directed_writes_both(self, triangle_graph, tmp_path):
        path = write_edge_list(triangle_graph, tmp_path / "t.txt", directed=True)
        lines = [
            l for l in path.read_text().splitlines() if not l.startswith("#")
        ]
        assert len(lines) == 6

    def test_infers_vertex_count(self, tmp_path):
        p = tmp_path / "e.txt"
        p.write_text("0 1\n1 4\n")
        g = read_edge_list(p)
        assert g.num_vertices == 5
