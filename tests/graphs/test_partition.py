"""Tests for the vertex partitioners and their gamma_P comparison."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.partition import (
    bfs_partition,
    greedy_edge_partition,
    random_partition,
)
from repro.propagation.partition_model import gamma_of_partition


@pytest.mark.parametrize(
    "partitioner",
    [random_partition, bfs_partition, greedy_edge_partition],
    ids=["random", "bfs", "greedy"],
)
class TestCommonProperties:
    def test_valid_assignment(self, partitioner, medium_graph, rng):
        parts = 4
        a = partitioner(medium_graph, parts, rng=rng)
        assert a.shape == (medium_graph.num_vertices,)
        assert a.min() >= 0 and a.max() < parts

    def test_rough_balance(self, partitioner, medium_graph, rng):
        parts = 4
        a = partitioner(medium_graph, parts, rng=rng)
        counts = np.bincount(a, minlength=parts)
        n = medium_graph.num_vertices
        assert counts.max() <= 1.4 * n / parts

    def test_validation(self, partitioner, medium_graph, rng):
        with pytest.raises(ValueError):
            partitioner(medium_graph, 0, rng=rng)


class TestGammaOrdering:
    def test_locality_partitioners_reduce_gamma(self, rng):
        """On a locality-friendly graph, BFS and greedy partitions have
        lower source-set expansion than random — yet all stay far above
        1/P, which is Theorem 2's motivation."""
        from repro.graphs.generators import ring_of_cliques

        g = ring_of_cliques(24, 8)
        parts = 4
        gammas = {
            "random": gamma_of_partition(g, random_partition(g, parts, rng=rng)),
            "bfs": gamma_of_partition(g, bfs_partition(g, parts, rng=rng)),
            "greedy": gamma_of_partition(
                g, greedy_edge_partition(g, parts, rng=rng)
            ),
        }
        assert gammas["bfs"] <= gammas["random"]
        assert gammas["greedy"] <= gammas["random"]
        for v in gammas.values():
            assert 1.0 / parts < v <= 1.0

    def test_single_part_gamma_one(self, medium_graph, rng):
        a = greedy_edge_partition(medium_graph, 1, rng=rng)
        assert gamma_of_partition(medium_graph, a) == 1.0


class TestGreedySpecifics:
    def test_slack_validation(self, medium_graph, rng):
        with pytest.raises(ValueError):
            greedy_edge_partition(medium_graph, 2, rng=rng, slack=0.9)

    def test_all_vertices_assigned(self, medium_graph, rng):
        a = greedy_edge_partition(medium_graph, 8, rng=rng)
        assert np.all(a >= 0)


class TestBFSSpecifics:
    def test_handles_disconnected(self, rng):
        from repro.graphs.csr import edges_to_csr

        g = edges_to_csr(np.array([[0, 1], [2, 3]]), 6)
        a = bfs_partition(g, 2, rng=rng)
        assert a.shape == (6,)
        assert set(np.unique(a)) <= {0, 1}
