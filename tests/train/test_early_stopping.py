"""Tests for early stopping in the trainer."""

from __future__ import annotations

import pytest

from repro.train.config import TrainConfig
from repro.train.trainer import GraphSamplingTrainer


class TestEarlyStopping:
    def test_patience_validation(self):
        with pytest.raises(ValueError, match="patience"):
            TrainConfig(patience=0)

    def test_stops_before_epoch_budget(self, reddit_small):
        """With patience 1 on a quickly-plateauing run, training ends well
        before the (deliberately huge) epoch budget."""
        cfg = TrainConfig(
            hidden_dims=(16,),
            frontier_size=20,
            budget=120,
            lr=0.01,
            epochs=60,
            eval_every=1,
            patience=1,
            seed=0,
        )
        result = GraphSamplingTrainer(reddit_small, cfg).train()
        assert len(result.epochs) < 60

    def test_no_patience_runs_full_budget(self, reddit_small):
        cfg = TrainConfig(
            hidden_dims=(16,),
            frontier_size=20,
            budget=120,
            epochs=4,
            eval_every=1,
            patience=None,
            seed=0,
        )
        result = GraphSamplingTrainer(reddit_small, cfg).train()
        assert len(result.epochs) == 4

    def test_patience_counts_only_evals(self, reddit_small):
        """eval_every > 1: non-eval epochs cannot trigger stopping."""
        cfg = TrainConfig(
            hidden_dims=(16,),
            frontier_size=20,
            budget=120,
            epochs=6,
            eval_every=3,
            patience=5,
            seed=0,
        )
        result = GraphSamplingTrainer(reddit_small, cfg).train()
        assert len(result.epochs) == 6  # only 2 evals happen, patience 5


class TestRestoreBest:
    def test_model_restored_to_best_eval(self, reddit_small):
        """After training with restore_best, the model's full-graph val F1
        equals the best recorded evaluation, even if later epochs were
        worse."""
        from repro.train.evaluation import Evaluator

        cfg = TrainConfig(
            hidden_dims=(16,),
            frontier_size=20,
            budget=120,
            lr=0.05,  # aggressive: late epochs likely to regress
            epochs=8,
            eval_every=1,
            restore_best=True,
            seed=0,
        )
        trainer = GraphSamplingTrainer(reddit_small, cfg)
        result = trainer.train()
        best = max(r.val.f1_micro for r in result.epochs if r.val is not None)
        final = Evaluator(reddit_small).evaluate(trainer.model, "val").f1_micro
        assert final == pytest.approx(best, abs=1e-9)
