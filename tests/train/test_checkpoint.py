"""Tests for model checkpointing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.network import GCN
from repro.train.checkpoint import (
    checkpoint_metadata,
    load_checkpoint,
    save_checkpoint,
)


@pytest.fixture
def model():
    return GCN(10, [8, 8], 5, seed=3)


class TestRoundtrip:
    def test_save_load_identical(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "ckpt")
        assert path.suffix == ".npz"
        fresh = GCN(10, [8, 8], 5, seed=99)
        load_checkpoint(fresh, path)
        for k, v in model.state_dict().items():
            assert np.array_equal(fresh.state_dict()[k], v), k

    def test_metadata(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "ckpt.npz")
        meta = checkpoint_metadata(path)
        assert meta["in_dim"] == 10
        assert meta["hidden_dims"] == [8, 8]
        assert meta["num_classes"] == 5
        assert meta["num_parameters"] == model.num_parameters()

    def test_architecture_mismatch_rejected(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "ckpt")
        wrong = GCN(10, [8], 5, seed=0)
        with pytest.raises(ValueError, match="mismatch"):
            load_checkpoint(wrong, path)

    def test_not_a_checkpoint(self, tmp_path):
        bogus = tmp_path / "x.npz"
        np.savez(bogus, a=np.zeros(3))
        with pytest.raises(ValueError, match="missing metadata"):
            checkpoint_metadata(bogus)

    def test_predictions_preserved(self, model, tmp_path, reddit_small):
        from repro.propagation.spmm import MeanAggregator

        agg = MeanAggregator(reddit_small.graph)
        model2 = GCN(
            reddit_small.attribute_dim, [8], reddit_small.num_classes, seed=1
        )
        before = model2.forward(reddit_small.features, agg, train=False)
        path = save_checkpoint(model2, tmp_path / "m")
        fresh = GCN(
            reddit_small.attribute_dim, [8], reddit_small.num_classes, seed=42
        )
        load_checkpoint(fresh, path)
        after = fresh.forward(reddit_small.features, agg, train=False)
        assert np.allclose(before, after)
