"""Tests for the graph-sampling GCN trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling.extra import RandomNodeSampler
from repro.train.config import TrainConfig
from repro.train.trainer import (
    PHASE_FEATURE_PROP,
    PHASE_SAMPLING,
    PHASE_WEIGHT_APP,
    GraphSamplingTrainer,
)


@pytest.fixture
def quick_cfg():
    return TrainConfig(
        hidden_dims=(16, 16),
        frontier_size=20,
        budget=120,
        lr=0.01,
        epochs=3,
        eval_every=1,
        seed=0,
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(hidden_dims=())
        with pytest.raises(ValueError):
            TrainConfig(frontier_size=0)
        with pytest.raises(ValueError):
            TrainConfig(frontier_size=10, budget=5)
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(p_inter=0)


class TestTrainer:
    def test_loss_decreases(self, reddit_small, quick_cfg):
        result = GraphSamplingTrainer(reddit_small, quick_cfg).train()
        assert result.epochs[-1].train_loss < result.epochs[0].train_loss

    def test_learns_reddit(self, reddit_small):
        cfg = TrainConfig(
            hidden_dims=(32, 32),
            frontier_size=30,
            budget=190,
            lr=0.005,
            epochs=8,
            eval_every=8,
            seed=0,
        )
        result = GraphSamplingTrainer(reddit_small, cfg).train()
        assert result.final_val_f1 > 0.5

    def test_trains_multilabel(self, ppi_small, quick_cfg):
        result = GraphSamplingTrainer(ppi_small, quick_cfg).train()
        assert np.isfinite(result.epochs[-1].train_loss)
        assert result.epochs[-1].val is not None

    def test_trace_phases(self, reddit_small, quick_cfg):
        result = GraphSamplingTrainer(reddit_small, quick_cfg).train()
        phases = result.trace.totals_by_phase()
        assert set(phases) == {PHASE_SAMPLING, PHASE_FEATURE_PROP, PHASE_WEIGHT_APP}
        assert all(v > 0 for v in phases.values())

    def test_iterations_per_epoch(self, reddit_small, quick_cfg):
        trainer = GraphSamplingTrainer(reddit_small, quick_cfg)
        result = trainer.train()
        assert result.iterations == quick_cfg.epochs * trainer.batches_per_epoch

    def test_iteration_metrics_recorded(self, reddit_small, quick_cfg):
        trainer = GraphSamplingTrainer(reddit_small, quick_cfg)
        result = trainer.train()
        assert len(result.iteration_metrics) == result.iterations
        m = result.iteration_metrics[0]
        assert m.gemm_flops > 0
        assert m.subgraph_vertices > 0
        assert len(m.prop_reports) == 2 * 2 * len(quick_cfg.hidden_dims) // 2

    def test_training_restricted_to_train_graph(self, reddit_small, quick_cfg):
        trainer = GraphSamplingTrainer(reddit_small, quick_cfg)
        assert trainer.train_graph.num_vertices == reddit_small.train_idx.size
        # Sampler operates on the training graph only.
        assert trainer.sampler.graph.num_vertices == trainer.train_graph.num_vertices

    def test_sampler_override(self, reddit_small, quick_cfg):
        ref = GraphSamplingTrainer(reddit_small, quick_cfg)
        sampler = RandomNodeSampler(ref.train_graph, budget=100)
        trainer = GraphSamplingTrainer(reddit_small, quick_cfg, sampler=sampler)
        result = trainer.train(epochs=1)
        assert result.iterations > 0

    def test_determinism(self, reddit_small, quick_cfg):
        r1 = GraphSamplingTrainer(reddit_small, quick_cfg).train()
        r2 = GraphSamplingTrainer(reddit_small, quick_cfg).train()
        assert r1.epochs[-1].train_loss == pytest.approx(r2.epochs[-1].train_loss)

    def test_time_to_accuracy(self, reddit_small, quick_cfg):
        result = GraphSamplingTrainer(reddit_small, quick_cfg).train()
        t = result.time_to_accuracy(0.0)  # trivially reached at first eval
        assert t is not None and t > 0
        assert result.time_to_accuracy(2.0) is None  # unreachable

    def test_eval_every(self, reddit_small):
        cfg = TrainConfig(
            hidden_dims=(16,), frontier_size=20, budget=100, epochs=4, eval_every=2
        )
        result = GraphSamplingTrainer(reddit_small, cfg).train()
        evals = [r.val is not None for r in result.epochs]
        assert evals == [False, True, False, True]

    def test_budget_clamped_to_train_graph(self, reddit_small):
        cfg = TrainConfig(
            hidden_dims=(16,), frontier_size=10, budget=10**6, epochs=1
        )
        trainer = GraphSamplingTrainer(reddit_small, cfg)
        assert trainer.sampler.budget <= trainer.train_graph.num_vertices
