"""Trainer-level sampler-zoo tests: config plumbing, SAINT weights,
cross-family convergence parity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling.dashboard import DashboardFrontierSampler
from repro.sampling.edge import DegreeWeightedEdgeSampler
from repro.sampling.edge_indp import IndependentEdgeSampler
from repro.sampling.rw import RandomWalkBatchSampler
from repro.sampling.zoo import FAMILIES
from repro.train.config import TrainConfig
from repro.train.trainer import GraphSamplingTrainer

_SAMPLER_TYPES = {
    "dashboard": DashboardFrontierSampler,
    "rw": RandomWalkBatchSampler,
    "edge": DegreeWeightedEdgeSampler,
    "edge-indp": IndependentEdgeSampler,
}


class TestConfigValidation:
    def test_family_choices(self):
        for fam in FAMILIES:
            TrainConfig(sampler_family=fam)
        with pytest.raises(ValueError, match="sampler_family"):
            TrainConfig(sampler_family="bfs")

    def test_loss_norm_choices(self):
        TrainConfig(loss_norm="none")
        TrainConfig(loss_norm="saint")
        with pytest.raises(ValueError, match="loss_norm"):
            TrainConfig(loss_norm="graphsaint")

    def test_walk_depth_and_norm_subgraphs(self):
        with pytest.raises(ValueError, match="walk_depth"):
            TrainConfig(walk_depth=0)
        with pytest.raises(ValueError, match="norm_subgraphs"):
            TrainConfig(norm_subgraphs=0)


class TestFamilySelection:
    def _config(self, **kw):
        kw.setdefault("hidden_dims", (16,))
        kw.setdefault("frontier_size", 16)
        kw.setdefault("budget", 80)
        kw.setdefault("epochs", 1)
        kw.setdefault("seed", 0)
        return TrainConfig(**kw)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_trainer_builds_requested_family(self, ppi_small, family):
        with GraphSamplingTrainer(
            ppi_small, self._config(sampler_family=family)
        ) as trainer:
            assert isinstance(trainer.sampler, _SAMPLER_TYPES[family])
            assert trainer.norm is None  # loss_norm defaults to "none"

    @pytest.mark.parametrize("family", FAMILIES)
    def test_every_family_trains(self, ppi_small, family):
        with GraphSamplingTrainer(
            ppi_small, self._config(sampler_family=family)
        ) as trainer:
            result = trainer.train()
        assert result.iterations > 0
        assert np.isfinite(result.epochs[-1].train_loss)

    def test_default_config_unchanged(self, ppi_small):
        """The zoo refactor is behavior-preserving: the default config
        builds the same dashboard sampler and trains to the same losses
        as before the factory existed (same seed, same stream)."""
        direct_cfg = self._config()
        with GraphSamplingTrainer(ppi_small, direct_cfg) as trainer:
            budget = min(direct_cfg.budget, trainer.train_graph.num_vertices)
            via_factory = trainer.sampler
            assert isinstance(via_factory, DashboardFrontierSampler)
            direct = DashboardFrontierSampler(
                trainer.train_graph,
                frontier_size=min(direct_cfg.frontier_size, budget),
                budget=budget,
                eta=direct_cfg.eta,
                vector_lanes=direct_cfg.machine.vector_lanes,
            )
            a = via_factory.sample(np.random.default_rng(4))
            b = direct.sample(np.random.default_rng(4))
            assert np.array_equal(a.vertex_map, b.vertex_map)
            assert a.stats == b.stats


class TestSaintNormalization:
    def _config(self, **kw):
        kw.setdefault("hidden_dims", (16,))
        kw.setdefault("frontier_size", 16)
        kw.setdefault("budget", 80)
        kw.setdefault("epochs", 1)
        kw.setdefault("seed", 0)
        kw.setdefault("loss_norm", "saint")
        kw.setdefault("norm_subgraphs", 6)
        return TrainConfig(**kw)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_norm_computed_and_applied(self, ppi_small, family):
        with GraphSamplingTrainer(
            ppi_small, self._config(sampler_family=family)
        ) as trainer:
            assert trainer.norm is not None
            n = trainer.train_graph.num_vertices
            assert trainer.norm.loss_weight.shape == (n,)
            assert np.all(trainer.norm.loss_weight > 0)
            result = trainer.train()
        assert np.isfinite(result.epochs[-1].train_loss)

    def test_saint_losses_comparable_to_mean(self, ppi_small):
        """SAINT batch weights sum to ~1 in expectation, so weighted-sum
        losses stay on the scale of the plain batch mean (no silent
        gradient blow-up when switching the mode on)."""
        plain = GraphSamplingTrainer(
            ppi_small, self._config(loss_norm="none")
        ).train()
        saint = GraphSamplingTrainer(ppi_small, self._config()).train()
        ratio = saint.epochs[0].train_loss / plain.epochs[0].train_loss
        assert 0.2 < ratio < 5.0


@pytest.mark.slow
class TestConvergenceParity:
    """ISSUE-7 acceptance: every family within 0.02 F1 of the dashboard
    baseline (i.e. no family trains *worse* than dashboard - 0.02; being
    better is allowed) on the small Reddit paper benchmark with SAINT
    normalization on."""

    def test_families_match_dashboard_f1(self, reddit_small):
        f1 = {}
        for family in FAMILIES:
            cfg = TrainConfig(
                hidden_dims=(32, 32),
                frontier_size=30,
                budget=190,
                lr=0.005,
                epochs=8,
                eval_every=8,
                seed=0,
                sampler_family=family,
                loss_norm="saint",
            )
            with GraphSamplingTrainer(reddit_small, cfg) as trainer:
                f1[family] = trainer.train().final_val_f1
        baseline = f1["dashboard"]
        assert baseline > 0.5  # the existing learns-reddit bar
        for family in FAMILIES:
            assert f1[family] >= baseline - 0.02, (family, f1)
