"""Tests for embedding extraction and retrieval utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.network import GCN
from repro.train.config import TrainConfig
from repro.train.embedding import (
    compute_embeddings,
    cosine_nearest_neighbors,
    embedding_report,
    label_homogeneity,
    normalize_embeddings,
)
from repro.train.trainer import GraphSamplingTrainer


class TestNormalize:
    def test_unit_rows(self, rng):
        e = rng.standard_normal((10, 4))
        n = normalize_embeddings(e)
        assert np.allclose(np.linalg.norm(n, axis=1), 1.0)

    def test_zero_rows_stay_zero(self):
        e = np.zeros((3, 4))
        assert np.all(normalize_embeddings(e) == 0)


class TestNearestNeighbors:
    def test_excludes_self(self, rng):
        e = rng.standard_normal((20, 6))
        q = np.arange(5)
        idx, sims = cosine_nearest_neighbors(e, q, k=3)
        assert idx.shape == (5, 3)
        for i, row in zip(q, idx):
            assert i not in row

    def test_finds_duplicates(self, rng):
        e = rng.standard_normal((10, 4))
        e[7] = e[2]  # exact duplicate
        idx, sims = cosine_nearest_neighbors(e, np.array([2]), k=1)
        assert idx[0, 0] == 7
        assert sims[0, 0] == pytest.approx(1.0)

    def test_sorted_by_similarity(self, rng):
        e = rng.standard_normal((30, 5))
        idx, sims = cosine_nearest_neighbors(e, np.array([0]), k=5)
        assert np.all(np.diff(sims[0]) <= 1e-12)

    def test_k_validation(self, rng):
        with pytest.raises(ValueError):
            cosine_nearest_neighbors(rng.standard_normal((5, 2)), np.array([0]), k=0)

    def test_k_clamped_to_available_neighbors(self, rng):
        # k >= n clamps to n-1 (self excluded) instead of erroring.
        e = rng.standard_normal((6, 3))
        idx, sims = cosine_nearest_neighbors(e, np.array([0, 3]), k=100)
        assert idx.shape == (2, 5)
        assert sims.shape == (2, 5)
        for i, row in zip((0, 3), idx):
            assert i not in row
            assert set(row) == set(range(6)) - {i}

    def test_zero_norm_rows_survive(self, rng):
        # Zero rows normalize to zero (similarity 0 to everything) and
        # must neither NaN out nor dominate the ranking.
        e = rng.standard_normal((12, 4))
        e[3] = 0.0
        e[8] = 0.0
        idx, sims = cosine_nearest_neighbors(e, np.arange(12), k=4)
        assert np.all(np.isfinite(sims))
        # A zero query is equidistant from everything: all sims zero.
        assert np.allclose(sims[3], 0.0)
        # For non-zero queries, zero rows never beat a positive match.
        best = sims[:, 0]
        assert np.all(best[np.arange(12) != 3] >= 0.0)

    def test_chunking_is_bit_identical(self, rng):
        # Regression for the memory-blowup fix: chunked scans must return
        # exactly the same indices AND similarities as the one-shot scan.
        e = rng.standard_normal((257, 9))
        q = np.arange(257)
        ref_idx, ref_sims = cosine_nearest_neighbors(e, q, k=7, chunk_size=None)
        for cs in (2, 16, 100, 256, 258):
            idx, sims = cosine_nearest_neighbors(e, q, k=7, chunk_size=cs)
            assert np.array_equal(ref_idx, idx), cs
            assert np.array_equal(ref_sims, sims), cs


class TestHomogeneity:
    def test_perfectly_clustered(self):
        # Two tight clusters with matching labels -> homogeneity 1.
        rng = np.random.default_rng(0)
        a = rng.standard_normal((20, 3)) * 0.01 + np.array([10.0, 0, 0])
        b = rng.standard_normal((20, 3)) * 0.01 + np.array([-10.0, 0, 0])
        emb = np.vstack([a, b])
        labels = np.array([0] * 20 + [1] * 20)
        assert label_homogeneity(emb, labels, k=5, sample=None) == 1.0

    def test_random_embeddings_near_base_rate(self):
        rng = np.random.default_rng(1)
        emb = rng.standard_normal((300, 8))
        labels = rng.integers(0, 3, size=300)
        h = label_homogeneity(emb, labels, k=10, sample=100, rng=rng)
        assert 0.15 <= h <= 0.55  # ~1/3 expected

    def test_multilabel_variant(self, rng):
        emb = rng.standard_normal((50, 6))
        labels = (rng.random((50, 8)) < 0.3).astype(np.float64)
        h = label_homogeneity(emb, labels, k=5, sample=None)
        assert 0.0 <= h <= 1.0

    def test_multilabel_jaccard_exact(self):
        # Two tight clusters; cluster A's label set {0,1} vs B's {2}.
        # Within a cluster Jaccard is 1.0 (>= 0.5 -> counted); labels
        # across clusters share nothing, so homogeneity is exactly 1.0
        # when neighbors stay in-cluster and 0.0 when they do not.
        rng = np.random.default_rng(0)
        a = rng.standard_normal((10, 3)) * 0.01 + np.array([5.0, 0, 0])
        b = rng.standard_normal((10, 3)) * 0.01 + np.array([-5.0, 0, 0])
        emb = np.vstack([a, b])
        labels = np.zeros((20, 3))
        labels[:10, [0, 1]] = 1.0
        labels[10:, 2] = 1.0
        assert label_homogeneity(emb, labels, k=3, sample=None) == 1.0
        # Interleave so every vertex's nearest neighbors have disjoint
        # label sets (Jaccard 0 < 0.5).
        flip = np.tile([0.0, 1.0], 10)
        labels_bad = np.zeros((20, 3))
        labels_bad[flip == 0, 0] = 1.0
        labels_bad[flip == 1, 2] = 1.0
        mixed = label_homogeneity(emb, labels_bad, k=3, sample=None)
        assert 0.0 <= mixed < 1.0

    def test_sampled_queries_deterministic(self):
        rng = np.random.default_rng(5)
        emb = rng.standard_normal((200, 6))
        labels = rng.integers(0, 4, size=200)
        h1 = label_homogeneity(
            emb, labels, k=5, sample=64, rng=np.random.default_rng(9)
        )
        h2 = label_homogeneity(
            emb, labels, k=5, sample=64, rng=np.random.default_rng(9)
        )
        assert h1 == h2
        # Default rng (None) is seeded, so repeated calls agree too.
        assert label_homogeneity(emb, labels, k=5, sample=64) == (
            label_homogeneity(emb, labels, k=5, sample=64)
        )


class TestReport:
    def test_trained_model_beats_shuffled(self, reddit_small):
        trainer = GraphSamplingTrainer(
            reddit_small,
            TrainConfig(
                hidden_dims=(32, 32), frontier_size=30, budget=190, lr=0.005,
                epochs=6, eval_every=6, seed=0,
            ),
        )
        trainer.train()
        report = embedding_report(trainer.model, reddit_small, k=10)
        assert report["lift"] > 1.5
        assert report["label_homogeneity@k"] > report["shuffled_base_rate"]

    def test_embedding_shape(self, reddit_small):
        model = GCN(reddit_small.attribute_dim, [8, 4], reddit_small.num_classes, seed=0)
        emb = compute_embeddings(model, reddit_small)
        assert emb.shape == (reddit_small.num_vertices, 8)  # concat doubles 4
