"""Tests for full-graph evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.loss import make_loss
from repro.nn.metrics import f1_micro
from repro.nn.network import GCN
from repro.propagation.spmm import MeanAggregator
from repro.train.evaluation import Evaluator


class TestEvaluator:
    def test_matches_manual_computation(self, reddit_small):
        ds = reddit_small
        model = GCN(ds.attribute_dim, [8], ds.num_classes, seed=0)
        ev = Evaluator(ds)
        res = ev.evaluate(model, "val")

        logits = model.forward(ds.features, MeanAggregator(ds.graph), train=False)
        loss = make_loss(ds.task)
        manual_f1 = f1_micro(
            ds.labels[ds.val_idx],
            loss.predict(logits[ds.val_idx]),
            ds.num_classes,
        )
        assert res.f1_micro == pytest.approx(manual_f1)

    def test_all_splits(self, reddit_small):
        model = GCN(reddit_small.attribute_dim, [8], reddit_small.num_classes, seed=0)
        ev = Evaluator(reddit_small)
        for split in ("train", "val", "test"):
            res = ev.evaluate(model, split)
            assert res.split == split
            assert np.isfinite(res.loss)

    def test_unknown_split(self, reddit_small):
        model = GCN(reddit_small.attribute_dim, [8], reddit_small.num_classes, seed=0)
        with pytest.raises(ValueError, match="unknown split"):
            Evaluator(reddit_small).evaluate(model, "dev")

    def test_multilabel_dataset(self, ppi_small):
        model = GCN(ppi_small.attribute_dim, [8], ppi_small.num_classes, seed=0)
        res = Evaluator(ppi_small).evaluate(model, "test")
        assert 0.0 <= res.f1_micro <= 1.0
        assert 0.0 <= res.f1_macro <= 1.0


class TestChunkedEvaluation:
    def test_matches_unchunked(self, reddit_small):
        from repro.nn.network import GCN

        model = GCN(
            reddit_small.attribute_dim, [8, 8], reddit_small.num_classes, seed=2
        )
        plain = Evaluator(reddit_small).evaluate(model, "val")
        chunked = Evaluator(reddit_small, feature_chunk=37).evaluate(model, "val")
        assert chunked.f1_micro == pytest.approx(plain.f1_micro)
        assert chunked.loss == pytest.approx(plain.loss)

    def test_chunk_of_one(self, ppi_small):
        from repro.nn.network import GCN

        model = GCN(ppi_small.attribute_dim, [4], ppi_small.num_classes, seed=0)
        plain = Evaluator(ppi_small).evaluate(model, "test")
        chunked = Evaluator(ppi_small, feature_chunk=1).evaluate(model, "test")
        assert chunked.loss == pytest.approx(plain.loss)

    def test_validation(self, ppi_small):
        with pytest.raises(ValueError, match="feature_chunk"):
            Evaluator(ppi_small, feature_chunk=0)
