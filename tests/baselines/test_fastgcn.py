"""Tests for the FastGCN baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.fastgcn import (
    FastGCNConfig,
    FastGCNTrainer,
    importance_distribution,
)
from repro.graphs.csr import edges_to_csr


class TestImportanceDistribution:
    def test_normalized(self, medium_graph):
        q = importance_distribution(medium_graph)
        assert q.shape == (medium_graph.num_vertices,)
        assert q.sum() == pytest.approx(1.0)
        assert np.all(q >= 0)

    def test_matches_manual_computation(self, star_graph):
        q = importance_distribution(star_graph)
        # Center: neighbors are 5 leaves each with degree 1 -> sum 5*1 = 5.
        # Leaf: single neighbor (center, degree 5) -> (1/5)^2 = 0.04.
        raw = np.array([5.0] + [0.04] * 5)
        assert np.allclose(q, raw / raw.sum())

    def test_edgeless_rejected(self):
        g = edges_to_csr(np.empty((0, 2)), 3)
        with pytest.raises(ValueError, match="no edges"):
            importance_distribution(g)


class TestConfig:
    def test_arity(self):
        with pytest.raises(ValueError, match="one layer size"):
            FastGCNConfig(hidden_dims=(8, 8), layer_sizes=(100,))


class TestTrainer:
    def test_learns_reddit(self, reddit_small):
        cfg = FastGCNConfig(
            hidden_dims=(32, 32),
            layer_sizes=(200, 200),
            batch_size=128,
            epochs=4,
            lr=0.01,
        )
        trainer = FastGCNTrainer(reddit_small, cfg)
        result = trainer.train()
        assert result.final_val_f1 > 0.4

    def test_preprocessing_charged(self, reddit_small):
        cfg = FastGCNConfig(hidden_dims=(16,), layer_sizes=(100,), epochs=1)
        trainer = FastGCNTrainer(reddit_small, cfg)
        assert trainer.preprocessing_seconds > 0
        result = trainer.train()
        assert result.epochs[0].wall_seconds_total >= trainer.preprocessing_seconds

    def test_preprocessing_observed(self, reddit_small):
        """With obs on, preprocessing shows up as a span + histogram."""
        from repro import obs
        from repro.obs import metrics as obs_metrics
        from repro.obs.trace import walk

        cfg = FastGCNConfig(hidden_dims=(16,), layer_sizes=(100,), epochs=1)
        obs.reset()
        try:
            with obs.enabled():
                trainer = FastGCNTrainer(reddit_small, cfg)
            spans = [
                sp
                for root in obs.get_tracer().roots
                for sp in walk(root)
                if sp.name == "fastgcn.preprocess"
            ]
            assert len(spans) == 1
            assert spans[0].attrs["vertices"] == trainer.train_graph.num_vertices
            hist = obs_metrics.get_registry().histograms["fastgcn.preprocess_seconds"]
            assert hist.samples == (trainer.preprocessing_seconds,)
        finally:
            obs.reset()

    def test_preprocessing_not_observed_when_disabled(self, reddit_small):
        from repro import obs
        from repro.obs import metrics as obs_metrics

        cfg = FastGCNConfig(hidden_dims=(16,), layer_sizes=(100,), epochs=1)
        obs.reset()
        FastGCNTrainer(reddit_small, cfg)
        assert "fastgcn.preprocess_seconds" not in (
            obs_metrics.get_registry().histograms
        )

    def test_starvation_recorded(self, reddit_small):
        """Small layer samples leave some destinations with no sampled
        in-neighbors — the sparse-connection failure mode."""
        cfg = FastGCNConfig(
            hidden_dims=(16,), layer_sizes=(20,), batch_size=64, epochs=1
        )
        trainer = FastGCNTrainer(reddit_small, cfg)
        trainer.train()
        assert trainer.starvation  # recorded
        assert max(trainer.starvation) >= 0.0

    def test_smaller_layer_size_starves_more(self, reddit_small):
        def mean_starvation(t):
            cfg = FastGCNConfig(
                hidden_dims=(16,), layer_sizes=(t,), batch_size=64, epochs=1, seed=3
            )
            trainer = FastGCNTrainer(reddit_small, cfg)
            trainer.train()
            return float(np.mean(trainer.starvation))

        assert mean_starvation(10) >= mean_starvation(400)
