"""Gradient-checked tests for bipartite baseline layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.blocks import SampledBlock
from repro.baselines.sage_layers import BipartiteGCNLayer, ConvOnlyLayer
from repro.nn.gradcheck import check_gradients, max_relative_error, numerical_gradient


@pytest.fixture
def block(rng):
    """Dense-ish random bipartite block: 12 dst over 20 src, fanout 3."""
    num_src, num_dst, fanout = 20, 12, 3
    nbr = rng.integers(0, num_src, size=num_dst * fanout)
    return SampledBlock(
        num_src=num_src,
        num_dst=num_dst,
        indptr=np.arange(0, num_dst * fanout + 1, fanout, dtype=np.int64),
        neighbor_pos=nbr.astype(np.int64),
        self_pos=rng.choice(num_src, size=num_dst, replace=False).astype(np.int64),
    )


class TestBipartiteGCNLayer:
    def test_output_shape(self, block, rng):
        layer = BipartiteGCNLayer(6, 4, rng=rng)
        h = rng.standard_normal((20, 6))
        assert layer.forward(h, block).shape == (12, 8)

    def test_gradients_identity_activation(self, block, rng):
        layer = BipartiteGCNLayer(6, 3, activation="identity", rng=rng)
        h = rng.standard_normal((20, 6))
        target = rng.standard_normal((12, 6))

        def loss():
            return float(0.5 * np.sum(layer.forward(h, block, train=False) ** 2))

        layer.zero_grad()
        out = layer.forward(h, block, train=True)
        dh = layer.backward(out)
        check_gradients(loss, layer.params, layer.grads, sample=8, tol=1e-4)
        idx, numeric = numerical_gradient(loss, h, sample=10, rng=rng)
        assert max_relative_error(dh.reshape(-1)[idx], numeric) < 1e-4

    def test_sum_variant(self, block, rng):
        layer = BipartiteGCNLayer(6, 4, concat=False, rng=rng)
        h = rng.standard_normal((20, 6))
        assert layer.forward(h, block).shape == (12, 4)

    def test_backward_without_forward(self, rng):
        layer = BipartiteGCNLayer(3, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((5, 4)))

    def test_invalid_activation(self, rng):
        with pytest.raises(ValueError):
            BipartiteGCNLayer(3, 2, activation="gelu", rng=rng)


class TestConvOnlyLayer:
    def test_output_shape(self, block, rng):
        layer = ConvOnlyLayer(6, 4, rng=rng)
        h = rng.standard_normal((20, 6))
        assert layer.forward(h, block).shape == (12, 4)

    def test_gradients_identity_activation(self, block, rng):
        layer = ConvOnlyLayer(6, 3, activation="identity", rng=rng)
        h = rng.standard_normal((20, 6))

        def loss():
            return float(0.5 * np.sum(layer.forward(h, block, train=False) ** 2))

        layer.zero_grad()
        out = layer.forward(h, block, train=True)
        dh = layer.backward(out)
        check_gradients(loss, layer.params, layer.grads, sample=8, tol=1e-4)
        idx, numeric = numerical_gradient(loss, h, sample=10, rng=rng)
        assert max_relative_error(dh.reshape(-1)[idx], numeric) < 1e-4

    def test_zero_grad(self, block, rng):
        layer = ConvOnlyLayer(6, 3, rng=rng)
        h = rng.standard_normal((20, 6))
        out = layer.forward(h, block)
        layer.backward(np.ones_like(out))
        layer.zero_grad()
        assert np.all(layer.grads["W"] == 0)
