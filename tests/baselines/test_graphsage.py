"""Tests for the GraphSAGE baseline: support sampling + training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.graphsage import (
    GraphSAGEModel,
    GraphSAGETrainer,
    SageConfig,
    full_block,
    sample_supports,
)


class TestSupportSampling:
    def test_supports_grow_with_depth(self, medium_graph, rng):
        batch = rng.choice(medium_graph.num_vertices, size=32, replace=False)
        supports, blocks = sample_supports(medium_graph, batch, (10, 10), rng)
        assert len(supports) == 3
        assert len(blocks) == 2
        sizes = [s.shape[0] for s in supports]
        # Deeper supports are strictly larger (neighbor explosion).
        assert sizes[0] >= sizes[1] >= sizes[2] == 32

    def test_supports_are_closed(self, medium_graph, rng):
        """Each dst support is contained in its src support."""
        batch = rng.choice(medium_graph.num_vertices, size=16, replace=False)
        supports, _ = sample_supports(medium_graph, batch, (5, 5), rng)
        for l in range(len(supports) - 1):
            assert np.all(np.isin(supports[l + 1], supports[l]))

    def test_block_edges_are_real_edges(self, medium_graph, rng):
        batch = rng.choice(medium_graph.num_vertices, size=8, replace=False)
        supports, blocks = sample_supports(medium_graph, batch, (4,), rng)
        block = blocks[0]
        src, dst = supports[0], supports[1]
        for i in range(block.num_dst):
            for pos in block.neighbor_pos[block.indptr[i] : block.indptr[i + 1]]:
                assert medium_graph.has_edge(int(dst[i]), int(src[pos]))

    def test_fixed_fanout(self, medium_graph, rng):
        batch = rng.choice(medium_graph.num_vertices, size=8, replace=False)
        _, blocks = sample_supports(medium_graph, batch, (7,), rng)
        assert np.all(blocks[0].degrees == 7)

    def test_neighbor_explosion_measured(self, medium_graph, rng):
        """Support size grows multiplicatively until graph saturation."""
        batch = rng.choice(medium_graph.num_vertices, size=4, replace=False)
        s1, _ = sample_supports(medium_graph, batch, (10,), rng)
        s2, _ = sample_supports(medium_graph, batch, (10, 10), rng)
        assert s2[0].shape[0] > s1[0].shape[0]


class TestFullBlock:
    def test_matches_graph(self, clique_ring):
        block = full_block(clique_ring)
        assert block.num_src == block.num_dst == clique_ring.num_vertices
        assert block.num_edges == clique_ring.num_edges_directed

    def test_aggregate_equals_mean_aggregator(self, medium_graph, rng):
        from repro.propagation.spmm import MeanAggregator

        block = full_block(medium_graph)
        h = rng.standard_normal((medium_graph.num_vertices, 6))
        assert np.allclose(
            block.aggregate(h), MeanAggregator(medium_graph).forward(h)
        )


class TestModel:
    def test_forward_shape(self, medium_graph, rng):
        batch = rng.choice(medium_graph.num_vertices, size=16, replace=False)
        supports, blocks = sample_supports(medium_graph, batch, (5, 5), rng)
        model = GraphSAGEModel(8, (4, 4), 3, seed=0)
        h = rng.standard_normal((supports[0].shape[0], 8))
        logits = model.forward(h, blocks)
        assert logits.shape == (16, 3)

    def test_block_count_mismatch(self, medium_graph, rng):
        model = GraphSAGEModel(8, (4, 4), 3, seed=0)
        with pytest.raises(ValueError, match="one block per layer"):
            model.forward(rng.standard_normal((5, 8)), [])


class TestConfig:
    def test_fanout_arity(self):
        with pytest.raises(ValueError, match="one fanout per layer"):
            SageConfig(hidden_dims=(8, 8), fanouts=(5,))

    def test_positive(self):
        with pytest.raises(ValueError):
            SageConfig(hidden_dims=(8,), fanouts=(0,))


class TestTrainer:
    def test_learns_reddit(self, reddit_small):
        cfg = SageConfig(
            hidden_dims=(32, 32), fanouts=(5, 5), batch_size=128, epochs=3, lr=0.01
        )
        trainer = GraphSAGETrainer(reddit_small, cfg)
        result = trainer.train()
        assert result.final_val_f1 > 0.5
        assert result.iterations == 3 * (
            -(-trainer.train_graph.num_vertices // 128)
        )

    def test_loss_decreases(self, reddit_small):
        cfg = SageConfig(
            hidden_dims=(16,), fanouts=(5,), batch_size=256, epochs=3, lr=0.01
        )
        result = GraphSAGETrainer(reddit_small, cfg).train()
        assert result.epochs[-1].train_loss < result.epochs[0].train_loss

    def test_support_stats_recorded(self, reddit_small):
        cfg = SageConfig(
            hidden_dims=(16, 16), fanouts=(5, 5), batch_size=128, epochs=1
        )
        trainer = GraphSAGETrainer(reddit_small, cfg)
        trainer.train()
        assert trainer.support_stats.mean_input_support() > 128
        assert trainer.support_stats.mean_total_nodes() > 0

    def test_evaluate_splits(self, reddit_small):
        cfg = SageConfig(hidden_dims=(16,), fanouts=(5,), epochs=1)
        trainer = GraphSAGETrainer(reddit_small, cfg)
        for split in ("train", "val", "test"):
            res = trainer.evaluate(split)
            assert 0.0 <= res.f1_micro <= 1.0
