"""Tests for the Batched GCN baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.batched_gcn import BatchedGCNConfig, BatchedGCNTrainer


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchedGCNConfig(batch_size=0)


class TestTrainer:
    def test_learns_reddit(self, reddit_small):
        cfg = BatchedGCNConfig(
            hidden_dims=(32, 32), batch_size=128, epochs=4, lr=0.01
        )
        result = BatchedGCNTrainer(reddit_small, cfg).train()
        assert result.final_val_f1 > 0.5

    def test_gradient_masked_to_batch(self, reddit_small):
        """Only the batch rows contribute loss gradient: a single-vertex
        batch changes the model less than a full-graph batch."""
        cfg = BatchedGCNConfig(hidden_dims=(16,), batch_size=8, epochs=1, lr=0.01)
        trainer = BatchedGCNTrainer(reddit_small, cfg)
        before = trainer.model.state_dict()
        trainer.train_iteration(np.array([0]))
        small_delta = sum(
            np.abs(trainer.model.state_dict()[k] - v).sum() for k, v in before.items()
        )
        trainer.model.load_state_dict(before)
        trainer.optimizer.reset()
        trainer.train_iteration(np.arange(trainer.train_graph.num_vertices))
        big_delta = sum(
            np.abs(trainer.model.state_dict()[k] - v).sum() for k, v in before.items()
        )
        assert big_delta > 0 and small_delta > 0

    def test_epoch_iterations(self, reddit_small):
        cfg = BatchedGCNConfig(hidden_dims=(16,), batch_size=200, epochs=2)
        trainer = BatchedGCNTrainer(reddit_small, cfg)
        result = trainer.train()
        per_epoch = -(-trainer.train_graph.num_vertices // 200)
        assert result.iterations == 2 * per_epoch

    def test_loss_decreases(self, reddit_small):
        cfg = BatchedGCNConfig(hidden_dims=(16,), batch_size=256, epochs=3, lr=0.01)
        result = BatchedGCNTrainer(reddit_small, cfg).train()
        assert result.epochs[-1].train_loss < result.epochs[0].train_loss
