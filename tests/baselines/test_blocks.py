"""Tests for bipartite sampled blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.blocks import SampledBlock, positions_in


def make_block(**overrides):
    """3 dst rows over 4 src rows; dst0 <- {0,1}, dst1 <- {2}, dst2 <- {}."""
    kwargs = dict(
        num_src=4,
        num_dst=3,
        indptr=np.array([0, 2, 3, 3], dtype=np.int64),
        neighbor_pos=np.array([0, 1, 2], dtype=np.int64),
        self_pos=np.array([0, 2, 3], dtype=np.int64),
    )
    kwargs.update(overrides)
    return SampledBlock(**kwargs)


class TestPositionsIn:
    def test_basic(self):
        universe = np.array([2, 5, 9])
        assert np.array_equal(positions_in(universe, np.array([9, 2])), [2, 0])

    def test_missing_item_raises(self):
        with pytest.raises(ValueError, match="not contained"):
            positions_in(np.array([1, 3]), np.array([2]))


class TestValidation:
    def test_bad_indptr_len(self):
        with pytest.raises(ValueError):
            make_block(indptr=np.array([0, 2, 3], dtype=np.int64))

    def test_bad_neighbor_range(self):
        with pytest.raises(ValueError):
            make_block(neighbor_pos=np.array([0, 1, 9], dtype=np.int64))

    def test_bad_weight_shape(self):
        with pytest.raises(ValueError):
            make_block(edge_weight=np.array([1.0]))


class TestAggregate:
    def test_mean(self, rng):
        block = make_block()
        h = rng.standard_normal((4, 5))
        out = block.aggregate(h)
        assert np.allclose(out[0], (h[0] + h[1]) / 2)
        assert np.allclose(out[1], h[2])
        assert np.all(out[2] == 0)  # empty neighborhood -> zeros

    def test_weighted_sum(self, rng):
        w = np.array([2.0, 3.0, 0.5])
        block = make_block(edge_weight=w, mean_normalize=False)
        h = rng.standard_normal((4, 2))
        out = block.aggregate(h)
        assert np.allclose(out[0], 2 * h[0] + 3 * h[1])
        assert np.allclose(out[1], 0.5 * h[2])

    def test_adjoint_identity(self, rng):
        """<B x, y> == <x, B^T y> for mean and weighted-sum variants."""
        for block in (
            make_block(),
            make_block(
                edge_weight=np.array([0.3, 1.7, 2.0]), mean_normalize=False
            ),
        ):
            x = rng.standard_normal((4, 3))
            y = rng.standard_normal((3, 3))
            lhs = float(np.sum(block.aggregate(x) * y))
            rhs = float(np.sum(x * block.aggregate_backward(y)))
            assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_shape_validation(self, rng):
        block = make_block()
        with pytest.raises(ValueError):
            block.aggregate(rng.standard_normal((2, 3)))
        with pytest.raises(ValueError):
            block.aggregate_backward(rng.standard_normal((2, 3)))


class TestGatherSelf:
    def test_gather(self, rng):
        block = make_block()
        h = rng.standard_normal((4, 3))
        out = block.gather_self(h)
        assert np.allclose(out[0], h[0])
        assert np.allclose(out[1], h[2])
        assert np.allclose(out[2], h[3])

    def test_absent_self(self, rng):
        block = make_block(self_pos=np.array([0, -1, 3], dtype=np.int64))
        h = rng.standard_normal((4, 3))
        out = block.gather_self(h)
        assert np.all(out[1] == 0)

    def test_adjoint_identity(self, rng):
        block = make_block()
        x = rng.standard_normal((4, 2))
        y = rng.standard_normal((3, 2))
        lhs = float(np.sum(block.gather_self(x) * y))
        rhs = float(np.sum(x * block.gather_self_backward(y)))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_duplicate_self_positions_accumulate(self, rng):
        block = make_block(self_pos=np.array([1, 1, 1], dtype=np.int64))
        y = np.ones((3, 2))
        g = block.gather_self_backward(y)
        assert np.allclose(g[1], 3.0)
