"""Property-based tests for the Dashboard data structure.

Random sequences of add/pop/cleanup operations must preserve the core
invariants: alive-entry accounting, contiguous per-vertex blocks, IA/DB
consistency, and pop always returning a currently-alive vertex.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.dashboard import INV, Dashboard


def check_invariants(db: Dashboard, alive_expected: dict[int, int]) -> None:
    # Alive entry count matches the sum of alive vertices' allocations.
    assert db.alive_entries == sum(alive_expected.values())
    assert 0 <= db.used <= db.capacity
    # Every alive IA entry points at a well-formed contiguous block.
    ks = np.flatnonzero(db.ia_alive[: db.num_added])
    seen = {}
    for k in ks:
        start = int(db.ia_start[k])
        deg = -int(db.db_offset[start])
        assert deg >= 1
        v = int(db.db_vertex[start])
        assert v != INV
        block = db.db_vertex[start : start + deg]
        assert np.all(block == v)
        offs = db.db_offset[start + 1 : start + deg]
        assert np.array_equal(offs, np.arange(1, deg))
        seen[v] = seen.get(v, 0) + deg
    assert seen == alive_expected


@st.composite
def op_sequences(draw):
    return draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("add"), st.integers(1, 12)),
                st.tuples(st.just("pop"), st.just(0)),
                st.tuples(st.just("cleanup"), st.just(0)),
            ),
            min_size=1,
            max_size=40,
        )
    )


class TestDashboardInvariants:
    @given(op_sequences(), st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_random_op_sequences(self, ops, seed):
        rng = np.random.default_rng(seed)
        db = Dashboard(400)
        alive: dict[int, int] = {}
        next_vertex = 0
        for op, arg in ops:
            if op == "add":
                # The sampler never re-adds a vertex that is currently in
                # the frontier; fresh ids model that.
                if arg > db.free_entries():
                    db.cleanup()
                if arg > db.free_entries():
                    db.grow(max(2 * db.capacity, db.used + arg))
                db.add(next_vertex, arg)
                alive[next_vertex] = arg
                next_vertex += 1
            elif op == "pop":
                if db.alive_entries == 0:
                    continue
                v = db.pop(rng)
                assert v in alive
                del alive[v]
            else:
                db.cleanup()
                assert db.used == db.alive_entries
            check_invariants(db, alive)

    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_pop_all_returns_each_vertex_once(self, seed):
        rng = np.random.default_rng(seed)
        db = Dashboard(300)
        for v in range(10):
            db.add(v, 1 + v % 5)
        popped = [db.pop(rng) for _ in range(10)]
        assert sorted(popped) == list(range(10))
        assert db.alive_entries == 0
