"""Property-based tests for the CSR graph engine (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.csr import edges_to_csr, induced_subgraph


@st.composite
def edge_lists(draw, max_n=30, max_m=80):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    return n, np.array(edges, dtype=np.int64).reshape(-1, 2)


class TestCSRProperties:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_symmetrized_graph_is_symmetric(self, case):
        n, edges = case
        g = edges_to_csr(edges, n, symmetrize=True, dedup=True)
        assert g.is_symmetric()

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_degree_sum_equals_directed_edges(self, case):
        n, edges = case
        g = edges_to_csr(edges, n)
        assert int(g.degrees.sum()) == g.num_edges_directed

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_neighbor_lists_sorted_unique(self, case):
        n, edges = case
        g = edges_to_csr(edges, n, dedup=True)
        for v in range(n):
            nbrs = g.neighbors(v)
            if nbrs.size > 1:
                assert np.all(np.diff(nbrs) > 0)

    @given(edge_lists(), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_induced_subgraph_edge_subset(self, case, pyrandom):
        n, edges = case
        g = edges_to_csr(edges, n)
        k = pyrandom.randint(0, n)
        keep = np.array(sorted(pyrandom.sample(range(n), k)), dtype=np.int64)
        sub, vmap = induced_subgraph(g, keep)
        assert np.array_equal(vmap, keep)
        # Every subgraph edge exists in the parent with mapped endpoints.
        src = sub.edge_sources()
        for u, v in zip(src, sub.indices):
            assert g.has_edge(int(vmap[u]), int(vmap[v]))
        # Edge count matches a brute-force filter of the parent edges.
        in_keep = np.zeros(n, dtype=bool)
        in_keep[keep] = True
        parent_src = g.edge_sources()
        expected = int(np.sum(in_keep[parent_src] & in_keep[g.indices]))
        assert sub.num_edges_directed == expected

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_self_loop_augmentation_count(self, case):
        n, edges = case
        g = edges_to_csr(edges, n, drop_self_loops=True)
        g2 = g.with_self_loops()
        assert g2.num_edges_directed == g.num_edges_directed + n
        for v in range(n):
            assert g2.has_edge(v, v)
