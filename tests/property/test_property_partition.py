"""Property-based tests for the partitioning model (Theorem 2)."""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.propagation.partition_model import (
    brute_force_optimum,
    g_comm,
    gcomm_lower_bound,
    theorem2_conditions_hold,
    theorem2_plan,
)


class TestTheorem2Properties:
    @given(
        n=st.integers(200, 10_000),
        d=st.floats(2.0, 40.0),
        f=st.integers(64, 2048),
        cores=st.integers(1, 64),
    )
    @settings(max_examples=80, deadline=None)
    def test_two_approximation_whenever_conditions_hold(self, n, d, f, cores):
        cache = 256 * 1024
        assume(theorem2_conditions_hold(n=n, d=d, f=f, cores=cores, cache_bytes=cache))
        ours = theorem2_plan(n=n, d=d, f=f, cores=cores, cache_bytes=cache)
        assert ours.feasible
        # Theorem 2's proof bounds ours against the universal lower bound
        # 8nf, which in turn lower-bounds any partitioner's g_comm.
        assert ours.comm_bytes <= 2.0 * gcomm_lower_bound(n, f) + 1e-6
        ideal = brute_force_optimum(n=n, d=d, f=f, cores=cores, cache_bytes=cache)
        assert ours.comm_bytes <= 2.0 * ideal.comm_bytes + 1e-6

    @given(
        n=st.integers(100, 5000),
        d=st.floats(2.0, 40.0),
        f=st.integers(16, 1024),
        p=st.integers(1, 32),
        q=st.integers(1, 256),
        gamma=st.floats(0.01, 1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_gcomm_above_lower_bound(self, n, d, f, p, q, gamma):
        assume(gamma >= 1.0 / p)  # gamma_P >= 1/P for any partitioner
        assert g_comm(n, d, f, p, q, gamma) >= gcomm_lower_bound(n, f) - 1e-9

    @given(
        n=st.integers(200, 8000),
        f=st.integers(64, 1024),
        cores=st.integers(1, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_plan_always_cache_feasible(self, n, f, cores):
        cache = 256 * 1024
        plan = theorem2_plan(n=n, d=10.0, f=f, cores=cores, cache_bytes=cache)
        assert plan.cache_bytes_per_round <= cache + 1e-9
        assert plan.q >= cores
