"""Property-based tests for samplers over random graphs."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import DCSBMParams, dcsbm_graph, ensure_min_degree
from repro.sampling.dashboard import DashboardFrontierSampler
from repro.sampling.frontier import FrontierSampler


@st.composite
def graphs_and_budgets(draw):
    n = draw(st.integers(60, 250))
    avg_deg = draw(st.floats(2.0, 12.0))
    seed = draw(st.integers(0, 10**6))
    params = DCSBMParams(
        num_vertices=n,
        num_blocks=draw(st.integers(1, 5)),
        avg_degree=avg_deg,
        mixing=draw(st.floats(0.0, 1.0)),
    )
    graph, _ = dcsbm_graph(params, rng=np.random.default_rng(seed))
    graph = ensure_min_degree(graph, 1, rng=np.random.default_rng(seed + 1))
    m = draw(st.integers(2, max(n // 5, 3)))
    budget = draw(st.integers(m, max(n // 2, m)))
    return graph, m, budget, seed


class TestSamplerProperties:
    @given(graphs_and_budgets())
    @settings(max_examples=30, deadline=None)
    def test_frontier_budget_and_induction(self, case):
        graph, m, budget, seed = case
        sampler = FrontierSampler(graph, frontier_size=m, budget=budget)
        sub = sampler.sample(np.random.default_rng(seed))
        assert m <= sub.num_vertices or budget == m
        assert sub.num_vertices <= budget
        assert np.all(np.diff(sub.vertex_map) > 0)
        assert sub.graph.is_symmetric()

    @given(graphs_and_budgets())
    @settings(max_examples=30, deadline=None)
    def test_dashboard_budget_and_induction(self, case):
        graph, m, budget, seed = case
        sampler = DashboardFrontierSampler(
            graph, frontier_size=m, budget=budget, eta=2.0
        )
        sub = sampler.sample(np.random.default_rng(seed))
        assert sub.num_vertices <= budget
        assert sub.graph.is_symmetric()
        assert sub.stats["pops"] == budget - m

    @given(graphs_and_budgets(), st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_dashboard_with_degree_cap_never_crashes(self, case, cap):
        graph, m, budget, seed = case
        sampler = DashboardFrontierSampler(
            graph,
            frontier_size=m,
            budget=budget,
            eta=1.5,
            max_entries_per_vertex=cap,
        )
        sub = sampler.sample(np.random.default_rng(seed))
        assert sub.num_vertices <= budget
