"""Property-based tests for NN kernels: bounds, normalization, stability."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.activations import relu, sigmoid, softmax
from repro.nn.loss import SigmoidCrossEntropy, SoftmaxCrossEntropy
from repro.nn.metrics import f1_macro, f1_micro

finite_matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 8), st.integers(1, 8)),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


class TestActivationProperties:
    @given(finite_matrices)
    @settings(max_examples=50, deadline=None)
    def test_relu_idempotent_nonnegative(self, x):
        out = relu(x)
        assert np.all(out >= 0)
        assert np.array_equal(relu(out), out)

    @given(finite_matrices)
    @settings(max_examples=50, deadline=None)
    def test_sigmoid_in_unit_interval(self, x):
        out = sigmoid(x)
        assert np.all(out >= 0) and np.all(out <= 1)
        assert np.all(np.isfinite(out))

    @given(finite_matrices)
    @settings(max_examples=50, deadline=None)
    def test_softmax_is_distribution(self, x):
        p = softmax(x, axis=1)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.all(p >= 0)


class TestLossProperties:
    @given(finite_matrices, st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_softmax_ce_nonnegative(self, logits, seed):
        rng = np.random.default_rng(seed)
        targets = rng.integers(0, logits.shape[1], size=logits.shape[0])
        loss = SoftmaxCrossEntropy()
        assert loss.forward(logits, targets) >= -1e-12

    @given(finite_matrices, st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_sigmoid_ce_nonnegative(self, logits, seed):
        rng = np.random.default_rng(seed)
        targets = (rng.random(logits.shape) < 0.5).astype(np.float64)
        loss = SigmoidCrossEntropy()
        assert loss.forward(logits, targets) >= -1e-12

    @given(finite_matrices, st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_softmax_ce_gradient_rows_sum_zero(self, logits, seed):
        rng = np.random.default_rng(seed)
        targets = rng.integers(0, logits.shape[1], size=logits.shape[0])
        g = SoftmaxCrossEntropy().backward(logits, targets)
        assert np.allclose(g.sum(axis=1), 0.0, atol=1e-10)


class TestMetricProperties:
    @given(
        st.integers(1, 50),
        st.integers(2, 10),
        st.integers(0, 10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_f1_bounds_and_perfect(self, n, c, seed):
        rng = np.random.default_rng(seed)
        y_true = rng.integers(0, c, size=n)
        y_pred = rng.integers(0, c, size=n)
        for metric in (f1_micro, f1_macro):
            v = metric(y_true, y_pred, c)
            assert 0.0 <= v <= 1.0
            assert metric(y_true, y_true, c) == 1.0

    @given(st.integers(1, 30), st.integers(2, 8), st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_f1_multilabel_bounds(self, n, c, seed):
        rng = np.random.default_rng(seed)
        y_true = (rng.random((n, c)) < 0.4).astype(np.float64)
        y_pred = (rng.random((n, c)) < 0.4).astype(np.float64)
        assert 0.0 <= f1_micro(y_true, y_pred) <= 1.0
        if y_true.sum() > 0:
            assert f1_micro(y_true, y_true) == 1.0
