"""Additional property-based tests: alias tables, partitioners, spmm."""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.graphs.generators import DCSBMParams, dcsbm_graph
from repro.graphs.partition import (
    bfs_partition,
    greedy_edge_partition,
    random_partition,
)
from repro.propagation.spmm import MeanAggregator
from repro.sampling.alias import AliasTable


@st.composite
def small_graphs(draw):
    n = draw(st.integers(20, 120))
    seed = draw(st.integers(0, 10**6))
    params = DCSBMParams(
        num_vertices=n,
        num_blocks=draw(st.integers(1, 4)),
        avg_degree=draw(st.floats(2.0, 10.0)),
    )
    graph, _ = dcsbm_graph(params, rng=np.random.default_rng(seed))
    return graph, seed


class TestAliasProperties:
    @given(
        st.lists(st.floats(0.01, 100.0), min_size=1, max_size=40),
        st.integers(0, 10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_empirical_matches_target(self, weights, seed):
        """Alias sampling converges to the target distribution: total
        variation distance shrinks to sampling noise."""
        w = np.asarray(weights)
        table = AliasTable(w)
        rng = np.random.default_rng(seed)
        draws = table.sample(rng, size=20_000)
        freq = np.bincount(draws, minlength=w.size) / 20_000
        target = w / w.sum()
        tv = 0.5 * np.abs(freq - target).sum()
        assert tv < 0.05

    @given(
        st.lists(st.floats(0.0, 10.0), min_size=2, max_size=20),
        st.integers(0, 10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_support_respected(self, weights, seed):
        w = np.asarray(weights)
        assume(w.sum() > 0)
        table = AliasTable(w)
        draws = table.sample(np.random.default_rng(seed), size=5000)
        zero = np.flatnonzero(w == 0)
        assert not np.any(np.isin(draws, zero))


class TestPartitionerProperties:
    @given(small_graphs(), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_all_partitioners_cover_and_balance(self, case, parts):
        graph, seed = case
        assume(parts <= graph.num_vertices)
        rng = np.random.default_rng(seed)
        for fn in (random_partition, bfs_partition, greedy_edge_partition):
            a = fn(graph, parts, rng=rng)
            assert a.shape[0] == graph.num_vertices
            assert a.min() >= 0 and a.max() < parts
            counts = np.bincount(a, minlength=parts)
            # Near-balance: no partition more than 60% above the mean
            # (greedy's slack default is 1.1; BFS slices are exact).
            assert counts.max() <= 1.6 * graph.num_vertices / parts + 1


class TestSpmmProperties:
    @given(small_graphs(), st.integers(1, 6), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_linearity(self, case, f, seed):
        """Aggregation is linear: M(a x + b y) == a Mx + b My."""
        graph, _ = case
        rng = np.random.default_rng(seed)
        agg = MeanAggregator(graph)
        x = rng.standard_normal((graph.num_vertices, f))
        y = rng.standard_normal((graph.num_vertices, f))
        a, b = rng.standard_normal(2)
        lhs = agg.forward(a * x + b * y)
        rhs = a * agg.forward(x) + b * agg.forward(y)
        assert np.allclose(lhs, rhs, atol=1e-9)

    @given(small_graphs(), st.integers(1, 6), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_row_stochastic_bound(self, case, f, seed):
        """Mean aggregation never exceeds the max feature value."""
        graph, _ = case
        rng = np.random.default_rng(seed)
        agg = MeanAggregator(graph)
        x = rng.random((graph.num_vertices, f))
        out = agg.forward(x)
        assert out.max(initial=0.0) <= x.max() + 1e-12
        assert out.min(initial=0.0) >= 0.0 - 1e-12
