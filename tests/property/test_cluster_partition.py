"""Property tests for the cluster's shard partition and exact fan-out.

Two invariants the sharded serving layer stands on:

1. ``partition_vertices`` is a *true partition* — every vertex lands in
   exactly one shard, no vertex is dropped or duplicated;
2. fanning out to every shard reproduces the unsharded
   :class:`BruteForceIndex` top-k **bit-identically** (ids and
   similarity scores) — sharding is a pure layout change, all
   approximation comes from reducing the fan-out, never from the
   merge.

Embeddings are seeded Gaussians (continuous, so similarity ties have
probability zero and the top-k selection is unambiguous).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.cluster import ShardedIndex, partition_vertices
from repro.serving.index import BruteForceIndex


@st.composite
def _cluster_cases(draw):
    n = draw(st.integers(20, 300))
    d = draw(st.integers(2, 24))
    num_shards = draw(st.integers(1, 6))
    seed = draw(st.integers(0, 2**31 - 1))
    k = draw(st.integers(1, 15))
    rng = np.random.default_rng(seed)
    emb = rng.standard_normal((n, d))
    return emb, num_shards, seed, k


class TestPartitionIsTruePartition:
    @given(case=_cluster_cases())
    @settings(max_examples=40, deadline=None)
    def test_every_vertex_in_exactly_one_shard(self, case):
        emb, num_shards, seed, _ = case
        assignment = partition_vertices(
            emb, num_shards=num_shards, rng=np.random.default_rng(seed)
        )
        n = emb.shape[0]
        assert assignment.shape == (n,)
        assert assignment.dtype == np.int64
        assert assignment.min() >= 0
        assert assignment.max() < num_shards
        # Shard membership lists cover [0, n) exactly once.
        sharded = ShardedIndex(emb, assignment)
        members = np.concatenate(
            [sharded.router.members(s) for s in range(sharded.num_shards)]
        )
        assert np.array_equal(np.sort(members), np.arange(n))
        counts = np.bincount(assignment, minlength=num_shards)
        assert counts.sum() == n

    @given(case=_cluster_cases())
    @settings(max_examples=25, deadline=None)
    def test_partition_is_deterministic(self, case):
        emb, num_shards, seed, _ = case
        a = partition_vertices(
            emb, num_shards=num_shards, rng=np.random.default_rng(seed)
        )
        b = partition_vertices(
            emb, num_shards=num_shards, rng=np.random.default_rng(seed)
        )
        assert np.array_equal(a, b)


class TestFullFanoutIsExact:
    @given(case=_cluster_cases())
    @settings(max_examples=40, deadline=None)
    def test_bit_identical_to_brute_force(self, case):
        emb, num_shards, seed, k = case
        assignment = partition_vertices(
            emb, num_shards=num_shards, rng=np.random.default_rng(seed)
        )
        sharded = ShardedIndex(emb, assignment)
        reference = BruteForceIndex(emb)
        qids = np.arange(0, emb.shape[0], 3)
        got_ids, got_sims = sharded.search_ids(
            qids, k, fanout=sharded.num_shards
        )
        want_ids, want_sims = reference.search_ids(qids, k)
        assert got_ids.dtype == want_ids.dtype
        assert np.array_equal(got_ids, want_ids)
        # Bit-identical scores, not merely allclose: the per-pair
        # similarity recomputation makes sharding a pure layout change.
        assert np.array_equal(got_sims, want_sims)

    @given(case=_cluster_cases())
    @settings(max_examples=25, deadline=None)
    def test_self_never_returned(self, case):
        emb, num_shards, seed, k = case
        assignment = partition_vertices(
            emb, num_shards=num_shards, rng=np.random.default_rng(seed)
        )
        sharded = ShardedIndex(emb, assignment)
        qids = np.arange(emb.shape[0])
        got_ids, _ = sharded.search_ids(qids, k, fanout=sharded.num_shards)
        assert not np.any(got_ids == qids[:, None])
