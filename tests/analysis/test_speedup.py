"""Tests for speedup helpers."""

from __future__ import annotations

import pytest

from repro.analysis.speedup import (
    amdahl_speedup,
    efficiency,
    gemm_simulated_time,
    speedup_curve,
)
from repro.parallel.machine import xeon_40core


class TestAmdahl:
    def test_no_serial_fraction_linear(self):
        assert amdahl_speedup(8, 0.0) == pytest.approx(8.0)

    def test_all_serial_no_speedup(self):
        assert amdahl_speedup(64, 1.0) == pytest.approx(1.0)

    def test_limit(self):
        assert amdahl_speedup(10**6, 0.05) == pytest.approx(20.0, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            amdahl_speedup(0, 0.1)
        with pytest.raises(ValueError):
            amdahl_speedup(4, 1.5)


class TestGemmTime:
    def test_paper_scaling_16x_at_40(self):
        """The default serial fraction yields ~16x at 40 cores (VI-C4)."""
        m = xeon_40core()
        t1 = gemm_simulated_time(1e9, m, cores=1)
        t40 = gemm_simulated_time(1e9, m, cores=40)
        assert 14.0 <= t1 / t40 <= 19.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gemm_simulated_time(-1.0, xeon_40core(), cores=1)
        with pytest.raises(ValueError):
            gemm_simulated_time(1.0, xeon_40core(), cores=0)


class TestCurves:
    def test_speedup_curve(self):
        s = speedup_curve({1: 10.0, 2: 5.0, 4: 2.5})
        assert s[1] == 1.0 and s[2] == 2.0 and s[4] == 4.0

    def test_needs_baseline(self):
        with pytest.raises(ValueError):
            speedup_curve({2: 5.0})

    def test_efficiency(self):
        e = efficiency({1: 10.0, 4: 2.5})
        assert e[4] == pytest.approx(1.0)
