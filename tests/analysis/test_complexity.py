"""Tests for the Eq. 1 complexity models and Section III-B claims."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.complexity import (
    eq1_forward_ops,
    gs_gcn_batch_ops,
    gs_gcn_epoch_ops,
    layer_sampling_batch_ops,
    layer_sampling_epoch_ops,
    layer_sampling_support_sizes,
    work_ratio_vs_depth,
)


class TestEq1:
    def test_hand_example(self):
        # 1 layer: |E_0|=10 edges, |V_0|=5 -> |V_1|=3, f = (4, 2).
        ops = eq1_forward_ops([10], [5, 3], [4, 2])
        assert ops == 10 * 4 + 3 * 4 * 2

    def test_arity_validation(self):
        with pytest.raises(ValueError):
            eq1_forward_ops([10], [5], [4, 2])


class TestGSGCN:
    def test_batch_formula(self):
        assert gs_gcn_batch_ops(
            num_layers=2, subgraph_size=100, subgraph_degree=5.0, f=64
        ) == 2 * 100 * 64 * (64 + 5.0)

    def test_epoch_linear_in_depth(self):
        e1 = gs_gcn_epoch_ops(num_layers=1, num_vertices=1000, subgraph_degree=10.0, f=64)
        e3 = gs_gcn_epoch_ops(num_layers=3, num_vertices=1000, subgraph_degree=10.0, f=64)
        assert e3 == pytest.approx(3 * e1)

    def test_validation(self):
        with pytest.raises(ValueError):
            gs_gcn_batch_ops(num_layers=0, subgraph_size=1, subgraph_degree=1.0, f=1)


class TestLayerSampling:
    def test_support_sizes_multiplicative(self):
        sizes = layer_sampling_support_sizes(10, (5, 5))
        assert sizes == [250, 50, 10]

    def test_support_sizes_capped_at_graph(self):
        sizes = layer_sampling_support_sizes(10, (100, 100), num_vertices=500)
        assert sizes == [500, 500, 10][:3]

    def test_batch_ops_positive_and_growing(self):
        o1 = layer_sampling_batch_ops(batch_size=32, fanouts=(10,), f=64)
        o2 = layer_sampling_batch_ops(batch_size=32, fanouts=(10, 10), f=64)
        o3 = layer_sampling_batch_ops(batch_size=32, fanouts=(10, 10, 10), f=64)
        assert o1 < o2 < o3
        # Growth is super-linear in depth (neighbor explosion).
        assert (o3 / o2) > (o2 / o1) * 0.8

    def test_epoch_ops_batch_size_invariant_without_cap(self):
        """Per-batch ops are linear in batch size when supports never
        saturate, so total epoch work is batch-size invariant."""
        one = layer_sampling_epoch_ops(
            num_train=1000, batch_size=1000, fanouts=(5,), f=32
        )
        many = layer_sampling_epoch_ops(
            num_train=1000, batch_size=100, fanouts=(5,), f=32
        )
        assert many == pytest.approx(one)

    def test_epoch_ops_grow_when_supports_saturate(self):
        """With the graph-size cap, small batches waste work: each batch
        touches ~the whole graph, so more batches = more total work."""
        few = layer_sampling_epoch_ops(
            num_train=1000, batch_size=500, fanouts=(50, 50), f=32, num_vertices=1000
        )
        many = layer_sampling_epoch_ops(
            num_train=1000, batch_size=50, fanouts=(50, 50), f=32, num_vertices=1000
        )
        assert many > 2 * few

    def test_validation(self):
        with pytest.raises(ValueError):
            layer_sampling_support_sizes(0, (5,))


class TestSectionIIIBClaims:
    def test_small_batch_explosion(self):
        """Case 1: small batches make layer sampling exponentially more
        expensive than graph sampling as depth grows."""
        ratios = [
            work_ratio_vs_depth(
                num_layers=L,
                num_train=100_000,
                batch_size=512,
                fanout=10,
                f=128,
                subgraph_degree=10.0,
            )
            for L in (1, 2, 3)
        ]
        assert ratios[0] < ratios[1] < ratios[2]
        assert ratios[2] > 5 * ratios[0]

    def test_large_batch_no_explosion(self):
        """Case 2: batch ~ graph size caps the supports, and the per-epoch
        ratio stays bounded with depth."""
        ratios = [
            work_ratio_vs_depth(
                num_layers=L,
                num_train=1000,
                batch_size=1000,
                fanout=10,
                f=128,
                subgraph_degree=10.0,
                num_vertices=1000,
            )
            for L in (1, 2, 3)
        ]
        assert ratios[2] < 3 * ratios[0]
