"""Tests for the roofline analysis."""

from __future__ import annotations

import pytest

from repro.analysis.roofline import (
    KernelProfile,
    aggregation_kernel_profile,
    gemm_kernel_profile,
    roofline_point,
    roofline_report,
)
from repro.parallel.machine import xeon_40core


class TestProfiles:
    def test_gemm_intensity_grows_with_f(self):
        small = gemm_kernel_profile(1000, 64, 64)
        large = gemm_kernel_profile(1000, 1024, 1024)
        assert large.arithmetic_intensity > small.arithmetic_intensity

    def test_aggregation_intensity_bounded_by_degree(self):
        prof = aggregation_kernel_profile(1000, 15.0, 512)
        # flops/byte ~ d/8 for large f.
        assert prof.arithmetic_intensity == pytest.approx(15.0 / 8.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelProfile("x", -1.0, 10.0)
        with pytest.raises(ValueError):
            KernelProfile("x", 1.0, 0.0)


class TestRooflinePoint:
    def test_attainable_below_both_ceilings(self):
        m = xeon_40core()
        prof = gemm_kernel_profile(4000, 512, 512)
        pt = roofline_point(prof, m, cores=40)
        assert pt["attainable"] <= pt["peak_compute"] + 1e-9
        assert pt["attainable"] <= pt["bandwidth_ceiling"] + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            roofline_point(gemm_kernel_profile(10, 4, 4), xeon_40core(), cores=0)


class TestPaperNarrative:
    def test_gemm_compute_bound_aggregation_bandwidth_bound(self):
        """The classification that explains Figure 3: at 40 cores with
        hidden 512, weight application sits right of the ridge (compute
        bound, Amdahl-limited in practice) while aggregation sits left of
        it (bandwidth bound, saturation-limited)."""
        rows = roofline_report(
            n=8000, d=15.0, f=512, machine=xeon_40core(), cores=40
        )
        bounds = {r["kernel"]: r["bound"] for r in rows}
        assert bounds["weight_application"] == "compute"
        assert bounds["feature_aggregation"] == "bandwidth"

    def test_ridge_moves_right_past_bandwidth_saturation(self):
        """Below the DRAM saturation point compute and bandwidth scale
        together (ridge fixed); beyond it only compute keeps scaling, so
        the ridge intensity rises and more kernels fall under the
        bandwidth roofline — why scaling problems only appear at high core
        counts."""
        m = xeon_40core()
        prof = gemm_kernel_profile(8000, 512, 512)
        ridge_lo = roofline_point(prof, m, cores=10)["ridge_intensity"]
        ridge_sat = roofline_point(prof, m, cores=26)["ridge_intensity"]
        ridge_hi = roofline_point(prof, m, cores=40)["ridge_intensity"]
        assert ridge_lo == pytest.approx(ridge_sat)
        assert ridge_hi > ridge_lo
