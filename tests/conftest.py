"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    CSRGraph,
    DCSBMParams,
    dcsbm_graph,
    edges_to_csr,
    grid_graph,
    make_dataset,
    ring_of_cliques,
)


@pytest.fixture(autouse=True)
def _flight_dumps_to_tmp(tmp_path):
    """Keep breach-triggered flight dumps out of the repo root.

    The process-wide flight recorder defaults its dump directory to the
    cwd; any test that evaluates a breaching SLO rule would otherwise
    litter ``OBS_flightdump_*.json`` next to the sources.
    """
    from repro.obs.flight import get_flight_recorder

    recorder = get_flight_recorder()
    prev = recorder.out_dir
    recorder.out_dir = tmp_path
    yield
    recorder.out_dir = prev


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def triangle_graph() -> CSRGraph:
    """K3: the smallest graph with a triangle."""
    return edges_to_csr(np.array([[0, 1], [1, 2], [0, 2]]), 3)


@pytest.fixture
def path_graph() -> CSRGraph:
    """P4: 0-1-2-3."""
    return edges_to_csr(np.array([[0, 1], [1, 2], [2, 3]]), 4)


@pytest.fixture
def star_graph() -> CSRGraph:
    """Star with center 0 and 5 leaves."""
    edges = np.array([[0, i] for i in range(1, 6)])
    return edges_to_csr(edges, 6)


@pytest.fixture
def clique_ring() -> CSRGraph:
    return ring_of_cliques(4, 5)


@pytest.fixture
def grid5() -> CSRGraph:
    return grid_graph(5, 5)


@pytest.fixture(scope="session")
def medium_graph() -> CSRGraph:
    """A ~800-vertex power-law community graph (session-cached)."""
    params = DCSBMParams(
        num_vertices=800, num_blocks=8, avg_degree=12.0, exponent=2.5, mixing=0.2
    )
    graph, _ = dcsbm_graph(params, rng=np.random.default_rng(7))
    return graph


@pytest.fixture(scope="session")
def ppi_small():
    """A small PPI-profile dataset (session-cached, ~590 vertices)."""
    return make_dataset("ppi", scale=0.04, seed=11)


@pytest.fixture(scope="session")
def reddit_small():
    """A small Reddit-profile dataset (session-cached, ~1160 vertices)."""
    return make_dataset("reddit", scale=0.005, seed=11)
