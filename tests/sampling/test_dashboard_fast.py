"""Statistical-equivalence suite for the fast Dashboard engine.

The fast engine must draw from the same pop distribution as the scalar
reference oracle and meter the same CostCounter quantities (within
tolerance — the two engines consume different RNG streams, so counts
match statistically, not bit-for-bit). Heavy many-subgraph tests are
marked ``slow`` so ``pytest -m "not slow"`` stays quick.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.graphs.datasets import make_dataset
from repro.sampling.dashboard import (
    ENGINES,
    INV,
    Dashboard,
    DashboardFrontierSampler,
)


@pytest.fixture(scope="module")
def amazon_small():
    """Amazon-profile dataset: the heavy-tailed graph the degree cap
    exists for (profile degree exponent ~2.05)."""
    return make_dataset("amazon", scale=0.002, seed=11)


def _make_sampler(graph, engine, **kw):
    kw.setdefault("frontier_size", 40)
    kw.setdefault("budget", 300)
    return DashboardFrontierSampler(graph, engine=engine, **kw)


class TestAddMany:
    def test_matches_sequential_adds(self):
        """add_many is layout- and meter-identical to a loop of add()."""
        vertices = np.array([7, 9, 7, 3, 12])
        counts = np.array([4, 1, 2, 6, 3])
        batched = Dashboard(100)
        batched.add_many(vertices, counts)
        scalar = Dashboard(100)
        for v, c in zip(vertices, counts):
            scalar.add(int(v), int(c))
        assert np.array_equal(batched.db_vertex, scalar.db_vertex)
        assert np.array_equal(batched.db_offset, scalar.db_offset)
        assert np.array_equal(batched.db_index, scalar.db_index)
        assert np.array_equal(batched.ia_start, scalar.ia_start)
        assert np.array_equal(batched.ia_alive, scalar.ia_alive)
        assert batched.used == scalar.used
        assert batched.num_added == scalar.num_added
        assert batched.alive_entries == scalar.alive_entries
        for field in (
            "mem_ops",
            "private_mem_ops",
            "vector_elements",
            "vector_chunks",
        ):
            assert getattr(batched.counter, field) == getattr(
                scalar.counter, field
            ), field

    def test_empty_batch_is_noop(self):
        db = Dashboard(10)
        db.add_many(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert db.used == 0 and db.num_added == 0

    def test_overflow_raises(self):
        db = Dashboard(5)
        with pytest.raises(RuntimeError, match="overflow"):
            db.add_many(np.array([1, 2]), np.array([3, 3]))

    def test_validation(self):
        db = Dashboard(10)
        with pytest.raises(ValueError):
            db.add_many(np.array([1]), np.array([0]))
        with pytest.raises(ValueError):
            db.add_many(np.array([1, 2]), np.array([1]))


class TestPopMany:
    def test_pops_are_distinct_and_invalidated(self, rng):
        db = Dashboard(200)
        db.add_many(np.arange(10), np.full(10, 4))
        popped = db.pop_many(rng, 6)
        assert 1 <= popped.shape[0] <= 6
        assert np.unique(popped).shape[0] == popped.shape[0]
        assert db.num_pops == popped.shape[0]
        assert db.alive_entries == 4 * (10 - popped.shape[0])
        for v in popped:
            assert v not in db.alive_vertices()

    def test_capped_at_alive_occupants(self, rng):
        db = Dashboard(100)
        db.add_many(np.arange(3), np.full(3, 5))
        popped = db.pop_many(rng, 50)
        assert popped.shape[0] == 3
        assert db.alive_entries == 0

    def test_empty_raises(self, rng):
        with pytest.raises(RuntimeError, match="empty"):
            Dashboard(10).pop_many(rng, 1)
        db = Dashboard(10)
        db.add(1, 2)
        with pytest.raises(ValueError):
            db.pop_many(rng, 0)

    def test_single_pop_degree_proportional(self):
        """pop_many(max_pops=1) realizes the same entry-weighted draw as
        the scalar pop: chi-square against the exact weights."""
        entries = np.array([9, 3, 1, 5, 2])
        trials = 4000
        counts = np.zeros(entries.size)
        db = Dashboard(60)
        db.add_many(np.arange(entries.size), entries)
        rng = np.random.default_rng(0)
        for _ in range(trials):
            (v,) = db.pop_many(rng, 1)
            counts[v] += 1
            db.add(int(v), int(entries[v]))  # restore stationary weights
            if db.free_entries() < entries.max():
                db.cleanup()
        expected = trials * entries / entries.sum()
        result = scipy_stats.chisquare(counts, expected)
        assert result.pvalue > 0.01, (counts, expected)

    def test_scalar_pop_degree_proportional(self):
        """Same chi-square for the buffered reference pop (satellite 2
        changed its RNG consumption; the distribution must not move)."""
        entries = np.array([9, 3, 1, 5, 2])
        trials = 4000
        counts = np.zeros(entries.size)
        db = Dashboard(60)
        db.add_many(np.arange(entries.size), entries)
        rng = np.random.default_rng(1)
        for _ in range(trials):
            v = db.pop(rng)
            counts[v] += 1
            db.add(v, int(entries[v]))
            if db.free_entries() < entries.max():
                db.cleanup()
        expected = trials * entries / entries.sum()
        result = scipy_stats.chisquare(counts, expected)
        assert result.pvalue > 0.01, (counts, expected)

    def test_round_respects_weights(self):
        """Across many rounds, heavier vertices appear in the round's
        pops proportionally more often (weighted without replacement)."""
        entries = np.array([12, 1, 1, 1, 1, 1, 1, 1])
        hits = np.zeros(entries.size)
        trials = 800
        rng = np.random.default_rng(3)
        for _ in range(trials):
            db = Dashboard(40)
            db.add_many(np.arange(entries.size), entries)
            popped = db.pop_many(rng, 2)
            hits[popped] += 1
        # Vertex 0 holds 12/19 of the weight; within 2 pops it should be
        # present in nearly every round (P ~ 1 - (7/19)(6/18) ~ 0.88).
        assert hits[0] / trials > 0.8


class TestProbeBufferMetering:
    class _CountingRng:
        """Wraps a Generator, counting uniform indices drawn."""

        def __init__(self, seed):
            self._rng = np.random.default_rng(seed)
            self.drawn = 0

        def integers(self, low, high, size):
            self.drawn += int(size)
            return self._rng.integers(low, high, size=size)

    def test_rand_ops_matches_actual_draws_scalar(self):
        rng = self._CountingRng(5)
        db = Dashboard(80)
        db.add_many(np.arange(8), np.full(8, 5))
        for _ in range(6):
            v = db.pop(rng)
            db.add(int(v), 5)
        assert db.counter.rand_ops == rng.drawn
        assert db.num_probes <= rng.drawn  # tail carried, not discarded

    def test_rand_ops_matches_actual_draws_batched(self):
        rng = self._CountingRng(6)
        db = Dashboard(200)
        db.add_many(np.arange(20), np.full(20, 5))
        db.pop_many(rng, 8)
        db.pop_many(rng, 8)
        assert db.counter.rand_ops == rng.drawn
        assert db.num_probes <= rng.drawn

    def test_tail_carried_across_cleanup(self, rng):
        """Cleanup keeps capacity, so buffered draws stay valid."""
        db = Dashboard(60)
        db.add_many(np.arange(6), np.full(6, 5))
        db.pop(rng)
        buffered = db._probe_buf.shape[0] - db._probe_pos
        db.cleanup()
        assert db._probe_buf.shape[0] - db._probe_pos == buffered

    def test_buffer_flushed_on_grow(self, rng):
        """Grow changes capacity: old uniform draws would be biased."""
        db = Dashboard(60)
        db.add_many(np.arange(6), np.full(6, 5))
        db.pop(rng)
        db.grow(120)
        assert db._probe_buf.shape[0] - db._probe_pos == 0


class TestEngineEquivalence:
    @pytest.mark.slow
    def test_mean_sampled_degree_matches(self, medium_graph):
        """Subgraph-level distribution: mean sampled-vertex degree of the
        two engines within 3 combined standard errors over seeds."""
        deg = medium_graph.degrees

        def series(engine, seeds):
            s = _make_sampler(medium_graph, engine)
            vals = []
            for seed in seeds:
                sub = s.sample(np.random.default_rng(seed))
                vals.append(float(deg[sub.vertex_map].mean()))
            return np.array(vals)

        a = series("reference", range(16))
        b = series("fast", range(200, 216))
        se = np.sqrt(a.var() / a.size + b.var() / b.size)
        assert abs(a.mean() - b.mean()) < 3 * se + 1e-9

    @pytest.mark.slow
    def test_popped_degree_chisquare(self, medium_graph):
        """Chi-square on the popped-vertex degree histogram, fast vs
        reference, pooled over many subgraphs."""
        deg = medium_graph.degrees
        edges = np.array([0, 4, 8, 12, 20, 40, np.inf])

        def histogram(engine, seeds):
            s = _make_sampler(medium_graph, engine)
            pops = []
            for seed in seeds:
                sub = s.sample(np.random.default_rng(seed))
                pops.append(deg[sub.vertex_map])
            return np.histogram(np.concatenate(pops), bins=edges)[0]

        ref = histogram("reference", range(20))
        fast = histogram("fast", range(300, 320))
        # Two-sample chi-square on the contingency table.
        result = scipy_stats.chi2_contingency(np.stack([ref, fast]))
        assert result.pvalue > 0.01, (ref, fast)

    @pytest.mark.slow
    def test_cost_counters_within_tolerance(self, medium_graph):
        """Metered totals agree across engines: equal non-random counts,
        statistically-close probe/cleanup counts."""

        def totals(engine, seeds):
            s = _make_sampler(medium_graph, engine)
            acc: dict[str, float] = {}
            for seed in seeds:
                st = s.sample(np.random.default_rng(seed)).stats
                for k, v in st.items():
                    acc[k] = acc.get(k, 0.0) + v
            return {k: v / len(list(seeds)) for k, v in acc.items()}

        ref = totals("reference", range(10))
        fast = totals("fast", range(400, 410))
        assert ref["pops"] == fast["pops"]
        # Probes: the fast engine treats within-round duplicate hits as
        # misses, paying a slightly higher probe count.
        assert fast["probes"] == pytest.approx(ref["probes"], rel=0.35)
        assert fast["cleanups"] == pytest.approx(ref["cleanups"], abs=2.5)
        # rand_ops ~ probes + pops on both engines (draws are buffered;
        # over-draw is bounded by one block per refill).
        for t in (ref, fast):
            assert t["rand_ops"] >= t["probes"]
        assert fast["rand_ops"] == pytest.approx(ref["rand_ops"], rel=0.35)
        assert fast["mem_ops"] == pytest.approx(ref["mem_ops"], rel=0.25)
        assert fast["private_mem_ops"] == pytest.approx(
            ref["private_mem_ops"], rel=0.05
        )
        assert fast["vector_elements"] == pytest.approx(
            ref["vector_elements"], rel=0.15
        )
        assert fast["vector_chunks"] == pytest.approx(
            ref["vector_chunks"], rel=0.15
        )

    def test_determinism_fast(self, medium_graph):
        s = _make_sampler(medium_graph, "fast")
        a = s.sample(np.random.default_rng(9))
        b = s.sample(np.random.default_rng(9))
        assert np.array_equal(a.vertex_map, b.vertex_map)
        assert a.stats == b.stats

    def test_round_pops_override(self, medium_graph):
        s = _make_sampler(medium_graph, "fast", round_pops=1)
        sub = s.sample(np.random.default_rng(2))
        assert sub.stats["pops"] == 260.0

    def test_engine_validation(self, medium_graph):
        with pytest.raises(ValueError, match="engine"):
            _make_sampler(medium_graph, "turbo")
        with pytest.raises(ValueError, match="round_pops"):
            _make_sampler(medium_graph, "fast", round_pops=0)


class TestDegreeCapOnSkewedGraph:
    @pytest.mark.slow
    def test_cap_behaviour_preserved_amazon(self, amazon_small):
        """On the Amazon-profile heavy-tail graph, both engines respect
        max_entries_per_vertex: hub pop rates match and no board block
        ever exceeds the cap."""
        g = amazon_small.graph
        cap = 30
        hubs = np.argsort(g.degrees)[-5:]

        def hub_rate(engine, seeds):
            s = DashboardFrontierSampler(
                g,
                frontier_size=30,
                budget=200,
                max_entries_per_vertex=cap,
                engine=engine,
            )
            hits = 0
            for seed in seeds:
                sub = s.sample(np.random.default_rng(seed))
                hits += int(np.isin(hubs, sub.vertex_map).sum())
            return hits / len(list(seeds))

        ref = hub_rate("reference", range(15))
        fast = hub_rate("fast", range(500, 515))
        assert fast == pytest.approx(ref, abs=1.5)

    def test_entry_counts_capped(self, amazon_small):
        g = amazon_small.graph
        s = DashboardFrontierSampler(
            g,
            frontier_size=20,
            budget=60,
            max_entries_per_vertex=30,
            engine="fast",
        )
        counts = s._entry_counts(np.arange(g.num_vertices))
        assert counts.max() <= 30
        expected = np.minimum(g.degrees, 30)
        assert np.array_equal(counts, expected)

    def test_board_blocks_never_exceed_cap(self, amazon_small):
        """Instrument a fast-engine run: every add_many batch is capped."""
        g = amazon_small.graph
        s = DashboardFrontierSampler(
            g,
            frontier_size=20,
            budget=120,
            max_entries_per_vertex=30,
            engine="fast",
        )
        seen = []
        original = Dashboard.add_many

        def spy(self, vertices, counts):
            seen.append(np.max(counts) if np.asarray(counts).size else 0)
            return original(self, vertices, counts)

        Dashboard.add_many = spy
        try:
            s.sample(np.random.default_rng(4))
        finally:
            Dashboard.add_many = original
        assert seen and max(seen) <= 30


class TestInvariantsAfterBatchedOps:
    def test_alive_blocks_well_formed_after_rounds(self, rng):
        """After interleaved pop_many/add_many/cleanup, every alive IA
        entry still points at a (-deg, 1, .., deg-1) block."""
        g_entries = np.array([3, 5, 2, 7, 1, 4, 6, 2])
        db = Dashboard(80)
        db.add_many(np.arange(g_entries.size), g_entries)
        for step in range(6):
            popped = db.pop_many(rng, 3)
            refill = np.array([int(v) for v in popped])
            counts = g_entries[refill % g_entries.size]
            if counts.sum() > db.free_entries():
                db.cleanup()
            db.add_many(refill + 100 * (step + 1), counts)
            ks = np.flatnonzero(db.ia_alive[: db.num_added])
            for k in ks:
                start = db.ia_start[k]
                deg = -int(db.db_offset[start])
                assert deg >= 1
                assert np.all(db.db_vertex[start : start + deg] != INV)
                assert np.array_equal(
                    db.db_offset[start + 1 : start + deg], np.arange(1, deg)
                )


def test_engines_constant():
    assert ENGINES == ("fast", "reference")
