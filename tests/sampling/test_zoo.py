"""Sampler-zoo suite: inclusion probabilities, engine equivalence, factory.

Each GraphSAINT-family sampler (rw, edge, edge-indp) is checked three
ways, mirroring ``test_dashboard_fast.py``:

* **Inclusion probabilities** — empirical per-edge / per-node frequencies
  against closed-form values (chi-square / binomial tolerance), the
  statistical ground truth the normalization module builds on.
* **Engine equivalence** — the ``fast`` engine must draw from the same
  subgraph distribution as the scalar ``reference`` oracle (separate
  seed ranges; chi-square on vertex-inclusion histograms) and meter
  *identical* CostCounter totals (both engines price the algorithm's
  parallel structure).
* **Determinism + validation** — same rng seed, same subgraph; bad
  parameters raise.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.graphs import edges_to_csr, ring_of_cliques
from repro.sampling.dashboard import ENGINES, DashboardFrontierSampler
from repro.sampling.edge import DegreeWeightedEdgeSampler
from repro.sampling.edge_indp import IndependentEdgeSampler
from repro.sampling.norm import edge_sampling_weights
from repro.sampling.rw import RandomWalkBatchSampler
from repro.sampling.zoo import FAMILIES, make_sampler, norm_coefficients

_METER_KEYS = (
    "rand_ops",
    "mem_ops",
    "private_mem_ops",
    "vector_elements",
    "vector_chunks",
)


def _cycle_graph(n: int):
    """C_n: 2-regular, vertex-transitive — closed-form walk symmetry."""
    edges = np.array([[i, (i + 1) % n] for i in range(n)])
    return edges_to_csr(edges, n)


class TestRandomWalkSampler:
    def test_budget(self, clique_ring):
        s = RandomWalkBatchSampler(clique_ring, num_roots=5, walk_depth=3)
        assert s.budget == 20

    def test_walk_steps_follow_edges(self, clique_ring, rng):
        """Every consecutive visit pair along a walk is a real edge —
        checked via the reference oracle's per-walk trajectories being
        contained in the induced subgraph."""
        s = RandomWalkBatchSampler(
            clique_ring, num_roots=4, walk_depth=5, engine="reference"
        )
        sub = s.sample(rng)
        # The induced subgraph keeps every visited vertex.
        assert sub.num_vertices <= s.budget
        assert sub.stats["walk_steps"] == 4 * 5

    def test_validation(self, clique_ring, star_graph):
        with pytest.raises(ValueError):
            RandomWalkBatchSampler(clique_ring, num_roots=0, walk_depth=2)
        with pytest.raises(ValueError):
            RandomWalkBatchSampler(clique_ring, num_roots=2, walk_depth=0)
        with pytest.raises(ValueError):
            RandomWalkBatchSampler(
                clique_ring, num_roots=2, walk_depth=2, engine="turbo"
            )
        # Isolated vertex -> walks cannot proceed.
        isolated = edges_to_csr(np.array([[0, 1]]), 3)
        with pytest.raises(ValueError):
            RandomWalkBatchSampler(isolated, num_roots=2, walk_depth=2)

    @pytest.mark.slow
    def test_visit_uniformity_on_cycle(self):
        """On a vertex-transitive graph every vertex is visited equally
        often: chi-square on visit counts over many subgraphs."""
        graph = _cycle_graph(24)
        s = RandomWalkBatchSampler(graph, num_roots=6, walk_depth=4)
        counts = np.zeros(24)
        for seed in range(400):
            sub = s.sample(np.random.default_rng(seed))
            counts[sub.vertex_map] += 1
        expected = np.full(24, counts.sum() / 24)
        assert scipy_stats.chisquare(counts, expected).pvalue > 0.01


class TestEdgeSampler:
    def test_budget_and_weights(self, clique_ring):
        s = DegreeWeightedEdgeSampler(clique_ring, num_draws=10)
        assert s.budget == 20
        src, dst, w = edge_sampling_weights(clique_ring)
        assert np.allclose(s.edge_weights, w)
        deg = clique_ring.degrees
        assert np.allclose(w, 1.0 / deg[src] + 1.0 / deg[dst])

    def test_validation(self, clique_ring):
        with pytest.raises(ValueError):
            DegreeWeightedEdgeSampler(clique_ring, num_draws=0)
        with pytest.raises(ValueError):
            DegreeWeightedEdgeSampler(clique_ring, num_draws=3, engine="x")

    @pytest.mark.slow
    def test_draw_frequencies_match_weights(self, star_graph):
        """Empirical draw frequencies converge to w_e / sum(w): the alias
        table samples the degree-weighted distribution exactly."""
        s = DegreeWeightedEdgeSampler(star_graph, num_draws=40)
        _, _, w = edge_sampling_weights(star_graph)
        q = w / w.sum()
        rng = np.random.default_rng(5)
        counts = np.zeros(w.size)
        rounds = 200
        for _ in range(rounds):
            picks = s._alias.sample(rng, s.num_draws)
            counts += np.bincount(picks, minlength=w.size)
        total = rounds * s.num_draws
        assert scipy_stats.chisquare(counts, q * total).pvalue > 0.01


class TestIndependentEdgeSampler:
    def test_edge_prob_closed_form(self, clique_ring):
        s = IndependentEdgeSampler(clique_ring, edge_budget=12)
        _, _, w = edge_sampling_weights(clique_ring)
        assert np.allclose(s.edge_prob, np.minimum(1.0, 12 * w / w.sum()))
        assert s.budget == 12

    def test_expected_edges_near_budget(self, medium_graph):
        s = IndependentEdgeSampler(medium_graph, edge_budget=200)
        # sum(p_e) <= budget with equality when no edge clips at 1.
        assert s.edge_prob.sum() <= 200 + 1e-9

    def test_validation(self, clique_ring):
        with pytest.raises(ValueError):
            IndependentEdgeSampler(clique_ring, edge_budget=0)
        with pytest.raises(ValueError):
            IndependentEdgeSampler(clique_ring, edge_budget=5, engine="x")

    @pytest.mark.slow
    def test_inclusion_probabilities_match_closed_form(self, clique_ring):
        """Per-node empirical inclusion frequencies vs the closed form
        p_v = 1 - prod(1 - p_e) over incident edges, within binomial
        error bars (4 sigma) at every vertex."""
        from repro.sampling.norm import independent_edge_coefficients

        budget = 8
        s = IndependentEdgeSampler(clique_ring, edge_budget=budget)
        coeffs = independent_edge_coefficients(clique_ring, budget)
        k = 1500
        counts = np.zeros(clique_ring.num_vertices)
        for seed in range(k):
            sub = s.sample(np.random.default_rng(seed))
            counts[sub.vertex_map] += 1
        # Conditioning on non-emptiness (the redraw loop) is negligible
        # at this budget; compare unconditioned closed form directly.
        p = coeffs.node_prob
        sigma = np.sqrt(np.maximum(p * (1 - p), 1e-12) / k)
        assert np.all(np.abs(counts / k - p) < 4 * sigma + 1e-9)


class TestEngineEquivalence:
    """fast and reference engines: identical meters, same distribution."""

    def _pair(self, graph, family):
        return {
            engine: make_sampler(family, graph, budget=60, engine=engine)
            for engine in ENGINES
        }

    @pytest.mark.parametrize("family", ["rw", "edge", "edge-indp"])
    def test_meters_identical(self, medium_graph, family):
        """Unlike the dashboard (tolerance-based), the zoo samplers meter
        bit-identical CostCounter totals across engines by construction."""
        pair = self._pair(medium_graph, family)
        subs = {
            engine: sampler.sample(np.random.default_rng(3))
            for engine, sampler in pair.items()
        }
        for key in _METER_KEYS:
            assert (
                subs["fast"].stats[key] == subs["reference"].stats[key]
            ), key
        assert subs["fast"].stats["pops"] == 0.0
        assert subs["fast"].stats["probes"] == 0.0

    @pytest.mark.parametrize("family", ["rw", "edge", "edge-indp"])
    def test_determinism(self, medium_graph, family):
        """Same seed, same engine -> identical subgraph and stats."""
        for engine in ENGINES:
            s = make_sampler(family, medium_graph, budget=60, engine=engine)
            a = s.sample(np.random.default_rng(11))
            b = s.sample(np.random.default_rng(11))
            assert np.array_equal(a.vertex_map, b.vertex_map)
            assert a.stats == b.stats

    @pytest.mark.slow
    @pytest.mark.parametrize("family", ["rw", "edge", "edge-indp"])
    def test_inclusion_distribution_chisquare(self, medium_graph, family):
        """Vertex-inclusion histograms from disjoint seed ranges of the
        two engines are statistically indistinguishable (chi-square
        two-sample test on the most-included vertices)."""
        n = medium_graph.num_vertices
        counts = {}
        for engine, seeds in (
            ("reference", range(120)),
            ("fast", range(500, 620)),
        ):
            s = make_sampler(family, medium_graph, budget=120, engine=engine)
            c = np.zeros(n)
            for seed in seeds:
                sub = s.sample(np.random.default_rng(seed))
                c[sub.vertex_map] += 1
            counts[engine] = c
        both = counts["reference"] + counts["fast"]
        top = np.argsort(both)[-60:]  # well-populated cells only
        table = np.stack([counts["reference"][top], counts["fast"][top]])
        assert scipy_stats.chi2_contingency(table).pvalue > 0.01


class TestZooFactory:
    def test_families_constant(self):
        assert FAMILIES == ("dashboard", "rw", "edge", "edge-indp")

    def test_every_family_constructs_and_samples(self, medium_graph, rng):
        for family in FAMILIES:
            s = make_sampler(family, medium_graph, budget=100)
            sub = s.sample(rng)
            assert sub.num_vertices > 0
            # Every zoo sampler reports the full metered-stats contract
            # the prefetch pool's pricing path requires.
            for key in _METER_KEYS + ("pops", "probes"):
                assert key in sub.stats, key

    def test_dashboard_family_matches_direct_construction(self, medium_graph):
        """The factory's dashboard path builds exactly the sampler the
        trainer always built (behavior-preserving default)."""
        via_zoo = make_sampler(
            "dashboard", medium_graph, budget=100, frontier_size=20
        )
        direct = DashboardFrontierSampler(
            medium_graph, frontier_size=20, budget=100
        )
        a = via_zoo.sample(np.random.default_rng(9))
        b = direct.sample(np.random.default_rng(9))
        assert np.array_equal(a.vertex_map, b.vertex_map)
        assert a.stats == b.stats

    def test_budget_mapping(self, medium_graph):
        rw = make_sampler("rw", medium_graph, budget=100, walk_depth=4)
        assert rw.num_roots == 20  # 100 // (4 + 1)
        edge = make_sampler("edge", medium_graph, budget=100)
        assert edge.num_draws == 50
        indp = make_sampler("edge-indp", medium_graph, budget=100)
        assert indp.edge_budget == 50

    def test_unknown_family(self, medium_graph):
        with pytest.raises(ValueError):
            make_sampler("bfs", medium_graph, budget=50)

    def test_norm_coefficients_dispatch(self, medium_graph):
        """Closed forms for the edge families, empirical otherwise."""
        for family, method in (
            ("dashboard", "empirical"),
            ("rw", "empirical"),
            ("edge", "closed_form"),
            ("edge-indp", "closed_form"),
        ):
            s = make_sampler(family, medium_graph, budget=80)
            c = norm_coefficients(s, num_subgraphs=4, seed=0)
            assert c.method == method
            assert c.node_prob.shape == (medium_graph.num_vertices,)
