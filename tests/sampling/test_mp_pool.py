"""Tests for the real multi-process sampler pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling.dashboard import DashboardFrontierSampler
from repro.sampling.mp_pool import ParallelSamplerPool, sample_batch_parallel


@pytest.fixture(scope="module")
def sampler(medium_graph):
    return DashboardFrontierSampler(medium_graph, frontier_size=20, budget=100)


class TestSampleBatchParallel:
    def test_inline_path(self, sampler):
        subs = sample_batch_parallel(sampler, 3, workers=1, seed=0)
        assert len(subs) == 3
        assert all(s.num_vertices > 0 for s in subs)

    def test_multiprocess_path(self, sampler):
        subs = sample_batch_parallel(sampler, 4, workers=2, seed=0)
        assert len(subs) == 4
        assert all(s.num_vertices > 0 for s in subs)

    def test_deterministic_across_worker_counts(self, sampler):
        """Subgraph i depends only on (seed, i), not on scheduling."""
        a = sample_batch_parallel(sampler, 4, workers=1, seed=7)
        b = sample_batch_parallel(sampler, 4, workers=2, seed=7)
        for sa, sb in zip(a, b):
            assert np.array_equal(sa.vertex_map, sb.vertex_map)

    def test_batches_are_independent_draws(self, sampler):
        subs = sample_batch_parallel(sampler, 3, workers=1, seed=1)
        assert not np.array_equal(subs[0].vertex_map, subs[1].vertex_map)

    def test_validation(self, sampler):
        with pytest.raises(ValueError):
            sample_batch_parallel(sampler, -1, workers=1)
        with pytest.raises(ValueError):
            sample_batch_parallel(sampler, 1, workers=0)

    def test_zero_count(self, sampler):
        assert sample_batch_parallel(sampler, 0, workers=2) == []


class TestParallelSamplerPool:
    def test_context_manager_batches(self, sampler):
        with ParallelSamplerPool(sampler, workers=2, seed=0) as pool:
            first = pool.next_batch(2)
            second = pool.next_batch(2)
        assert len(first) == 2 and len(second) == 2
        # Sequential batches continue the seed stream (no repeats).
        assert not np.array_equal(first[0].vertex_map, second[0].vertex_map)

    def test_single_worker_inline(self, sampler):
        with ParallelSamplerPool(sampler, workers=1, seed=0) as pool:
            batch = pool.next_batch(3)
        assert len(batch) == 3

    def test_close_idempotent(self, sampler):
        pool = ParallelSamplerPool(sampler, workers=1, seed=0)
        pool.close()
        pool.close()
