"""GraphSAINT normalization: closed forms, unbiasedness, empirical mode.

The module's contract is statistical — ``lambda_v = 1/(n p_v)`` weights
must make the subgraph loss an *unbiased* estimator of the full-graph
mean — so the suite checks (a) closed forms against hand-computed values
on tiny graphs, (b) Monte-Carlo unbiasedness of the weighted-sum
estimator under the real samplers, and (c) empirical coefficients
converging to the closed forms where both exist.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import edges_to_csr
from repro.sampling.edge import DegreeWeightedEdgeSampler
from repro.sampling.edge_indp import IndependentEdgeSampler
from repro.sampling.norm import (
    NormCoefficients,
    aggregation_weights,
    directed_slot_probs,
    edge_draw_coefficients,
    edge_sampling_weights,
    empirical_coefficients,
    independent_edge_coefficients,
    loss_weights_from_probs,
)
from repro.sampling.rw import RandomWalkBatchSampler


@pytest.fixture
def p3_graph():
    """P3 path 0-1-2: degrees (1, 2, 1), two edges with w = 1/d_u + 1/d_v."""
    return edges_to_csr(np.array([[0, 1], [1, 2]]), 3)


class TestEdgeSamplingWeights:
    def test_p3_weights(self, p3_graph):
        src, dst, w = edge_sampling_weights(p3_graph)
        # Undirected edges in CSR order: (0,1), (1,2); both w = 1 + 1/2.
        assert np.array_equal(src, [0, 1])
        assert np.array_equal(dst, [1, 2])
        assert np.allclose(w, [1.5, 1.5])

    def test_rejects_edgeless(self):
        graph = edges_to_csr(np.empty((0, 2), dtype=int), 3)
        with pytest.raises(ValueError):
            edge_sampling_weights(graph)

    def test_directed_slot_probs_roundtrip(self, clique_ring):
        """Per-undirected-edge values land on both directed CSR slots."""
        src, dst, w = edge_sampling_weights(clique_ring)
        vals = np.arange(1.0, w.size + 1)
        slots = directed_slot_probs(clique_ring, src, dst, vals)
        assert slots.shape == (clique_ring.num_edges_directed,)
        # The (u<=v) slots recover vals exactly; the mirrored slots match.
        mask = clique_ring.edge_sources() <= clique_ring.indices
        assert np.array_equal(slots[mask], vals)
        assert np.allclose(np.sort(slots[~mask]), np.sort(vals[src != dst]))


class TestLossWeights:
    def test_formula(self):
        p = np.array([0.5, 0.25, 1.0, 0.0])
        lam = loss_weights_from_probs(p)
        n = 4
        assert lam[0] == pytest.approx(1 / (n * 0.5))
        assert lam[1] == pytest.approx(1 / (n * 0.25))
        assert lam[2] == pytest.approx(1 / n)
        assert lam[3] == pytest.approx(1 / n)  # never-sampled -> neutral

    def test_floor_bounds_weights(self):
        lam = loss_weights_from_probs(np.array([0.001, 0.5]), floor=0.1)
        assert lam[0] == pytest.approx(1 / (2 * 0.1))

    def test_validation(self):
        with pytest.raises(ValueError):
            loss_weights_from_probs(np.array([1.5]))
        with pytest.raises(ValueError):
            loss_weights_from_probs(np.array([-0.1]))
        with pytest.raises(ValueError):
            loss_weights_from_probs(np.array([0.5]), floor=0.0)


class TestAggregationWeights:
    def test_ratio_and_clip(self):
        node_prob = np.array([0.8, 0.4])
        # Two slots, both owned by vertex 0.
        out = aggregation_weights(
            node_prob, np.array([0.4, 0.01]), np.array([0, 0]), clip=10.0
        )
        assert out[0] == pytest.approx(2.0)  # 0.8 / 0.4
        assert out[1] == pytest.approx(10.0)  # clipped from 80
        with pytest.raises(ValueError):
            aggregation_weights(node_prob, np.array([0.4]), np.array([0]), clip=0.5)

    def test_zero_prob_edge_neutral(self):
        out = aggregation_weights(
            np.array([0.5]), np.array([0.0]), np.array([0])
        )
        assert out[0] == 1.0


class TestIndependentEdgeClosedForm:
    def test_p3_hand_computed(self, p3_graph):
        """budget=1 on P3: q = (1/2, 1/2), p_e = 1/2 each; p_1 (center)
        = 1 - (1/2)^2 = 3/4, leaves = 1/2."""
        c = independent_edge_coefficients(p3_graph, 1)
        assert np.allclose(c.node_prob, [0.5, 0.75, 0.5])
        assert np.allclose(c.loss_weight, 1.0 / (3 * c.node_prob))
        assert c.method == "closed_form"
        # Expected total batch weight is exactly 1 for exact probabilities.
        assert c.expected_batch_weight == pytest.approx(1.0)

    def test_saturated_budget(self, p3_graph):
        """A budget >= total weight clips every p_e at 1: the subgraph is
        deterministic, every p_v = 1, and weights are uniform 1/n."""
        c = independent_edge_coefficients(p3_graph, 10)
        assert np.allclose(c.node_prob, 1.0)
        assert np.allclose(c.loss_weight, 1.0 / 3)
        assert np.allclose(c.edge_weight, 1.0)

    def test_validation(self, p3_graph):
        with pytest.raises(ValueError):
            independent_edge_coefficients(p3_graph, 0)

    @pytest.mark.slow
    def test_monte_carlo_unbiasedness(self, clique_ring):
        """E[sum over subgraph of lambda_v x_v] == mean(x) for arbitrary
        per-vertex values x — the whole point of the weights."""
        n = clique_ring.num_vertices
        budget = 6
        s = IndependentEdgeSampler(clique_ring, edge_budget=budget)
        c = independent_edge_coefficients(clique_ring, budget)
        x = np.random.default_rng(0).random(n) + 0.5
        target = x.mean()
        # Use raw Bernoulli draws (no non-emptiness rejection) so the
        # estimator matches the closed form exactly.
        rng = np.random.default_rng(42)
        est = []
        for _ in range(4000):
            keep = rng.random(s.edge_prob.size) < s.edge_prob
            verts = np.unique(
                np.concatenate((s._src[keep], s._dst[keep]))
            )
            est.append((c.loss_weight[verts] * x[verts]).sum())
        est = np.asarray(est)
        sem = est.std() / np.sqrt(est.size)
        assert abs(est.mean() - target) < 4 * sem + 1e-12


class TestEdgeDrawClosedForm:
    def test_p3_hand_computed(self, p3_graph):
        """One draw on P3: q = (1/2, 1/2). p_e = 1/2. Center vertex is in
        every drawn edge -> p_1 = 1; leaves p = 1/2."""
        c = edge_draw_coefficients(p3_graph, 1)
        assert np.allclose(c.edge_prob, 0.5)
        assert np.allclose(c.node_prob, [0.5, 1.0, 0.5])
        assert c.expected_batch_weight == pytest.approx(1.0)

    def test_many_draws_saturate(self, p3_graph):
        c = edge_draw_coefficients(p3_graph, 200)
        assert np.allclose(c.node_prob, 1.0, atol=1e-12)

    def test_validation(self, p3_graph):
        with pytest.raises(ValueError):
            edge_draw_coefficients(p3_graph, 0)

    @pytest.mark.slow
    def test_node_prob_matches_sampler(self, clique_ring):
        """Closed-form p_v vs empirical inclusion frequency of the real
        with-replacement sampler, within 4-sigma binomial error."""
        draws = 5
        s = DegreeWeightedEdgeSampler(clique_ring, num_draws=draws)
        c = edge_draw_coefficients(clique_ring, draws)
        k = 2000
        counts = np.zeros(clique_ring.num_vertices)
        for seed in range(k):
            sub = s.sample(np.random.default_rng(seed))
            counts[sub.vertex_map] += 1
        p = c.node_prob
        sigma = np.sqrt(np.maximum(p * (1 - p), 1e-12) / k)
        assert np.all(np.abs(counts / k - p) < 4 * sigma + 1e-9)


class TestEmpiricalCoefficients:
    def test_deterministic(self, clique_ring):
        s = RandomWalkBatchSampler(clique_ring, num_roots=4, walk_depth=2)
        a = empirical_coefficients(s, num_subgraphs=6, seed=3)
        b = empirical_coefficients(s, num_subgraphs=6, seed=3)
        assert np.array_equal(a.node_prob, b.node_prob)
        assert a.method == "empirical"

    def test_batch_weight_is_seen_fraction(self, clique_ring):
        """With the 1/K floor, p_v * lambda_v = 1/n for every seen vertex,
        so the expected batch weight equals the seen fraction."""
        s = RandomWalkBatchSampler(clique_ring, num_roots=4, walk_depth=2)
        c = empirical_coefficients(s, num_subgraphs=8, seed=1)
        seen = (c.node_prob > 0).mean()
        assert c.expected_batch_weight == pytest.approx(seen)

    def test_track_edges(self, clique_ring):
        s = RandomWalkBatchSampler(clique_ring, num_roots=6, walk_depth=3)
        c = empirical_coefficients(
            s, num_subgraphs=10, seed=2, track_edges=True
        )
        assert c.edge_prob is not None
        assert c.edge_prob.shape == (clique_ring.num_edges_directed,)
        assert c.edge_weight is not None
        # An edge appears only when both endpoints do: p_e <= p_v.
        owners = clique_ring.edge_sources()
        assert np.all(c.edge_prob <= c.node_prob[owners] + 1e-12)
        assert np.all(c.edge_weight >= 1.0)

    def test_validation(self, clique_ring):
        s = RandomWalkBatchSampler(clique_ring, num_roots=2, walk_depth=2)
        with pytest.raises(ValueError):
            empirical_coefficients(s, num_subgraphs=0)

    @pytest.mark.slow
    def test_converges_to_closed_form(self, clique_ring):
        """Empirical coefficients of the independent-edge sampler converge
        to its closed form (the cross-validation of both code paths)."""
        budget = 8
        s = IndependentEdgeSampler(clique_ring, edge_budget=budget)
        exact = independent_edge_coefficients(clique_ring, budget)
        emp = empirical_coefficients(s, num_subgraphs=3000, seed=7)
        p = exact.node_prob
        sigma = np.sqrt(np.maximum(p * (1 - p), 1e-12) / 3000)
        assert np.all(np.abs(emp.node_prob - p) < 4 * sigma + 5e-3)


class TestNormCoefficientsContainer:
    def test_frozen(self, p3_graph):
        c = independent_edge_coefficients(p3_graph, 1)
        assert isinstance(c, NormCoefficients)
        with pytest.raises(AttributeError):
            c.method = "other"
