"""Tests for the serial frontier sampler (Algorithm 2 reference)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import ring_of_cliques
from repro.sampling.frontier import FrontierSampler


class TestValidation:
    def test_frontier_larger_than_graph(self, clique_ring):
        with pytest.raises(ValueError, match="exceeds graph size"):
            FrontierSampler(clique_ring, frontier_size=100, budget=200)

    def test_budget_below_frontier(self, clique_ring):
        with pytest.raises(ValueError, match="budget"):
            FrontierSampler(clique_ring, frontier_size=10, budget=5)

    def test_zero_degree_rejected(self):
        from repro.graphs.csr import edges_to_csr

        g = edges_to_csr(np.array([[0, 1]]), 3)
        with pytest.raises(ValueError, match="min degree"):
            FrontierSampler(g, frontier_size=2, budget=3)

    def test_nonpositive_frontier(self, clique_ring):
        with pytest.raises(ValueError):
            FrontierSampler(clique_ring, frontier_size=0, budget=5)


class TestSampling:
    def test_budget_respected(self, medium_graph, rng):
        s = FrontierSampler(medium_graph, frontier_size=50, budget=200)
        sub = s.sample(rng)
        assert sub.num_vertices <= 200
        assert sub.num_vertices >= 50  # at least the initial frontier

    def test_vertex_map_valid(self, medium_graph, rng):
        s = FrontierSampler(medium_graph, frontier_size=30, budget=100)
        sub = s.sample(rng)
        assert np.all(np.diff(sub.vertex_map) > 0)  # sorted unique
        assert sub.vertex_map.max() < medium_graph.num_vertices

    def test_subgraph_is_induced(self, medium_graph, rng):
        s = FrontierSampler(medium_graph, frontier_size=30, budget=120)
        sub = s.sample(rng)
        # Every subgraph edge maps to an original edge.
        for u in range(min(sub.num_vertices, 30)):
            for v in sub.graph.neighbors(u):
                assert medium_graph.has_edge(
                    int(sub.vertex_map[u]), int(sub.vertex_map[v])
                )

    def test_stats_recorded(self, medium_graph, rng):
        s = FrontierSampler(medium_graph, frontier_size=20, budget=60)
        sub = s.sample(rng)
        assert sub.stats["pops"] == 40
        assert sub.stats["distribution_work"] == 40 * 20

    def test_budget_equals_frontier_no_pops(self, medium_graph, rng):
        s = FrontierSampler(medium_graph, frontier_size=25, budget=25)
        sub = s.sample(rng)
        assert sub.stats["pops"] == 0
        assert sub.num_vertices == 25

    def test_degree_biased_pops(self, rng):
        """Popped vertices are degree-biased: high-degree vertices appear
        in the sample more often than uniform selection would produce."""
        from repro.graphs.csr import edges_to_csr

        # Star-of-stars: one mega-hub (degree 60) + chains.
        edges = [[0, i] for i in range(1, 61)]
        edges += [[i, 60 + i] for i in range(1, 61)]
        g = edges_to_csr(np.array(edges), 121)
        s = FrontierSampler(g, frontier_size=10, budget=30)
        hub_count = 0
        trials = 60
        for i in range(trials):
            sub = s.sample(np.random.default_rng(i))
            if 0 in sub.vertex_map:
                hub_count += 1
        # Uniform 30/121 sampling would include the hub ~25% of the time;
        # degree-proportional frontier sampling nearly always finds it.
        assert hub_count / trials > 0.8

    def test_determinism(self, medium_graph):
        s = FrontierSampler(medium_graph, frontier_size=20, budget=80)
        a = s.sample(np.random.default_rng(3))
        b = s.sample(np.random.default_rng(3))
        assert np.array_equal(a.vertex_map, b.vertex_map)

    def test_sample_many(self, medium_graph, rng):
        s = FrontierSampler(medium_graph, frontier_size=20, budget=60)
        subs = s.sample_many(3, rng)
        assert len(subs) == 3
        # Independent draws differ (overwhelmingly likely).
        assert not np.array_equal(subs[0].vertex_map, subs[1].vertex_map)

    def test_connectivity_preservation_vs_uniform(self, rng):
        """Section III-C: frontier samples preserve connectivity better
        than uniform vertex samples of the same size — denser subgraphs
        with a larger connected core."""
        from repro.graphs.stats import largest_component_fraction
        from repro.sampling.extra import RandomNodeSampler

        g = ring_of_cliques(20, 8)
        frontier = FrontierSampler(g, frontier_size=16, budget=80)
        uniform = RandomNodeSampler(g, budget=80)

        def stats(sampler, seeds):
            degs, fracs = [], []
            for i in seeds:
                sub = sampler.sample(np.random.default_rng(i)).graph
                degs.append(sub.average_degree)
                fracs.append(largest_component_fraction(sub))
            return np.mean(degs), np.mean(fracs)

        f_deg, f_frac = stats(frontier, range(6))
        u_deg, u_frac = stats(uniform, range(6))
        assert f_deg > u_deg
        assert f_frac >= u_frac * 0.9  # at least comparable connectivity
