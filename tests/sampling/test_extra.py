"""Tests for the extension samplers (future-work section)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.csr import edges_to_csr
from repro.sampling.extra import (
    ForestFireSampler,
    RandomEdgeSampler,
    RandomNodeSampler,
    RandomWalkSampler,
)


class TestRandomNode:
    def test_exact_budget(self, medium_graph, rng):
        s = RandomNodeSampler(medium_graph, budget=77)
        sub = s.sample(rng)
        assert sub.num_vertices == 77

    def test_no_duplicates(self, medium_graph, rng):
        sub = RandomNodeSampler(medium_graph, budget=50).sample(rng)
        assert np.unique(sub.vertex_map).size == 50

    def test_validation(self, medium_graph):
        with pytest.raises(ValueError):
            RandomNodeSampler(medium_graph, budget=0)
        with pytest.raises(ValueError):
            RandomNodeSampler(medium_graph, budget=medium_graph.num_vertices + 1)


class TestRandomEdge:
    def test_budget_respected(self, medium_graph, rng):
        sub = RandomEdgeSampler(medium_graph, budget=60).sample(rng)
        assert sub.num_vertices == 60

    def test_endpoints_biased_to_degree(self, rng):
        """Edge sampling finds the hub of a star almost surely."""
        edges = [[0, i] for i in range(1, 40)]
        g = edges_to_csr(np.array(edges), 40)
        sub = RandomEdgeSampler(g, budget=10).sample(rng)
        assert 0 in sub.vertex_map

    def test_edgeless_graph_rejected(self):
        g = edges_to_csr(np.empty((0, 2)), 5)
        with pytest.raises(ValueError, match="no edges"):
            RandomEdgeSampler(g, budget=2)


class TestRandomWalk:
    def test_size_bounds(self, medium_graph, rng):
        s = RandomWalkSampler(medium_graph, num_roots=10, walk_length=5)
        sub = s.sample(rng)
        assert 1 <= sub.num_vertices <= 10 * 6

    def test_walk_stays_in_graph(self, clique_ring, rng):
        s = RandomWalkSampler(clique_ring, num_roots=3, walk_length=10)
        sub = s.sample(rng)
        assert sub.vertex_map.max() < clique_ring.num_vertices

    def test_zero_degree_rejected(self, rng):
        g = edges_to_csr(np.array([[0, 1]]), 3)
        with pytest.raises(ValueError, match="min degree"):
            RandomWalkSampler(g, num_roots=2, walk_length=3)

    def test_validation(self, medium_graph):
        with pytest.raises(ValueError):
            RandomWalkSampler(medium_graph, num_roots=0, walk_length=5)


class TestForestFire:
    def test_budget_respected(self, medium_graph, rng):
        sub = ForestFireSampler(medium_graph, budget=90).sample(rng)
        assert sub.num_vertices == 90

    def test_burn_ratio_validation(self, medium_graph):
        with pytest.raises(ValueError):
            ForestFireSampler(medium_graph, budget=10, burn_ratio=1.0)

    def test_locality(self, rng):
        """Forest fire burns locally: on a ring of cliques, sampled
        subgraphs are denser than uniform node samples."""
        from repro.graphs.generators import ring_of_cliques

        g = ring_of_cliques(30, 6)
        ff = ForestFireSampler(g, budget=60).sample(rng).graph
        rn = RandomNodeSampler(g, budget=60).sample(rng).graph
        assert ff.average_degree > rn.average_degree


class TestCommonInterface:
    @pytest.mark.parametrize("budget", [16, 64])
    def test_all_samplers_produce_induced_subgraphs(self, medium_graph, rng, budget):
        samplers = [
            RandomNodeSampler(medium_graph, budget=budget),
            RandomEdgeSampler(medium_graph, budget=budget),
            RandomWalkSampler(medium_graph, num_roots=budget // 4, walk_length=4),
            ForestFireSampler(medium_graph, budget=budget),
        ]
        for s in samplers:
            sub = s.sample(rng)
            assert np.all(np.diff(sub.vertex_map) > 0)
            # Spot-check edge induction.
            for u in range(min(5, sub.num_vertices)):
                for v in sub.graph.neighbors(u):
                    assert medium_graph.has_edge(
                        int(sub.vertex_map[u]), int(sub.vertex_map[v])
                    )
