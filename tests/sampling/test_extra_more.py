"""Tests for the MH-walk and snowball samplers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.csr import edges_to_csr
from repro.sampling.extra import (
    MetropolisHastingsWalkSampler,
    RandomWalkSampler,
    SnowballSampler,
)


class TestMetropolisHastings:
    def test_size_bounds(self, medium_graph, rng):
        s = MetropolisHastingsWalkSampler(medium_graph, num_roots=10, walk_length=6)
        sub = s.sample(rng)
        assert 1 <= sub.num_vertices <= 10 * 7

    def test_less_degree_biased_than_simple_walk(self):
        """MH walks visit high-degree hubs less than simple random walks:
        mean sampled degree must be lower."""
        # Star-of-chains graph: one big hub.
        edges = [[0, i] for i in range(1, 41)]
        edges += [[i, 40 + i] for i in range(1, 41)]
        g = edges_to_csr(np.array(edges), 81)

        def mean_deg(sampler_cls, seeds):
            vals = []
            for i in seeds:
                s = sampler_cls(g, num_roots=6, walk_length=10)
                sub = s.sample(np.random.default_rng(i))
                vals.append(float(g.degrees[sub.vertex_map].mean()))
            return float(np.mean(vals))

        mh = mean_deg(MetropolisHastingsWalkSampler, range(10))
        rw = mean_deg(RandomWalkSampler, range(10))
        assert mh <= rw

    def test_zero_degree_rejected(self, rng):
        g = edges_to_csr(np.array([[0, 1]]), 3)
        with pytest.raises(ValueError):
            MetropolisHastingsWalkSampler(g, num_roots=2, walk_length=2)

    def test_validation(self, medium_graph):
        with pytest.raises(ValueError):
            MetropolisHastingsWalkSampler(medium_graph, num_roots=0, walk_length=5)


class TestSnowball:
    def test_budget_exact(self, medium_graph, rng):
        sub = SnowballSampler(medium_graph, budget=80).sample(rng)
        assert sub.num_vertices == 80

    def test_fanout_bounds_breadth(self, rng):
        """Tight fanout keeps the sample local: higher clustering than
        uniform node sampling on a clique ring."""
        from repro.graphs.generators import ring_of_cliques
        from repro.sampling.extra import RandomNodeSampler

        g = ring_of_cliques(30, 6)
        snow = SnowballSampler(g, budget=48, num_seeds=2, fanout=3).sample(rng)
        rand = RandomNodeSampler(g, budget=48).sample(rng)
        assert snow.graph.average_degree > rand.graph.average_degree

    def test_reseeds_on_exhaustion(self, rng):
        from repro.graphs.csr import edges_to_csr

        # Two disconnected cliques; snowball must reseed to hit the budget.
        import numpy as np

        edges = [[i, j] for i in range(4) for j in range(i + 1, 4)]
        edges += [[4 + i, 4 + j] for i in range(4) for j in range(i + 1, 4)]
        g = edges_to_csr(np.array(edges), 8)
        sub = SnowballSampler(g, budget=8, num_seeds=1, fanout=2).sample(rng)
        assert sub.num_vertices == 8

    def test_validation(self, medium_graph):
        with pytest.raises(ValueError):
            SnowballSampler(medium_graph, budget=0)
        with pytest.raises(ValueError):
            SnowballSampler(medium_graph, budget=10, fanout=0)
