"""Tests for the alias-table sampler and the dynamic-cost contrast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling.alias import AliasTable, dynamic_sampling_cost


class TestAliasTable:
    def test_uniform_weights(self, rng):
        table = AliasTable(np.ones(10))
        draws = table.sample(rng, size=20000)
        counts = np.bincount(draws, minlength=10)
        assert counts.min() > 1600  # expectation 2000

    def test_matches_distribution(self):
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        table = AliasTable(weights)
        rng = np.random.default_rng(0)
        draws = table.sample(rng, size=100_000)
        freq = np.bincount(draws, minlength=4) / 100_000
        assert np.allclose(freq, weights / weights.sum(), atol=0.01)

    def test_zero_weight_never_drawn(self):
        table = AliasTable(np.array([0.0, 1.0, 0.0, 1.0]))
        draws = table.sample(np.random.default_rng(1), size=50_000)
        assert not np.any(draws == 0)
        assert not np.any(draws == 2)

    def test_single_draw(self, rng):
        table = AliasTable(np.array([5.0]))
        assert table.sample(rng) == 0

    def test_skewed_distribution(self):
        weights = np.array([1000.0] + [1.0] * 99)
        table = AliasTable(weights)
        draws = table.sample(np.random.default_rng(2), size=50_000)
        assert np.mean(draws == 0) == pytest.approx(1000 / 1099, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            AliasTable(np.array([]))
        with pytest.raises(ValueError):
            AliasTable(np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            AliasTable(np.zeros(3))

    def test_prob_alias_invariants(self, rng):
        weights = rng.random(64) + 0.01
        table = AliasTable(weights)
        assert np.all(table.prob >= 0) and np.all(table.prob <= 1.0 + 1e-12)
        assert table.alias.min() >= 0 and table.alias.max() < 64


class TestDynamicCost:
    def test_dashboard_wins_at_paper_frontier_size(self):
        """At the paper's m=1000 the Dashboard's incremental update beats
        per-pop alias rebuilds by an order of magnitude."""
        cost = dynamic_sampling_cost(m=1000, pops=7000, avg_degree=30.0, eta=2.0)
        assert cost["dashboard_advantage"] > 4.0
        # And the gap widens on sparser graphs (update term ~ degree).
        sparse = dynamic_sampling_cost(m=1000, pops=7000, avg_degree=10.0, eta=2.0)
        assert sparse["dashboard_advantage"] > cost["dashboard_advantage"]

    def test_alias_competitive_for_tiny_frontiers(self):
        """For very small frontiers on dense graphs the rebuild is cheap —
        the advantage ratio approaches (and can dip below) 1."""
        cost = dynamic_sampling_cost(m=16, pops=100, avg_degree=30.0, eta=2.0)
        assert cost["dashboard_advantage"] < 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            dynamic_sampling_cost(m=0, pops=1, avg_degree=1.0)
