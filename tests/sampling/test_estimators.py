"""Tests for frontier-sample graph-property estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling.dashboard import DashboardFrontierSampler
from repro.sampling.estimators import (
    degree_biased_visits,
    estimate_degree_distribution,
    estimate_mean_degree,
    estimate_vertex_mean,
)


@pytest.fixture(scope="module")
def visits(medium_graph):
    sampler = DashboardFrontierSampler(
        medium_graph, frontier_size=40, budget=300
    )
    rng = np.random.default_rng(0)
    return degree_biased_visits(sampler, 20, rng)


class TestMeanDegree:
    def test_recovers_true_average(self, medium_graph, visits):
        # ~18% tolerance: at this tiny scale (20 subgraphs of an
        # 800-vertex graph) the estimator carries a systematic ~14%
        # small-sample bias on top of seed noise — both engines land at
        # the same value, so the bound guards the estimator, not the RNG
        # stream.
        est = estimate_mean_degree(medium_graph, visits)
        truth = medium_graph.average_degree
        assert est == pytest.approx(truth, rel=0.18)

    def test_debiasing_matters(self, medium_graph, visits):
        """The naive (un-reweighted) visit mean over-estimates the average
        degree (visits are degree-biased); the estimator fixes it."""
        naive = float(medium_graph.degrees[visits].mean())
        est = estimate_mean_degree(medium_graph, visits)
        truth = medium_graph.average_degree
        assert naive > truth * 1.15  # clear bias
        assert abs(est - truth) < abs(naive - truth)

    def test_validation(self, medium_graph):
        with pytest.raises(ValueError):
            estimate_mean_degree(medium_graph, np.array([], dtype=np.int64))


class TestVertexMean:
    def test_constant_function(self, medium_graph, visits):
        est = estimate_vertex_mean(medium_graph, visits, lambda v: np.ones(v.shape))
        assert est == pytest.approx(1.0)

    def test_indicator_recovers_fraction(self, medium_graph, visits):
        """Estimate the fraction of vertices with even id (~0.5)."""
        est = estimate_vertex_mean(
            medium_graph, visits, lambda v: (np.asarray(v) % 2 == 0).astype(float)
        )
        assert est == pytest.approx(0.5, abs=0.1)

    def test_shape_validation(self, medium_graph, visits):
        with pytest.raises(ValueError, match="one value per"):
            estimate_vertex_mean(medium_graph, visits, lambda v: np.ones(3))


class TestDegreeDistribution:
    def test_pmf_normalized(self, medium_graph, visits):
        pmf = estimate_degree_distribution(medium_graph, visits)
        assert pmf.sum() == pytest.approx(1.0)
        assert np.all(pmf >= 0)

    def test_approximates_truth(self, medium_graph, visits):
        pmf = estimate_degree_distribution(medium_graph, visits)
        truth = np.bincount(
            medium_graph.degrees.astype(np.int64), minlength=pmf.size
        ).astype(float)
        truth /= truth.sum()
        k = min(pmf.size, truth.size)
        tv = 0.5 * np.abs(pmf[:k] - truth[:k]).sum()
        assert tv < 0.25


class TestVisits:
    def test_validation(self, medium_graph):
        sampler = DashboardFrontierSampler(
            medium_graph, frontier_size=10, budget=50
        )
        with pytest.raises(ValueError):
            degree_biased_visits(sampler, 0, np.random.default_rng(0))
