"""Tests for the sampler cost model: Eq. 2, Theorem 1, simulated time."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.machine import xeon_40core
from repro.sampling.cost import (
    probe_rounds_expected,
    sampler_cost_eq2,
    serial_sampler_cost,
    simulated_sampler_time,
    theorem1_max_processors,
    theorem1_speedup_bound,
)
from repro.sampling.dashboard import DashboardFrontierSampler


class TestProbeRounds:
    def test_single_probe_geometric(self):
        assert probe_rounds_expected(0.5, 1) == pytest.approx(2.0)
        assert probe_rounds_expected(1.0, 1) == 1.0

    def test_more_probes_fewer_rounds(self):
        r = 1 / 3
        vals = [probe_rounds_expected(r, p) for p in (1, 2, 4, 8)]
        assert all(b < a for a, b in zip(vals, vals[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            probe_rounds_expected(0.0, 1)
        with pytest.raises(ValueError):
            probe_rounds_expected(0.5, 0)


class TestEq2:
    def test_serial_closed_form(self):
        """At p=1 the probe term reduces to eta."""
        n, m, d, eta = 1000, 100, 20.0, 2.0
        expected = (eta + (4 + 3 / (eta - 1)) * d) * (n - m)
        assert serial_sampler_cost(n=n, m=m, d=d, eta=eta) == pytest.approx(expected)

    def test_cost_decreases_with_p(self):
        costs = [
            sampler_cost_eq2(n=1000, m=100, d=20.0, eta=2.0, p=p)
            for p in (1, 2, 4, 8, 16)
        ]
        assert all(b < a for a, b in zip(costs, costs[1:]))

    def test_probe_floor(self):
        """The probe term cannot drop below one round: cost(p) is bounded
        below by (n - m) * COSTrand."""
        c = sampler_cost_eq2(n=1000, m=100, d=20.0, eta=2.0, p=10**6)
        assert c >= (1000 - 100) * 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            sampler_cost_eq2(n=10, m=20, d=5.0, eta=2.0, p=1)
        with pytest.raises(ValueError):
            sampler_cost_eq2(n=20, m=10, d=5.0, eta=1.0, p=1)


class TestTheorem1:
    def test_max_processors(self):
        # eps=0.5, eta=3: p_max = 0.5*d*(4+1.5)-3 = 2.75d - 3
        assert theorem1_max_processors(d=20.0, eta=3.0, epsilon=0.5) == pytest.approx(
            0.5 * 20 * 5.5 - 3
        )

    def test_bound_inside_range(self):
        assert theorem1_speedup_bound(p=10, d=20.0, eta=3.0, epsilon=0.5) == pytest.approx(
            10 / 1.5
        )

    def test_bound_outside_range_none(self):
        assert theorem1_speedup_bound(p=1000, d=20.0, eta=3.0, epsilon=0.5) is None

    def test_eq2_actually_meets_the_guarantee(self):
        """The model speedup is >= p/(1+eps) for all valid p — verifying
        the theorem against its own cost model."""
        d, eta, eps = 30.0, 3.0, 0.5
        p_max = int(theorem1_max_processors(d=d, eta=eta, epsilon=eps))
        serial = sampler_cost_eq2(n=2000, m=200, d=d, eta=eta, p=1)
        for p in range(1, p_max + 1):
            speedup = serial / sampler_cost_eq2(n=2000, m=200, d=d, eta=eta, p=p)
            assert speedup >= p / (1 + eps) - 1e-9, f"violated at p={p}"

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem1_max_processors(d=10.0, eta=2.0, epsilon=0.0)


class TestSimulatedTime:
    @pytest.fixture
    def stats(self, medium_graph):
        s = DashboardFrontierSampler(medium_graph, frontier_size=30, budget=200)
        return s.sample(np.random.default_rng(0)).stats

    def test_avx_speedup_in_plausible_band(self, stats):
        """Paper reports ~4x average AVX gain (Figure 4B shows 4-8)."""
        m = xeon_40core()
        t1 = simulated_sampler_time(stats, m, p_intra=1)
        t8 = simulated_sampler_time(stats, m, p_intra=8)
        assert 2.0 <= t1 / t8 <= 8.0

    def test_contention_slows(self, stats):
        m = xeon_40core()
        t_free = simulated_sampler_time(stats, m, p_intra=8, contention_factor=1.0)
        t_busy = simulated_sampler_time(stats, m, p_intra=8, contention_factor=2.0)
        assert t_busy > t_free

    def test_matches_eq2_order_of_magnitude(self, stats, medium_graph):
        """The measured-run conversion and the closed form agree within a
        small constant factor."""
        m = xeon_40core()
        measured = simulated_sampler_time(stats, m, p_intra=1)
        predicted = sampler_cost_eq2(
            n=200, m=30, d=medium_graph.average_degree, eta=2.0, p=1
        )
        assert 0.3 <= measured / predicted <= 3.0

    def test_validation(self, stats):
        m = xeon_40core()
        with pytest.raises(ValueError):
            simulated_sampler_time(stats, m, p_intra=0)
        with pytest.raises(ValueError):
            simulated_sampler_time(stats, m, p_intra=1, contention_factor=0.5)
