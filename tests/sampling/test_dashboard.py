"""Tests for the Dashboard data structure and its frontier sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.csr import edges_to_csr
from repro.sampling.dashboard import INV, Dashboard, DashboardFrontierSampler
from repro.sampling.frontier import FrontierSampler


class TestDashboardOps:
    def test_add_allocates_contiguous_entries(self):
        db = Dashboard(100)
        db.add(7, 4)
        assert np.all(db.db_vertex[:4] == 7)
        assert db.db_offset[0] == -4
        assert np.array_equal(db.db_offset[1:4], [1, 2, 3])
        assert np.all(db.db_index[:4] == 0)
        assert db.ia_start[0] == 0 and db.ia_alive[0]
        assert db.used == 4 and db.alive_entries == 4

    def test_add_second_vertex_appends(self):
        db = Dashboard(100)
        db.add(7, 4)
        db.add(9, 2)
        assert np.all(db.db_vertex[4:6] == 9)
        assert db.ia_start[1] == 4
        assert db.num_added == 2

    def test_overflow_raises(self):
        db = Dashboard(5)
        db.add(1, 4)
        with pytest.raises(RuntimeError, match="overflow"):
            db.add(2, 3)

    def test_add_validation(self):
        with pytest.raises(ValueError):
            Dashboard(10).add(0, 0)
        with pytest.raises(ValueError):
            Dashboard(0)

    def test_pop_invalidates_all_entries(self, rng):
        db = Dashboard(50)
        db.add(3, 6)
        v = db.pop(rng)
        assert v == 3
        assert np.all(db.db_vertex[:6] == INV)
        assert not db.ia_alive[0]
        assert db.alive_entries == 0
        assert db.num_pops == 1
        assert db.num_probes >= 1

    def test_pop_empty_raises(self, rng):
        with pytest.raises(RuntimeError, match="empty"):
            Dashboard(10).pop(rng)

    def test_pop_degree_proportional(self):
        """A vertex with k entries is popped with probability ~k/total."""
        counts = {1: 0, 2: 0}
        trials = 3000
        for i in range(trials):
            db = Dashboard(100)
            db.add(1, 9)  # 9 entries
            db.add(2, 1)  # 1 entry
            counts[db.pop(np.random.default_rng(i))] += 1
        assert counts[1] / trials == pytest.approx(0.9, abs=0.03)

    def test_cleanup_compacts(self, rng):
        db = Dashboard(60)
        db.add(1, 5)
        db.add(2, 5)
        db.add(3, 5)
        popped = db.pop(rng)
        used_before = db.used
        db.cleanup()
        assert db.used == used_before - 5
        assert db.alive_entries == db.used
        alive = set(db.alive_vertices().tolist())
        assert alive == {1, 2, 3} - {popped}
        assert db.num_cleanups == 1

    def test_cleanup_preserves_offsets(self, rng):
        db = Dashboard(60)
        db.add(1, 3)
        db.add(2, 4)
        db.pop(rng)
        db.cleanup()
        # Remaining vertex's entries still form a valid (-deg, 1, 2, ...)
        # offset block.
        start = db.ia_start[0]
        deg = -db.db_offset[start]
        assert deg in (3, 4)
        assert np.array_equal(
            db.db_offset[start + 1 : start + deg], np.arange(1, deg)
        )

    def test_cleanup_then_pop_still_correct(self, rng):
        db = Dashboard(60)
        for v in range(5):
            db.add(v, 4)
        db.pop(rng)
        db.pop(rng)
        db.cleanup()
        v = db.pop(rng)
        assert 0 <= v < 5

    def test_grow(self):
        db = Dashboard(10)
        db.add(1, 8)
        db.grow(40)
        assert db.capacity == 40
        db.add(2, 20)
        assert db.alive_entries == 28
        with pytest.raises(ValueError):
            db.grow(5)

    def test_valid_ratio(self):
        db = Dashboard(100)
        db.add(1, 25)
        assert db.valid_ratio == pytest.approx(0.25)

    def test_modeled_bytes(self):
        assert Dashboard(1000).modeled_bytes == 8000  # INT32 + 2x INT16


class TestDashboardSampler:
    def test_validation(self, medium_graph):
        with pytest.raises(ValueError, match="eta"):
            DashboardFrontierSampler(
                medium_graph, frontier_size=10, budget=20, eta=1.0
            )
        with pytest.raises(ValueError):
            DashboardFrontierSampler(
                medium_graph, frontier_size=10, budget=20, max_entries_per_vertex=0
            )
        g = edges_to_csr(np.array([[0, 1]]), 3)
        with pytest.raises(ValueError, match="min degree"):
            DashboardFrontierSampler(g, frontier_size=2, budget=3)

    def test_budget_and_induced(self, medium_graph, rng):
        s = DashboardFrontierSampler(medium_graph, frontier_size=30, budget=150)
        sub = s.sample(rng)
        assert 30 <= sub.num_vertices <= 150
        for u in range(min(sub.num_vertices, 20)):
            for v in sub.graph.neighbors(u):
                assert medium_graph.has_edge(
                    int(sub.vertex_map[u]), int(sub.vertex_map[v])
                )

    def test_stats_complete(self, medium_graph, rng):
        s = DashboardFrontierSampler(medium_graph, frontier_size=20, budget=100)
        stats = s.sample(rng).stats
        for key in (
            "pops",
            "probes",
            "cleanups",
            "capacity",
            "rand_ops",
            "mem_ops",
            "vector_elements",
            "vector_chunks",
        ):
            assert key in stats
        assert stats["pops"] == 80
        assert stats["probes"] >= stats["pops"]

    def test_probe_efficiency_matches_eta(self, medium_graph):
        """Expected probes per pop ~ eta (valid ratio ~ 1/eta)."""
        s = DashboardFrontierSampler(
            medium_graph, frontier_size=40, budget=400, eta=2.0
        )
        stats = s.sample(np.random.default_rng(0)).stats
        probes_per_pop = stats["probes"] / stats["pops"]
        assert 1.0 <= probes_per_pop <= 2.0 * 2.5  # loose band around eta

    def test_same_distribution_as_reference(self, medium_graph):
        """Dashboard and reference samplers produce statistically similar
        subgraphs: compare mean sampled-vertex degree over repetitions."""
        m, n = 40, 200
        ref = FrontierSampler(medium_graph, frontier_size=m, budget=n)
        fast = DashboardFrontierSampler(
            medium_graph, frontier_size=m, budget=n, eta=2.0
        )
        deg = medium_graph.degrees

        def mean_sampled_degree(sampler, seeds):
            vals = []
            for seed in seeds:
                sub = sampler.sample(np.random.default_rng(seed))
                vals.append(float(deg[sub.vertex_map].mean()))
            return np.array(vals)

        a = mean_sampled_degree(ref, range(12))
        b = mean_sampled_degree(fast, range(100, 112))
        # Same distribution: means within 3 combined standard errors.
        se = np.sqrt(a.var() / a.size + b.var() / b.size)
        assert abs(a.mean() - b.mean()) < 3 * se + 1e-9

    def test_degree_cap_limits_entries(self, rng):
        # Hub with degree 50 capped to 5 entries.
        edges = [[0, i] for i in range(1, 51)]
        edges += [[i, (i % 50) + 1] for i in range(1, 51)]
        g = edges_to_csr(np.array(edges), 51)
        s = DashboardFrontierSampler(
            g, frontier_size=5, budget=20, max_entries_per_vertex=5
        )
        assert s._entries_for(0) == 5
        sub = s.sample(rng)  # runs without error
        assert sub.num_vertices <= 20

    def test_degree_cap_reduces_hub_pops(self):
        """With the cap, the hub is popped far less often."""
        edges = [[0, i] for i in range(1, 81)]
        edges += [[i, (i % 80) + 1] for i in range(1, 81)]
        g = edges_to_csr(np.array(edges), 81)

        def hub_pop_rate(cap, trials=40):
            hits = 0
            for i in range(trials):
                s = DashboardFrontierSampler(
                    g,
                    frontier_size=8,
                    budget=16,
                    max_entries_per_vertex=cap,
                )
                sub = s.sample(np.random.default_rng(i))
                # Hub sampled (it is vertex 0) if present in vertex_map.
                hits += int(0 in sub.vertex_map)
            return hits / trials

        assert hub_pop_rate(cap=2) <= hub_pop_rate(cap=None) + 0.05

    def test_cleanups_happen_on_small_eta(self, medium_graph):
        s = DashboardFrontierSampler(
            medium_graph, frontier_size=40, budget=400, eta=1.3
        )
        stats = s.sample(np.random.default_rng(1)).stats
        assert stats["cleanups"] >= 1

    def test_determinism(self, medium_graph):
        s = DashboardFrontierSampler(medium_graph, frontier_size=20, budget=80)
        a = s.sample(np.random.default_rng(9))
        b = s.sample(np.random.default_rng(9))
        assert np.array_equal(a.vertex_map, b.vertex_map)
