"""Tests for the Algorithm-4 replay simulation, including Theorem 1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.machine import xeon_40core
from repro.sampling.cost import theorem1_max_processors
from repro.sampling.parallel_sim import (
    SamplerReplay,
    record_replay,
    simulate_replay,
)


@pytest.fixture(scope="module")
def replay(medium_graph):
    return record_replay(
        medium_graph,
        frontier_size=40,
        budget=400,
        eta=3.0,
        rng=np.random.default_rng(0),
    )


class TestRecordReplay:
    def test_event_counts(self, replay):
        assert len(replay.pops) == 360
        assert replay.initial_entries > 0

    def test_valid_ratios_in_range(self, replay):
        for pop in replay.pops:
            assert 0.0 < pop.valid_ratio <= 1.0

    def test_entries_positive(self, replay):
        assert all(p.entries >= 1 for p in replay.pops)
        assert all(p.new_entries >= 1 for p in replay.pops)

    def test_cleanups_decrease_with_eta(self, medium_graph):
        counts = {}
        for eta in (1.5, 4.0):
            r = record_replay(
                medium_graph,
                frontier_size=40,
                budget=400,
                eta=eta,
                rng=np.random.default_rng(1),
            )
            counts[eta] = len(r.cleanups)
        assert counts[4.0] < counts[1.5]

    def test_degree_cap_bounds_entries(self, medium_graph):
        r = record_replay(
            medium_graph,
            frontier_size=40,
            budget=200,
            max_entries_per_vertex=5,
            rng=np.random.default_rng(2),
        )
        assert max(p.entries for p in r.pops) <= 5

    def test_validation(self, medium_graph):
        with pytest.raises(ValueError):
            record_replay(
                medium_graph,
                frontier_size=0,
                budget=10,
                rng=np.random.default_rng(0),
            )


class TestSimulateReplay:
    def test_speedup_monotone_in_workers(self, replay):
        machine = xeon_40core()
        spans = [
            simulate_replay(replay, machine, workers=w).span for w in (1, 2, 4, 8)
        ]
        assert all(b < a for a, b in zip(spans, spans[1:]))

    def test_regions_present(self, replay):
        ex = simulate_replay(replay, xeon_40core(), workers=4)
        names = set(ex.region_breakdown())
        assert {"probe", "invalidate", "append"} <= names

    def test_work_independent_of_workers_except_probing(self, replay):
        """Total work differs between worker counts only through the
        probing term (wasted concurrent probes)."""
        machine = xeon_40core()
        w1 = simulate_replay(replay, machine, workers=1)
        w8 = simulate_replay(replay, machine, workers=8)
        bd1 = w1.region_breakdown()
        # Chunked regions have identical *work*; only probe spans differ.
        assert w1.work - bd1["probe"] == pytest.approx(
            w8.work - w8.region_breakdown()["probe"], rel=1e-9
        )

    def test_theorem1_guarantee_on_measured_workload(self, medium_graph):
        """Theorem 1: speedup >= p / (1 + eps) for p within the bound,
        validated against the replayed (measured) workload rather than the
        closed-form expectation."""
        eta, eps = 3.0, 0.5
        replay = record_replay(
            medium_graph,
            frontier_size=60,
            budget=500,
            eta=eta,
            rng=np.random.default_rng(3),
        )
        machine = xeon_40core()
        d = medium_graph.average_degree
        p_max = int(theorem1_max_processors(d=d, eta=eta, epsilon=eps))
        p_max = min(p_max, machine.num_cores)
        t1 = simulate_replay(replay, machine, workers=1).span
        for p in (2, 4, min(8, p_max)):
            if p > p_max:
                continue
            tp = simulate_replay(replay, machine, workers=p).span
            assert t1 / tp >= p / (1 + eps) - 0.3, f"p={p}: {t1 / tp}"
