"""Tests for the subgraph pool scheduler (Algorithm 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.machine import xeon_40core
from repro.sampling.dashboard import DashboardFrontierSampler
from repro.sampling.extra import RandomNodeSampler
from repro.sampling.scheduler import SubgraphPool


@pytest.fixture
def sampler(medium_graph):
    return DashboardFrontierSampler(medium_graph, frontier_size=20, budget=100)


class TestPool:
    def test_validation(self, sampler):
        with pytest.raises(ValueError):
            SubgraphPool(sampler, xeon_40core(), p_inter=0)

    def test_get_refills_when_empty(self, sampler):
        pool = SubgraphPool(
            sampler, xeon_40core(), p_inter=4, rng=np.random.default_rng(0)
        )
        assert len(pool) == 0
        sub, t = pool.get()
        assert sub.num_vertices > 0
        assert t > 0
        assert len(pool) == 3  # 4 sampled, 1 consumed
        assert len(pool.fills) == 1

    def test_no_refill_while_warm(self, sampler):
        pool = SubgraphPool(
            sampler, xeon_40core(), p_inter=4, rng=np.random.default_rng(0)
        )
        for _ in range(4):
            pool.get()
        assert len(pool.fills) == 1
        pool.get()  # triggers second fill
        assert len(pool.fills) == 2

    def test_amortized_time_is_makespan_fraction(self, sampler):
        pool = SubgraphPool(
            sampler, xeon_40core(), p_inter=8, rng=np.random.default_rng(1)
        )
        _, t = pool.get()
        fill = pool.fills[-1]
        assert t == pytest.approx(fill.simulated_makespan / 8)

    def test_inter_parallel_speedup_near_linear(self, sampler):
        """Filling with 8 instances on 8 cores beats serial by ~8x (LPT of
        homogeneous tasks)."""
        pool = SubgraphPool(
            sampler, xeon_40core(), p_inter=8, rng=np.random.default_rng(2)
        )
        pool.refill()
        fill = pool.fills[-1]
        assert 5.0 <= fill.simulated_speedup <= 8.0

    def test_avx_reduces_fill_time(self, sampler):
        scalar = SubgraphPool(
            sampler, xeon_40core(), p_inter=4, p_intra=1, rng=np.random.default_rng(3)
        )
        vector = SubgraphPool(
            sampler, xeon_40core(), p_inter=4, p_intra=8, rng=np.random.default_rng(3)
        )
        t_scalar = scalar.refill().simulated_makespan
        t_vector = vector.refill().simulated_makespan
        assert t_vector < t_scalar

    def test_unmetered_sampler_uses_fallback_cost(self, medium_graph):
        pool = SubgraphPool(
            RandomNodeSampler(medium_graph, budget=50),
            xeon_40core(),
            p_inter=2,
            rng=np.random.default_rng(4),
        )
        sub, t = pool.get()
        assert sub.num_vertices == 50
        assert t > 0
