"""Sampler-ahead pipeline: prefetcher semantics + trainer integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.obs.trace import walk
from repro.sampling.dashboard import DashboardFrontierSampler
from repro.sampling.pipeline import (
    PrefetchingSubgraphPool,
    PrefetchStats,
    SubgraphPrefetcher,
)
from repro.sampling.scheduler import SubgraphPool
from repro.train.config import TrainConfig
from repro.train.trainer import GraphSamplingTrainer


@pytest.fixture
def sampler(medium_graph):
    return DashboardFrontierSampler(
        medium_graph, frontier_size=20, budget=120
    )


class TestSubgraphPrefetcher:
    def test_determinism_across_instances(self, sampler):
        def collect(n):
            with SubgraphPrefetcher(sampler, depth=2, seed=42) as pf:
                return [pf.get().vertex_map.copy() for _ in range(n)]

        a = collect(4)
        b = collect(4)
        assert len(a) == len(b) == 4
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_determinism_independent_of_depth(self, sampler):
        """The i-th subgraph depends only on the seed stream, never on
        how far ahead the producer ran."""
        with SubgraphPrefetcher(sampler, depth=1, seed=7) as shallow:
            a = [shallow.get().vertex_map.copy() for _ in range(3)]
        with SubgraphPrefetcher(sampler, depth=3, seed=7) as deep:
            b = [deep.get().vertex_map.copy() for _ in range(3)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_stats_accounting(self, sampler):
        with SubgraphPrefetcher(sampler, depth=2, seed=0) as pf:
            for _ in range(5):
                pf.get()
            st = pf.stats
            assert isinstance(st, PrefetchStats)
            assert st.gets == 5
            # depth initial submissions + one top-up per get.
            assert st.submitted == 2 + 5
            assert st.consumer_stall_seconds >= 0.0
            assert st.staleness_seconds >= 0.0
            assert st.producer_stall_seconds <= st.staleness_seconds
            assert st.mean_staleness == pytest.approx(
                st.staleness_seconds / 5
            )

    def test_close_is_idempotent_and_get_after_close_raises(self, sampler):
        pf = SubgraphPrefetcher(sampler, depth=1, seed=0)
        pf.close()
        pf.close()
        with pytest.raises(RuntimeError, match="closed"):
            pf.get()

    def test_validation(self, sampler):
        with pytest.raises(ValueError, match="depth"):
            SubgraphPrefetcher(sampler, depth=0)
        with pytest.raises(ValueError, match="workers"):
            SubgraphPrefetcher(sampler, depth=1, workers=0)

    def test_obs_metrics_emitted(self, sampler):
        obs.reset()
        with obs.enabled():
            with SubgraphPrefetcher(sampler, depth=2, seed=1) as pf:
                for _ in range(3):
                    pf.get()
            snap = obs.metrics.snapshot()
        obs.reset()
        assert snap["counters"]["pipeline.gets"] == 3
        assert snap["counters"]["pipeline.submitted"] == 3
        assert "pipeline.queue_depth" in snap["gauges"]
        hists = snap["histograms"]
        assert hists["pipeline.consumer_stall_seconds"]["count"] == 3
        assert hists["pipeline.staleness_seconds"]["count"] == 3

    @pytest.mark.slow
    def test_process_pool_matches_thread_results(self, sampler):
        """workers>1 goes through mp_pool's pickled-sampler path; the
        seed stream is identical, so the subgraphs are too."""
        with SubgraphPrefetcher(sampler, depth=2, workers=2, seed=5) as pf:
            procs = [pf.get().vertex_map.copy() for _ in range(3)]
        with SubgraphPrefetcher(sampler, depth=2, workers=1, seed=5) as pf:
            threads = [pf.get().vertex_map.copy() for _ in range(3)]
        for x, y in zip(procs, threads):
            assert np.array_equal(x, y)


class TestCrossFamilySeeding:
    """The ISSUE-7 seeding audit: adding sampler families must not shift
    any existing config's subgraph stream.

    Entropy is a pure function of ``(seed, submission_index)``
    (``SeedSequence(seed, spawn_key=(i,))``), so prefetchers never share
    spawn state: interleaving prefetchers of *other* families — created
    before, after, or between gets — cannot perturb a family's draws."""

    def test_entropy_is_stateless(self, sampler):
        with SubgraphPrefetcher(sampler, depth=1, seed=13) as pf:
            # Entropy depends only on (seed, index): recomputing any index
            # gives the same value, in any order.
            values = [pf._entropy_at(i) for i in (3, 0, 3, 1, 0)]
            assert values[0] == values[2]
            assert values[1] == values[4]
            expected = [
                int(
                    np.random.SeedSequence(13, spawn_key=(i,)).generate_state(1)[0]
                )
                for i in (3, 0, 3, 1, 0)
            ]
            assert values == expected

    def test_interleaved_families_do_not_shift_seeds(self, medium_graph):
        """A dashboard prefetcher's stream is identical whether it runs
        alone or interleaved with prefetchers of every other family at
        the same seed."""
        from repro.sampling.zoo import FAMILIES, make_sampler

        def dashboard():
            return make_sampler("dashboard", medium_graph, budget=100)

        with SubgraphPrefetcher(dashboard(), depth=2, seed=21) as pf:
            solo = [pf.get().vertex_map.copy() for _ in range(4)]

        others = [
            SubgraphPrefetcher(
                make_sampler(fam, medium_graph, budget=100),
                depth=2,
                seed=21,
            )
            for fam in FAMILIES
            if fam != "dashboard"
        ]
        try:
            with SubgraphPrefetcher(dashboard(), depth=2, seed=21) as pf:
                interleaved = []
                for other in others:
                    other.get()  # concurrent same-seed activity
                    interleaved.append(pf.get().vertex_map.copy())
                interleaved.append(pf.get().vertex_map.copy())
        finally:
            for other in others:
                other.close()
        for a, b in zip(solo, interleaved):
            assert np.array_equal(a, b)

    def test_all_families_deterministic_through_prefetcher(self, medium_graph):
        from repro.sampling.zoo import FAMILIES, make_sampler

        for fam in FAMILIES:
            def collect():
                s = make_sampler(fam, medium_graph, budget=100)
                with SubgraphPrefetcher(s, depth=2, seed=8) as pf:
                    return [pf.get().vertex_map.copy() for _ in range(3)]

            for a, b in zip(collect(), collect()):
                assert np.array_equal(a, b)


class TestPrefetchingSubgraphPool:
    def test_pool_contract(self, sampler, machine=None):
        from repro.parallel.machine import MachineSpec

        machine = MachineSpec()
        with PrefetchingSubgraphPool(
            sampler, machine, depth=2, seed=3
        ) as pool:
            sub, sim = pool.get()
            assert sub.num_vertices > 0
            assert isinstance(sim, float) and sim > 0.0
            assert pool.stats.gets == 1

    def test_amortized_cost_matches_scheduler_pricing(self, sampler):
        """Same sampler stats priced the same way as SubgraphPool.refill
        at p_inter = workers = 1: identical simulated cost."""
        from repro.parallel.machine import MachineSpec
        from repro.sampling.cost import simulated_sampler_time

        machine = MachineSpec()
        with PrefetchingSubgraphPool(
            sampler, machine, depth=1, seed=9
        ) as pool:
            sub, sim = pool.get()
        expected = simulated_sampler_time(
            sub.stats,
            machine,
            p_intra=1,
            contention_factor=machine.sampler_contention_factor(1),
        )
        assert sim == pytest.approx(expected)

    def test_validation(self, sampler):
        from repro.parallel.machine import MachineSpec

        with pytest.raises(ValueError, match="p_intra"):
            PrefetchingSubgraphPool(
                sampler, MachineSpec(), depth=1, p_intra=0
            )


class TestTrainerIntegration:
    def _config(self, **kw):
        kw.setdefault("hidden_dims", (16,))
        kw.setdefault("frontier_size", 16)
        kw.setdefault("budget", 80)
        kw.setdefault("epochs", 1)
        kw.setdefault("eval_every", 1)
        kw.setdefault("seed", 0)
        return TrainConfig(**kw)

    def test_prefetch_pool_selected(self, ppi_small):
        with GraphSamplingTrainer(
            ppi_small, self._config(prefetch_depth=2)
        ) as trainer:
            assert isinstance(trainer.pool, PrefetchingSubgraphPool)
        with GraphSamplingTrainer(ppi_small, self._config()) as trainer:
            assert isinstance(trainer.pool, SubgraphPool)

    def test_training_with_prefetch_reports_stall_metrics(self, ppi_small):
        obs.reset()
        with obs.enabled():
            with GraphSamplingTrainer(
                ppi_small, self._config(prefetch_depth=2)
            ) as trainer:
                result = trainer.train()
            roots = list(obs.get_tracer().roots)
            snap = obs.metrics.snapshot()
        obs.reset()
        assert result.iterations > 0
        counters = snap["counters"]
        assert counters["pipeline.gets"] == result.iterations
        hists = snap["histograms"]
        assert (
            hists["pipeline.consumer_stall_seconds"]["count"]
            == result.iterations
        )
        spans = [
            sp
            for root in roots
            for sp in walk(root)
            if sp.name == "sampler.pipeline.get"
        ]
        assert len(spans) == result.iterations

    def test_prefetch_run_converges_like_inline_run(self, ppi_small):
        """Both pool flavors train to a finite loss and produce the same
        iteration count; the loss trajectories differ only through RNG
        stream divergence, so just sanity-check magnitudes."""
        with GraphSamplingTrainer(
            ppi_small, self._config(prefetch_depth=2)
        ) as trainer:
            pre = trainer.train()
        inline = GraphSamplingTrainer(ppi_small, self._config()).train()
        assert pre.iterations == inline.iterations
        assert np.isfinite(pre.epochs[-1].train_loss)
        assert np.isfinite(inline.epochs[-1].train_loss)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            self._config(prefetch_depth=-1)
        with pytest.raises(ValueError):
            self._config(prefetch_workers=0)
        with pytest.raises(ValueError):
            self._config(sampler_engine="warp")
