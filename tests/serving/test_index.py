"""Tests for the serving indexes: exactness, recall, chunk invariance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.index import (
    BruteForceIndex,
    ClusterIndex,
    build_index,
    l2_normalize_rows,
    recall_at_k,
)


def clustered_embeddings(n=1200, dim=16, clusters=12, spread=0.15, seed=0):
    rng = np.random.default_rng(seed)
    centers = l2_normalize_rows(rng.standard_normal((clusters, dim)))
    which = rng.integers(0, clusters, size=n)
    return centers[which] + spread * rng.standard_normal((n, dim))


class TestBruteForce:
    def test_matches_manual_oracle(self, rng):
        e = rng.standard_normal((60, 8))
        index = BruteForceIndex(e)
        q = np.arange(10)
        idx, sims = index.search_ids(q, 5)
        normed = l2_normalize_rows(e)
        full = normed[q] @ normed.T
        full[np.arange(10), q] = -np.inf
        for row in range(10):
            expect = np.argsort(-full[row])[:5]
            assert set(idx[row]) == set(expect)
            assert np.all(np.diff(sims[row]) <= 1e-12)

    def test_chunking_is_bit_identical(self, rng):
        e = rng.standard_normal((500, 12))
        q = np.arange(500)
        ref_idx, ref_sims = BruteForceIndex(e, chunk_size=None).search_ids(q, 8)
        for cs in (2, 33, 100, 499, 501):
            idx, sims = BruteForceIndex(e, chunk_size=cs).search_ids(q, 8)
            assert np.array_equal(ref_idx, idx), cs
            assert np.array_equal(ref_sims, sims), cs

    def test_chunking_bounds_the_block(self):
        # No chunk ever has a single row (the GEMV kernel hazard).
        from repro.serving.index import _query_chunks

        for n in (1, 2, 5, 100, 101):
            for cs in (1, 2, 3, 10, 100, None):
                chunks = _query_chunks(n, cs)
                assert sum(len(c) for c in chunks) == n
                assert [c.start for c in chunks] == sorted(
                    c.start for c in chunks
                )
                if cs not in (None, 1) and n > 1:
                    assert all(len(c) > 1 or len(chunks) == 1 for c in chunks)

    def test_search_by_vector(self, rng):
        e = rng.standard_normal((40, 6))
        index = BruteForceIndex(e)
        idx, sims = index.search(e[7] * 3.0, 1)  # scaled copy of row 7
        assert idx[0, 0] == 7
        assert sims[0, 0] == pytest.approx(1.0)

    def test_k_validation_and_clamp(self, rng):
        e = rng.standard_normal((5, 3))
        index = BruteForceIndex(e)
        with pytest.raises(ValueError):
            index.search(e[:2], 0)
        idx, _ = index.search_ids(np.array([0, 1]), 10)
        assert idx.shape == (2, 4)  # n-1 with self excluded

    def test_rows_scanned_accounting(self, rng):
        e = rng.standard_normal((30, 4))
        index = BruteForceIndex(e)
        index.search_ids(np.arange(6), 3)
        assert index.last_rows_scanned == 6 * 30


class TestClusterIndex:
    def test_full_probes_match_exact(self, rng):
        e = clustered_embeddings(n=400, clusters=8)
        exact, _ = BruteForceIndex(e).search_ids(np.arange(50), 10)
        ci = ClusterIndex(e, num_clusters=8, rng=np.random.default_rng(1))
        approx, _ = ci.search_ids(np.arange(50), 10, probes=8)
        assert recall_at_k(approx, exact) == 1.0

    def test_recall_improves_with_probes(self, rng):
        e = clustered_embeddings(n=900, clusters=16, spread=0.5, seed=3)
        q = np.arange(0, 900, 7)
        exact, _ = BruteForceIndex(e).search_ids(q, 10)
        ci = ClusterIndex(e, num_clusters=16, rng=np.random.default_rng(1))
        recalls = []
        for probes in (1, 4, 16):
            approx, _ = ci.search_ids(q, 10, probes=probes)
            recalls.append(recall_at_k(approx, exact))
        assert recalls[0] <= recalls[1] <= recalls[2]
        assert recalls[-1] == 1.0

    def test_probing_scans_fewer_rows(self):
        e = clustered_embeddings(n=800, clusters=16)
        ci = ClusterIndex(e, num_clusters=16, probes=2, rng=np.random.default_rng(0))
        ci.search_ids(np.arange(20), 5)
        assert 0 < ci.last_rows_scanned < 20 * 800 * 0.5

    def test_high_recall_on_clustered_data(self):
        e = clustered_embeddings(n=1000, clusters=10, spread=0.1)
        q = np.arange(100)
        exact, _ = BruteForceIndex(e).search_ids(q, 10)
        ci = ClusterIndex(e, num_clusters=10, probes=2, rng=np.random.default_rng(2))
        approx, _ = ci.search_ids(q, 10)
        assert recall_at_k(approx, exact) >= 0.9

    def test_external_assignments(self, rng):
        # graphs.partition-style externally supplied buckets work too.
        e = clustered_embeddings(n=300, clusters=6)
        assignments = np.arange(300) % 6
        ci = ClusterIndex(e, assignments=assignments)
        assert ci.num_clusters == 6
        idx, _ = ci.search_ids(np.arange(10), 5, probes=6)
        exact, _ = BruteForceIndex(e).search_ids(np.arange(10), 5)
        assert recall_at_k(idx, exact) == 1.0

    def test_excludes_self(self):
        e = clustered_embeddings(n=200, clusters=4)
        ci = ClusterIndex(e, num_clusters=4, probes=4, rng=np.random.default_rng(0))
        q = np.arange(30)
        idx, _ = ci.search_ids(q, 5)
        for i, row in zip(q, idx):
            assert i not in row

    def test_padding_when_candidates_short(self):
        # 1 probe of a tiny cell can yield fewer than k candidates.
        e = clustered_embeddings(n=20, clusters=10, spread=0.01, seed=1)
        ci = ClusterIndex(e, num_clusters=10, probes=1, rng=np.random.default_rng(0))
        idx, sims = ci.search_ids(np.array([0]), 15)
        pad = idx[0] == -1
        assert np.all(np.isneginf(sims[0, pad]))
        assert np.all(np.isfinite(sims[0, ~pad]))

    def test_validation(self, rng):
        e = rng.standard_normal((10, 3))
        with pytest.raises(ValueError):
            ClusterIndex(e, num_clusters=11)
        with pytest.raises(ValueError):
            ClusterIndex(e, assignments=np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            ClusterIndex(np.empty((0, 3)))


class TestRecallHelper:
    def test_exact_oracle(self):
        approx = np.array([[1, 2, 3], [4, 5, 6]])
        exact = np.array([[1, 2, 9], [4, 5, 6]])
        assert recall_at_k(approx, exact) == pytest.approx((2 / 3 + 1.0) / 2)

    def test_padding_ignored(self):
        approx = np.array([[1, -1, -1]])
        exact = np.array([[1, 2, -1]])
        assert recall_at_k(approx, exact) == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            recall_at_k(np.zeros((2, 3)), np.zeros((3, 3)))


class TestFactory:
    def test_build_index(self, rng):
        e = rng.standard_normal((50, 4))
        assert isinstance(build_index(e, "brute"), BruteForceIndex)
        assert isinstance(
            build_index(e, "cluster", num_clusters=5), ClusterIndex
        )
        with pytest.raises(ValueError):
            build_index(e, "kdtree")
