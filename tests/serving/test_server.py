"""Tests for the embedding server's event loop and overload handling.

Every test injects a deterministic ``service_model`` so queueing,
shedding and degradation play out on the virtual clock with no
dependence on real machine speed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    ClusterIndex,
    EmbeddingServer,
    QueryTrace,
    ServerConfig,
)
from repro.serving.index import BruteForceIndex, recall_at_k


def burst_trace(num_queries, num_vertices, k=5, gap=1e-6):
    """All requests arrive (nearly) at once — the overload workload."""
    ids = np.arange(num_queries, dtype=np.int64) % num_vertices
    arrivals = np.arange(num_queries, dtype=np.float64) * gap
    return QueryTrace(query_ids=ids, arrivals=arrivals, k=k, skew=0.0)


def paced_trace(ids, k=5, gap=0.01):
    ids = np.asarray(ids, dtype=np.int64)
    arrivals = np.arange(len(ids), dtype=np.float64) * gap
    return QueryTrace(query_ids=ids, arrivals=arrivals, k=k, skew=0.0)


@pytest.fixture
def embeddings(rng):
    return rng.standard_normal((50, 8))


class TestLoadShedding:
    def test_bounded_queue_sheds_past_capacity(self, embeddings):
        # A 10s service time freezes the server after its first batch, so
        # the burst can only land 1 (first singleton batch) + 4 (queue
        # capacity) requests; the other 15 must be shed, not queued.
        server = EmbeddingServer(
            embeddings,
            config=ServerConfig(
                max_batch=4, max_wait=0.0, queue_capacity=4
            ),
            service_model=lambda batch, rows: 10.0,
        )
        replay = server.serve_trace(burst_trace(20, 50))
        m = replay.metrics
        assert m.shed == 15
        assert m.served == 5
        assert m.served + m.shed == 20
        assert m.shed_rate == pytest.approx(0.75)
        assert replay.batch_stats["shed"] == 15.0

    def test_no_shedding_with_ample_capacity(self, embeddings):
        server = EmbeddingServer(
            embeddings,
            config=ServerConfig(max_batch=4, queue_capacity=100),
            service_model=lambda batch, rows: 1e-3,
        )
        replay = server.serve_trace(burst_trace(20, 50))
        assert replay.metrics.shed == 0
        assert replay.metrics.served == 20
        # The burst coalesces into multi-request batches.
        assert replay.batch_stats["mean_batch_size"] > 1.0

    def test_replay_is_deterministic(self, embeddings):
        def run():
            server = EmbeddingServer(
                embeddings,
                config=ServerConfig(
                    max_batch=4, queue_capacity=8, cache_capacity=64
                ),
                service_model=lambda batch, rows: 5e-3,
            )
            return server.serve_trace(burst_trace(30, 10)).metrics.as_dict()

        assert run() == run()


class TestDeadlineDegradation:
    def make_ann_server(self, deadline):
        rng = np.random.default_rng(0)
        e = rng.standard_normal((400, 8))
        index = ClusterIndex(
            e, num_clusters=16, probes=8, rng=np.random.default_rng(1)
        )
        return EmbeddingServer(
            e,
            config=ServerConfig(
                max_batch=4,
                queue_capacity=1000,
                deadline=deadline,
                min_probes=1,
            ),
            index=index,
            service_model=lambda batch, rows: 1.0,
        )

    def test_late_batches_drop_probes(self):
        server = self.make_ann_server(deadline=0.1)
        replay = server.serve_trace(burst_trace(40, 400))
        m = replay.metrics
        # Every batch after the first starts >= 1s after its head arrived,
        # 10x past the deadline, so probes collapse toward min_probes.
        assert m.degraded_batches >= m.batches - 1 > 0
        assert m.served == 40

    def test_no_deadline_means_no_degradation(self):
        server = self.make_ann_server(deadline=None)
        replay = server.serve_trace(burst_trace(40, 400))
        assert replay.metrics.degraded_batches == 0

    def test_degradation_trades_recall_for_rows(self):
        full = self.make_ann_server(deadline=None)
        degraded = self.make_ann_server(deadline=0.1)
        trace = burst_trace(40, 400, k=10)
        r_full = full.serve_trace(trace, collect_results=True)
        r_deg = degraded.serve_trace(trace, collect_results=True)
        assert (
            r_deg.metrics.rows_scanned < r_full.metrics.rows_scanned
        )


class TestCacheIntegration:
    def test_repeats_hit_after_first_service(self, embeddings):
        server = EmbeddingServer(
            embeddings,
            config=ServerConfig(
                max_batch=4, queue_capacity=32, cache_capacity=64
            ),
            service_model=lambda batch, rows: 1e-4,
        )
        trace = paced_trace([0, 1] * 10, gap=0.01)
        m = server.serve_trace(trace).metrics
        assert m.cache_misses == 2
        assert m.cache_hits == 18
        assert m.hit_rate == pytest.approx(0.9)
        assert m.served == 20 and m.shed == 0

    def test_query_path_uses_cache(self, embeddings):
        server = EmbeddingServer(
            embeddings, config=ServerConfig(cache_capacity=16)
        )
        first = server.query(3, k=5)
        second = server.query(3, k=5)
        assert np.array_equal(first, second)
        assert server.cache.hits == 1
        assert server.cache.misses == 1

    def test_refresh_invalidates_cache_and_rebuilds_index(self):
        # NN of vertex 0 is 1 before the refresh and 2 after.
        before = np.array([[1.0, 0.0], [0.99, 0.14], [0.0, 1.0]])
        after = before[[0, 2, 1]]
        server = EmbeddingServer(
            before, config=ServerConfig(cache_capacity=16)
        )
        assert server.query(0, k=1)[0] == 1
        server.refresh_embeddings(after)
        assert server.refreshes == 1
        assert len(server.cache) == 0
        assert server.query(0, k=1)[0] == 2

    def test_refresh_preserves_index_structure(self, rng):
        e = rng.standard_normal((60, 6))
        server = EmbeddingServer(
            e,
            index="cluster",
            index_kwargs={"num_clusters": 6, "probes": 3},
        )
        server.refresh_embeddings(rng.standard_normal((60, 6)))
        assert isinstance(server.index, ClusterIndex)
        assert server.index.num_clusters == 6
        assert server.index.default_probes == 3


class TestResultsAndRecall:
    def test_collect_results_matches_exact(self, embeddings):
        server = EmbeddingServer(
            embeddings,
            config=ServerConfig(max_batch=8, queue_capacity=100),
            service_model=lambda batch, rows: 1e-4,
        )
        trace = burst_trace(20, 50, k=5)
        replay = server.serve_trace(trace, collect_results=True)
        assert sorted(replay.results) == list(range(20))
        exact, _ = BruteForceIndex(embeddings).search_ids(
            trace.query_ids, 5
        )
        approx = np.stack([replay.results[i] for i in range(20)])
        assert recall_at_k(approx, exact) == 1.0

    def test_latency_percentiles_ordered(self, embeddings):
        server = EmbeddingServer(
            embeddings,
            config=ServerConfig(max_batch=4, queue_capacity=100),
            service_model=lambda batch, rows: 2e-3,
        )
        m = server.serve_trace(burst_trace(30, 50)).metrics
        row = m.as_dict()
        assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
        assert m.throughput > 0
