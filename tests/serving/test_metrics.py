"""Tests for serving metrics — percentiles checked against numpy oracles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.metrics import LatencyHistogram, ServingMetrics


class TestLatencyHistogram:
    def test_percentiles_match_numpy_oracle(self, rng):
        samples = rng.exponential(0.01, size=500)
        hist = LatencyHistogram()
        hist.extend(samples)
        for q in (0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0):
            assert hist.percentile(q) == pytest.approx(
                float(np.percentile(samples, q)), rel=1e-12
            )

    def test_small_sample_interpolation(self):
        hist = LatencyHistogram()
        hist.extend([1.0, 2.0, 3.0, 4.0])
        assert hist.percentile(50.0) == pytest.approx(2.5)
        assert hist.percentile(25.0) == pytest.approx(1.75)

    def test_single_sample(self):
        hist = LatencyHistogram()
        hist.record(0.25)
        for q in (0.0, 50.0, 99.0, 100.0):
            assert hist.percentile(q) == 0.25

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert len(hist) == 0
        assert np.isnan(hist.percentile(50.0))
        assert np.isnan(hist.mean())
        assert np.isnan(hist.max())

    def test_mean_and_max(self):
        hist = LatencyHistogram()
        hist.extend([0.1, 0.2, 0.6])
        assert hist.mean() == pytest.approx(0.3)
        assert hist.max() == pytest.approx(0.6)

    def test_summary_scaling(self):
        hist = LatencyHistogram()
        hist.extend([0.001, 0.002, 0.003])
        summary = hist.summary(scale=1000.0)
        assert summary["p50"] == pytest.approx(2.0)
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["count"] == 3

    def test_percentile_validation(self):
        hist = LatencyHistogram()
        hist.record(1.0)
        with pytest.raises(ValueError):
            hist.percentile(-1.0)
        with pytest.raises(ValueError):
            hist.percentile(101.0)
        with pytest.raises(ValueError):
            hist.record(-0.5)


class TestServingMetrics:
    def test_derived_rates(self):
        m = ServingMetrics()
        m.served = 8
        m.shed = 2
        m.cache_hits = 3
        m.cache_misses = 9
        assert m.offered == 10
        assert m.shed_rate == pytest.approx(0.2)
        assert m.hit_rate == pytest.approx(0.25)

    def test_throughput_uses_wall_span(self):
        m = ServingMetrics()
        m.served = 100
        m.first_arrival = 2.0
        m.last_completion = 4.0
        assert m.span == pytest.approx(2.0)
        assert m.throughput == pytest.approx(50.0)

    def test_zero_guards(self):
        m = ServingMetrics()
        assert m.throughput == 0.0
        assert m.hit_rate == 0.0
        assert m.shed_rate == 0.0

    def test_as_dict_latencies_in_ms(self):
        m = ServingMetrics()
        m.latency.extend([0.010, 0.020, 0.030])
        m.served = 3
        m.first_arrival = 0.0
        m.last_completion = 0.030
        row = m.as_dict()
        assert row["p50_ms"] == pytest.approx(20.0)
        assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
        assert row["served"] == 3
        assert "shed" in row
        # recall_at_k only appears once it has been scored.
        assert "recall_at_k" not in row
        m.recall_at_k = 0.95
        assert m.as_dict()["recall_at_k"] == pytest.approx(0.95)
