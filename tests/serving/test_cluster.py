"""The sharded, replicated ClusterServer: routing, hedging, upserts."""

from __future__ import annotations

import numpy as np
import pytest

import repro.obs as obs
from repro.obs import metrics as obs_metrics
from repro.serving.cluster import (
    ClusterConfig,
    ClusterServer,
    ShardedIndex,
    partition_vertices,
)
from repro.serving.index import BruteForceIndex
from repro.serving.upsert import SlabUpsertProducer
from repro.serving.workload import QueryTrace, zipf_trace


def _embeddings(n=600, d=12, seed=0):
    return np.random.default_rng(seed).standard_normal((n, d))


def _trace(n=300, vertices=600, rate=2000.0, seed=1):
    return zipf_trace(
        n, vertices, skew=1.1, rate=rate, k=8, rng=np.random.default_rng(seed)
    )


UNIFORM = lambda shard, replica, batch, rows: 1e-4 + 1e-9 * rows  # noqa: E731


def _straggler(slow_replica=1, factor=50.0):
    def model(shard, replica, batch, rows):
        base = 1e-3
        return base * factor if replica == slow_replica else base

    return model


class TestPartitionVertices:
    def test_kmeans_partition_covers_every_vertex(self):
        emb = _embeddings()
        assignment = partition_vertices(
            emb, num_shards=4, rng=np.random.default_rng(0)
        )
        assert assignment.shape == (len(emb),)
        assert assignment.min() >= 0 and assignment.max() < 4

    def test_graph_method_requires_graph(self):
        with pytest.raises(ValueError):
            partition_vertices(_embeddings(), num_shards=2, method="graph")

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            partition_vertices(_embeddings(), num_shards=2, method="nope")


class TestShardedIndexExactness:
    def test_full_fanout_matches_unsharded_brute_force(self):
        emb = _embeddings()
        assignment = partition_vertices(
            emb, num_shards=4, rng=np.random.default_rng(0)
        )
        sharded = ShardedIndex(emb, assignment)
        reference = BruteForceIndex(emb)
        qids = np.arange(0, 600, 7)
        got_ids, got_sims = sharded.search_ids(qids, 10, fanout=4)
        want_ids, want_sims = reference.search_ids(qids, 10)
        assert np.array_equal(got_ids, want_ids)
        assert np.array_equal(got_sims, want_sims)

    def test_pruned_fanout_scans_fewer_rows(self):
        emb = _embeddings()
        assignment = partition_vertices(
            emb, num_shards=4, rng=np.random.default_rng(0)
        )
        sharded = ShardedIndex(emb, assignment)
        qids = np.arange(64)
        sharded.search_ids(qids, 10, fanout=4)
        full_rows = sharded.last_rows_scanned
        sharded.search_ids(qids, 10, fanout=1)
        assert sharded.last_rows_scanned < full_rows

    def test_replace_shard_changes_served_vectors(self):
        emb = _embeddings()
        assignment = partition_vertices(
            emb, num_shards=2, rng=np.random.default_rng(0)
        )
        sharded = ShardedIndex(emb, assignment)
        members = sharded.router.members(0)
        new_rows = _embeddings(seed=9)[: len(members)]
        sharded.replace_shard(0, members, new_rows)
        # The swapped-in shard serves the new rows: the sharded index now
        # matches one built from scratch on the post-upsert matrix.
        rebuilt = emb.copy()
        rebuilt[members] = new_rows
        want = ShardedIndex(rebuilt, assignment)
        qids = np.arange(0, len(emb), 11)
        got_ids, _ = sharded.search_ids(qids, 5, fanout=2)
        want_ids, _ = want.search_ids(qids, 5, fanout=2)
        assert np.array_equal(got_ids, want_ids)


class TestClusterReplay:
    def test_replay_is_deterministic(self):
        emb, trace = _embeddings(), _trace()
        replays = []
        for _ in range(2):
            server = ClusterServer(
                emb,
                config=ClusterConfig(num_shards=4, replicas=2),
                service_model=UNIFORM,
                rng=np.random.default_rng(0),
            )
            replays.append(server.serve_trace(trace, collect_results=True))
        a, b = replays
        assert a.metrics.latency.samples == b.metrics.latency.samples
        assert sorted(a.results) == sorted(b.results)
        for seq in a.results:
            assert np.array_equal(a.results[seq], b.results[seq])

    def test_request_conservation(self):
        emb, trace = _embeddings(), _trace()
        server = ClusterServer(
            emb,
            config=ClusterConfig(num_shards=4, replicas=2),
            service_model=UNIFORM,
            rng=np.random.default_rng(0),
        )
        replay = server.serve_trace(trace)
        m = replay.metrics
        assert m.served + m.shed == len(trace)
        assert m.shed == 0
        assert replay.stats["mean_fanout"] == pytest.approx(2.0)

    def test_results_match_offline_search(self):
        emb, trace = _embeddings(), _trace(n=120)
        server = ClusterServer(
            emb,
            config=ClusterConfig(num_shards=3, replicas=2, fanout=3),
            service_model=UNIFORM,
            rng=np.random.default_rng(0),
        )
        replay = server.serve_trace(trace, collect_results=True)
        reference = BruteForceIndex(emb)
        for seq, ids in replay.results.items():
            want, _ = reference.search_ids(
                np.array([trace.query_ids[seq]]), trace.k
            )
            assert np.array_equal(ids, want[0])

    def test_overload_sheds_and_conserves(self):
        emb = _embeddings()
        trace = _trace(n=400, rate=1e6, seed=2)
        server = ClusterServer(
            emb,
            config=ClusterConfig(
                num_shards=2, replicas=1, fanout=2,
                max_batch=4, queue_capacity=4,
            ),
            service_model=lambda s, r, b, rows: 0.05,
            rng=np.random.default_rng(0),
        )
        replay = server.serve_trace(trace, collect_results=True)
        m = replay.metrics
        assert m.shed > 0
        assert m.served + m.shed == len(trace)
        # Shed queries produce no results; served ones all do.
        assert len(replay.results) == m.served - m.cache_hits or len(
            replay.results
        ) == m.served

    def test_query_convenience_path(self):
        emb = _embeddings()
        server = ClusterServer(
            emb,
            config=ClusterConfig(num_shards=3, replicas=1, cache_capacity=8),
            service_model=UNIFORM,
            rng=np.random.default_rng(0),
        )
        first = server.query(5, k=6)
        again = server.query(5, k=6)
        assert np.array_equal(first, again)
        assert server.cache.hits == 1


class TestHedging:
    def test_hedging_lowers_p99_against_straggler(self):
        emb = _embeddings()
        trace = _trace(n=400, rate=4000.0, seed=3)
        replays = {}
        for hedged in (False, True):
            server = ClusterServer(
                emb,
                config=ClusterConfig(
                    num_shards=4,
                    replicas=2,
                    hedge=hedged,
                    hedge_fallback=0.004,
                    hedge_min_samples=10**9,  # pin the fixed threshold
                ),
                service_model=_straggler(),
                rng=np.random.default_rng(0),
            )
            replays[hedged] = server.serve_trace(trace, collect_results=True)
        p99 = {
            h: r.metrics.latency.percentile(99.0) for h, r in replays.items()
        }
        assert replays[True].stats["hedges"] > 0
        assert replays[True].stats["hedge_wins"] > 0
        assert p99[True] < p99[False]
        # Hedging changes timing, never answers.
        for seq in replays[False].results:
            assert np.array_equal(
                replays[False].results[seq], replays[True].results[seq]
            )

    def test_no_hedge_without_spare_replica(self):
        emb = _embeddings()
        trace = _trace(n=200, seed=4)
        server = ClusterServer(
            emb,
            config=ClusterConfig(
                num_shards=2, replicas=1, hedge=True, hedge_fallback=1e-6,
                hedge_min_samples=10**9,
            ),
            service_model=_straggler(),
            rng=np.random.default_rng(0),
        )
        replay = server.serve_trace(trace)
        assert replay.stats["hedges"] == 0
        assert replay.metrics.served == len(trace)


class TestStreamingUpserts:
    def _server_with_upserts(self, emb, *, rounds=2, interval=0.02, **cfg_kw):
        server = ClusterServer(
            emb,
            config=ClusterConfig(
                num_shards=4, replicas=2, cache_capacity=64, **cfg_kw
            ),
            service_model=UNIFORM,
            rng=np.random.default_rng(0),
        )
        server.upserts = SlabUpsertProducer(
            emb,
            server.sharded.assignment,
            start=0.0,
            interval=interval,
            rounds=rounds,
            seed=11,
        )
        return server

    def test_all_slabs_applied_and_staleness_recorded(self):
        emb = _embeddings()
        trace = _trace(n=400, rate=2000.0, seed=5)
        server = self._server_with_upserts(emb)
        replay = server.serve_trace(trace)
        assert server.upserts_applied == 8
        assert replay.stats["upserts_applied"] == 8
        assert replay.stats["max_staleness_s"] > 0.0
        # Every shard's load stamp advanced to its round-1 slab.
        assert server.shard_loaded_at == [
            pytest.approx(0.02 * (4 + s)) for s in range(4)
        ]

    def test_upsert_bumps_only_own_shard_cache_group(self):
        emb = _embeddings()
        server = self._server_with_upserts(emb, rounds=1, interval=1.0)
        cache = server.cache
        cache.put("a", 1, groups=(0,))
        cache.put("b", 2, groups=(3,))
        server._apply_upserts(now=0.0, stats={"upserts_applied": 0})
        assert cache.get("a") is None  # shard 0 slab landed at t=0
        assert cache.get("b") == 2

    def test_upserts_bound_staleness(self):
        emb = _embeddings()
        trace = _trace(n=400, rate=1500.0, seed=6)
        with_upserts = self._server_with_upserts(emb, rounds=3, interval=0.01)
        replay = with_upserts.serve_trace(trace)
        without = ClusterServer(
            emb,
            config=ClusterConfig(num_shards=4, replicas=2, cache_capacity=64),
            service_model=UNIFORM,
            rng=np.random.default_rng(0),
        )
        stale_replay = without.serve_trace(trace)
        assert (
            replay.stats["max_staleness_s"]
            < stale_replay.stats["max_staleness_s"]
        )


class TestObsIntegration:
    def test_counters_and_histograms_emitted(self):
        emb = _embeddings()
        trace = _trace(n=200, seed=7)
        with obs.enabled():
            obs_metrics.reset()
            server = ClusterServer(
                emb,
                config=ClusterConfig(
                    num_shards=3, replicas=2, cache_capacity=32
                ),
                service_model=UNIFORM,
                rng=np.random.default_rng(0),
            )
            server.serve_trace(trace)
            snap = obs_metrics.snapshot()
        counters, hists = snap["counters"], snap["histograms"]
        assert counters["cluster.requests"] == len(trace)
        assert counters["cluster.served"] == len(trace)
        assert counters["cluster.batches"] > 0
        assert hists["cluster.latency_seconds"]["count"] == len(trace)
        for s in range(3):
            assert f"cluster.shard.{s}.latency_seconds" in hists
        assert hists["cluster.fanout_width"]["count"] > 0
        assert hists["cluster.replica_queue_depth"]["count"] > 0

    def test_disabled_obs_emits_nothing(self):
        emb = _embeddings()
        trace = _trace(n=100, seed=8)
        obs_metrics.reset()
        server = ClusterServer(
            emb,
            config=ClusterConfig(num_shards=2, replicas=1),
            service_model=UNIFORM,
            rng=np.random.default_rng(0),
        )
        server.serve_trace(trace)
        snap = obs_metrics.snapshot()
        assert not snap["counters"]
        assert not snap["histograms"]


@pytest.mark.slow
class TestSoak:
    """Long replays: staleness stays bounded over many refresh rounds."""

    def test_diurnal_soak_keeps_staleness_bounded(self):
        from repro.serving.workload import diurnal_trace

        emb = _embeddings(n=1200, d=16, seed=20)
        trace = diurnal_trace(
            4000,
            1200,
            period=1.0,
            low_rate=500.0,
            high_rate=5000.0,
            k=8,
            rng=np.random.default_rng(21),
        )
        server = ClusterServer(
            emb,
            config=ClusterConfig(
                num_shards=4, replicas=2, cache_capacity=256,
                queue_capacity=1024,
            ),
            service_model=UNIFORM,
            rng=np.random.default_rng(22),
        )
        rounds = 8
        # Schedule all slabs inside the trace span so every one lands.
        span = float(trace.arrivals[-1] - trace.arrivals[0])
        interval = 0.8 * span / (rounds * 4)
        server.upserts = SlabUpsertProducer(
            emb,
            server.sharded.assignment,
            start=0.0,
            interval=interval,
            rounds=rounds,
            seed=23,
            prefetch=True,
        )
        replay = server.serve_trace(trace)
        assert replay.metrics.served + replay.metrics.shed == len(trace)
        assert replay.stats["upserts_applied"] == rounds * 4
        # Staleness can never exceed one full refresh cycle, or — after
        # the producer drains — the tail time since the *earliest* final
        # round slab (shard 0's, at (rounds-1) * 4 * interval).
        stalest_refresh = (rounds - 1) * 4 * interval
        bound = max(4 * interval, span - stalest_refresh) + 0.1
        assert replay.stats["max_staleness_s"] <= bound

    def test_repeated_refresh_rounds_keep_results_consistent(self):
        """After every slab lands, served answers match offline search
        on the producer's final matrix."""
        emb = _embeddings(n=500, d=8, seed=30)
        server = ClusterServer(
            emb,
            config=ClusterConfig(num_shards=3, replicas=1, fanout=3),
            service_model=UNIFORM,
            rng=np.random.default_rng(31),
        )
        producer = SlabUpsertProducer(
            emb, server.sharded.assignment, start=0.0, interval=0.001,
            rounds=4, seed=32,
        )
        shadow = SlabUpsertProducer(
            emb, server.sharded.assignment, start=0.0, interval=0.001,
            rounds=4, seed=32,
        )
        final = emb.astype(np.float64).copy()
        for slab in shadow.pending(1e9):
            final[slab.vertex_ids] = slab.vectors
        server.upserts = producer
        # All slabs land before the first query arrives.
        trace = zipf_trace(
            150, 500, skew=1.1, rate=100.0, k=6,
            rng=np.random.default_rng(33),
        )
        trace = QueryTrace(
            query_ids=trace.query_ids,
            arrivals=trace.arrivals + 1.0,
            k=trace.k,
            skew=trace.skew,
        )
        replay = server.serve_trace(trace, collect_results=True)
        reference = BruteForceIndex(final)
        for seq, ids in replay.results.items():
            want, _ = reference.search_ids(
                np.array([trace.query_ids[seq]]), trace.k
            )
            assert np.array_equal(ids, want[0])
