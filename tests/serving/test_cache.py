"""Tests for the generational LRU result cache."""

from __future__ import annotations

import pytest

from repro.serving.cache import GenerationalCache, LRUCache


class TestLRUCache:
    def test_basic_put_get(self):
        cache = LRUCache(4)
        cache.put(("q", 10), "value")
        assert cache.get(("q", 10)) == "value"
        assert cache.get(("other", 10)) is None
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a" — "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite refreshes "a"
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 10

    def test_invalidate_clears_and_bumps_generation(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.invalidate()
        assert cache.get("a") is None
        assert len(cache) == 0
        cache.put("a", 2)
        assert cache.get("a") == 2

    def test_hit_rate(self):
        cache = LRUCache(4)
        assert cache.hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("miss")
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_stats_dict(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1
        assert stats["capacity"] == 2


class TestKeyedGenerations:
    def test_lrucache_is_generational_cache(self):
        # The single-node server's import keeps working.
        assert LRUCache is GenerationalCache

    def test_group_invalidation_kills_only_stamped_entries(self):
        cache = GenerationalCache(8)
        cache.put("a", 1, groups=(0,))
        cache.put("b", 2, groups=(1,))
        cache.put("c", 3)  # no groups: survives any shard refresh
        cache.invalidate(group=0)
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_multi_group_entry_dies_if_any_group_moves(self):
        cache = GenerationalCache(8)
        cache.put("fanout", "merged", groups=(0, 1, 2))
        cache.invalidate(group=2)
        assert cache.get("fanout") is None

    def test_group_invalidation_is_lazy(self):
        cache = GenerationalCache(8)
        cache.put("a", 1, groups=(0,))
        cache.invalidate(group=0)
        # Entry still occupies a slot until touched.
        assert len(cache) == 1
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_reinsert_after_group_bump_is_fresh(self):
        cache = GenerationalCache(8)
        cache.put("a", 1, groups=(0,))
        cache.invalidate(group=0)
        cache.put("a", 2, groups=(0,))
        assert cache.get("a") == 2

    def test_global_invalidate_still_kills_everything(self):
        cache = GenerationalCache(8)
        cache.put("a", 1, groups=(0,))
        cache.put("b", 2)
        cache.invalidate()
        assert cache.get("a") is None
        assert cache.get("b") is None
        assert len(cache) == 0

    def test_group_generation_counter(self):
        cache = GenerationalCache(4)
        assert cache.group_generation("s0") == 0
        cache.invalidate(group="s0")
        cache.invalidate(group="s0")
        assert cache.group_generation("s0") == 2
        assert cache.group_generation("s1") == 0

    def test_contains_respects_group_generations(self):
        cache = GenerationalCache(4)
        cache.put("a", 1, groups=(0,))
        assert "a" in cache
        cache.invalidate(group=0)
        assert "a" not in cache

    def test_stats_counts_group_invalidations(self):
        cache = GenerationalCache(4)
        cache.invalidate(group=0)
        cache.invalidate()
        stats = cache.stats()
        assert stats["group_invalidations"] == 1.0
        assert stats["invalidations"] == 1.0
