"""Tests for the LRU result cache."""

from __future__ import annotations

import pytest

from repro.serving.cache import LRUCache


class TestLRUCache:
    def test_basic_put_get(self):
        cache = LRUCache(4)
        cache.put(("q", 10), "value")
        assert cache.get(("q", 10)) == "value"
        assert cache.get(("other", 10)) is None
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a" — "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite refreshes "a"
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 10

    def test_invalidate_clears_and_bumps_generation(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.invalidate()
        assert cache.get("a") is None
        assert len(cache) == 0
        cache.put("a", 2)
        assert cache.get("a") == 2

    def test_hit_rate(self):
        cache = LRUCache(4)
        assert cache.hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("miss")
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_stats_dict(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1
        assert stats["capacity"] == 2
