"""Tests for the Zipf-skewed query trace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.workload import QueryTrace, zipf_trace


class TestZipfTrace:
    def test_shapes_and_bounds(self):
        trace = zipf_trace(200, 50, rate=100.0, rng=np.random.default_rng(0))
        assert len(trace) == 200
        assert trace.query_ids.min() >= 0
        assert trace.query_ids.max() < 50
        assert trace.arrivals[0] == 0.0
        assert np.all(np.diff(trace.arrivals) >= 0.0)

    def test_determinism(self):
        a = zipf_trace(100, 30, rng=np.random.default_rng(7))
        b = zipf_trace(100, 30, rng=np.random.default_rng(7))
        assert np.array_equal(a.query_ids, b.query_ids)
        assert np.array_equal(a.arrivals, b.arrivals)

    def test_skew_concentrates_popularity(self):
        rng = np.random.default_rng(0)
        skewed = zipf_trace(5000, 1000, skew=1.5, rng=rng)
        rng = np.random.default_rng(0)
        flat = zipf_trace(5000, 1000, skew=0.0, rng=rng)

        def top10_share(trace):
            _, counts = np.unique(trace.query_ids, return_counts=True)
            counts = np.sort(counts)[::-1]
            return counts[:10].sum() / counts.sum()

        assert top10_share(skewed) > 2.0 * top10_share(flat)

    def test_offered_rate_close_to_target(self):
        trace = zipf_trace(
            5000, 100, rate=250.0, rng=np.random.default_rng(1)
        )
        assert trace.offered_rate == pytest.approx(250.0, rel=0.1)

    def test_rescaled_changes_rate_only(self):
        trace = zipf_trace(300, 40, rate=100.0, rng=np.random.default_rng(2))
        faster = trace.rescaled(400.0)
        assert np.array_equal(trace.query_ids, faster.query_ids)
        assert faster.offered_rate == pytest.approx(400.0, rel=1e-9)

    def test_unique_queries(self):
        trace = zipf_trace(500, 20, rng=np.random.default_rng(3))
        uniq = trace.unique_queries()
        assert np.array_equal(uniq, np.unique(trace.query_ids))

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_trace(0, 10)
        with pytest.raises(ValueError):
            zipf_trace(10, 0)
        with pytest.raises(ValueError):
            zipf_trace(10, 10, rate=0.0)
        with pytest.raises(ValueError):
            zipf_trace(10, 10, skew=-0.5)
        with pytest.raises(ValueError):
            QueryTrace(
                query_ids=np.array([0, 1]),
                arrivals=np.array([0.0]),
                k=10,
                skew=1.0,
            )
        with pytest.raises(ValueError):
            trace = zipf_trace(10, 10)
            trace.rescaled(0.0)


class TestModulatedTrace:
    def test_shapes_and_monotone_arrivals(self):
        from repro.serving.workload import modulated_trace

        trace = modulated_trace(
            500,
            100,
            segments=((1.0, 100.0), (0.5, 1000.0)),
            rng=np.random.default_rng(0),
        )
        assert len(trace) == 500
        assert np.all(np.diff(trace.arrivals) >= 0.0)
        assert trace.query_ids.min() >= 0 and trace.query_ids.max() < 100

    def test_determinism(self):
        from repro.serving.workload import modulated_trace

        kwargs = dict(segments=((0.2, 500.0), (0.2, 50.0)))
        a = modulated_trace(300, 40, rng=np.random.default_rng(3), **kwargs)
        b = modulated_trace(300, 40, rng=np.random.default_rng(3), **kwargs)
        assert np.array_equal(a.query_ids, b.query_ids)
        assert np.array_equal(a.arrivals, b.arrivals)

    def test_segment_rates_realized(self):
        from repro.serving.workload import modulated_trace

        trace = modulated_trace(
            4000,
            1000,
            segments=((1.0, 200.0), (1.0, 2000.0)),
            rng=np.random.default_rng(1),
        )
        cycle = 2.0
        phase = np.mod(trace.arrivals, cycle)
        slow = np.count_nonzero(phase < 1.0)
        fast = np.count_nonzero(phase >= 1.0)
        # 10x rate ratio should survive sampling noise by a wide margin.
        assert fast > 5 * slow

    def test_validation(self):
        from repro.serving.workload import modulated_trace

        with pytest.raises(ValueError):
            modulated_trace(10, 10, segments=())
        with pytest.raises(ValueError):
            modulated_trace(10, 10, segments=((1.0, 0.0),))
        with pytest.raises(ValueError):
            modulated_trace(10, 10, segments=((0.0, 5.0),))


class TestBurstyAndDiurnalTraces:
    def test_bursty_bursts_are_denser(self):
        from repro.serving.workload import bursty_trace

        trace = bursty_trace(
            3000,
            500,
            base_rate=200.0,
            burst_rate=4000.0,
            base_seconds=1.0,
            burst_seconds=0.25,
            rng=np.random.default_rng(2),
        )
        assert np.all(np.diff(trace.arrivals) >= 0.0)
        phase = np.mod(trace.arrivals, 1.25)
        base_count = np.count_nonzero(phase < 1.0)
        burst_count = np.count_nonzero(phase >= 1.0)
        base_rate = base_count / 1.0
        burst_rate = burst_count / 0.25
        assert burst_rate > 5 * base_rate

    def test_diurnal_peak_beats_trough(self):
        from repro.serving.workload import diurnal_trace

        period = 10.0
        trace = diurnal_trace(
            4000,
            500,
            period=period,
            low_rate=50.0,
            high_rate=1500.0,
            rng=np.random.default_rng(4),
        )
        assert np.all(np.diff(trace.arrivals) >= 0.0)
        phase = np.mod(trace.arrivals, period) / period
        # The sinusoid troughs at phase 0 and peaks at phase 0.5.
        trough = np.count_nonzero((phase < 0.1) | (phase > 0.9))
        peak = np.count_nonzero(np.abs(phase - 0.5) < 0.1)
        assert peak > 3 * trough
