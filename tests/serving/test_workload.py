"""Tests for the Zipf-skewed query trace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.workload import QueryTrace, zipf_trace


class TestZipfTrace:
    def test_shapes_and_bounds(self):
        trace = zipf_trace(200, 50, rate=100.0, rng=np.random.default_rng(0))
        assert len(trace) == 200
        assert trace.query_ids.min() >= 0
        assert trace.query_ids.max() < 50
        assert trace.arrivals[0] == 0.0
        assert np.all(np.diff(trace.arrivals) >= 0.0)

    def test_determinism(self):
        a = zipf_trace(100, 30, rng=np.random.default_rng(7))
        b = zipf_trace(100, 30, rng=np.random.default_rng(7))
        assert np.array_equal(a.query_ids, b.query_ids)
        assert np.array_equal(a.arrivals, b.arrivals)

    def test_skew_concentrates_popularity(self):
        rng = np.random.default_rng(0)
        skewed = zipf_trace(5000, 1000, skew=1.5, rng=rng)
        rng = np.random.default_rng(0)
        flat = zipf_trace(5000, 1000, skew=0.0, rng=rng)

        def top10_share(trace):
            _, counts = np.unique(trace.query_ids, return_counts=True)
            counts = np.sort(counts)[::-1]
            return counts[:10].sum() / counts.sum()

        assert top10_share(skewed) > 2.0 * top10_share(flat)

    def test_offered_rate_close_to_target(self):
        trace = zipf_trace(
            5000, 100, rate=250.0, rng=np.random.default_rng(1)
        )
        assert trace.offered_rate == pytest.approx(250.0, rel=0.1)

    def test_rescaled_changes_rate_only(self):
        trace = zipf_trace(300, 40, rate=100.0, rng=np.random.default_rng(2))
        faster = trace.rescaled(400.0)
        assert np.array_equal(trace.query_ids, faster.query_ids)
        assert faster.offered_rate == pytest.approx(400.0, rel=1e-9)

    def test_unique_queries(self):
        trace = zipf_trace(500, 20, rng=np.random.default_rng(3))
        uniq = trace.unique_queries()
        assert np.array_equal(uniq, np.unique(trace.query_ids))

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_trace(0, 10)
        with pytest.raises(ValueError):
            zipf_trace(10, 0)
        with pytest.raises(ValueError):
            zipf_trace(10, 10, rate=0.0)
        with pytest.raises(ValueError):
            zipf_trace(10, 10, skew=-0.5)
        with pytest.raises(ValueError):
            QueryTrace(
                query_ids=np.array([0, 1]),
                arrivals=np.array([0.0]),
                k=10,
                skew=1.0,
            )
        with pytest.raises(ValueError):
            trace = zipf_trace(10, 10)
            trace.rescaled(0.0)
