"""Cluster routing policies: centroid router, dispatcher, hedge policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.index import l2_normalize_rows
from repro.serving.router import (
    CentroidRouter,
    HedgePolicy,
    LeastOutstandingDispatcher,
)


def _clustered(num_shards=3, per_shard=20, dim=8, seed=0):
    """Well-separated clusters with a matching shard assignment."""
    rng = np.random.default_rng(seed)
    centers = 10.0 * rng.standard_normal((num_shards, dim))
    rows = np.concatenate(
        [c + 0.1 * rng.standard_normal((per_shard, dim)) for c in centers]
    )
    assignment = np.repeat(np.arange(num_shards), per_shard)
    return l2_normalize_rows(rows), assignment


class TestCentroidRouter:
    def test_members_partition_vertices(self):
        normed, assignment = _clustered()
        router = CentroidRouter(normed, assignment)
        all_members = np.concatenate(
            [router.members(s) for s in range(router.num_shards)]
        )
        assert sorted(all_members.tolist()) == list(range(len(assignment)))
        for s in range(router.num_shards):
            assert np.all(assignment[router.members(s)] == s)

    def test_routes_queries_to_their_own_cluster_first(self):
        normed, assignment = _clustered()
        router = CentroidRouter(normed, assignment)
        routed = router.route(normed, fanout=1)
        # Tight, well-separated clusters: the best centroid is the owner.
        assert np.array_equal(routed[:, 0], assignment)

    def test_fanout_orders_best_centroid_first(self):
        normed, assignment = _clustered()
        router = CentroidRouter(normed, assignment)
        routed = router.route(normed, fanout=3)
        # Every query sees all three shards exactly once, owner first.
        for i, row in enumerate(routed):
            assert sorted(row.tolist()) == [0, 1, 2]
            assert row[0] == assignment[i]

    def test_owner_forced_into_fanout_set(self):
        normed, assignment = _clustered()
        router = CentroidRouter(normed, assignment)
        # Query shard 0's points but force shard 2 as the "owner".
        owners = np.full(20, 2, dtype=np.int64)
        routed = router.route(normed[:20], fanout=2, owners=owners)
        assert np.all((routed == 2).any(axis=1))
        # Without forcing, tight shard-0 queries would pick other shards.
        assert np.all(routed[:, 0] == 0)

    def test_empty_shards_never_routed(self):
        normed, assignment = _clustered(num_shards=3)
        assignment = np.where(assignment == 1, 0, assignment)  # empty shard 1
        router = CentroidRouter(normed, assignment)
        assert router.nonempty_shards == 2
        routed = router.route(normed, fanout=3)
        assert routed.shape[1] == 2  # clamped to non-empty count
        assert not (routed == 1).any()

    def test_refresh_centroid_changes_routing(self):
        normed, assignment = _clustered(num_shards=2)
        router = CentroidRouter(normed, assignment)
        query = normed[:1]
        assert router.route(query, fanout=1)[0, 0] == 0
        # Move shard 1's centroid onto the query direction.
        router.refresh_centroid(1, query)
        assert router.route(query, fanout=1)[0, 0] == 1

    def test_validation(self):
        normed, assignment = _clustered()
        with pytest.raises(ValueError):
            CentroidRouter(normed, assignment[:-1])
        with pytest.raises(ValueError):
            CentroidRouter(normed, assignment - 1)


class TestLeastOutstandingDispatcher:
    def test_picks_minimum(self):
        assert LeastOutstandingDispatcher.pick([3, 1, 2]) == 1

    def test_tie_breaks_to_lowest_index(self):
        assert LeastOutstandingDispatcher.pick([2, 1, 1]) == 1
        assert LeastOutstandingDispatcher.pick([0, 0, 0]) == 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LeastOutstandingDispatcher.pick([])


class TestHedgePolicy:
    def test_fallback_until_min_samples(self):
        policy = HedgePolicy(percentile=95.0, min_samples=4, fallback=0.5)
        assert policy.threshold() == 0.5
        for v in (0.1, 0.2, 0.3):
            policy.observe(v)
        assert policy.threshold() == 0.5  # 3 < min_samples

    def test_percentile_after_min_samples(self):
        policy = HedgePolicy(percentile=50.0, min_samples=4, fallback=9.0)
        for v in (0.1, 0.2, 0.3, 0.4):
            policy.observe(v)
        assert len(policy) == 4
        assert policy.threshold() == pytest.approx(
            float(np.percentile([0.1, 0.2, 0.3, 0.4], 50.0))
        )

    def test_negative_latencies_clamped(self):
        policy = HedgePolicy(min_samples=1)
        policy.observe(-1.0)
        assert policy.threshold() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(percentile=0.0)
        with pytest.raises(ValueError):
            HedgePolicy(min_samples=0)
        with pytest.raises(ValueError):
            HedgePolicy(fallback=0.0)
