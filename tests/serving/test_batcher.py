"""Tests for the micro-batching queue."""

from __future__ import annotations

import pytest

from repro.serving.batcher import MicroBatcher, Request


def req(seq, arrival=0.0, k=10):
    return Request(query_id=seq, k=k, arrival=arrival, seq=seq)


class TestMicroBatcher:
    def test_take_respects_max_batch(self):
        b = MicroBatcher(max_batch=3, capacity=10)
        for i in range(5):
            assert b.offer(req(i))
        batch = b.take()
        assert [r.seq for r in batch] == [0, 1, 2]
        assert [r.seq for r in b.take()] == [3, 4]
        assert b.take() == []

    def test_offer_sheds_at_capacity(self):
        b = MicroBatcher(max_batch=4, capacity=2)
        assert b.offer(req(0))
        assert b.offer(req(1))
        assert not b.offer(req(2))  # queue full -> shed
        assert len(b) == 2
        assert b.stats.as_dict()["shed"] == 1.0

    def test_full_batch_ready_immediately(self):
        b = MicroBatcher(max_batch=2, max_wait=5.0)
        b.offer(req(0, arrival=1.0))
        b.offer(req(1, arrival=1.5))
        # A full batch does not wait out max_wait.
        assert b.ready_time(busy_until=0.0) == pytest.approx(1.0)

    def test_partial_batch_waits_max_wait(self):
        b = MicroBatcher(max_batch=4, max_wait=0.5)
        b.offer(req(0, arrival=2.0))
        assert b.ready_time(busy_until=0.0) == pytest.approx(2.5)

    def test_busy_server_defers_ready_time(self):
        b = MicroBatcher(max_batch=1, max_wait=0.0)
        b.offer(req(0, arrival=1.0))
        assert b.ready_time(busy_until=3.0) == pytest.approx(3.0)

    def test_ready_time_empty_queue(self):
        b = MicroBatcher(max_batch=2)
        with pytest.raises(ValueError):
            b.ready_time(busy_until=1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=2, capacity=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=2, max_wait=-1.0)

    def test_stats_counts_batches(self):
        b = MicroBatcher(max_batch=2)
        for i in range(3):
            b.offer(req(i))
        b.take()
        b.take()
        stats = b.stats.as_dict()
        assert stats["batches"] == 2.0
        assert stats["admitted"] == 3.0
        assert stats["max_batch_seen"] == 2.0
        assert stats["mean_batch_size"] == pytest.approx(1.5)
        assert stats["singleton_batches"] == 1.0
