"""Streaming slab producer: schedule, determinism, prefetch equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.upsert import SlabUpsertProducer, UpsertSlab, drift_refresh


def _setup(n=40, d=4, shards=4, seed=0):
    rng = np.random.default_rng(seed)
    emb = rng.standard_normal((n, d))
    assignment = rng.integers(0, shards, size=n)
    assignment[:shards] = np.arange(shards)  # every shard non-empty
    return emb, assignment


class TestSchedule:
    def test_round_robin_staggered(self):
        emb, assignment = _setup()
        with SlabUpsertProducer(
            emb, assignment, start=1.0, interval=0.5, rounds=2
        ) as prod:
            assert prod.total == 8
            slabs = prod.pending(now=100.0)
        assert [s.shard for s in slabs] == [0, 1, 2, 3, 0, 1, 2, 3]
        assert [s.round for s in slabs] == [0, 0, 0, 0, 1, 1, 1, 1]
        assert [s.produced_at for s in slabs] == [
            1.0 + 0.5 * j for j in range(8)
        ]

    def test_pending_pops_only_due_slabs(self):
        emb, assignment = _setup()
        prod = SlabUpsertProducer(emb, assignment, interval=1.0, rounds=1)
        assert prod.peek_time() == 0.0
        assert prod.remaining == 4
        first = prod.pending(now=1.5)  # slabs at t=0 and t=1
        assert [s.shard for s in first] == [0, 1]
        assert prod.remaining == 2
        assert prod.peek_time() == 2.0
        assert prod.pending(now=1.99) == []
        rest = prod.pending(now=10.0)
        assert [s.shard for s in rest] == [2, 3]
        assert prod.peek_time() is None
        assert prod.pending(now=1e9) == []

    def test_slab_members_match_assignment(self):
        emb, assignment = _setup()
        prod = SlabUpsertProducer(emb, assignment, rounds=1)
        for slab in prod.pending(now=1e9):
            assert isinstance(slab, UpsertSlab)
            assert np.all(assignment[slab.vertex_ids] == slab.shard)
            assert slab.vectors.shape == (len(slab.vertex_ids), emb.shape[1])


class TestDeterminism:
    def test_same_seed_same_slabs(self):
        emb, assignment = _setup()
        a = SlabUpsertProducer(emb, assignment, rounds=3, seed=7)
        b = SlabUpsertProducer(emb, assignment, rounds=3, seed=7)
        for sa, sb in zip(a.pending(1e9), b.pending(1e9)):
            assert np.array_equal(sa.vectors, sb.vectors)

    def test_different_seed_different_slabs(self):
        emb, assignment = _setup()
        a = SlabUpsertProducer(emb, assignment, rounds=1, seed=0)
        b = SlabUpsertProducer(emb, assignment, rounds=1, seed=1)
        assert not np.array_equal(
            a.pending(1e9)[0].vectors, b.pending(1e9)[0].vectors
        )

    def test_prefetch_thread_changes_nothing(self):
        emb, assignment = _setup()
        sync = SlabUpsertProducer(emb, assignment, rounds=3, seed=5)
        with SlabUpsertProducer(
            emb, assignment, rounds=3, seed=5, prefetch=True, depth=3
        ) as ahead:
            for sa, sb in zip(sync.pending(1e9), ahead.pending(1e9)):
                assert sa.shard == sb.shard
                assert sa.produced_at == sb.produced_at
                assert np.array_equal(sa.vectors, sb.vectors)

    def test_rounds_compound_on_current_state(self):
        """Round r+1 drifts from round r's output, not the original."""
        emb, assignment = _setup()
        prod = SlabUpsertProducer(emb, assignment, rounds=2, seed=3)
        slabs = prod.pending(1e9)
        first = {s.shard: s.vectors for s in slabs if s.round == 0}
        second = {s.shard: s.vectors for s in slabs if s.round == 1}
        for shard in first:
            assert not np.array_equal(first[shard], second[shard])


class TestRefreshFn:
    def test_drift_refresh_is_small_perturbation(self):
        rows = np.ones((5, 3))
        out = drift_refresh(scale=0.01)(
            0, 0, rows, np.random.default_rng(0)
        )
        assert out.shape == rows.shape
        assert 0 < np.abs(out - rows).max() < 0.1

    def test_custom_refresh_fn_used(self):
        emb, assignment = _setup()
        calls = []

        def refresh(shard, rnd, rows, rng):
            calls.append((shard, rnd))
            return rows * 2.0

        prod = SlabUpsertProducer(
            emb, assignment, rounds=1, refresh_fn=refresh
        )
        slabs = prod.pending(1e9)
        assert calls == [(0, 0), (1, 0), (2, 0), (3, 0)]
        for slab in slabs:
            assert np.array_equal(slab.vectors, 2.0 * emb[slab.vertex_ids])


class TestValidation:
    def test_bad_parameters_raise(self):
        emb, assignment = _setup()
        with pytest.raises(ValueError):
            SlabUpsertProducer(emb, assignment, interval=0.0)
        with pytest.raises(ValueError):
            SlabUpsertProducer(emb, assignment, rounds=0)
        with pytest.raises(ValueError):
            SlabUpsertProducer(emb, assignment, prefetch=True, depth=0)
        with pytest.raises(ValueError):
            SlabUpsertProducer(emb, assignment[:-1])

    def test_close_is_idempotent(self):
        emb, assignment = _setup()
        prod = SlabUpsertProducer(emb, assignment, prefetch=True)
        prod.close()
        prod.close()
