"""Documentation quality gate: every public item carries a docstring.

Deliverable (e) requires doc comments on every public item; this test
walks the package and enforces it, so the guarantee cannot rot.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_NAMES = {"ParamGroup"}  # type aliases have no docstring slot


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _public_members(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name, None)
        # Only report items defined in this package (not numpy re-exports).
        mod = getattr(obj, "__module__", "") or ""
        if mod.startswith("repro"):
            yield name, obj


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            m.__name__ for m in _iter_modules() if not (m.__doc__ or "").strip()
        ]
        assert not undocumented, f"modules without docstrings: {undocumented}"

    def test_every_public_class_and_function_documented(self):
        missing: list[str] = []
        for module in _iter_modules():
            for name, obj in _public_members(module):
                if name in SKIP_NAMES:
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (inspect.getdoc(obj) or "").strip():
                        missing.append(f"{module.__name__}.{name}")
        assert not missing, f"undocumented public items: {sorted(set(missing))}"

    def test_public_methods_documented(self):
        """Public methods of public classes carry docstrings too."""
        missing: list[str] = []
        for module in _iter_modules():
            for cname, cls in _public_members(module):
                if not inspect.isclass(cls):
                    continue
                for mname, meth in vars(cls).items():
                    if mname.startswith("_") or not inspect.isfunction(meth):
                        continue
                    if not (inspect.getdoc(meth) or "").strip():
                        missing.append(f"{module.__name__}.{cname}.{mname}")
        assert not missing, f"undocumented methods: {sorted(set(missing))}"
