"""Gradient-checked tests for GCN and dense layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.gradcheck import check_gradients, max_relative_error, numerical_gradient
from repro.nn.layers import DenseLayer, Dropout, GCNLayer
from repro.propagation.spmm import MeanAggregator


@pytest.fixture
def small_setup(rng):
    # Every vertex has degree >= 4, so no aggregated row is exactly zero
    # and ReLU gradchecks are not systematically pinned at the kink (a
    # zero-degree vertex's pre-activation equals its bias exactly).
    from repro.graphs.generators import ring_of_cliques

    sub = ring_of_cliques(8, 5)
    agg = MeanAggregator(sub)
    x = rng.standard_normal((sub.num_vertices, 6))
    return sub, agg, x


class TestGCNLayerForward:
    def test_output_dims_concat(self, small_setup, rng):
        _, agg, x = small_setup
        layer = GCNLayer(6, 4, concat=True, rng=rng)
        out = layer.forward(x, agg)
        assert out.shape == (x.shape[0], 8)
        assert layer.output_dim == 8

    def test_output_dims_sum(self, small_setup, rng):
        _, agg, x = small_setup
        layer = GCNLayer(6, 4, concat=False, rng=rng)
        assert layer.forward(x, agg).shape == (x.shape[0], 4)

    def test_relu_nonnegative(self, small_setup, rng):
        _, agg, x = small_setup
        layer = GCNLayer(6, 4, rng=rng)
        assert np.all(layer.forward(x, agg) >= 0)

    def test_identity_activation(self, small_setup, rng):
        _, agg, x = small_setup
        layer = GCNLayer(6, 4, activation="identity", rng=rng)
        out = layer.forward(x, agg)
        # Must match the manual computation exactly.
        expected = np.concatenate(
            [
                agg.forward(x) @ layer.params["W_neigh"] + layer.params["b_neigh"],
                x @ layer.params["W_self"] + layer.params["b_self"],
            ],
            axis=1,
        )
        assert np.allclose(out, expected)

    def test_invalid_activation(self, rng):
        with pytest.raises(ValueError):
            GCNLayer(3, 2, activation="tanh", rng=rng)

    def test_backward_without_forward_raises(self, rng):
        layer = GCNLayer(3, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((5, 4)))

    def test_eval_mode_no_cache(self, small_setup, rng):
        _, agg, x = small_setup
        layer = GCNLayer(6, 4, rng=rng)
        layer.forward(x, agg, train=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((x.shape[0], 8)))


class TestGCNLayerGradients:
    @pytest.mark.parametrize("concat", [True, False])
    @pytest.mark.parametrize("bias", [True, False])
    def test_parameter_gradients_exact(self, small_setup, concat, bias):
        """Identity activation: the analytic gradient is exact everywhere."""
        _, agg, x = small_setup
        rng = np.random.default_rng(0)
        layer = GCNLayer(6, 3, activation="identity", concat=concat, bias=bias, rng=rng)
        target = rng.standard_normal((x.shape[0], layer.output_dim))

        def loss():
            out = layer.forward(x, agg, train=False)
            return float(0.5 * np.sum((out - target) ** 2))

        layer.zero_grad()
        out = layer.forward(x, agg, train=True)
        layer.backward(out - target)
        check_gradients(loss, layer.params, layer.grads, sample=10, tol=1e-4)

    def test_parameter_gradients_relu_mostly_exact(self, small_setup):
        """ReLU path: gradients match numerically except at kink crossings
        (pre-activations within eps of zero), which central differences
        cannot resolve — so require 90% of sampled entries to agree."""
        _, agg, x = small_setup
        rng = np.random.default_rng(0)
        layer = GCNLayer(6, 3, rng=rng)
        target = rng.standard_normal((x.shape[0], layer.output_dim))

        def loss():
            out = layer.forward(x, agg, train=False)
            return float(0.5 * np.sum((out - target) ** 2))

        layer.zero_grad()
        out = layer.forward(x, agg, train=True)
        layer.backward(out - target)
        errs = []
        from repro.nn.gradcheck import max_relative_error as mre

        for name, p in layer.params.items():
            idx, numeric = numerical_gradient(loss, p, sample=10, rng=rng)
            analytic = layer.grads[name].reshape(-1)[idx]
            errs.extend(
                mre(np.array([a]), np.array([n])) for a, n in zip(analytic, numeric)
            )
        errs = np.array(errs)
        assert np.mean(errs < 1e-4) >= 0.9
        assert np.median(errs) < 1e-5

    def test_input_gradient(self, small_setup):
        _, agg, x = small_setup
        rng = np.random.default_rng(1)
        layer = GCNLayer(6, 3, rng=rng)
        target = rng.standard_normal((x.shape[0], 6))

        x_var = x.copy()

        def loss():
            out = layer.forward(x_var, agg, train=False)
            return float(0.5 * np.sum(out**2))

        layer.zero_grad()
        out = layer.forward(x_var, agg, train=True)
        dx = layer.backward(out)
        idx, numeric = numerical_gradient(
            loss, x_var, sample=15, rng=np.random.default_rng(2)
        )
        assert max_relative_error(dx.reshape(-1)[idx], numeric) < 1e-4

    def test_grads_accumulate(self, small_setup):
        _, agg, x = small_setup
        rng = np.random.default_rng(3)
        layer = GCNLayer(6, 3, rng=rng)
        out = layer.forward(x, agg)
        layer.backward(np.ones_like(out))
        g1 = layer.grads["W_neigh"].copy()
        out = layer.forward(x, agg)
        layer.backward(np.ones_like(out))
        assert np.allclose(layer.grads["W_neigh"], 2 * g1)

    def test_zero_grad(self, small_setup):
        _, agg, x = small_setup
        layer = GCNLayer(6, 3, rng=np.random.default_rng(4))
        out = layer.forward(x, agg)
        layer.backward(np.ones_like(out))
        layer.zero_grad()
        assert np.all(layer.grads["W_neigh"] == 0)


class TestDenseLayer:
    def test_forward_values(self, rng):
        layer = DenseLayer(3, 2, rng=rng)
        x = rng.standard_normal((5, 3))
        out = layer.forward(x)
        assert np.allclose(out, x @ layer.params["W"] + layer.params["b"])

    def test_gradients(self, rng):
        layer = DenseLayer(4, 3, activation="relu", rng=rng)
        x = rng.standard_normal((7, 4))

        def loss():
            return float(np.sum(layer.forward(x, train=False) ** 2))

        layer.zero_grad()
        out = layer.forward(x, train=True)
        dx = layer.backward(2 * out)
        check_gradients(loss, layer.params, layer.grads, sample=8, tol=1e-4)
        idx, numeric = numerical_gradient(loss, x, sample=8, rng=rng)
        assert max_relative_error(dx.reshape(-1)[idx], numeric) < 1e-4


class TestDropout:
    def test_eval_mode_identity(self, rng):
        d = Dropout(0.5, rng=rng)
        x = rng.standard_normal((10, 4))
        assert np.array_equal(d.forward(x, train=False), x)

    def test_zero_rate_identity(self, rng):
        d = Dropout(0.0, rng=rng)
        x = rng.standard_normal((10, 4))
        assert np.array_equal(d.forward(x, train=True), x)

    def test_scaling_preserves_expectation(self):
        d = Dropout(0.3, rng=np.random.default_rng(0))
        x = np.ones((2000, 50))
        out = d.forward(x, train=True)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_backward_uses_same_mask(self):
        d = Dropout(0.5, rng=np.random.default_rng(1))
        x = np.ones((50, 10))
        out = d.forward(x, train=True)
        g = d.backward(np.ones_like(x))
        assert np.array_equal(g == 0, out == 0)

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng=rng)
        with pytest.raises(ValueError):
            Dropout(-0.1, rng=rng)


class TestL2Normalization:
    def test_unit_rows(self, small_setup, rng):
        _, agg, x = small_setup
        layer = GCNLayer(6, 4, activation="identity", normalize=True, rng=rng)
        out = layer.forward(x, agg)
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0)

    def test_gradients_through_normalization(self, small_setup):
        from repro.nn.gradcheck import check_gradients

        _, agg, x = small_setup
        rng = np.random.default_rng(6)
        layer = GCNLayer(6, 3, activation="identity", normalize=True, rng=rng)
        target = rng.standard_normal((x.shape[0], layer.output_dim))

        def loss():
            out = layer.forward(x, agg, train=False)
            return float(0.5 * np.sum((out - target) ** 2))

        layer.zero_grad()
        out = layer.forward(x, agg, train=True)
        layer.backward(out - target)
        check_gradients(loss, layer.params, layer.grads, sample=10, tol=1e-4)

    def test_input_gradient_through_normalization(self, small_setup):
        _, agg, x = small_setup
        rng = np.random.default_rng(7)
        layer = GCNLayer(6, 3, activation="identity", normalize=True, rng=rng)
        x_var = x.copy()

        def loss():
            out = layer.forward(x_var, agg, train=False)
            return float(np.sum(out * np.arange(out.shape[1])))

        layer.zero_grad()
        out = layer.forward(x_var, agg, train=True)
        dx = layer.backward(
            np.tile(np.arange(layer.output_dim, dtype=np.float64), (x.shape[0], 1))
        )
        idx, numeric = numerical_gradient(
            loss, x_var, sample=12, rng=np.random.default_rng(8)
        )
        from repro.nn.gradcheck import max_relative_error

        assert max_relative_error(dx.reshape(-1)[idx], numeric) < 1e-4

    def test_normalization_scale_invariant(self, small_setup, rng):
        """Scaling the weights leaves normalized outputs unchanged."""
        _, agg, x = small_setup
        layer = GCNLayer(6, 4, activation="identity", bias=False, normalize=True, rng=rng)
        out1 = layer.forward(x, agg, train=False)
        for p in layer.params.values():
            p *= 3.0
        out2 = layer.forward(x, agg, train=False)
        assert np.allclose(out1, out2)
