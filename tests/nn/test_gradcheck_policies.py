"""Shared gradcheck harness: every layer type under both dtype policies.

One parametrized harness drives :func:`repro.nn.gradcheck.check_gradients`
over the four trainable layer classes — :class:`GCNLayer`,
:class:`DenseLayer`, :class:`BipartiteGCNLayer`, :class:`ConvOnlyLayer` —
under the float64 reference policy (seed-era tolerances) and the float32
fast policy (relaxed step/tolerance from the policy object itself, and
workspace-buffered layers where the layer supports it).

Layers run with identity activation so finite differences never straddle
a ReLU kink; the scalar loss is ``sum(out * C)`` for a fixed coefficient
matrix, accumulated in float64 so the float32 path's loss is still
resolvable at the policy's finite-difference step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.blocks import SampledBlock
from repro.baselines.sage_layers import BipartiteGCNLayer, ConvOnlyLayer
from repro.graphs import edges_to_csr
from repro.kernels.policy import FAST, REFERENCE, resolve_policy
from repro.kernels.workspace import Workspace
from repro.nn.gradcheck import check_gradients
from repro.nn.layers import DenseLayer, GCNLayer
from repro.propagation.spmm import MeanAggregator

POLICIES = [REFERENCE.name, FAST.name]


def _small_graph():
    edges = np.array([[0, 1], [1, 2], [2, 3], [3, 0], [0, 2], [1, 4]])
    return edges_to_csr(edges, 5)


def _small_block(rng: np.random.Generator, *, weighted: bool) -> SampledBlock:
    # 6 source rows -> 3 destinations; one empty neighbor list and one
    # absent self position, the ragged cases Section II-B points out.
    indptr = np.array([0, 2, 2, 5])
    neighbor_pos = np.array([0, 3, 1, 4, 5])
    self_pos = np.array([0, -1, 2])
    edge_weight = rng.standard_normal(5) if weighted else None
    return SampledBlock(
        num_src=6,
        num_dst=3,
        indptr=indptr,
        neighbor_pos=neighbor_pos,
        self_pos=self_pos,
        edge_weight=edge_weight,
        mean_normalize=not weighted,
    )


def _make_gcn(policy, rng):
    graph = _small_graph()
    ws = Workspace() if policy.use_workspace else None
    layer = GCNLayer(
        4,
        3,
        activation="identity",
        concat=True,
        rng=rng,
        dtype=policy.dtype,
        workspace=ws,
    )
    agg = MeanAggregator(graph)
    x = policy.cast(rng.standard_normal((5, 4)))
    return layer, lambda train: layer.forward(x, agg, train=train)


def _make_dense(policy, rng):
    ws = Workspace() if policy.use_workspace else None
    layer = DenseLayer(
        4, 3, activation="identity", rng=rng, dtype=policy.dtype, workspace=ws
    )
    x = policy.cast(rng.standard_normal((6, 4)))
    return layer, lambda train: layer.forward(x, train=train)


def _make_bipartite(policy, rng):
    block = _small_block(rng, weighted=False)
    layer = BipartiteGCNLayer(
        4, 3, activation="identity", concat=True, rng=rng, dtype=policy.dtype
    )
    x = policy.cast(rng.standard_normal((6, 4)))
    return layer, lambda train: layer.forward(x, block, train=train)


def _make_conv_only(policy, rng):
    block = _small_block(rng, weighted=True)
    layer = ConvOnlyLayer(
        4, 3, activation="identity", rng=rng, dtype=policy.dtype
    )
    x = policy.cast(rng.standard_normal((6, 4)))
    return layer, lambda train: layer.forward(x, block, train=train)


FACTORIES = {
    "gcn": _make_gcn,
    "dense": _make_dense,
    "bipartite": _make_bipartite,
    "conv_only": _make_conv_only,
}


@pytest.mark.parametrize("policy_name", POLICIES)
@pytest.mark.parametrize("layer_kind", sorted(FACTORIES))
def test_layer_gradients_under_policy(layer_kind, policy_name):
    policy = resolve_policy(policy_name)
    rng = np.random.default_rng(42)
    layer, forward = FACTORIES[layer_kind](policy, rng)

    out = forward(True)
    assert out.dtype == policy.dtype
    coeff = rng.standard_normal(out.shape)

    layer.zero_grad()
    forward(True)
    layer.backward(policy.cast(coeff))
    analytic = {k: v.copy() for k, v in layer.grads.items()}

    def loss() -> float:
        return float(np.sum(forward(False) * coeff, dtype=np.float64))

    errors = check_gradients(
        loss,
        layer.params,
        analytic,
        eps=policy.grad_eps,
        tol=policy.grad_tol,
        sample=10,
        rng=np.random.default_rng(7),
    )
    assert set(errors) == set(layer.params)


@pytest.mark.parametrize("layer_kind", sorted(FACTORIES))
def test_fast_policy_matches_reference_gradients(layer_kind):
    # The float32 analytic gradient is the rounded float64 one, not a
    # different formula: both paths must agree to float32 resolution.
    grads = {}
    for policy in (REFERENCE, FAST):
        rng = np.random.default_rng(42)
        layer, forward = FACTORIES[layer_kind](policy, rng)
        coeff = rng.standard_normal(forward(True).shape)
        layer.zero_grad()
        forward(True)
        layer.backward(policy.cast(coeff))
        grads[policy.name] = {
            k: v.astype(np.float64) for k, v in layer.grads.items()
        }
    for name, ref in grads["reference"].items():
        np.testing.assert_allclose(
            grads["fast"][name], ref, rtol=2e-4, atol=2e-4, err_msg=name
        )
