"""Tests for F1 metrics against hand-computed values."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.metrics import accuracy, confusion_counts, f1_macro, f1_micro


class TestConfusionCounts:
    def test_single_label(self):
        y_true = np.array([0, 1, 1, 2])
        y_pred = np.array([0, 1, 2, 2])
        tp, fp, fn = confusion_counts(y_true, y_pred, 3)
        assert np.array_equal(tp, [1, 1, 1])
        assert np.array_equal(fp, [0, 0, 1])
        assert np.array_equal(fn, [0, 1, 0])

    def test_multi_label(self):
        y_true = np.array([[1, 0], [1, 1]])
        y_pred = np.array([[1, 1], [0, 1]])
        tp, fp, fn = confusion_counts(y_true, y_pred)
        assert np.array_equal(tp, [1, 1])
        assert np.array_equal(fp, [0, 1])
        assert np.array_equal(fn, [1, 0])


class TestF1Micro:
    def test_perfect(self):
        y = np.array([0, 1, 2, 1])
        assert f1_micro(y, y, 3) == 1.0

    def test_all_wrong(self):
        y_true = np.array([0, 0])
        y_pred = np.array([1, 1])
        assert f1_micro(y_true, y_pred, 2) == 0.0

    def test_hand_computed_single(self):
        y_true = np.array([0, 1, 1, 2])
        y_pred = np.array([0, 1, 2, 2])
        # tp=3, fp=1, fn=1 -> f1 = 2*3/(6+1+1)
        assert f1_micro(y_true, y_pred, 3) == pytest.approx(6 / 8)

    def test_hand_computed_multi(self):
        y_true = np.array([[1, 0, 1], [0, 1, 0]])
        y_pred = np.array([[1, 1, 0], [0, 1, 0]])
        # tp=2, fp=1, fn=1
        assert f1_micro(y_true, y_pred) == pytest.approx(4 / 6)

    def test_single_label_micro_equals_accuracy(self, rng):
        """For single-label problems where every row gets exactly one
        prediction, micro-F1 reduces to accuracy."""
        y_true = rng.integers(0, 5, size=100)
        y_pred = rng.integers(0, 5, size=100)
        assert f1_micro(y_true, y_pred, 5) == pytest.approx(
            accuracy(y_true, y_pred)
        )

    def test_empty_predictions(self):
        y_true = np.zeros((3, 4))
        y_pred = np.zeros((3, 4))
        assert f1_micro(y_true, y_pred) == 0.0


class TestF1Macro:
    def test_perfect(self):
        y = np.array([[1, 0], [0, 1]])
        assert f1_macro(y, y) == 1.0

    def test_hand_computed(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 0, 0, 1])
        # class0: tp=2 fp=1 fn=0 -> 4/5; class1: tp=1 fp=0 fn=1 -> 2/3
        assert f1_macro(y_true, y_pred, 2) == pytest.approx((4 / 5 + 2 / 3) / 2)

    def test_macro_penalizes_rare_class_errors_more(self):
        # 99 of class 0 right, 1 of class 1 wrong.
        y_true = np.array([0] * 99 + [1])
        y_pred = np.array([0] * 100)
        assert f1_micro(y_true, y_pred, 2) > f1_macro(y_true, y_pred, 2)


class TestAccuracy:
    def test_single(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 0])) == pytest.approx(2 / 3)

    def test_multi_exact_match(self):
        y_true = np.array([[1, 0], [0, 1]])
        y_pred = np.array([[1, 0], [1, 1]])
        assert accuracy(y_true, y_pred) == 0.5

    def test_empty(self):
        assert accuracy(np.array([]), np.array([])) == 0.0
