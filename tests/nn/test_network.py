"""Tests for the full GCN network: shapes, gradients, state dict."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.gradcheck import max_relative_error, numerical_gradient
from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.network import GCN
from repro.propagation.spmm import MeanAggregator


@pytest.fixture
def net_setup(rng):
    # Min degree >= 4 keeps aggregated rows away from exact-zero ReLU
    # pre-activations (see tests/nn/test_layers.py::small_setup).
    from repro.graphs.generators import ring_of_cliques

    sub = ring_of_cliques(10, 5)
    agg = MeanAggregator(sub)
    x = rng.standard_normal((sub.num_vertices, 5))
    y = rng.integers(0, 3, size=sub.num_vertices)
    return agg, x, y


class TestForward:
    def test_logit_shape(self, net_setup):
        agg, x, _ = net_setup
        model = GCN(5, [4, 4], 3, seed=0)
        assert model.forward(x, agg).shape == (x.shape[0], 3)

    def test_layer_count(self):
        model = GCN(5, [4, 4, 4], 3, seed=0)
        assert model.num_layers == 3

    def test_needs_layers(self):
        with pytest.raises(ValueError):
            GCN(5, [], 3)

    def test_deterministic_given_seed(self, net_setup):
        agg, x, _ = net_setup
        a = GCN(5, [4], 3, seed=42).forward(x, agg, train=False)
        b = GCN(5, [4], 3, seed=42).forward(x, agg, train=False)
        assert np.array_equal(a, b)

    def test_num_parameters(self):
        model = GCN(5, [4], 3, seed=0)
        # layer: W_self 5x4, W_neigh 5x4, b x2 (4 each); head: 8x3 + 3
        assert model.num_parameters() == 2 * 20 + 8 + 24 + 3

    def test_embeddings_shape(self, net_setup):
        agg, x, _ = net_setup
        model = GCN(5, [4, 6], 3, seed=0)
        emb = model.embeddings(x, agg)
        assert emb.shape == (x.shape[0], 12)  # concat doubles


class TestBackward:
    def test_end_to_end_gradcheck(self, net_setup):
        """Whole-network gradients vs central differences.

        The hidden layers use ReLU, whose kinks central differences cannot
        resolve, so the criterion is distributional: >= 90% of sampled
        entries within tolerance and a tiny median error.
        """
        agg, x, y = net_setup
        model = GCN(5, [4, 3], 3, seed=1)
        loss = SoftmaxCrossEntropy()

        def f():
            return loss.forward(model.forward(x, agg, train=False), y)

        model.zero_grad()
        logits = model.forward(x, agg, train=True)
        model.backward(loss.backward(logits, y))

        rng = np.random.default_rng(0)
        errs = []
        for params, grads in model.parameter_groups():
            for name, p in params.items():
                idx, numeric = numerical_gradient(f, p, sample=6, rng=rng)
                analytic = grads[name].reshape(-1)[idx]
                errs.extend(
                    max_relative_error(np.array([a]), np.array([n]))
                    for a, n in zip(analytic, numeric)
                )
        errs = np.array(errs)
        assert np.mean(errs < 1e-4) >= 0.9
        assert np.median(errs) < 1e-5

    def test_input_gradient_flows(self, net_setup):
        agg, x, y = net_setup
        model = GCN(5, [4], 3, seed=2)
        loss = SoftmaxCrossEntropy()
        logits = model.forward(x, agg, train=True)
        dx = model.backward(loss.backward(logits, y))
        assert dx.shape == x.shape
        assert np.any(dx != 0)

    def test_dropout_train_vs_eval(self, net_setup):
        agg, x, _ = net_setup
        model = GCN(5, [4], 3, dropout=0.5, seed=3)
        out_train_1 = model.forward(x, agg, train=True)
        out_train_2 = model.forward(x, agg, train=True)
        out_eval_1 = model.forward(x, agg, train=False)
        out_eval_2 = model.forward(x, agg, train=False)
        assert not np.array_equal(out_train_1, out_train_2)  # random masks
        assert np.array_equal(out_eval_1, out_eval_2)  # deterministic


class TestStateDict:
    def test_roundtrip(self, net_setup):
        agg, x, _ = net_setup
        model = GCN(5, [4, 4], 3, seed=4)
        state = model.state_dict()
        other = GCN(5, [4, 4], 3, seed=99)
        assert not np.allclose(
            other.forward(x, agg, train=False), model.forward(x, agg, train=False)
        )
        other.load_state_dict(state)
        assert np.allclose(
            other.forward(x, agg, train=False), model.forward(x, agg, train=False)
        )

    def test_state_dict_is_copy(self):
        model = GCN(5, [4], 3, seed=5)
        state = model.state_dict()
        state["head.W"][...] = 0.0
        assert not np.allclose(model.head.params["W"], 0.0)
