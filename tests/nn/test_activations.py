"""Tests for activation functions: values, stability, gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.activations import (
    leaky_relu,
    leaky_relu_grad,
    log_softmax,
    relu,
    relu_grad,
    sigmoid,
    softmax,
)


class TestReLU:
    def test_values(self):
        x = np.array([-2.0, 0.0, 3.0])
        assert np.array_equal(relu(x), [0.0, 0.0, 3.0])

    def test_grad_masks_negatives(self):
        x = np.array([-1.0, 0.5, 2.0])
        g = np.ones(3)
        assert np.array_equal(relu_grad(x, g), [0.0, 1.0, 1.0])

    def test_grad_zero_at_zero(self):
        assert relu_grad(np.array([0.0]), np.array([1.0]))[0] == 0.0


class TestLeakyReLU:
    def test_values(self):
        x = np.array([-2.0, 4.0])
        out = leaky_relu(x, alpha=0.1)
        assert out[0] == pytest.approx(-0.2)
        assert out[1] == 4.0

    def test_grad(self):
        x = np.array([-1.0, 1.0])
        g = leaky_relu_grad(x, np.ones(2), alpha=0.1)
        assert np.allclose(g, [0.1, 1.0])


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_symmetry(self):
        x = np.linspace(-5, 5, 21)
        assert np.allclose(sigmoid(x) + sigmoid(-x), 1.0)

    def test_extreme_values_no_overflow(self):
        x = np.array([-1000.0, 1000.0])
        out = sigmoid(x)
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)
        assert np.all(np.isfinite(out))

    def test_matches_naive_in_safe_range(self):
        x = np.linspace(-20, 20, 101)
        naive = 1.0 / (1.0 + np.exp(-x))
        assert np.allclose(sigmoid(x), naive, atol=1e-12)


class TestSoftmax:
    def test_normalization(self, rng):
        x = rng.standard_normal((10, 7))
        p = softmax(x, axis=1)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.all(p >= 0)

    def test_shift_invariance(self, rng):
        x = rng.standard_normal((4, 5))
        assert np.allclose(softmax(x), softmax(x + 100.0))

    def test_extreme_values(self):
        x = np.array([[1e4, 0.0, -1e4]])
        p = softmax(x)
        assert np.all(np.isfinite(p))
        assert p[0, 0] == pytest.approx(1.0)

    def test_log_softmax_consistent(self, rng):
        x = rng.standard_normal((6, 9))
        assert np.allclose(log_softmax(x), np.log(softmax(x)), atol=1e-12)
