"""Dtype discipline on the nn hot path: no silent float64 promotion.

The float32 fast path is only fast if every stage preserves float32;
these tests pin the stages that used to promote (the dropout mask was the
silent offender) and the bit-level guarantee the reference path keeps.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import sigmoid
from repro.nn.layers import Dropout
from repro.nn.loss import SigmoidCrossEntropy, SoftmaxCrossEntropy
from repro.nn.network import GCN
from repro.propagation.spmm import MeanAggregator


class TestDropoutDtype:
    def test_float32_stays_float32(self):
        drop = Dropout(0.4, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((8, 5)).astype(np.float32)
        out = drop.forward(x, train=True)
        assert out.dtype == np.float32
        assert drop._mask is not None and drop._mask.dtype == np.float32
        assert drop.backward(out).dtype == np.float32

    def test_float64_mask_values_unchanged(self):
        # Same rng stream and same mask values as the seed implementation:
        # keep-mask from rng.random, scaled by 1/keep.
        seed, rate = 3, 0.3
        drop = Dropout(rate, rng=np.random.default_rng(seed))
        x = np.ones((6, 4))
        out = drop.forward(x, train=True)
        keep = 1.0 - rate
        expected_mask = (
            np.random.default_rng(seed).random((6, 4)) < keep
        ).astype(np.float64) / keep
        np.testing.assert_array_equal(drop._mask, expected_mask)
        np.testing.assert_array_equal(out, x * expected_mask)

    def test_non_float_input_promotes_to_float64(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        out = drop.forward(np.ones((4, 4), dtype=np.int64), train=True)
        assert out.dtype == np.float64

    def test_eval_and_zero_rate_are_identity(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.random.default_rng(2).standard_normal((3, 3)).astype(np.float32)
        assert drop.forward(x, train=False) is x
        assert Dropout(0.0, rng=np.random.default_rng(0)).forward(x) is x


class TestActivationAndLossDtype:
    def test_sigmoid_preserves_float32(self):
        x = np.linspace(-4, 4, 12, dtype=np.float32).reshape(3, 4)
        assert sigmoid(x).dtype == np.float32
        assert sigmoid(x.astype(np.float64)).dtype == np.float64

    def test_sigmoid_ce_float32_roundtrip(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((10, 4)).astype(np.float32)
        labels = (rng.random((10, 4)) < 0.5).astype(np.float64)
        loss = SigmoidCrossEntropy()
        value = loss.forward(logits, labels)
        assert np.isfinite(value)
        grad = loss.backward(logits, labels)
        assert grad.dtype == np.float32

    def test_softmax_ce_float32_roundtrip(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((10, 4)).astype(np.float32)
        labels = rng.integers(0, 4, size=10)
        loss = SoftmaxCrossEntropy()
        assert np.isfinite(loss.forward(logits, labels))
        assert loss.backward(logits, labels).dtype == np.float32


class TestNetworkDtype:
    def test_float32_network_end_to_end(self, triangle_graph):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((3, 6)).astype(np.float32)
        model = GCN(6, [4], 2, dropout=0.25, seed=0, dtype=np.float32)
        agg = MeanAggregator(triangle_graph)
        logits = model.forward(x, agg, train=True)
        assert logits.dtype == np.float32
        grad = np.ones_like(logits)
        d_in = model.backward(grad)
        assert d_in.dtype == np.float32
        for params, grads in model.parameter_groups():
            assert all(p.dtype == np.float32 for p in params.values())
            assert all(g.dtype == np.float32 for g in grads.values())

    def test_float32_weights_are_rounded_reference_weights(self):
        ref = GCN(6, [4], 2, seed=0)
        fast = GCN(6, [4], 2, seed=0, dtype=np.float32)
        for (rp, _), (fp, _) in zip(
            ref.parameter_groups(), fast.parameter_groups()
        ):
            for k in rp:
                np.testing.assert_array_equal(
                    fp[k], rp[k].astype(np.float32), err_msg=k
                )
