"""Tests for weight initializers and the gradient-check utility itself."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.gradcheck import check_gradients, max_relative_error, numerical_gradient
from repro.nn.init import xavier_normal, xavier_uniform, zeros


class TestXavier:
    def test_uniform_bounds(self, rng):
        w = xavier_uniform(100, 50, rng=rng)
        a = np.sqrt(6.0 / 150)
        assert w.shape == (100, 50)
        assert w.min() >= -a and w.max() <= a

    def test_uniform_variance(self, rng):
        w = xavier_uniform(400, 400, rng=rng)
        expected_var = 2.0 / 800
        assert w.var() == pytest.approx(expected_var, rel=0.1)

    def test_normal_std(self, rng):
        w = xavier_normal(300, 300, rng=rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 600), rel=0.1)

    def test_invalid_fans(self, rng):
        with pytest.raises(ValueError):
            xavier_uniform(0, 5, rng=rng)
        with pytest.raises(ValueError):
            xavier_normal(5, -1, rng=rng)

    def test_zeros(self):
        z = zeros(3, 4)
        assert z.shape == (3, 4) and np.all(z == 0)


class TestGradcheckUtility:
    def test_detects_correct_gradient(self):
        x = np.array([1.0, 2.0, 3.0])

        def f():
            return float(np.sum(x**2))

        idx, numeric = numerical_gradient(f, x)
        assert np.allclose(numeric, 2 * x[idx], atol=1e-6)

    def test_detects_wrong_gradient(self):
        x = np.array([1.0, 2.0])

        def f():
            return float(np.sum(x**2))

        wrong = {"x": 3 * x}  # should be 2x
        with pytest.raises(AssertionError, match="gradient check failed"):
            check_gradients(f, {"x": x}, wrong, tol=1e-5)

    def test_max_relative_error_floor(self):
        assert max_relative_error(np.zeros(3), np.zeros(3)) == 0.0
        assert max_relative_error(np.array([1e-12]), np.array([0.0])) < 1e-3
