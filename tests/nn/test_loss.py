"""Tests for loss functions: values, gradients, stability, prediction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.gradcheck import max_relative_error, numerical_gradient
from repro.nn.loss import SigmoidCrossEntropy, SoftmaxCrossEntropy, make_loss


class TestSoftmaxCrossEntropy:
    def test_uniform_logits(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((4, 5))
        targets = np.array([0, 1, 2, 3])
        assert loss.forward(logits, targets) == pytest.approx(np.log(5))

    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.full((3, 4), -50.0)
        targets = np.array([1, 2, 0])
        logits[np.arange(3), targets] = 50.0
        assert loss.forward(logits, targets) < 1e-8

    def test_gradient_matches_numeric(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((6, 5))
        targets = rng.integers(0, 5, size=6)
        analytic = loss.backward(logits, targets)
        idx, numeric = numerical_gradient(
            lambda: loss.forward(logits, targets), logits, sample=15, rng=rng
        )
        assert max_relative_error(analytic.reshape(-1)[idx], numeric) < 1e-5

    def test_gradient_rows_sum_zero(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((8, 4))
        targets = rng.integers(0, 4, size=8)
        g = loss.backward(logits, targets)
        assert np.allclose(g.sum(axis=1), 0.0, atol=1e-12)

    def test_extreme_logits_finite(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[1e4, -1e4, 0.0]])
        assert np.isfinite(loss.forward(logits, np.array([0])))

    def test_predict(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[0.1, 3.0, -1.0], [2.0, 0.0, 0.5]])
        assert np.array_equal(loss.predict(logits), [1, 0])

    def test_shape_validation(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss.forward(np.zeros(5), np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            loss.forward(np.zeros((5, 3)), np.zeros(4, dtype=int))


class TestSigmoidCrossEntropy:
    def test_manual_value(self):
        loss = SigmoidCrossEntropy()
        logits = np.array([[0.0, 0.0]])
        targets = np.array([[1.0, 0.0]])
        # Each element contributes log(2); summed over 2 classes.
        assert loss.forward(logits, targets) == pytest.approx(2 * np.log(2))

    def test_perfect_prediction_low_loss(self):
        loss = SigmoidCrossEntropy()
        logits = np.array([[50.0, -50.0]])
        targets = np.array([[1.0, 0.0]])
        assert loss.forward(logits, targets) < 1e-8

    def test_gradient_matches_numeric(self, rng):
        loss = SigmoidCrossEntropy()
        logits = rng.standard_normal((5, 7))
        targets = (rng.random((5, 7)) < 0.3).astype(np.float64)
        analytic = loss.backward(logits, targets)
        idx, numeric = numerical_gradient(
            lambda: loss.forward(logits, targets), logits, sample=15, rng=rng
        )
        assert max_relative_error(analytic.reshape(-1)[idx], numeric) < 1e-5

    def test_extreme_logits_finite(self):
        loss = SigmoidCrossEntropy()
        logits = np.array([[1e4, -1e4]])
        targets = np.array([[0.0, 1.0]])
        val = loss.forward(logits, targets)
        assert np.isfinite(val) and val > 1e3  # hugely wrong predictions

    def test_predict_threshold(self):
        loss = SigmoidCrossEntropy()
        logits = np.array([[1.0, -1.0, 0.5]])
        assert np.array_equal(loss.predict(logits), [[1.0, 0.0, 1.0]])

    def test_shape_validation(self):
        loss = SigmoidCrossEntropy()
        with pytest.raises(ValueError):
            loss.forward(np.zeros((3, 2)), np.zeros((3, 4)))


class TestMakeLoss:
    def test_factory(self):
        assert isinstance(make_loss("single"), SoftmaxCrossEntropy)
        assert isinstance(make_loss("multi"), SigmoidCrossEntropy)
        with pytest.raises(ValueError):
            make_loss("regression")
