"""Tests for loss functions: values, gradients, stability, prediction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.gradcheck import max_relative_error, numerical_gradient
from repro.nn.loss import SigmoidCrossEntropy, SoftmaxCrossEntropy, make_loss


class TestSoftmaxCrossEntropy:
    def test_uniform_logits(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((4, 5))
        targets = np.array([0, 1, 2, 3])
        assert loss.forward(logits, targets) == pytest.approx(np.log(5))

    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.full((3, 4), -50.0)
        targets = np.array([1, 2, 0])
        logits[np.arange(3), targets] = 50.0
        assert loss.forward(logits, targets) < 1e-8

    def test_gradient_matches_numeric(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((6, 5))
        targets = rng.integers(0, 5, size=6)
        analytic = loss.backward(logits, targets)
        idx, numeric = numerical_gradient(
            lambda: loss.forward(logits, targets), logits, sample=15, rng=rng
        )
        assert max_relative_error(analytic.reshape(-1)[idx], numeric) < 1e-5

    def test_gradient_rows_sum_zero(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((8, 4))
        targets = rng.integers(0, 4, size=8)
        g = loss.backward(logits, targets)
        assert np.allclose(g.sum(axis=1), 0.0, atol=1e-12)

    def test_extreme_logits_finite(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[1e4, -1e4, 0.0]])
        assert np.isfinite(loss.forward(logits, np.array([0])))

    def test_predict(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[0.1, 3.0, -1.0], [2.0, 0.0, 0.5]])
        assert np.array_equal(loss.predict(logits), [1, 0])

    def test_shape_validation(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss.forward(np.zeros(5), np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            loss.forward(np.zeros((5, 3)), np.zeros(4, dtype=int))


class TestSigmoidCrossEntropy:
    def test_manual_value(self):
        loss = SigmoidCrossEntropy()
        logits = np.array([[0.0, 0.0]])
        targets = np.array([[1.0, 0.0]])
        # Each element contributes log(2); summed over 2 classes.
        assert loss.forward(logits, targets) == pytest.approx(2 * np.log(2))

    def test_perfect_prediction_low_loss(self):
        loss = SigmoidCrossEntropy()
        logits = np.array([[50.0, -50.0]])
        targets = np.array([[1.0, 0.0]])
        assert loss.forward(logits, targets) < 1e-8

    def test_gradient_matches_numeric(self, rng):
        loss = SigmoidCrossEntropy()
        logits = rng.standard_normal((5, 7))
        targets = (rng.random((5, 7)) < 0.3).astype(np.float64)
        analytic = loss.backward(logits, targets)
        idx, numeric = numerical_gradient(
            lambda: loss.forward(logits, targets), logits, sample=15, rng=rng
        )
        assert max_relative_error(analytic.reshape(-1)[idx], numeric) < 1e-5

    def test_extreme_logits_finite(self):
        loss = SigmoidCrossEntropy()
        logits = np.array([[1e4, -1e4]])
        targets = np.array([[0.0, 1.0]])
        val = loss.forward(logits, targets)
        assert np.isfinite(val) and val > 1e3  # hugely wrong predictions

    def test_predict_threshold(self):
        loss = SigmoidCrossEntropy()
        logits = np.array([[1.0, -1.0, 0.5]])
        assert np.array_equal(loss.predict(logits), [[1.0, 0.0, 1.0]])

    def test_shape_validation(self):
        loss = SigmoidCrossEntropy()
        with pytest.raises(ValueError):
            loss.forward(np.zeros((3, 2)), np.zeros((3, 4)))


class TestWeightedLosses:
    """The GraphSAINT loss-normalization path: per-row weights."""

    def test_softmax_weighted_forward_manual(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((6, 5))
        targets = rng.integers(0, 5, size=6)
        w = rng.random(6)
        # Per-row NLLs extracted via one-row calls to the unweighted mean.
        rows = np.array(
            [loss.forward(logits[i : i + 1], targets[i : i + 1]) for i in range(6)]
        )
        assert loss.forward(logits, targets, w) == pytest.approx((w * rows).sum())

    def test_sigmoid_weighted_forward_manual(self, rng):
        loss = SigmoidCrossEntropy()
        logits = rng.standard_normal((5, 7))
        targets = (rng.random((5, 7)) < 0.3).astype(np.float64)
        w = rng.random(5)
        rows = np.array(
            [loss.forward(logits[i : i + 1], targets[i : i + 1]) for i in range(5)]
        )
        assert loss.forward(logits, targets, w) == pytest.approx((w * rows).sum())

    @pytest.mark.parametrize("kind", ["softmax", "sigmoid"])
    def test_weighted_gradient_matches_numeric(self, kind, rng):
        if kind == "softmax":
            loss = SoftmaxCrossEntropy()
            logits = rng.standard_normal((6, 5))
            targets = rng.integers(0, 5, size=6)
        else:
            loss = SigmoidCrossEntropy()
            logits = rng.standard_normal((6, 4))
            targets = (rng.random((6, 4)) < 0.4).astype(np.float64)
        w = rng.random(6) + 0.1
        analytic = loss.backward(logits, targets, w)
        idx, numeric = numerical_gradient(
            lambda: loss.forward(logits, targets, w), logits, sample=15, rng=rng
        )
        assert max_relative_error(analytic.reshape(-1)[idx], numeric) < 1e-5

    @pytest.mark.parametrize("kind", ["softmax", "sigmoid"])
    def test_uniform_weights_equal_mean(self, kind, rng):
        """Weights of 1/batch reproduce the unweighted mean exactly."""
        if kind == "softmax":
            loss = SoftmaxCrossEntropy()
            logits = rng.standard_normal((8, 3))
            targets = rng.integers(0, 3, size=8)
        else:
            loss = SigmoidCrossEntropy()
            logits = rng.standard_normal((8, 3))
            targets = (rng.random((8, 3)) < 0.5).astype(np.float64)
        w = np.full(8, 1.0 / 8)
        assert loss.forward(logits, targets, w) == pytest.approx(
            loss.forward(logits, targets)
        )
        assert np.allclose(
            loss.backward(logits, targets, w), loss.backward(logits, targets)
        )

    def test_weighted_preserves_float32(self, rng):
        """float32 logits stay float32 through float64 weights (fast policy)."""
        loss = SigmoidCrossEntropy()
        logits = rng.standard_normal((4, 3)).astype(np.float32)
        targets = (rng.random((4, 3)) < 0.5).astype(np.float64)
        w = rng.random(4)  # float64 on purpose
        grad = loss.backward(logits, targets, w)
        assert grad.dtype == np.float32

    def test_weight_shape_validation(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((3, 2))
        targets = np.zeros(3, dtype=int)
        with pytest.raises(ValueError):
            loss.forward(logits, targets, np.ones(4))
        with pytest.raises(ValueError):
            loss.backward(logits, targets, np.ones((3, 1)))


class TestMakeLoss:
    def test_factory(self):
        assert isinstance(make_loss("single"), SoftmaxCrossEntropy)
        assert isinstance(make_loss("multi"), SigmoidCrossEntropy)
        with pytest.raises(ValueError):
            make_loss("regression")
