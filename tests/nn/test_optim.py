"""Tests for the Adam and SGD optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam


def quadratic_group(start: np.ndarray):
    """A param group minimizing ||x - 3||^2."""
    params = {"x": start.copy()}
    grads = {"x": np.zeros_like(start)}
    return params, grads


class TestSGD:
    def test_single_step(self):
        params, grads = quadratic_group(np.array([1.0]))
        grads["x"][...] = 2.0
        SGD(lr=0.1).step([(params, grads)])
        assert params["x"][0] == pytest.approx(0.8)

    def test_converges_on_quadratic(self):
        params, grads = quadratic_group(np.zeros(3))
        opt = SGD(lr=0.1)
        for _ in range(200):
            grads["x"][...] = 2 * (params["x"] - 3.0)
            opt.step([(params, grads)])
        assert np.allclose(params["x"], 3.0, atol=1e-4)

    def test_weight_decay_applies_to_matrices_only(self):
        w = {"W": np.ones((2, 2)), "b": np.ones(2)}
        g = {"W": np.zeros((2, 2)), "b": np.zeros(2)}
        SGD(lr=1.0, weight_decay=0.5).step([(w, g)])
        assert np.allclose(w["W"], 0.5)
        assert np.allclose(w["b"], 1.0)  # bias not decayed

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        params, grads = quadratic_group(np.zeros(4))
        opt = Adam(lr=0.1)
        for _ in range(500):
            grads["x"][...] = 2 * (params["x"] - 3.0)
            opt.step([(params, grads)])
        assert np.allclose(params["x"], 3.0, atol=1e-3)

    def test_first_step_magnitude(self):
        """Bias correction makes the first step ~lr regardless of grad scale."""
        for scale in (1e-3, 1.0, 1e3):
            params, grads = quadratic_group(np.array([0.0]))
            grads["x"][...] = scale
            Adam(lr=0.01).step([(params, grads)])
            assert abs(params["x"][0]) == pytest.approx(0.01, rel=1e-3)

    def test_state_keyed_per_group(self):
        p1, g1 = quadratic_group(np.zeros(2))
        p2, g2 = quadratic_group(np.zeros(3))
        opt = Adam(lr=0.1)
        g1["x"][...] = 1.0
        g2["x"][...] = -1.0
        opt.step([(p1, g1), (p2, g2)])
        assert np.all(p1["x"] < 0) and np.all(p2["x"] > 0)

    def test_reset(self):
        params, grads = quadratic_group(np.zeros(1))
        opt = Adam(lr=0.1)
        grads["x"][...] = 1.0
        opt.step([(params, grads)])
        assert opt.t == 1
        opt.reset()
        assert opt.t == 0 and not opt._m

    def test_faster_than_sgd_on_ill_conditioned(self):
        """Adam normalizes per-coordinate scale; SGD crawls on the flat dim."""

        def run(opt):
            params = {"x": np.array([0.0, 0.0])}
            grads = {"x": np.zeros(2)}
            scales = np.array([100.0, 0.01])
            for _ in range(100):
                grads["x"][...] = 2 * scales * (params["x"] - 1.0)
                opt.step([(params, grads)])
            return params["x"]

        # SGD lr capped by the steep dim; Adam unaffected.
        x_adam = run(Adam(lr=0.05))
        x_sgd = run(SGD(lr=0.004))  # larger diverges on the steep coordinate
        assert abs(x_adam[1] - 1.0) < abs(x_sgd[1] - 1.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Adam(lr=-1)
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
