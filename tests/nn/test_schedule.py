"""Tests for learning-rate schedules."""

from __future__ import annotations

import pytest

from repro.nn.optim import Adam
from repro.nn.schedule import (
    ConstantLR,
    CosineAnnealingLR,
    StepDecayLR,
    WarmupLR,
    apply_schedule,
)


class TestConstant:
    def test_value(self):
        s = ConstantLR(0.01)
        assert s(0) == s(1000) == 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)


class TestStepDecay:
    def test_halving(self):
        s = StepDecayLR(0.1, step_size=10, gamma=0.5)
        assert s(0) == 0.1
        assert s(9) == 0.1
        assert s(10) == pytest.approx(0.05)
        assert s(25) == pytest.approx(0.025)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepDecayLR(0.1, step_size=0)


class TestCosine:
    def test_endpoints(self):
        s = CosineAnnealingLR(0.1, total_steps=100, min_lr=0.01)
        assert s(0) == pytest.approx(0.1)
        assert s(100) == pytest.approx(0.01)
        assert s(1000) == pytest.approx(0.01)  # clamped past the horizon

    def test_midpoint(self):
        s = CosineAnnealingLR(0.2, total_steps=10, min_lr=0.0)
        assert s(5) == pytest.approx(0.1)

    def test_monotone_decreasing(self):
        s = CosineAnnealingLR(1.0, total_steps=50)
        vals = [s(i) for i in range(51)]
        assert all(b <= a + 1e-12 for a, b in zip(vals, vals[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(0.1, total_steps=10, min_lr=0.2)


class TestWarmup:
    def test_ramp_then_delegate(self):
        s = WarmupLR(ConstantLR(0.1), warmup_steps=5)
        assert s(0) == pytest.approx(0.02)
        assert s(4) == pytest.approx(0.1)
        assert s(10) == 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmupLR(ConstantLR(0.1), warmup_steps=0)


class TestApply:
    def test_sets_optimizer_lr(self):
        opt = Adam(lr=1.0)
        lr = apply_schedule(opt, StepDecayLR(0.1, step_size=5), step=7)
        assert lr == pytest.approx(0.05)
        assert opt.lr == pytest.approx(0.05)

    def test_training_with_schedule_converges(self):
        """End-to-end: cosine-annealed Adam still solves the quadratic."""
        import numpy as np

        params = {"x": np.zeros(3)}
        grads = {"x": np.zeros(3)}
        opt = Adam(lr=0.2)
        schedule = CosineAnnealingLR(0.2, total_steps=300, min_lr=0.001)
        for step in range(300):
            apply_schedule(opt, schedule, step)
            grads["x"][...] = 2 * (params["x"] - 3.0)
            opt.step([(params, grads)])
        assert np.allclose(params["x"], 3.0, atol=1e-2)
