"""Docs stay true: link integrity and architecture/code agreement.

Runs the same checks as the CI ``docs`` job (``tools/check_docs.py``) so
the tier-1 suite catches drift before CI does.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_docs = _load_checker()


def test_required_docs_exist():
    for rel in check_docs.DOC_FILES:
        assert (REPO_ROOT / rel).exists(), f"missing doc: {rel}"


def test_intra_repo_markdown_links_resolve():
    assert check_docs.check_links(REPO_ROOT) == []


def test_referenced_code_paths_exist():
    assert check_docs.check_code_paths(REPO_ROOT) == []


def test_architecture_names_every_public_package():
    """Every subpackage of repro (plus repro.cli) appears in the
    architecture doc, so new subsystems must be documented to land."""
    mentioned = set(check_docs.architecture_modules(REPO_ROOT))
    src = REPO_ROOT / "src" / "repro"
    public = {
        f"repro.{p.name}" for p in src.iterdir() if (p / "__init__.py").exists()
    }
    public.add("repro.cli")
    missing = {
        pkg
        for pkg in public
        if pkg not in mentioned and not any(m.startswith(pkg + ".") for m in mentioned)
    }
    assert not missing, f"architecture.md does not mention: {sorted(missing)}"


def test_architecture_modules_import():
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        assert check_docs.check_architecture_imports(REPO_ROOT) == []
    finally:
        sys.path.remove(str(REPO_ROOT / "src"))


def test_readme_links_new_docs():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in readme
    assert "docs/observability.md" in readme
