"""Counters/gauges/histograms: numpy-oracle percentiles, gating, registry."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import obs
from repro.obs import metrics
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestHistogram:
    def test_percentiles_match_numpy_oracle(self, rng):
        for n in (1, 2, 3, 10, 101, 500):
            samples = rng.normal(size=n)
            hist = Histogram()
            hist.extend(samples)
            for q in (0.0, 1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0):
                assert hist.percentile(q) == pytest.approx(
                    float(np.percentile(samples, q)), rel=1e-12, abs=1e-12
                ), (n, q)

    def test_empty_is_nan(self):
        hist = Histogram()
        assert math.isnan(hist.percentile(50))
        assert math.isnan(hist.mean())
        assert math.isnan(hist.max())

    def test_q_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)
        with pytest.raises(ValueError):
            Histogram().percentile(-1)

    def test_summary_scaling(self):
        hist = Histogram()
        hist.extend([0.001, 0.002, 0.003])
        s = hist.summary(scale=1e3)
        assert s["count"] == 3.0
        assert s["p50"] == pytest.approx(2.0)
        assert s["mean"] == pytest.approx(2.0)
        assert s["max"] == pytest.approx(3.0)

    def test_reset(self):
        hist = Histogram()
        hist.record(1.0)
        hist.reset()
        assert len(hist) == 0


class TestExemplarReservoir:
    def test_everything_admitted_during_warmup(self):
        hist = Histogram()
        for i in range(metrics._EXEMPLAR_WARMUP - 1):
            hist.record(float(i))
            assert hist.record_exemplar(float(i), f"req-{i:06d}")
        assert len(hist.exemplars) == metrics._EXEMPLAR_WARMUP - 1

    def test_warm_reservoir_rejects_below_trailing_p95(self):
        hist = Histogram()
        hist.extend([1.0] * 100)
        assert not hist.record_exemplar(0.5, "req-000001")
        assert hist.record_exemplar(2.0, "req-000002")
        assert [e.request_id for e in hist.exemplars] == ["req-000002"]

    def test_full_reservoir_evicts_the_minimum(self):
        hist = Histogram()
        # Keep the histogram cold so admission is unconditional and the
        # eviction policy is isolated.
        for i in range(metrics.EXEMPLAR_CAPACITY):
            hist.record_exemplar(float(i), f"req-{i:06d}")
        assert hist.record_exemplar(100.0, "req-big")
        values = [e.value for e in hist.exemplars]
        assert len(values) == metrics.EXEMPLAR_CAPACITY
        assert 0.0 not in values  # the smallest made room
        assert values[0] == 100.0  # property sorts largest first
        # A candidate smaller than the current minimum is dropped.
        assert not hist.record_exemplar(0.5, "req-small")

    def test_top_values_always_survive(self, rng):
        """Every above-p99 sample of a bench-scale stream stays resolvable."""
        hist = Histogram()
        samples = rng.exponential(scale=0.01, size=2000)
        for i, v in enumerate(samples):
            hist.record(float(v))
            hist.record_exemplar(float(v), f"req-{i:06d}")
        import numpy as np

        p99 = float(np.percentile(samples, 99))
        retained = {e.request_id for e in hist.exemplars}
        expected = {
            f"req-{i:06d}" for i, v in enumerate(samples) if v > p99
        }
        assert expected <= retained

    def test_exemplar_as_dict(self):
        e = metrics.Exemplar(0.5, "req-000001", "trace.json")
        assert e.as_dict() == {
            "value": 0.5,
            "request_id": "req-000001",
            "span_ref": "trace.json",
        }

    def test_reset_clears_exemplars(self):
        hist = Histogram()
        hist.record_exemplar(1.0, "req-000001")
        hist.reset()
        assert hist.exemplars == ()

    def test_registry_exemplar_snapshot_skips_empty(self):
        reg = MetricsRegistry()
        reg.histogram("with").record_exemplar(1.0, "req-000001")
        reg.histogram("without").record(1.0)
        snap = reg.exemplar_snapshot()
        assert list(snap) == ["with"]
        assert snap["with"][0]["request_id"] == "req-000001"

    def test_guarded_observe_records_exemplar_only_when_enabled(self):
        metrics.observe("lat", 1.0, request_id="req-000001")
        assert metrics.get_registry().histograms.get("lat") is None
        with obs.enabled():
            metrics.observe("lat", 1.0, request_id="req-000001")
            metrics.observe("lat", 2.0)  # no request id: sample only
        hist = metrics.get_registry().histograms["lat"]
        assert hist.count == 2
        assert [e.request_id for e in hist.exemplars] == ["req-000001"]


class TestCounterGauge:
    def test_counter(self):
        c = Counter()
        c.add()
        c.add(2.5)
        assert c.value == 3.5
        c.reset()
        assert c.value == 0.0

    def test_gauge(self):
        g = Gauge()
        assert math.isnan(g.value)
        g.set(0.7)
        assert g.value == 0.7


class TestRegistry:
    def test_create_on_touch_and_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("ops").add(3)
        reg.gauge("ratio").set(0.5)
        reg.histogram("lat").extend([1.0, 2.0])
        reg.histogram("empty")  # never written: excluded from snapshot
        snap = reg.snapshot()
        assert snap["counters"] == {"ops": 3.0}
        assert snap["gauges"] == {"ratio": 0.5}
        assert set(snap["histograms"]) == {"lat"}
        assert snap["histograms"]["lat"]["count"] == 2.0

    def test_reset_drops_names(self):
        reg = MetricsRegistry()
        reg.counter("x").add()
        reg.reset()
        assert reg.snapshot()["counters"] == {}


class TestGuardedHelpers:
    def test_noop_while_disabled(self):
        metrics.inc("c")
        metrics.set_gauge("g", 1.0)
        metrics.observe("h", 1.0)
        snap = metrics.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_record_while_enabled(self):
        with obs.enabled():
            metrics.inc("c", 2)
            metrics.inc("c")
            metrics.set_gauge("g", 0.25)
            metrics.observe("h", 5.0)
        snap = metrics.snapshot()
        assert snap["counters"]["c"] == 3.0
        assert snap["gauges"]["g"] == 0.25
        assert snap["histograms"]["h"]["count"] == 1.0


class TestServingCompat:
    def test_latency_histogram_is_shared_implementation(self):
        from repro.obs.metrics import LatencyHistogram as obs_lh
        from repro.serving.metrics import LatencyHistogram as serving_lh

        assert obs_lh is serving_lh
        assert issubclass(obs_lh, Histogram)

    def test_latency_rejects_negative(self):
        from repro.obs.metrics import LatencyHistogram

        with pytest.raises(ValueError):
            LatencyHistogram().record(-0.001)

    def test_serving_metrics_reexported_both_ways(self):
        from repro.obs.metrics import ServingMetrics as via_obs
        from repro.serving.metrics import ServingMetrics as via_serving

        assert via_obs is via_serving

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            metrics.does_not_exist
