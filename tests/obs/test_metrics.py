"""Counters/gauges/histograms: numpy-oracle percentiles, gating, registry."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import obs
from repro.obs import metrics
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestHistogram:
    def test_percentiles_match_numpy_oracle(self, rng):
        for n in (1, 2, 3, 10, 101, 500):
            samples = rng.normal(size=n)
            hist = Histogram()
            hist.extend(samples)
            for q in (0.0, 1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0):
                assert hist.percentile(q) == pytest.approx(
                    float(np.percentile(samples, q)), rel=1e-12, abs=1e-12
                ), (n, q)

    def test_empty_is_nan(self):
        hist = Histogram()
        assert math.isnan(hist.percentile(50))
        assert math.isnan(hist.mean())
        assert math.isnan(hist.max())

    def test_q_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)
        with pytest.raises(ValueError):
            Histogram().percentile(-1)

    def test_summary_scaling(self):
        hist = Histogram()
        hist.extend([0.001, 0.002, 0.003])
        s = hist.summary(scale=1e3)
        assert s["count"] == 3.0
        assert s["p50"] == pytest.approx(2.0)
        assert s["mean"] == pytest.approx(2.0)
        assert s["max"] == pytest.approx(3.0)

    def test_reset(self):
        hist = Histogram()
        hist.record(1.0)
        hist.reset()
        assert len(hist) == 0


class TestCounterGauge:
    def test_counter(self):
        c = Counter()
        c.add()
        c.add(2.5)
        assert c.value == 3.5
        c.reset()
        assert c.value == 0.0

    def test_gauge(self):
        g = Gauge()
        assert math.isnan(g.value)
        g.set(0.7)
        assert g.value == 0.7


class TestRegistry:
    def test_create_on_touch_and_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("ops").add(3)
        reg.gauge("ratio").set(0.5)
        reg.histogram("lat").extend([1.0, 2.0])
        reg.histogram("empty")  # never written: excluded from snapshot
        snap = reg.snapshot()
        assert snap["counters"] == {"ops": 3.0}
        assert snap["gauges"] == {"ratio": 0.5}
        assert set(snap["histograms"]) == {"lat"}
        assert snap["histograms"]["lat"]["count"] == 2.0

    def test_reset_drops_names(self):
        reg = MetricsRegistry()
        reg.counter("x").add()
        reg.reset()
        assert reg.snapshot()["counters"] == {}


class TestGuardedHelpers:
    def test_noop_while_disabled(self):
        metrics.inc("c")
        metrics.set_gauge("g", 1.0)
        metrics.observe("h", 1.0)
        snap = metrics.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_record_while_enabled(self):
        with obs.enabled():
            metrics.inc("c", 2)
            metrics.inc("c")
            metrics.set_gauge("g", 0.25)
            metrics.observe("h", 5.0)
        snap = metrics.snapshot()
        assert snap["counters"]["c"] == 3.0
        assert snap["gauges"]["g"] == 0.25
        assert snap["histograms"]["h"]["count"] == 1.0


class TestServingCompat:
    def test_latency_histogram_is_shared_implementation(self):
        from repro.obs.metrics import LatencyHistogram as obs_lh
        from repro.serving.metrics import LatencyHistogram as serving_lh

        assert obs_lh is serving_lh
        assert issubclass(obs_lh, Histogram)

    def test_latency_rejects_negative(self):
        from repro.obs.metrics import LatencyHistogram

        with pytest.raises(ValueError):
            LatencyHistogram().record(-0.001)

    def test_serving_metrics_reexported_both_ways(self):
        from repro.obs.metrics import ServingMetrics as via_obs
        from repro.serving.metrics import ServingMetrics as via_serving

        assert via_obs is via_serving

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            metrics.does_not_exist
