"""Exporters: trace documents, Chrome events, OBS_*.json, reports."""

from __future__ import annotations

import json

from repro.obs import export, metrics
from repro.obs.export import (
    load_trace,
    render_report,
    span_to_dict,
    to_chrome_trace,
    trace_document,
    write_chrome_trace,
    write_obs_json,
    write_trace_json,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

from .conftest import FakeClock


def _small_trace() -> Tracer:
    tr = Tracer(clock=FakeClock(step=1.0))
    with tr.span("iter", n=10) as it:
        it.add_sim_time(7.0)
        with tr.span("work"):
            pass
    return tr


class TestSpanToDict:
    def test_roundtrips_structure(self):
        tr = _small_trace()
        d = span_to_dict(tr.roots[0])
        assert d["name"] == "iter"
        assert d["duration"] == 3.0
        assert d["sim_time"] == 7.0
        assert d["attrs"] == {"n": 10}
        assert [c["name"] for c in d["children"]] == ["work"]

    def test_non_finite_attrs_become_null(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("s") as sp:
            sp.set(bad=float("nan"), worse=float("inf"), ok=1.5)
        d = span_to_dict(tr.roots[0])
        assert d["attrs"] == {"bad": None, "worse": None, "ok": 1.5}
        json.dumps(d)  # strictly JSON-serializable


class TestTraceDocument:
    def test_shape(self):
        tr = _small_trace()
        reg = MetricsRegistry()
        reg.counter("ops").add(4)
        doc = trace_document("demo", tr, reg)
        assert doc["obs"] == "demo"
        assert set(doc["phases"]) == {"iter", "work"}
        assert doc["phases"]["iter"]["sim_time"] == 7.0
        assert doc["metrics"]["counters"] == {"ops": 4.0}
        assert [s["name"] for s in doc["spans"]] == ["iter"]


class TestChromeTrace:
    def test_events(self):
        tr = _small_trace()
        events = to_chrome_trace(tr.roots)
        assert [e["name"] for e in events] == ["iter", "work"]
        iter_ev, work_ev = events
        assert iter_ev["ph"] == "X"
        assert iter_ev["ts"] == 0.0
        assert iter_ev["dur"] == 3.0 * 1e6
        assert work_ev["ts"] == 1.0 * 1e6
        assert work_ev["dur"] == 1.0 * 1e6
        assert iter_ev["args"]["sim_time"] == 7.0

    def test_open_spans_skipped_and_empty_ok(self):
        assert to_chrome_trace([]) == []
        tr = Tracer(clock=FakeClock())
        tr.span("never-closed")
        assert to_chrome_trace(tr.roots) == []

    def test_write_chrome_trace(self, tmp_path):
        tr = _small_trace()
        path = write_chrome_trace(tmp_path / "t.chrome.json", tr)
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == 2

    def test_multithreaded_spans_get_per_thread_lanes(self):
        """Spans opened on different threads land on distinct dense tid
        lanes, numbered in first-seen order."""
        import threading

        tr = Tracer(clock=FakeClock(step=1.0))
        with tr.span("main.work"):
            pass

        barrier = threading.Barrier(3)

        def worker(name):
            # All three rendezvous so their thread idents are distinct
            # (a joined thread's ident can be reused by the next one).
            barrier.wait()
            with tr.span(name):
                pass

        threads = [
            threading.Thread(target=worker, args=(f"worker.{i}",))
            for i in range(3)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        events = to_chrome_trace(tr.roots)
        by_name = {e["name"]: e["tid"] for e in events}
        assert by_name["main.work"] == 0  # first-seen thread gets lane 0
        worker_lanes = {by_name[f"worker.{i}"] for i in range(3)}
        assert worker_lanes == {1, 2, 3}
        assert all(e["pid"] == events[0]["pid"] for e in events)

    def test_virtual_clock_spans_share_lane_zero(self):
        """Request trees built with explicit timestamps (tid=None) render
        on lane 0 rather than inventing a lane per span."""
        from repro.obs.context import RequestContext

        tr = Tracer(clock=FakeClock())
        ctx = RequestContext("req-000001", 0.0)
        ctx.child("serve.service", 0.0, t_end=1.0)
        ctx.finish(1.0, tracer=tr)
        events = to_chrome_trace(tr.roots)
        assert {e["tid"] for e in events} == {0}


class TestFileRoundtrips:
    def test_write_and_load_trace_json(self, tmp_path):
        tr = _small_trace()
        path = write_trace_json(tmp_path / "trace.json", "demo", tr, MetricsRegistry())
        doc = load_trace(path)
        assert doc["obs"] == "demo"
        assert doc["spans"][0]["children"][0]["name"] == "work"

    def test_obs_json_flat_and_sorted(self, tmp_path):
        tr = _small_trace()
        reg = MetricsRegistry()
        reg.counter("z").add(1)
        reg.counter("a").add(2)
        path = write_obs_json(tmp_path / "OBS_demo.json", "demo", tr, reg)
        doc = load_trace(path)
        assert doc["obs"] == "demo"
        assert "spans" not in doc  # flat summary, no tree
        assert doc["phases"]["iter"]["count"] == 1.0
        assert list(doc["metrics"]["counters"]) == ["a", "z"]

    def test_global_default_arguments(self, tmp_path):
        from repro import obs

        with obs.enabled():
            with obs.span("g"):
                metrics.inc("touched")
        doc = export.trace_document("global")
        assert "g" in doc["phases"]
        assert doc["metrics"]["counters"]["touched"] == 1.0
        path = export.write_obs_json(tmp_path / "OBS_global.json", "global")
        assert load_trace(path)["obs"] == "global"


class TestExemplarRoundtrip:
    def _registry_with_exemplars(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        hist = reg.histogram("serve.latency_seconds")
        hist.record(0.250)
        hist.record_exemplar(0.250, "t1.req-000007", "OBS_serve.json")
        return reg

    def test_trace_document_carries_exemplars(self):
        doc = trace_document("demo", _small_trace(), self._registry_with_exemplars())
        (entry,) = doc["exemplars"]["serve.latency_seconds"]
        assert entry == {
            "value": 0.250,
            "request_id": "t1.req-000007",
            "span_ref": "OBS_serve.json",
        }
        json.dumps(doc)  # strictly serializable with exemplars attached

    def test_exemplars_survive_obs_json_roundtrip(self, tmp_path):
        reg = self._registry_with_exemplars()
        path = write_obs_json(tmp_path / "OBS_demo.json", "demo", _small_trace(), reg)
        doc = load_trace(path)
        (entry,) = doc["exemplars"]["serve.latency_seconds"]
        assert entry["request_id"] == "t1.req-000007"
        assert entry["value"] == 0.250

    def test_span_to_dict_keeps_tid(self):
        tr = _small_trace()
        d = span_to_dict(tr.roots[0])
        assert d["tid"] == tr.roots[0].tid
        assert d["children"][0]["tid"] == tr.roots[0].children[0].tid

    def test_render_exemplars_table_and_empty(self):
        from repro.obs.export import render_exemplars

        doc = trace_document("demo", _small_trace(), self._registry_with_exemplars())
        text = render_exemplars(doc)
        assert "tail exemplars: demo" in text
        assert "t1.req-000007" in text
        assert "250" in text  # value rendered in milliseconds
        empty = render_exemplars({"obs": "empty", "exemplars": {}})
        assert "no exemplars retained" in empty


class TestRenderReport:
    def test_report_contains_phases_and_counters(self):
        tr = _small_trace()
        reg = MetricsRegistry()
        reg.counter("sampler.pops").add(42)
        text = render_report(trace_document("demo", tr, reg))
        assert "obs report: demo" in text
        assert "iter" in text and "work" in text
        assert "wall_%" in text
        assert "sampler.pops" in text

    def test_self_time_percentages_sum_to_100(self):
        tr = _small_trace()
        doc = trace_document("demo", tr, MetricsRegistry())
        total_self = sum(p["self_seconds"] for p in doc["phases"].values())
        shares = [
            100.0 * p["self_seconds"] / total_self for p in doc["phases"].values()
        ]
        assert sum(shares) == 100.0

    def test_empty_document(self):
        text = render_report({"obs": "empty", "phases": {}})
        assert "no spans recorded" in text
