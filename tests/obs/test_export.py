"""Exporters: trace documents, Chrome events, OBS_*.json, reports."""

from __future__ import annotations

import json

from repro.obs import export, metrics
from repro.obs.export import (
    load_trace,
    render_report,
    span_to_dict,
    to_chrome_trace,
    trace_document,
    write_chrome_trace,
    write_obs_json,
    write_trace_json,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

from .conftest import FakeClock


def _small_trace() -> Tracer:
    tr = Tracer(clock=FakeClock(step=1.0))
    with tr.span("iter", n=10) as it:
        it.add_sim_time(7.0)
        with tr.span("work"):
            pass
    return tr


class TestSpanToDict:
    def test_roundtrips_structure(self):
        tr = _small_trace()
        d = span_to_dict(tr.roots[0])
        assert d["name"] == "iter"
        assert d["duration"] == 3.0
        assert d["sim_time"] == 7.0
        assert d["attrs"] == {"n": 10}
        assert [c["name"] for c in d["children"]] == ["work"]

    def test_non_finite_attrs_become_null(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("s") as sp:
            sp.set(bad=float("nan"), worse=float("inf"), ok=1.5)
        d = span_to_dict(tr.roots[0])
        assert d["attrs"] == {"bad": None, "worse": None, "ok": 1.5}
        json.dumps(d)  # strictly JSON-serializable


class TestTraceDocument:
    def test_shape(self):
        tr = _small_trace()
        reg = MetricsRegistry()
        reg.counter("ops").add(4)
        doc = trace_document("demo", tr, reg)
        assert doc["obs"] == "demo"
        assert set(doc["phases"]) == {"iter", "work"}
        assert doc["phases"]["iter"]["sim_time"] == 7.0
        assert doc["metrics"]["counters"] == {"ops": 4.0}
        assert [s["name"] for s in doc["spans"]] == ["iter"]


class TestChromeTrace:
    def test_events(self):
        tr = _small_trace()
        events = to_chrome_trace(tr.roots)
        assert [e["name"] for e in events] == ["iter", "work"]
        iter_ev, work_ev = events
        assert iter_ev["ph"] == "X"
        assert iter_ev["ts"] == 0.0
        assert iter_ev["dur"] == 3.0 * 1e6
        assert work_ev["ts"] == 1.0 * 1e6
        assert work_ev["dur"] == 1.0 * 1e6
        assert iter_ev["args"]["sim_time"] == 7.0

    def test_open_spans_skipped_and_empty_ok(self):
        assert to_chrome_trace([]) == []
        tr = Tracer(clock=FakeClock())
        tr.span("never-closed")
        assert to_chrome_trace(tr.roots) == []

    def test_write_chrome_trace(self, tmp_path):
        tr = _small_trace()
        path = write_chrome_trace(tmp_path / "t.chrome.json", tr)
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == 2


class TestFileRoundtrips:
    def test_write_and_load_trace_json(self, tmp_path):
        tr = _small_trace()
        path = write_trace_json(tmp_path / "trace.json", "demo", tr, MetricsRegistry())
        doc = load_trace(path)
        assert doc["obs"] == "demo"
        assert doc["spans"][0]["children"][0]["name"] == "work"

    def test_obs_json_flat_and_sorted(self, tmp_path):
        tr = _small_trace()
        reg = MetricsRegistry()
        reg.counter("z").add(1)
        reg.counter("a").add(2)
        path = write_obs_json(tmp_path / "OBS_demo.json", "demo", tr, reg)
        doc = load_trace(path)
        assert doc["obs"] == "demo"
        assert "spans" not in doc  # flat summary, no tree
        assert doc["phases"]["iter"]["count"] == 1.0
        assert list(doc["metrics"]["counters"]) == ["a", "z"]

    def test_global_default_arguments(self, tmp_path):
        from repro import obs

        with obs.enabled():
            with obs.span("g"):
                metrics.inc("touched")
        doc = export.trace_document("global")
        assert "g" in doc["phases"]
        assert doc["metrics"]["counters"]["touched"] == 1.0
        path = export.write_obs_json(tmp_path / "OBS_global.json", "global")
        assert load_trace(path)["obs"] == "global"


class TestRenderReport:
    def test_report_contains_phases_and_counters(self):
        tr = _small_trace()
        reg = MetricsRegistry()
        reg.counter("sampler.pops").add(42)
        text = render_report(trace_document("demo", tr, reg))
        assert "obs report: demo" in text
        assert "iter" in text and "work" in text
        assert "wall_%" in text
        assert "sampler.pops" in text

    def test_self_time_percentages_sum_to_100(self):
        tr = _small_trace()
        doc = trace_document("demo", tr, MetricsRegistry())
        total_self = sum(p["self_seconds"] for p in doc["phases"].values())
        shares = [
            100.0 * p["self_seconds"] / total_self for p in doc["phases"].values()
        ]
        assert sum(shares) == 100.0

    def test_empty_document(self):
        text = render_report({"obs": "empty", "phases": {}})
        assert "no spans recorded" in text
