"""Flight recorder: ring buffers, root-sink capture, dumps, debounce."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import flight, metrics
from repro.obs.context import RequestContext
from repro.obs.flight import FlightRecorder, flight_event, get_flight_recorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer

from .conftest import FakeClock


@pytest.fixture
def recorder(tmp_path, fake_clock):
    """A small recorder installed as the process sink; restored after."""
    rec = FlightRecorder(
        span_capacity=4,
        event_capacity=4,
        clock=fake_clock,
        out_dir=tmp_path,
        debounce_seconds=10.0,
    )
    prev = flight.set_flight_recorder(rec)
    yield rec
    flight.set_flight_recorder(prev)


def _root(name: str, t0: float = 0.0, t1: float = 1.0) -> Span:
    sp = Span(name, t0, None)
    sp.t_end = t1
    return sp


class TestRings:
    def test_span_ring_keeps_the_newest(self, recorder):
        for i in range(6):
            recorder.record_span(_root(f"s{i}"))
        assert [sp.name for sp in recorder.spans] == ["s2", "s3", "s4", "s5"]

    def test_event_ring_keeps_the_newest(self, recorder):
        for i in range(6):
            recorder.event("e", i=i)
        assert [e["attrs"]["i"] for e in recorder.events] == [2, 3, 4, 5]

    def test_events_are_clock_stamped(self, recorder):
        recorder.event("first")
        recorder.event("second")
        ts = [e["t"] for e in recorder.events]
        assert ts == sorted(ts) and ts[0] < ts[1]

    def test_clear_empties_everything(self, recorder):
        recorder.record_span(_root("s"))
        recorder.event("e")
        recorder.clear()
        assert recorder.spans == [] and recorder.events == []


class TestRootSinkCapture:
    def test_tracer_roots_land_in_the_ring(self, recorder, fake_clock):
        tr = Tracer(clock=fake_clock)
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        assert [sp.name for sp in recorder.spans] == ["outer"]
        # The whole tree is retained, not just the root.
        assert [c.name for c in recorder.spans[0].children] == ["inner"]

    def test_request_trees_land_via_add_root(self, recorder, fake_clock):
        tr = Tracer(clock=fake_clock)
        ctx = RequestContext("req-000001", 0.0)
        ctx.finish(1.0, tracer=tr)
        assert [sp.name for sp in recorder.spans] == ["request"]

    def test_open_roots_added_explicitly_are_not_recorded(self, recorder, fake_clock):
        tr = Tracer(clock=fake_clock)
        tr.add_root(Span("open", 0.0, None))  # t_end is None
        assert recorder.spans == []

    def test_flight_event_is_gate_guarded(self, recorder):
        flight_event("hidden", x=1)
        assert recorder.events == []
        with obs.enabled():
            flight_event("visible", x=2)
        assert [e["name"] for e in recorder.events] == ["visible"]

    def test_obs_reset_clears_the_process_recorder(self):
        rec = get_flight_recorder()
        rec.event("stale")
        obs.reset()
        assert rec.events == []


class TestCounterDeltas:
    def test_deltas_only_show_movement(self, recorder):
        reg = MetricsRegistry()
        reg.counter("a").add(3)
        reg.counter("b").add(1)
        assert recorder.counter_deltas(reg) == {"a": 3.0, "b": 1.0}
        recorder.dump("d", registry=reg)  # rebases
        reg.counter("a").add(2)
        assert recorder.counter_deltas(reg) == {"a": 2.0}


class TestDump:
    def test_dump_writes_a_complete_bundle(self, recorder, tmp_path):
        reg = MetricsRegistry()
        reg.counter("serve.shed").add(4)
        reg.histogram("lat").record(0.5)
        reg.histogram("lat").record_exemplar(0.5, "req-000001")
        recorder.record_span(_root("request"))
        recorder.event("cluster.hedge_fired", shard=1)
        path = recorder.dump("unit", reason="because", registry=reg)
        assert path == tmp_path / "OBS_flightdump_unit_001.json"
        doc = json.loads(path.read_text())
        assert doc["kind"] == "flightdump"
        assert doc["reason"] == "because"
        assert doc["dump_index"] == 1
        assert [s["name"] for s in doc["spans"]] == ["request"]
        assert [e["name"] for e in doc["events"]] == ["cluster.hedge_fired"]
        assert doc["counter_deltas"] == {"serve.shed": 4.0}
        assert doc["exemplars"]["lat"][0]["request_id"] == "req-000001"
        assert "python" in json.dumps(doc["env"]).lower() or doc["env"]

    def test_dump_indices_increment(self, recorder):
        reg = MetricsRegistry()
        p1 = recorder.dump("seq", registry=reg)
        p2 = recorder.dump("seq", registry=reg)
        assert p1.name.endswith("_001.json")
        assert p2.name.endswith("_002.json")

    def test_maybe_dump_debounces(self, recorder):
        reg = MetricsRegistry()
        clock = recorder.clock
        assert recorder.maybe_dump("auto", registry=reg) is not None
        # FakeClock steps 1s per read; the 10s debounce suppresses this.
        assert recorder.maybe_dump("auto", registry=reg) is None
        clock.t += 20.0
        assert recorder.maybe_dump("auto", registry=reg) is not None


class TestBreachTriggeredDump:
    def test_slo_breach_auto_dumps_debounced(self, recorder):
        from repro.obs.slo import SLOContext, SLORule, evaluate

        reg = MetricsRegistry()
        reg.histogram("lat").extend([1.0] * 10)  # p99 = 1.0 >> 0.001
        rule = SLORule(
            name="impossible",
            kind="histogram_p99",
            params={"metric": "lat", "threshold": 0.001},
        )
        ctx = SLOContext(registry=reg)
        results = evaluate([rule], ctx)
        assert not results[0].ok
        assert recorder.dump_count == 1
        dumps = list(recorder.out_dir.glob("OBS_flightdump_slo_breach_*.json"))
        assert len(dumps) == 1
        doc = json.loads(dumps[0].read_text())
        assert "impossible" in doc["reason"]
        assert reg.counters["slo.flight_dumps"].value == 1.0
        # A second breached evaluation inside the debounce window does
        # not produce a second bundle.
        evaluate([rule], ctx)
        assert recorder.dump_count == 1

    def test_passing_rules_never_dump(self, recorder):
        from repro.obs.slo import SLOContext, SLORule, evaluate

        reg = MetricsRegistry()
        reg.histogram("lat").extend([0.001] * 10)
        rule = SLORule(
            name="fine",
            kind="histogram_p99",
            params={"metric": "lat", "threshold": 1.0},
        )
        results = evaluate([rule], SLOContext(registry=reg))
        assert results[0].ok
        assert recorder.dump_count == 0


class TestDisabledPath:
    def test_disabled_replay_records_nothing(self, recorder):
        import numpy as np

        from repro.serving.server import EmbeddingServer, ServerConfig
        from repro.serving.workload import zipf_trace

        rng = np.random.default_rng(0)
        server = EmbeddingServer(
            rng.standard_normal((128, 8)),
            config=ServerConfig(max_batch=8),
            service_model=lambda b, rows: 0.001,
        )
        trace = zipf_trace(30, 128, skew=1.1, rate=1000.0, k=5, rng=rng)
        server.serve_trace(trace)  # gate off
        assert recorder.spans == []
        assert recorder.events == []
