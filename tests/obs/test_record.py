"""Bench records: fingerprint semantics, record round-trip, writers."""

from __future__ import annotations

import json

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.record import (
    RECORD_SCHEMA_VERSION,
    BenchRecord,
    BenchReporter,
    MetricSeries,
    environment_fingerprint,
    fingerprint_key,
    git_sha,
    load_bench_records,
    write_bench_json,
)


class TestFingerprint:
    def test_fields_present(self):
        env = environment_fingerprint()
        for field in (
            "git_sha",
            "python",
            "numpy",
            "platform",
            "dtype_policy",
            "spmm_backend",
            "seed",
        ):
            assert field in env, field
        assert all(isinstance(v, str) for v in env.values())

    def test_defaults_name_a_complete_regime(self):
        env = environment_fingerprint()
        assert env["dtype_policy"] == "reference"
        assert env["spmm_backend"]  # the registry default, never empty
        assert env["seed"] == "none"

    def test_git_sha_is_real_here(self):
        # The test suite runs inside the repo checkout.
        sha = git_sha()
        assert sha != "unknown"
        assert len(sha) == 40

    def test_key_stable_across_calls(self):
        assert fingerprint_key(environment_fingerprint()) == fingerprint_key(
            environment_fingerprint()
        )

    def test_key_ignores_git_sha(self):
        """Same configuration on a new commit stays in the same series."""
        a = environment_fingerprint()
        b = dict(a, git_sha="0" * 40)
        assert fingerprint_key(a) == fingerprint_key(b)

    def test_key_splits_on_dtype_policy(self):
        a = environment_fingerprint(dtype_policy="reference")
        b = environment_fingerprint(dtype_policy="fast")
        assert fingerprint_key(a) != fingerprint_key(b)

    def test_key_splits_on_spmm_backend(self):
        a = environment_fingerprint(spmm_backend="csr")
        b = environment_fingerprint(spmm_backend="blocked")
        assert fingerprint_key(a) != fingerprint_key(b)

    def test_key_splits_on_seed_and_extra(self):
        base = environment_fingerprint()
        assert fingerprint_key(base) != fingerprint_key(
            environment_fingerprint(seed=7)
        )
        assert fingerprint_key(base) != fingerprint_key(
            environment_fingerprint(extra={"dataset": "reddit"})
        )


class TestBenchRecord:
    def test_round_trip(self):
        rec = BenchRecord(bench="serve")
        rec.add_samples("latency_s", [0.01, 0.02, 0.03])
        rec.add_samples("qps", [100.0, 110.0], unit="1/s", direction="higher")
        d = rec.as_dict()
        assert d["schema"] == RECORD_SCHEMA_VERSION
        assert d["key"] == rec.key
        back = BenchRecord.from_dict(d, bench="serve")
        assert back.bench == "serve"
        assert back.key == rec.key
        assert back.series["latency_s"].samples == [0.01, 0.02, 0.03]
        assert back.series["qps"].direction == "higher"
        assert back.series["qps"].unit == "1/s"

    def test_metric_series_round_trip(self):
        s = MetricSeries([1.0, 2.0], unit="ms", direction="higher")
        assert MetricSeries.from_dict(s.as_dict()) == s

    def test_from_registry_harvests_time_like_histograms(self):
        reg = obs_metrics.MetricsRegistry()
        reg.histogram("trainer.iteration_seconds").extend([0.1, 0.2])
        reg.histogram("serve.latency.ann").record(0.005)
        reg.histogram("sampler.occupancy").record(0.7)  # not time-like
        rec = BenchRecord.from_registry("b", registry=reg)
        assert set(rec.series) == {
            "trainer.iteration_seconds",
            "serve.latency.ann",
        }
        assert rec.series["trainer.iteration_seconds"].samples == [0.1, 0.2]


class TestWriteBenchJson:
    def test_payload_carries_record_env_and_samples(self, tmp_path):
        path = write_bench_json(
            tmp_path / "BENCH_x.json",
            "x",
            {"rows": [1, 2]},
            samples={"latency_s": [0.5, 0.6]},
        )
        payload = json.loads(path.read_text())
        assert payload["bench"] == "x"
        assert payload["results"] == {"rows": [1, 2]}
        record = payload["record"]
        assert record["schema"] == RECORD_SCHEMA_VERSION
        assert "dtype_policy" in record["env"]
        assert record["series"]["latency_s"]["samples"] == [0.5, 0.6]

    def test_load_round_trip(self, tmp_path):
        write_bench_json(
            tmp_path / "BENCH_x.json", "x", {}, samples={"m_s": [1.0, 2.0]}
        )
        records = load_bench_records(tmp_path)
        assert [r.bench for r in records] == ["x"]
        assert records[0].series["m_s"].samples == [1.0, 2.0]

    def test_load_skips_recordless_and_broken_files(self, tmp_path):
        (tmp_path / "BENCH_old.json").write_text('{"bench": "old", "results": {}}')
        (tmp_path / "BENCH_bad.json").write_text("{nope")
        write_bench_json(
            tmp_path / "BENCH_new.json", "new", {}, samples={"m_s": [1.0]}
        )
        assert [r.bench for r in load_bench_records(tmp_path)] == ["new"]


class TestBenchReporter:
    def test_naming_convention(self, tmp_path):
        rep = BenchReporter(tmp_path)
        assert rep.table_path("x").name == "x.txt"
        assert rep.bench_path("x").name == "BENCH_x.json"
        assert rep.obs_path("x").name == "OBS_x.json"

    def test_writers_land_on_their_paths(self, tmp_path):
        rep = BenchReporter(tmp_path)
        assert rep.write_table("x", "tbl") == rep.table_path("x")
        assert rep.table_path("x").read_text() == "tbl\n"
        assert rep.write_results("x", {"a": 1}) == rep.bench_path("x")
        assert json.loads(rep.bench_path("x").read_text())["results"] == {"a": 1}


class TestCommonDelegation:
    def test_experiments_writer_embeds_record(self, tmp_path):
        """The legacy entry point now routes through obs.record."""
        from repro.experiments.common import write_bench_json as legacy

        path = legacy(tmp_path / "BENCH_y.json", "y", {"v": 3})
        payload = json.loads(path.read_text())
        assert payload["record"]["env"]["dtype_policy"] == "reference"

    def test_explicit_record_wins(self, tmp_path):
        rec = BenchRecord(
            bench="z", env=environment_fingerprint(dtype_policy="fast")
        )
        rec.add_samples("t_s", [9.0])
        path = write_bench_json(tmp_path / "BENCH_z.json", "z", {}, record=rec)
        payload = json.loads(path.read_text())
        assert payload["record"]["env"]["dtype_policy"] == "fast"
        assert payload["record"]["series"]["t_s"]["samples"] == [9.0]


class TestExportFingerprint:
    def test_obs_trace_document_carries_env(self):
        from repro.obs.export import trace_document

        doc = trace_document("t")
        assert doc["env"]["dtype_policy"] == "reference"
        assert "numpy" in doc["env"]


@pytest.mark.parametrize("direction", ["lower", "higher", "none"])
def test_direction_values_round_trip(direction):
    s = MetricSeries([1.0], direction=direction)
    assert MetricSeries.from_dict(s.as_dict()).direction == direction
