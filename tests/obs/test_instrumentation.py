"""End-to-end instrumentation: trainer, samplers, propagation, serving.

The acceptance criterion from the issue lives here: on a real training
run, the sample/forward/backward spans must cover >= 95% of each
iteration's wall time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.obs.trace import walk
from repro.train.config import TrainConfig
from repro.train.trainer import GraphSamplingTrainer


@pytest.fixture(scope="module")
def traced_run(request):
    """One instrumented training run shared by the assertions below."""
    ppi_small = request.getfixturevalue("ppi_small")
    config = TrainConfig(
        hidden_dims=(32, 32),
        frontier_size=20,
        budget=120,
        epochs=2,
        eval_every=1,
        seed=0,
    )
    trainer = GraphSamplingTrainer(ppi_small, config)
    obs.set_enabled(False)
    obs.reset()
    with obs.enabled():
        result = trainer.train()
    roots = list(obs.get_tracer().roots)
    snapshot = obs.metrics.snapshot()
    obs.reset()
    return result, roots, snapshot


def _named(roots, name):
    return [sp for root in roots for sp in walk(root) if sp.name == name]


class TestTrainerSpans:
    def test_iteration_coverage_at_least_95_percent(self, traced_run):
        result, roots, _ = traced_run
        iterations = _named(roots, "trainer.iteration")
        assert len(iterations) == result.iterations
        total = sum(sp.duration for sp in iterations)
        covered = sum(
            child.duration for sp in iterations for child in sp.children
        )
        assert total > 0
        assert covered / total >= 0.95

    def test_phase_structure(self, traced_run):
        _, roots, _ = traced_run
        assert all(r.name == "trainer.epoch" for r in roots)
        for it in _named(roots, "trainer.iteration"):
            names = [c.name for c in it.children]
            assert names == [
                "trainer.sample",
                "trainer.forward",
                "trainer.backward",
            ]

    def test_propagation_nested_inside_model_phases(self, traced_run):
        _, roots, _ = traced_run
        for phase, prop in (
            ("trainer.forward", "prop.forward"),
            ("trainer.backward", "prop.backward"),
        ):
            parents = _named(roots, phase)
            nested = [
                sp
                for parent in parents
                for sp in walk(parent)
                if sp.name == prop
            ]
            assert nested, f"no {prop} spans under {phase}"
            assert all(sp.sim_time > 0 for sp in nested)

    def test_iteration_attrs_and_sim_time(self, traced_run):
        _, roots, _ = traced_run
        for it in _named(roots, "trainer.iteration"):
            assert it.attrs["vertices"] > 0
            assert it.attrs["edges"] > 0
            assert it.total_sim_time() > 0

    def test_eval_spans_inside_epochs(self, traced_run):
        _, roots, _ = traced_run
        assert _named(roots, "trainer.eval")

    def test_counters_populated(self, traced_run):
        result, _, snapshot = traced_run
        counters = snapshot["counters"]
        assert counters["trainer.iterations"] == float(result.iterations)
        assert counters["sampler.pops"] > 0
        assert counters["sampler.subgraphs"] > 0
        assert counters["prop.passes"] > 0
        assert counters["spmm.ops"] > 0
        assert counters["spmm.flops"] > 0

    def test_sampler_spans_under_sample_phase(self, traced_run):
        _, roots, _ = traced_run
        samples = _named(roots, "trainer.sample")
        dashboards = [
            sp
            for parent in samples
            for sp in walk(parent)
            if sp.name == "sampler.dashboard"
        ]
        assert dashboards
        assert all("pops" in sp.attrs for sp in dashboards)


class TestServingSpans:
    def test_serve_trace_records_spans_and_counters(self, rng):
        from repro.serving import EmbeddingServer, QueryTrace, ServerConfig

        embeddings = rng.standard_normal((60, 8))
        server = EmbeddingServer(
            embeddings,
            config=ServerConfig(max_batch=8, max_wait=0.0, queue_capacity=64),
            service_model=lambda batch, rows: 1e-4,
        )
        ids = np.arange(30, dtype=np.int64) % 60
        trace = QueryTrace(
            query_ids=ids,
            arrivals=np.arange(30, dtype=np.float64) * 0.01,
            k=5,
            skew=0.0,
        )
        obs.reset()
        with obs.enabled():
            replay = server.serve_trace(trace)
        roots = obs.get_tracer().roots
        serve_spans = _named(roots, "serve.trace")
        assert len(serve_spans) == 1
        assert serve_spans[0].attrs["requests"] == 30
        batches = _named(roots, "serve.batch")
        assert batches
        assert all(
            any(c.name == "serve.search" for c in b.children) for b in batches
        )
        counters = obs.metrics.snapshot()["counters"]
        assert counters["serve.requests"] == 30.0
        assert counters["serve.served"] == float(replay.metrics.served)
        assert counters["serve.batches"] == float(len(batches))

    def test_serving_silent_when_disabled(self, rng):
        from repro.serving import EmbeddingServer, QueryTrace, ServerConfig

        embeddings = rng.standard_normal((20, 4))
        server = EmbeddingServer(
            embeddings,
            config=ServerConfig(max_batch=4, max_wait=0.0, queue_capacity=16),
            service_model=lambda batch, rows: 1e-4,
        )
        ids = np.arange(8, dtype=np.int64)
        trace = QueryTrace(
            query_ids=ids,
            arrivals=np.arange(8, dtype=np.float64) * 0.01,
            k=3,
            skew=0.0,
        )
        server.serve_trace(trace)
        assert obs.get_tracer().roots == []
        assert obs.metrics.snapshot()["counters"] == {}
