"""The kill switch is genuinely free: no allocation, <2% trainer cost."""

from __future__ import annotations

import gc
import time
import tracemalloc

from repro import obs
from repro.obs import metrics
from repro.obs.trace import NOOP_SPAN, span
from repro.train.config import TrainConfig
from repro.train.trainer import GraphSamplingTrainer


class TestDisabledPath:
    def test_span_returns_shared_singleton(self):
        spans = {id(span(f"site.{i}")) for i in range(100)}
        assert spans == {id(NOOP_SPAN)}

    def test_noop_span_absorbs_the_full_protocol(self):
        with span("anything") as sp:
            assert sp.set(a=1, b=2) is sp
            sp.add_sim_time(123.0)
        assert obs.get_tracer().roots == []

    def test_disabled_calls_allocate_nothing(self):
        """Net traced memory does not grow with the number of disabled
        instrumentation calls — the hot-loop contract."""
        tracemalloc.start()
        try:
            for _ in range(64):  # warm caches / interned names
                span("probe")
                metrics.inc("probe")
                metrics.observe("probe", 1.0)
                metrics.set_gauge("probe", 1.0)
            gc.collect()
            before, _ = tracemalloc.get_traced_memory()
            for _ in range(4096):
                span("probe")
                metrics.inc("probe")
                metrics.observe("probe", 1.0)
                metrics.set_gauge("probe", 1.0)
            gc.collect()
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before < 1024  # noise floor, not O(calls)

    def test_nothing_recorded_while_disabled(self):
        span("x").set(n=1)
        metrics.inc("x")
        assert obs.get_tracer().roots == []
        assert metrics.snapshot()["counters"] == {}

    def test_disabled_tail_debug_entry_points_allocate_nothing(self):
        """The request-tracing / flight-recorder additions keep the
        disabled hot path allocation-free: flight_event and the
        exemplar-carrying observe() are gate-guarded like span()/inc()."""
        from repro.obs.flight import flight_event

        tracemalloc.start()
        try:
            for _ in range(64):  # warm caches / interned names
                flight_event("probe", x=1)
                metrics.observe("probe", 1.0, request_id="req-000001")
            gc.collect()
            before, _ = tracemalloc.get_traced_memory()
            for _ in range(4096):
                flight_event("probe", x=1)
                metrics.observe("probe", 1.0, request_id="req-000001")
            gc.collect()
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before < 1024  # noise floor, not O(calls)


class TestEnabledRecorderBudget:
    def test_enabled_serve_overhead_under_five_percent(self):
        """Request tracing + exemplars + the always-on flight recorder
        cost ≤5% on the serve hot path at a paper-realistic index size
        (~64k vertices, the PPI scale).

        Same structure as the trainer bound below, because a direct
        enabled-vs-disabled wall-clock A/B is dominated by scheduler and
        BLAS noise on shared runners: measure (a) the obs-disabled
        replay wall time and (b) the per-request cost of everything the
        enabled path adds — a RequestContext tree (id, queue + service
        children, finish through the tracer into the flight recorder's
        root sink) plus the latency sample and its exemplar offer — then
        assert the per-request cost across every served request stays
        under 5% of the replay.
        """
        import numpy as np

        from repro.obs import context as obs_context
        from repro.serving.server import EmbeddingServer, ServerConfig
        from repro.serving.workload import zipf_trace

        rows, queries = 65536, 400
        rng = np.random.default_rng(0)
        emb = rng.standard_normal((rows, 64)).astype(np.float32)
        trace = zipf_trace(queries, rows, skew=1.1, rate=5000.0, k=10)
        obs.reset()
        server = EmbeddingServer(emb, config=ServerConfig(max_batch=32))

        def replay_once() -> float:
            t0 = time.perf_counter()
            server.serve_trace(trace)
            return time.perf_counter() - t0

        disabled = min(replay_once() for _ in range(3))

        reps = 2000

        def instrumentation_once() -> float:
            obs.reset()
            hist = metrics.get_registry().histogram("serve.latency_seconds")
            t0 = time.perf_counter()
            for i in range(reps):
                ctx = obs_context.RequestContext(
                    obs_context.new_request_id("t1.req"), 0.0, qid=i, k=10
                )
                ctx.child("serve.queue", 0.0, t_end=0.001)
                ctx.child(
                    "serve.service", 0.001, t_end=0.002, size=32, rows=rows
                )
                ctx.finish(0.002)
                hist.record(0.002)
                hist.record_exemplar(0.002, ctx.request_id)
            return (time.perf_counter() - t0) / reps

        with obs.enabled():
            per_request = min(instrumentation_once() for _ in range(3))
        obs.reset()

        overhead = queries * per_request / disabled
        assert overhead < 0.05, (
            f"enabled-recorder overhead {overhead * 100:.2f}% "
            f"({per_request * 1e6:.2f}us/request x {queries} requests vs "
            f"disabled replay {disabled * 1e3:.1f}ms)"
        )


class TestTrainerOverhead:
    def test_disabled_overhead_under_two_percent(self, ppi_small):
        """Bound the instrumentation tax on a real training iteration.

        Measures (a) the wall time of an uninstrumented-in-effect
        (gate off) training iteration and (b) the per-call cost of a
        disabled span()/inc() pair, then asserts that even a generous
        count of instrumented call sites per iteration costs <2% of the
        iteration — the acceptance bound from the issue.
        """
        config = TrainConfig(
            hidden_dims=(32, 32),
            frontier_size=20,
            budget=120,
            epochs=2,
            eval_every=1,
            seed=0,
        )
        trainer = GraphSamplingTrainer(ppi_small, config)
        t0 = time.perf_counter()
        result = trainer.train()
        per_iteration = (time.perf_counter() - t0) / max(1, result.iterations)

        calls = 100_000
        t0 = time.perf_counter()
        for _ in range(calls):
            span("overhead.probe")
            metrics.inc("overhead.probe")
        per_call = (time.perf_counter() - t0) / (2 * calls)

        # Far more call sites than the trainer actually has per iteration
        # (spans + guarded counters across sampler/prop/spmm/trainer).
        generous_sites = 200
        overhead = generous_sites * per_call
        assert overhead < 0.02 * per_iteration, (
            f"disabled instrumentation {overhead * 1e6:.2f}us/iter vs "
            f"iteration {per_iteration * 1e3:.3f}ms"
        )
