"""The kill switch is genuinely free: no allocation, <2% trainer cost."""

from __future__ import annotations

import gc
import time
import tracemalloc

from repro import obs
from repro.obs import metrics
from repro.obs.trace import NOOP_SPAN, span
from repro.train.config import TrainConfig
from repro.train.trainer import GraphSamplingTrainer


class TestDisabledPath:
    def test_span_returns_shared_singleton(self):
        spans = {id(span(f"site.{i}")) for i in range(100)}
        assert spans == {id(NOOP_SPAN)}

    def test_noop_span_absorbs_the_full_protocol(self):
        with span("anything") as sp:
            assert sp.set(a=1, b=2) is sp
            sp.add_sim_time(123.0)
        assert obs.get_tracer().roots == []

    def test_disabled_calls_allocate_nothing(self):
        """Net traced memory does not grow with the number of disabled
        instrumentation calls — the hot-loop contract."""
        tracemalloc.start()
        try:
            for _ in range(64):  # warm caches / interned names
                span("probe")
                metrics.inc("probe")
                metrics.observe("probe", 1.0)
                metrics.set_gauge("probe", 1.0)
            gc.collect()
            before, _ = tracemalloc.get_traced_memory()
            for _ in range(4096):
                span("probe")
                metrics.inc("probe")
                metrics.observe("probe", 1.0)
                metrics.set_gauge("probe", 1.0)
            gc.collect()
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before < 1024  # noise floor, not O(calls)

    def test_nothing_recorded_while_disabled(self):
        span("x").set(n=1)
        metrics.inc("x")
        assert obs.get_tracer().roots == []
        assert metrics.snapshot()["counters"] == {}


class TestTrainerOverhead:
    def test_disabled_overhead_under_two_percent(self, ppi_small):
        """Bound the instrumentation tax on a real training iteration.

        Measures (a) the wall time of an uninstrumented-in-effect
        (gate off) training iteration and (b) the per-call cost of a
        disabled span()/inc() pair, then asserts that even a generous
        count of instrumented call sites per iteration costs <2% of the
        iteration — the acceptance bound from the issue.
        """
        config = TrainConfig(
            hidden_dims=(32, 32),
            frontier_size=20,
            budget=120,
            epochs=2,
            eval_every=1,
            seed=0,
        )
        trainer = GraphSamplingTrainer(ppi_small, config)
        t0 = time.perf_counter()
        result = trainer.train()
        per_iteration = (time.perf_counter() - t0) / max(1, result.iterations)

        calls = 100_000
        t0 = time.perf_counter()
        for _ in range(calls):
            span("overhead.probe")
            metrics.inc("overhead.probe")
        per_call = (time.perf_counter() - t0) / (2 * calls)

        # Far more call sites than the trainer actually has per iteration
        # (spans + guarded counters across sampler/prop/spmm/trainer).
        generous_sites = 200
        overhead = generous_sites * per_call
        assert overhead < 0.02 * per_iteration, (
            f"disabled instrumentation {overhead * 1e6:.2f}us/iter vs "
            f"iteration {per_iteration * 1e3:.3f}ms"
        )
