"""Regression gate: planted shifts flag, identical reruns never do."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.history import HistoryStore
from repro.obs.record import BenchRecord, environment_fingerprint
from repro.obs.regress import (
    VERDICT_IMPROVED,
    VERDICT_INSUFFICIENT,
    VERDICT_REGRESSED,
    VERDICT_UNCHANGED,
    Comparison,
    RegressionPolicy,
    bootstrap_median_ratio_ci,
    compare,
    diff_against_history,
    mann_whitney_u,
    render_diff,
    worst_verdict,
)


def _timing_samples(rng, n=30, loc=0.010, scale=0.0008):
    """Tie-free lognormal-ish timing samples around ``loc`` seconds."""
    return loc * np.exp(scale / loc * rng.standard_normal(n))


class TestMannWhitney:
    def test_full_separation_small_n_is_exact(self):
        """5-vs-5 full separation: p = 2 / C(10,5) = 2/252.

        The normal approximation gives ~0.012 here — too coarse to clear
        alpha=0.01 at the gate's minimum sample counts, which is exactly
        why the exact path exists.
        """
        x = [1.0, 2.0, 3.0, 4.0, 5.0]
        y = [10.0, 11.0, 12.0, 13.0, 14.0]
        _, p = mann_whitney_u(x, y)
        assert p == pytest.approx(2.0 / 252.0, rel=1e-12)

    def test_matches_scipy_exact(self):
        stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(0)
        for n1, n2 in [(5, 5), (8, 9), (12, 7)]:
            x = rng.standard_normal(n1)
            y = rng.standard_normal(n2) + 0.5
            u, p = mann_whitney_u(x, y)
            ref = stats.mannwhitneyu(x, y, alternative="two-sided", method="exact")
            assert u == pytest.approx(float(ref.statistic))
            assert p == pytest.approx(float(ref.pvalue), rel=1e-10)

    def test_identical_constant_samples(self):
        _, p = mann_whitney_u([1.0, 1.0, 1.0], [1.0, 1.0, 1.0])
        assert p == 1.0

    def test_ties_fall_back_to_normal_approximation(self):
        # Large tied samples: p stays a valid probability, no crash.
        x = [1.0, 2.0, 2.0, 3.0] * 20
        y = [2.0, 3.0, 3.0, 4.0] * 20
        _, p = mann_whitney_u(x, y)
        assert 0.0 < p < 0.05

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])


class TestBootstrapCI:
    def test_ci_brackets_true_ratio(self):
        rng = np.random.default_rng(1)
        base = _timing_samples(rng)
        cur = base * 1.5
        lo, hi = bootstrap_median_ratio_ci(cur, base, seed=0)
        assert lo <= 1.5 <= hi
        assert lo > 1.3  # tight around the planted shift

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(2)
        a = _timing_samples(rng)
        b = _timing_samples(rng)
        assert bootstrap_median_ratio_ci(a, b, seed=3) == bootstrap_median_ratio_ci(
            a, b, seed=3
        )


class TestCompare:
    def test_planted_1p5x_slowdown_is_regressed(self):
        """The acceptance scenario: a 1.5x slowdown must be flagged."""
        rng = np.random.default_rng(0)
        base = _timing_samples(rng)
        cur = 1.5 * _timing_samples(rng)
        c = compare(cur, base, bench="b", metric="m")
        assert c.verdict == VERDICT_REGRESSED
        assert c.ratio == pytest.approx(1.5, rel=0.1)
        assert c.p_value < 0.01

    def test_planted_speedup_is_improved(self):
        rng = np.random.default_rng(0)
        base = _timing_samples(rng)
        cur = _timing_samples(rng) / 1.5
        assert compare(cur, base).verdict == VERDICT_IMPROVED

    def test_direction_higher_flips_the_verdict(self):
        """For throughput, more is better: an upshift is an improvement."""
        rng = np.random.default_rng(0)
        base = _timing_samples(rng, loc=100.0, scale=5.0)
        up = 1.5 * _timing_samples(rng, loc=100.0, scale=5.0)
        assert compare(up, base, direction="higher").verdict == VERDICT_IMPROVED
        down = _timing_samples(rng, loc=100.0, scale=5.0) / 1.5
        assert compare(down, base, direction="higher").verdict == VERDICT_REGRESSED

    def test_shift_inside_noise_band_is_unchanged(self):
        """Significant but small (< noise threshold) shifts never gate."""
        rng = np.random.default_rng(4)
        base = _timing_samples(rng, n=200, scale=0.0002)
        cur = 1.04 * _timing_samples(rng, n=200, scale=0.0002)
        c = compare(cur, base)
        assert c.p_value < 0.01  # clearly distinguishable distributions
        assert c.verdict == VERDICT_UNCHANGED

    def test_insufficient_data(self):
        policy = RegressionPolicy(min_samples=4)
        c = compare([1.0, 2.0, 3.0], [1.0, 2.0, 3.0, 4.0], policy=policy)
        assert c.verdict == VERDICT_INSUFFICIENT
        assert c.n_current == 3

    @pytest.mark.parametrize("seed", range(25))
    def test_no_false_positives_on_identical_distributions(self, seed):
        """The acceptance sweep: same-distribution resamples across >= 20
        seeds must all come back unchanged (the conjunction of the
        significance test, the noise band and the bootstrap CI is what
        keeps CI reruns quiet)."""
        rng = np.random.default_rng(seed)
        base = _timing_samples(rng)
        cur = _timing_samples(rng)
        assert compare(cur, base).verdict == VERDICT_UNCHANGED


class TestDiffAgainstHistory:
    def _record(self, samples, *, metric="latency_s", direction="lower"):
        rec = BenchRecord(bench="serve", env=environment_fingerprint())
        rec.add_samples(metric, samples, direction=direction)
        return rec

    def test_first_run_is_insufficient_not_regressed(self, tmp_path):
        store = HistoryStore(tmp_path)
        rng = np.random.default_rng(0)
        out = diff_against_history([self._record(_timing_samples(rng))], store)
        assert [c.verdict for c in out] == [VERDICT_INSUFFICIENT]

    def test_regression_against_recorded_baseline(self, tmp_path):
        store = HistoryStore(tmp_path)
        rng = np.random.default_rng(0)
        store.append(self._record(_timing_samples(rng)))
        slow = self._record(1.5 * _timing_samples(rng))
        out = diff_against_history([slow], store)
        assert [c.verdict for c in out] == [VERDICT_REGRESSED]

    def test_informational_series_skipped(self, tmp_path):
        store = HistoryStore(tmp_path)
        rec = self._record([1.0] * 10, metric="iters", direction="none")
        assert diff_against_history([rec], store) == []


class TestVerdictRollup:
    def _c(self, verdict):
        return Comparison(
            bench="b", metric="m", verdict=verdict, n_current=5, n_baseline=5
        )

    def test_regressed_dominates(self):
        cs = [self._c(VERDICT_UNCHANGED), self._c(VERDICT_REGRESSED)]
        assert worst_verdict(cs) == VERDICT_REGRESSED

    def test_improvement_does_not_fail_the_gate(self):
        cs = [self._c(VERDICT_IMPROVED), self._c(VERDICT_UNCHANGED)]
        assert worst_verdict(cs) == VERDICT_UNCHANGED

    def test_partial_insufficient_is_unchanged(self):
        cs = [self._c(VERDICT_UNCHANGED), self._c(VERDICT_INSUFFICIENT)]
        assert worst_verdict(cs) == VERDICT_UNCHANGED

    def test_all_insufficient(self):
        assert worst_verdict([self._c(VERDICT_INSUFFICIENT)]) == VERDICT_INSUFFICIENT
        assert worst_verdict([]) == VERDICT_INSUFFICIENT


class TestRenderDiff:
    def test_table_contains_verdicts(self):
        rng = np.random.default_rng(0)
        c = compare(
            1.5 * _timing_samples(rng),
            _timing_samples(rng),
            bench="serve",
            metric="latency_s",
        )
        text = render_diff([c])
        assert "latency_s" in text
        assert VERDICT_REGRESSED in text

    def test_empty(self):
        assert "no comparable series" in render_diff([])
