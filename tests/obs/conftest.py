"""Shared fixtures for the observability tests."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs():
    """Every obs test starts and ends with a disabled, empty layer."""
    obs.set_enabled(False)
    obs.reset()
    yield
    obs.set_enabled(False)
    obs.reset()


class FakeClock:
    """Deterministic clock: each read advances by a fixed step."""

    def __init__(self, step: float = 1.0) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        now = self.t
        self.t += self.step
        return now


@pytest.fixture
def fake_clock():
    return FakeClock()
