"""CLI surface: `train-bench` exports a trace, `obs-report` renders it."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_known(self):
        parser = build_parser()
        for name in ("train-bench", "obs-report"):
            assert parser.parse_args([name]).experiment == name

    def test_trace_option(self, tmp_path):
        args = build_parser().parse_args(
            ["obs-report", "--trace", str(tmp_path / "OBS_x.json")]
        )
        assert args.trace == tmp_path / "OBS_x.json"


class TestTrainBench:
    @pytest.fixture(scope="class")
    def bench_out(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("obs_cli")
        code = main(
            [
                "train-bench",
                "--out",
                str(out),
                "--epoch-scale",
                "0.34",  # 1 epoch: the point is the trace, not accuracy
                "--hidden",
                "32",
            ]
        )
        assert code == 0
        return out

    def test_writes_all_artifacts(self, bench_out):
        assert (bench_out / "train_bench.txt").exists()
        assert (bench_out / "OBS_train_bench.json").exists()
        assert (bench_out / "train_bench.chrome.json").exists()

    def test_trace_document_shape(self, bench_out):
        doc = json.loads((bench_out / "OBS_train_bench.json").read_text())
        assert doc["obs"] == "train_bench"
        for phase in (
            "trainer.iteration",
            "trainer.sample",
            "trainer.forward",
            "trainer.backward",
        ):
            assert phase in doc["phases"], phase
        assert doc["meta"]["dataset"] == "ppi"
        assert doc["meta"]["iterations"] >= 1
        assert doc["metrics"]["counters"]["trainer.iterations"] >= 1.0

    def test_coverage_in_exported_trace(self, bench_out):
        """The exported span tree itself satisfies the >=95% criterion."""
        doc = json.loads((bench_out / "OBS_train_bench.json").read_text())

        def iterations(node):
            if node["name"] == "trainer.iteration":
                yield node
            for child in node["children"]:
                yield from iterations(child)

        iters = [it for root in doc["spans"] for it in iterations(root)]
        assert iters
        total = sum(it["duration"] for it in iters)
        covered = sum(c["duration"] for it in iters for c in it["children"])
        assert covered / total >= 0.95

    def test_chrome_trace_loads(self, bench_out):
        data = json.loads((bench_out / "train_bench.chrome.json").read_text())
        events = data["traceEvents"]
        assert events
        assert all(e["ph"] == "X" for e in events)
        assert min(e["ts"] for e in events) == 0.0

    def test_obs_report_renders_export(self, bench_out, capsys):
        code = main(
            ["obs-report", "--trace", str(bench_out / "OBS_train_bench.json")]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "obs report: train_bench" in text
        assert "trainer.iteration" in text
        assert "counters" in text


class TestObsReportErrors:
    def test_requires_trace(self):
        with pytest.raises(SystemExit) as exc:
            main(["obs-report"])
        assert exc.value.code == 2
