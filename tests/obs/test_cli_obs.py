"""CLI surface: bench/obs/gate subcommands over the observability layer."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_known(self):
        parser = build_parser()
        for name in (
            "train-bench",
            "obs-report",
            "bench-record",
            "bench-diff",
            "bench-gate",
            "slo-report",
        ):
            assert parser.parse_args([name]).experiment == name

    def test_trace_option(self, tmp_path):
        args = build_parser().parse_args(
            ["obs-report", "--trace", str(tmp_path / "OBS_x.json")]
        )
        assert args.trace == tmp_path / "OBS_x.json"

    def test_gate_knobs(self, tmp_path):
        args = build_parser().parse_args(
            [
                "bench-gate",
                "--results",
                str(tmp_path / "r"),
                "--history",
                str(tmp_path / "h"),
                "--alpha",
                "0.05",
                "--noise",
                "0.2",
                "--min-samples",
                "6",
                "--window",
                "5",
            ]
        )
        assert args.results == tmp_path / "r"
        assert args.history == tmp_path / "h"
        assert args.alpha == 0.05
        assert args.noise == 0.2
        assert args.min_samples == 6
        assert args.window == 5

    def test_slo_knobs(self):
        args = build_parser().parse_args(
            ["slo-report", "--deadline-ms", "25", "--strict"]
        )
        assert args.deadline_ms == 25.0
        assert args.strict

    def test_maintenance_commands_excluded_from_all(self):
        from repro.cli import _COMMANDS, _EXCLUDED_FROM_ALL

        assert {
            "bench-record",
            "bench-diff",
            "bench-gate",
            "slo-report",
            "flight-dump",
        } <= _EXCLUDED_FROM_ALL
        assert _EXCLUDED_FROM_ALL <= set(_COMMANDS)

    def test_tail_debug_knobs(self, tmp_path):
        parser = build_parser()
        assert parser.parse_args(["flight-dump"]).experiment == "flight-dump"
        args = parser.parse_args(
            ["obs-report", "--trace", str(tmp_path / "d.json"), "--exemplars"]
        )
        assert args.exemplars
        assert args.request is None
        args = parser.parse_args(
            [
                "obs-report",
                "--trace",
                str(tmp_path / "d.json"),
                "--request",
                "t1.req-000007",
            ]
        )
        assert args.request == "t1.req-000007"
        assert build_parser().parse_args(
            ["slo-report", "--force-breach"]
        ).force_breach


class TestTrainBench:
    @pytest.fixture(scope="class")
    def bench_out(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("obs_cli")
        code = main(
            [
                "train-bench",
                "--out",
                str(out),
                "--epoch-scale",
                "0.34",  # 1 epoch: the point is the trace, not accuracy
                "--hidden",
                "32",
            ]
        )
        assert code == 0
        return out

    def test_writes_all_artifacts(self, bench_out):
        assert (bench_out / "train_bench.txt").exists()
        assert (bench_out / "OBS_train_bench.json").exists()
        assert (bench_out / "train_bench.chrome.json").exists()

    def test_trace_document_shape(self, bench_out):
        doc = json.loads((bench_out / "OBS_train_bench.json").read_text())
        assert doc["obs"] == "train_bench"
        for phase in (
            "trainer.iteration",
            "trainer.sample",
            "trainer.forward",
            "trainer.backward",
        ):
            assert phase in doc["phases"], phase
        assert doc["meta"]["dataset"] == "ppi"
        assert doc["meta"]["iterations"] >= 1
        assert doc["metrics"]["counters"]["trainer.iterations"] >= 1.0

    def test_coverage_in_exported_trace(self, bench_out):
        """The exported span tree itself satisfies the >=95% criterion."""
        doc = json.loads((bench_out / "OBS_train_bench.json").read_text())

        def iterations(node):
            if node["name"] == "trainer.iteration":
                yield node
            for child in node["children"]:
                yield from iterations(child)

        iters = [it for root in doc["spans"] for it in iterations(root)]
        assert iters
        total = sum(it["duration"] for it in iters)
        covered = sum(c["duration"] for it in iters for c in it["children"])
        assert covered / total >= 0.95

    def test_chrome_trace_loads(self, bench_out):
        data = json.loads((bench_out / "train_bench.chrome.json").read_text())
        events = data["traceEvents"]
        assert events
        assert all(e["ph"] == "X" for e in events)
        assert min(e["ts"] for e in events) == 0.0

    def test_obs_report_renders_export(self, bench_out, capsys):
        code = main(
            ["obs-report", "--trace", str(bench_out / "OBS_train_bench.json")]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "obs report: train_bench" in text
        assert "trainer.iteration" in text
        assert "counters" in text


class TestObsReportErrors:
    def test_requires_trace(self):
        with pytest.raises(SystemExit) as exc:
            main(["obs-report"])
        assert exc.value.code == 2


class TestBenchGateFlow:
    """bench-record -> bench-gate end to end on fabricated BENCH files."""

    def _write_bench(self, results_dir, samples):
        from repro.obs.record import write_bench_json

        write_bench_json(
            results_dir / "BENCH_serve.json",
            "serve",
            {"rows": []},
            samples={"latency_s": list(samples)},
        )

    def _samples(self, seed, scale=1.0, n=24):
        rng = np.random.default_rng(seed)
        return scale * 0.010 * np.exp(0.08 * rng.standard_normal(n))

    def _gate_args(self, results, history):
        return [
            "--results",
            str(results),
            "--history",
            str(history),
        ]

    @pytest.fixture
    def dirs(self, tmp_path):
        results = tmp_path / "results"
        history = tmp_path / "history"
        results.mkdir()
        return results, history

    def test_record_then_identical_rerun_passes(self, dirs, capsys):
        results, history = dirs
        self._write_bench(results, self._samples(0))
        assert main(["bench-record", *self._gate_args(results, history)]) == 0
        assert (history / "serve.jsonl").exists()
        self._write_bench(results, self._samples(1))  # fresh same-dist run
        code = main(["bench-gate", *self._gate_args(results, history)])
        out = capsys.readouterr().out
        assert code == 0
        assert "bench-gate verdict: unchanged" in out

    def test_planted_slowdown_fails_the_gate(self, dirs, capsys):
        results, history = dirs
        self._write_bench(results, self._samples(0))
        main(["bench-record", *self._gate_args(results, history)])
        self._write_bench(results, self._samples(1, scale=1.5))
        code = main(["bench-gate", *self._gate_args(results, history)])
        out = capsys.readouterr().out
        assert code == 1
        assert "bench-gate verdict: regressed" in out
        assert "regressed" in out

    def test_first_run_never_gates(self, dirs, capsys):
        """With no history yet the gate reports insufficient-data, exit 0."""
        results, history = dirs
        self._write_bench(results, self._samples(0))
        code = main(["bench-gate", *self._gate_args(results, history)])
        assert code == 0
        assert "insufficient-data" in capsys.readouterr().out

    def test_bench_diff_renders(self, dirs, capsys):
        results, history = dirs
        self._write_bench(results, self._samples(0))
        main(["bench-record", *self._gate_args(results, history)])
        self._write_bench(results, self._samples(1))
        assert main(["bench-diff", *self._gate_args(results, history)]) == 0
        out = capsys.readouterr().out
        assert "latency_s" in out
        assert "ratio" in out

    def test_record_on_empty_results_is_a_noop(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        code = main(
            ["bench-record", *self._gate_args(results, tmp_path / "history")]
        )
        assert code == 0
        assert "no BENCH_" in capsys.readouterr().out
        assert not (tmp_path / "history").exists()


class TestFlightDumpCli:
    @pytest.fixture(scope="class")
    def dump_out(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("flight_cli")
        code = main(["flight-dump", "--queries", "150", "--out", str(out)])
        assert code == 0
        return out

    def test_writes_a_manual_dump(self, dump_out):
        dumps = sorted(dump_out.glob("OBS_flightdump_manual_*.json"))
        assert dumps
        doc = json.loads(dumps[0].read_text())
        assert doc["kind"] == "flightdump"
        assert doc["reason"] == "cli flight-dump"
        assert doc["spans"]

    def test_dump_spans_are_request_trees(self, dump_out):
        from repro.obs.context import request_ids

        dumps = sorted(dump_out.glob("OBS_flightdump_manual_*.json"))
        doc = json.loads(dumps[0].read_text())
        assert request_ids(doc["spans"])

    def test_obs_report_request_reads_the_dump(self, dump_out, capsys):
        from repro.obs.context import request_ids

        dumps = sorted(dump_out.glob("OBS_flightdump_manual_*.json"))
        doc = json.loads(dumps[0].read_text())
        rid = request_ids(doc["spans"])[0]
        code = main(["obs-report", "--trace", str(dumps[0]), "--request", rid])
        assert code == 0
        text = capsys.readouterr().out
        assert rid in text
        assert "critical path" in text

    def test_obs_report_unknown_request_fails_listing_ids(
        self, dump_out, capsys
    ):
        dumps = sorted(dump_out.glob("OBS_flightdump_manual_*.json"))
        code = main(
            ["obs-report", "--trace", str(dumps[0]), "--request", "nope"]
        )
        assert code == 1
        assert "not found" in capsys.readouterr().out


class TestObsReportExemplars:
    def test_renders_exemplars_from_trace_doc(self, tmp_path, capsys):
        from repro.obs.export import write_trace_json
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import Tracer

        from .conftest import FakeClock

        reg = MetricsRegistry()
        hist = reg.histogram("serve.latency_seconds")
        hist.record(0.123)
        hist.record_exemplar(0.123, "t1.req-000042")
        path = write_trace_json(
            tmp_path / "OBS_x.json", "x", Tracer(clock=FakeClock()), reg
        )
        code = main(["obs-report", "--trace", str(path), "--exemplars"])
        assert code == 0
        text = capsys.readouterr().out
        assert "tail exemplars" in text
        assert "t1.req-000042" in text


class TestSloReport:
    def test_evaluates_the_standing_rules(self, tmp_path, capsys):
        code = main(
            [
                "slo-report",
                "--epoch-scale",
                "0.34",
                "--hidden",
                "32",
                "--queries",
                "200",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0  # breaches only flip the exit code under --strict
        text = (tmp_path / "slo_report.txt").read_text()
        for rule in (
            "serving-deadline-miss",
            "iteration-span-coverage",
            "flop-account-drift",
        ):
            assert rule in text, rule
        # The instrumented run satisfies the repo's standing contracts.
        assert "all SLOs met" in text

    def test_forced_breach_dumps_flight_recorder(self, tmp_path, capsys):
        """The acceptance demo: a forced SLO breach during slo-report
        auto-produces a flight dump, and ``obs-report --request`` on a
        hedged request in that dump reconstructs a critical path that
        covers >=95% of the recorded latency with the winner marked."""
        import re

        from repro.obs.context import request_ids

        code = main(
            [
                "slo-report",
                "--epoch-scale",
                "0.34",
                "--hidden",
                "32",
                "--queries",
                "200",
                "--force-breach",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0  # exit only flips under --strict
        text = (tmp_path / "slo_report.txt").read_text()
        assert "BREACH" in text
        assert "flight dump (breach):" in text
        dumps = sorted(tmp_path.glob("OBS_flightdump_slo_breach_*.json"))
        assert dumps
        doc = json.loads(dumps[0].read_text())
        assert doc["reason"]  # names the breached rule(s)
        # Pick a hedged request from the dump (the cluster replay
        # hedges); prefer one whose hedged duplicate won the race.
        def dispatches(root):
            for sub in root.get("children", []):
                for c in sub.get("children", []):
                    yield c.get("attrs") or {}

        hedged = [
            root
            for root in doc["spans"]
            if any(a.get("hedge") for a in dispatches(root))
        ]
        assert hedged, "breach dump holds no hedged requests"
        hedge_won = [
            root
            for root in hedged
            if any(
                a.get("hedge") and a.get("winner") for a in dispatches(root)
            )
        ]
        rid = (hedge_won or hedged)[0]["attrs"]["request_id"]
        assert rid in request_ids(doc["spans"])
        capsys.readouterr()  # drop the slo-report stdout
        assert (
            main(["obs-report", "--trace", str(dumps[0]), "--request", rid])
            == 0
        )
        tree = capsys.readouterr().out
        marker = "[hedge/winner]" if hedge_won else "[winner]"
        assert marker in tree
        m = re.search(r"covers (\d+(?:\.\d+)?)% of it", tree)
        assert m, tree
        assert float(m.group(1)) >= 95.0
