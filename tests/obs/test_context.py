"""Request-scoped tracing: ids, span trees, critical paths, rendering."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import context
from repro.obs.context import (
    RequestContext,
    critical_path,
    critical_path_coverage,
    find_request,
    new_request_id,
    new_trace_id,
    render_request_tree,
    request_ids,
)
from repro.obs.export import span_to_dict
from repro.obs.trace import Tracer


def _hedged_request(rid: str = "req-000001") -> RequestContext:
    """A request whose slow first dispatch was hedged; hedge won."""
    ctx = RequestContext(rid, 0.0, qid=7, k=10)
    ctx.child("cluster.route", 0.0, t_end=0.0)
    sub = ctx.child("cluster.subrequest", 0.0, shard=1)
    ctx.child(
        "cluster.dispatch", 0.0, parent=sub, t_end=9.0,
        shard=1, replica=0, lost=True,
    )
    ctx.child(
        "cluster.dispatch", 3.0, parent=sub, t_end=5.0,
        shard=1, replica=1, hedge=True, winner=True,
    )
    sub.t_end = 5.0
    return ctx


class TestIds:
    def test_request_ids_are_sequential(self):
        assert new_request_id() == "req-000001"
        assert new_request_id() == "req-000002"
        assert new_request_id("t3.req") == "t3.req-000003"

    def test_trace_ids_namespace_replays(self):
        assert new_trace_id() == "t1"
        assert new_trace_id() == "t2"

    def test_obs_reset_rewinds_counters(self):
        new_request_id()
        new_trace_id()
        obs.reset()
        assert new_request_id() == "req-000001"
        assert new_trace_id() == "t1"


class TestRequestContext:
    def test_finish_attaches_root_to_tracer(self, fake_clock):
        tr = Tracer(clock=fake_clock)
        ctx = RequestContext("req-000009", 1.0, qid=3)
        ctx.child("serve.queue", 1.0, t_end=2.0)
        root = ctx.finish(4.0, tracer=tr)
        assert tr.roots == [root]
        assert root.name == "request"
        assert root.attrs["request_id"] == "req-000009"
        assert root.attrs["qid"] == 3
        assert root.t_end == 4.0

    def test_finish_closes_open_descendants(self, fake_clock):
        tr = Tracer(clock=fake_clock)
        ctx = RequestContext("req-000001", 0.0)
        open_child = ctx.child("serve.service", 1.0)  # never closed
        ctx.finish(3.0, tracer=tr, shed=True)
        assert open_child.t_end == 3.0
        assert ctx.root.attrs["shed"] is True

    def test_children_nest_under_explicit_parent(self, fake_clock):
        ctx = RequestContext("req-000001", 0.0)
        sub = ctx.child("cluster.subrequest", 0.0)
        d = ctx.child("cluster.dispatch", 0.0, parent=sub, t_end=1.0)
        assert ctx.root.children == [sub]
        assert sub.children == [d]

    def test_virtual_spans_have_no_tid(self):
        ctx = RequestContext("req-000001", 0.0)
        child = ctx.child("x", 0.0, t_end=1.0)
        assert ctx.root.tid is None
        assert child.tid is None


class TestForestQueries:
    def test_find_request_on_spans_and_dicts(self, fake_clock):
        tr = Tracer(clock=fake_clock)
        for i in (1, 2):
            RequestContext(f"req-{i:06d}", 0.0).finish(1.0, tracer=tr)
        found = find_request(tr.roots, "req-000002")
        assert found is tr.roots[1]
        exported = [span_to_dict(r) for r in tr.roots]
        found_d = find_request(exported, "req-000002")
        assert found_d["attrs"]["request_id"] == "req-000002"
        assert find_request(exported, "req-999999") is None

    def test_request_ids_in_recording_order(self, fake_clock):
        tr = Tracer(clock=fake_clock)
        for i in (3, 1, 2):
            RequestContext(f"req-{i:06d}", 0.0).finish(1.0, tracer=tr)
        assert request_ids(tr.roots) == [
            "req-000003", "req-000001", "req-000002",
        ]


class TestCriticalPath:
    def test_queue_then_service_chain(self):
        ctx = RequestContext("req-000001", 0.0)
        q = ctx.child("serve.queue", 0.0, t_end=2.0)
        s = ctx.child("serve.service", 2.0, t_end=5.0)
        ctx.root.t_end = 5.0
        path = critical_path(ctx.root)
        assert path[0] is ctx.root
        assert q in path and s in path
        assert critical_path_coverage(ctx.root) == pytest.approx(1.0)

    def test_lost_hedge_copies_are_excluded(self):
        ctx = _hedged_request()
        ctx.root.t_end = 5.0
        names = {
            (n.name, n.attrs.get("replica"))
            for n in critical_path(ctx.root)[1:]
        }
        # The lost dispatch outlives the completion (t_end=9) but the
        # request never waited on it: the walk must not pick it.
        assert ("cluster.dispatch", 0) not in names
        assert critical_path_coverage(ctx.root) == pytest.approx(1.0)

    def test_gap_counts_against_coverage(self):
        ctx = RequestContext("req-000001", 0.0)
        ctx.child("serve.queue", 0.0, t_end=1.0)
        ctx.child("serve.service", 3.0, t_end=5.0)  # 2s unattributed gap
        ctx.root.t_end = 5.0
        cov = critical_path_coverage(ctx.root)
        assert cov == pytest.approx(3.0 / 5.0)

    def test_zero_latency_request_is_fully_covered(self):
        ctx = RequestContext("req-000001", 2.0)
        ctx.child("serve.cache_hit", 2.0, t_end=2.0)
        ctx.root.t_end = 2.0
        assert critical_path_coverage(ctx.root) == 1.0

    def test_works_on_exported_dicts(self):
        ctx = _hedged_request()
        ctx.root.t_end = 5.0
        d = span_to_dict(ctx.root)
        assert critical_path_coverage(d) == pytest.approx(1.0)
        assert [n["name"] for n in critical_path(d)][0] == "request"


class TestRender:
    def test_tree_marks_and_footer(self):
        ctx = _hedged_request()
        ctx.root.t_end = 5.0
        text = render_request_tree(ctx.root, unit_scale=1.0, unit="s")
        assert "request req-000001" in text
        assert "[hedge/winner]" in text
        assert "[lost]" in text
        assert "covers 100.0% of it" in text

    def test_renders_exported_dict_identically(self):
        ctx = _hedged_request()
        ctx.root.t_end = 5.0
        live = render_request_tree(ctx.root)
        post = render_request_tree(span_to_dict(ctx.root))
        assert live == post


class TestServingIntegration:
    def test_server_replay_builds_resolvable_request_trees(self):
        import numpy as np

        from repro.serving.server import EmbeddingServer, ServerConfig
        from repro.serving.workload import zipf_trace

        rng = np.random.default_rng(0)
        emb = rng.standard_normal((256, 8))
        server = EmbeddingServer(
            emb,
            config=ServerConfig(max_batch=8),
            service_model=lambda b, rows: 0.001,
        )
        trace = zipf_trace(60, 256, skew=1.1, rate=5000.0, k=5, rng=rng)
        with obs.enabled():
            obs.reset()
            replay = server.serve_trace(trace)
            roots = obs.get_tracer().roots
        ids = request_ids(roots)
        assert len(ids) == replay.metrics.served
        covs = [
            critical_path_coverage(find_request(roots, rid)) for rid in ids
        ]
        assert min(covs) >= 0.95

    def test_cluster_replay_marks_exactly_one_winner_per_subrequest(self):
        import numpy as np

        from repro.serving.cluster import ClusterConfig, ClusterServer
        from repro.serving.workload import bursty_trace

        rng = np.random.default_rng(0)
        emb = rng.standard_normal((512, 8))
        server = ClusterServer(
            emb,
            config=ClusterConfig(
                num_shards=2, replicas=2, fanout=2,
                hedge=True, hedge_min_samples=16, hedge_fallback=0.002,
            ),
            service_model=lambda s, r, b, rows: 0.004 if r else 0.001,
            rng=np.random.default_rng(1),
        )
        trace = bursty_trace(
            120, 512, skew=1.1, base_rate=500.0, burst_rate=4000.0,
            base_seconds=0.2, burst_seconds=0.1, k=5,
            rng=np.random.default_rng(2),
        )
        with obs.enabled():
            obs.reset()
            server.serve_trace(trace)
            roots = obs.get_tracer().roots
        hedged = 0
        for rid in request_ids(roots):
            root = find_request(roots, rid)
            if root.attrs.get("shed"):
                continue
            for sub in root.children:
                if sub.name != "cluster.subrequest":
                    continue
                dispatches = [
                    d for d in sub.children if d.name == "cluster.dispatch"
                ]
                winners = [d for d in dispatches if d.attrs.get("winner")]
                finished = [
                    d for d in dispatches if not d.attrs.get("cancelled")
                ]
                if finished:
                    assert len(winners) == 1
                if any(d.attrs.get("hedge") for d in dispatches):
                    hedged += 1
            assert critical_path_coverage(root) >= 0.95
        assert hedged > 0  # the straggler model must actually trigger hedges
