"""History store: append-only JSONL, series keying, baseline pooling."""

from __future__ import annotations

import json

from repro.obs.history import HistoryStore
from repro.obs.record import BenchRecord, environment_fingerprint


def _record(bench="serve", metric="latency_s", samples=(0.1, 0.2), **env_kw):
    rec = BenchRecord(bench=bench, env=environment_fingerprint(**env_kw))
    rec.add_samples(metric, samples)
    return rec


class TestAppend:
    def test_one_line_per_metric(self, tmp_path):
        store = HistoryStore(tmp_path)
        rec = _record()
        rec.add_samples("qps", [50.0], unit="1/s", direction="higher")
        assert store.append(rec, recorded_at=123.0) == 2
        entries = store.entries("serve")
        assert len(entries) == 2
        assert {e["metric"] for e in entries} == {"latency_s", "qps"}
        assert all(e["recorded_at"] == 123.0 for e in entries)
        assert all(e["key"] == rec.key for e in entries)

    def test_append_only(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(_record(samples=[1.0]), recorded_at=1.0)
        store.append(_record(samples=[2.0]), recorded_at=2.0)
        samples = [e["samples"] for e in store.entries("serve")]
        assert samples == [[1.0], [2.0]]

    def test_empty_record_writes_nothing(self, tmp_path):
        store = HistoryStore(tmp_path)
        assert store.append(BenchRecord(bench="serve")) == 0
        assert store.benches() == []

    def test_bench_name_sanitized(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(_record(bench="a/b c"))
        assert store.benches() == ["a_b_c"]
        assert not (tmp_path / "a").exists()


class TestRead:
    def test_malformed_lines_skipped(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(_record(samples=[1.0]))
        path = tmp_path / "serve.jsonl"
        path.write_text(path.read_text() + "{truncated\n\n[1,2]\n")
        entries = store.entries("serve")
        assert len(entries) == 1  # the list line is json but not a dict

    def test_missing_bench_is_empty(self, tmp_path):
        assert HistoryStore(tmp_path).entries("nope") == []
        assert HistoryStore(tmp_path / "absent").benches() == []

    def test_series_filters_by_metric_and_key(self, tmp_path):
        store = HistoryStore(tmp_path)
        ref = _record(samples=[1.0])
        store.append(ref)
        store.append(_record(metric="other_s", samples=[9.0]))
        got = store.series("serve", "latency_s", ref.key)
        assert [e["samples"] for e in got] == [[1.0]]


class TestFingerprintSeries:
    def test_dtype_policy_runs_land_in_distinct_series(self, tmp_path):
        """A float32 run never pools into the float64 baseline."""
        store = HistoryStore(tmp_path)
        ref = _record(samples=[1.0], dtype_policy="reference")
        fast = _record(samples=[99.0], dtype_policy="fast")
        assert ref.key != fast.key
        store.append(ref)
        store.append(fast)
        assert store.baseline_samples("serve", "latency_s", ref.key) == [1.0]
        assert store.baseline_samples("serve", "latency_s", fast.key) == [99.0]

    def test_spmm_backend_runs_land_in_distinct_series(self, tmp_path):
        store = HistoryStore(tmp_path)
        a = _record(samples=[1.0], spmm_backend="csr")
        b = _record(samples=[99.0], spmm_backend="blocked")
        assert a.key != b.key
        store.append(a)
        store.append(b)
        assert store.baseline_samples("serve", "latency_s", a.key) == [1.0]
        assert store.baseline_samples("serve", "latency_s", b.key) == [99.0]

    def test_git_sha_does_not_split_series(self, tmp_path):
        store = HistoryStore(tmp_path)
        a = _record(samples=[1.0])
        b = _record(samples=[2.0])
        b.env["git_sha"] = "f" * 40  # a later commit, same configuration
        store.append(a)
        store.append(b)
        assert store.baseline_samples("serve", "latency_s", a.key) == [1.0, 2.0]


class TestBaselinePooling:
    def test_window_pools_most_recent_entries(self, tmp_path):
        store = HistoryStore(tmp_path)
        key = None
        for i in range(5):
            rec = _record(samples=[float(i)])
            key = rec.key
            store.append(rec)
        assert store.baseline_samples("serve", "latency_s", key, window=3) == [
            2.0,
            3.0,
            4.0,
        ]
        assert store.baseline_samples("serve", "latency_s", key, window=1) == [4.0]

    def test_env_stored_verbatim_for_audit(self, tmp_path):
        store = HistoryStore(tmp_path)
        rec = _record()
        store.append(rec)
        line = (tmp_path / "serve.jsonl").read_text().splitlines()[0]
        entry = json.loads(line)
        assert entry["env"] == rec.env  # sha included, next to the key
