"""SLO rules: each builtin evaluator, breach counters, live-run check."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    SLOContext,
    SLOResult,
    SLORule,
    default_rules,
    evaluate,
    register_evaluator,
    render_slo_report,
)
from repro.obs.trace import Tracer
from repro.serving.metrics import ServingMetrics


def _serving_with_latencies(values) -> ServingMetrics:
    m = ServingMetrics()
    for i, v in enumerate(values):
        m.observe_arrival(float(i))
        m.observe_completion(float(i), float(i) + float(v))
    return m


def _tracer_with_iteration(fake_clock, child_steps=(30, 30, 30), slack=10) -> Tracer:
    """One trainer.iteration with sample/forward/backward children.

    ``child_steps`` are fake-clock ticks per child; ``slack`` ticks remain
    unattributed inside the parent, so coverage is sum(children)/total.
    """
    tracer = Tracer(clock=fake_clock)
    with tracer.span("trainer.iteration"):
        for name, steps in zip(
            ("trainer.sample", "trainer.forward", "trainer.backward"), child_steps
        ):
            with tracer.span(name):
                fake_clock.t += steps
        fake_clock.t += slack
    return tracer


class TestServingDeadlineMiss:
    RULE = SLORule(
        name="miss",
        kind="serving_deadline_miss",
        params={"deadline": 0.050, "max_miss_rate": 0.10},
    )

    def test_ok_under_the_rate(self):
        serving = _serving_with_latencies([0.01] * 19 + [0.09])
        (res,) = evaluate([self.RULE], SLOContext(registry=MetricsRegistry(), serving=serving))
        assert res.ok
        assert res.value == pytest.approx(0.05)
        assert serving.deadline_miss_rate(0.050) == pytest.approx(0.05)

    def test_breach_over_the_rate(self):
        serving = _serving_with_latencies([0.01] * 10 + [0.09] * 10)
        (res,) = evaluate([self.RULE], SLOContext(registry=MetricsRegistry(), serving=serving))
        assert not res.ok
        assert res.value == pytest.approx(0.5)

    def test_no_samples_is_a_breach(self):
        """An SLO that measured nothing cannot be claimed met."""
        (res,) = evaluate(
            [self.RULE], SLOContext(registry=MetricsRegistry(), serving=None)
        )
        assert not res.ok
        assert res.value != res.value  # NaN


class TestSpanCoverage:
    RULE = SLORule(
        name="cov", kind="span_coverage", params={"min_coverage": 0.95}
    )

    def test_ok_when_children_explain_the_parent(self, fake_clock):
        tracer = _tracer_with_iteration(
            fake_clock, child_steps=(100, 100, 100), slack=2
        )
        (res,) = evaluate(
            [self.RULE], SLOContext(registry=MetricsRegistry(), tracer=tracer)
        )
        assert res.ok
        assert res.value > 0.95

    def test_breach_when_time_goes_missing(self, fake_clock):
        tracer = _tracer_with_iteration(fake_clock, slack=50)
        (res,) = evaluate(
            [self.RULE], SLOContext(registry=MetricsRegistry(), tracer=tracer)
        )
        assert not res.ok
        assert res.value < 0.95

    def test_no_iterations_is_a_breach(self):
        (res,) = evaluate(
            [self.RULE], SLOContext(registry=MetricsRegistry(), tracer=Tracer())
        )
        assert not res.ok


class TestFlopDrift:
    RULE = SLORule(
        name="drift", kind="flop_drift", params={"max_rel_drift": 1e-6}
    )

    def _registry_with_flops(self, gemm, spmm):
        reg = MetricsRegistry()
        reg.counter("gemm.flops").add(gemm)
        reg.counter("spmm.flops").add(spmm)
        return reg

    def test_exact_agreement(self):
        reg = self._registry_with_flops(2e9, 1e9)
        (res,) = evaluate(
            [self.RULE], SLOContext(registry=reg, expected_flops=3e9)
        )
        assert res.ok
        assert res.value == 0.0

    def test_drift_breaches(self):
        reg = self._registry_with_flops(2e9, 1e9)
        (res,) = evaluate(
            [self.RULE], SLOContext(registry=reg, expected_flops=3.1e9)
        )
        assert not res.ok
        assert res.value == pytest.approx(0.1 / 3.1, rel=1e-6)

    def test_missing_expectation_is_a_breach(self):
        (res,) = evaluate([self.RULE], SLOContext(registry=MetricsRegistry()))
        assert not res.ok


class TestHistogramP99:
    def test_threshold_comparison(self):
        reg = MetricsRegistry()
        reg.histogram("t_s").extend(np.linspace(0.001, 0.100, 100))
        rule = SLORule(
            name="p99", kind="histogram_p99", params={"metric": "t_s", "threshold": 0.2}
        )
        (res,) = evaluate([rule], SLOContext(registry=reg))
        assert res.ok
        tight = SLORule(
            name="p99", kind="histogram_p99", params={"metric": "t_s", "threshold": 0.05}
        )
        (res,) = evaluate([tight], SLOContext(registry=reg))
        assert not res.ok


class TestEvaluate:
    def test_breach_counters_written(self):
        reg = MetricsRegistry()
        rules = [
            SLORule(name="a", kind="flop_drift"),  # breaches: no expectation
            SLORule(
                name="b",
                kind="histogram_p99",
                params={"metric": "none", "threshold": 1.0},
            ),  # breaches: no samples
        ]
        evaluate(rules, SLOContext(registry=reg))
        assert reg.counter("slo.evaluated").value == 2.0
        assert reg.counter("slo.breaches").value == 2.0
        assert reg.counter("slo.breach.a").value == 1.0
        assert reg.counter("slo.breach.b").value == 1.0

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown SLO rule kind"):
            evaluate(
                [SLORule(name="x", kind="nope")],
                SLOContext(registry=MetricsRegistry()),
            )

    def test_register_custom_evaluator(self):
        def always_ok(rule, ctx):
            return SLOResult(rule.name, rule.kind, 0.0, 1.0, True)

        register_evaluator("test_custom_ok", always_ok)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_evaluator("test_custom_ok", always_ok)
            (res,) = evaluate(
                [SLORule(name="c", kind="test_custom_ok")],
                SLOContext(registry=MetricsRegistry()),
            )
            assert res.ok
        finally:
            from repro.obs import slo as slo_mod

            slo_mod._EVALUATORS.pop("test_custom_ok", None)

    def test_default_rules_cover_three_contracts(self):
        rules = default_rules()
        assert [r.kind for r in rules] == [
            "serving_deadline_miss",
            "span_coverage",
            "flop_drift",
        ]


class TestRender:
    def test_report_shows_breaches(self):
        results = [
            SLOResult("good", "k", 0.1, 1.0, True),
            SLOResult("bad", "k", 2.0, 1.0, False),
        ]
        text = render_slo_report(results)
        assert "BREACH" in text
        assert "1 breach(es): bad" in text

    def test_all_met(self):
        text = render_slo_report([SLOResult("good", "k", 0.1, 1.0, True)])
        assert "all SLOs met" in text

    def test_empty(self):
        assert "no rules evaluated" in render_slo_report([])


class TestAgainstRealServingReplay:
    def test_deadline_rule_on_a_replayed_trace(self):
        """Evaluate the serving SLO against a real EmbeddingServer replay."""
        from repro.serving.server import EmbeddingServer, ServerConfig
        from repro.serving.workload import zipf_trace

        rng = np.random.default_rng(0)
        emb = rng.standard_normal((512, 16))
        server = EmbeddingServer(
            emb,
            config=ServerConfig(max_batch=16, queue_capacity=64),
            index="cluster",
            index_kwargs={"num_clusters": 8, "probes": 2, "rng": rng},
        )
        trace = zipf_trace(200, 512, skew=1.1, rate=500.0, k=5)
        replay = server.serve_trace(trace)
        rule = SLORule(
            name="miss",
            kind="serving_deadline_miss",
            params={"deadline": 10.0, "max_miss_rate": 0.05},  # generous
        )
        (res,) = evaluate(
            [rule],
            SLOContext(registry=MetricsRegistry(), serving=replay.metrics),
        )
        assert res.ok
        assert res.value == 0.0


class TestClusterRules:
    def _registry_with_shards(self, per_shard, staleness=()):
        reg = MetricsRegistry()
        for shard, samples in enumerate(per_shard):
            hist = reg.histogram(f"cluster.shard.{shard}.latency_seconds")
            for v in samples:
                hist.record(v)
        stale = reg.histogram("cluster.staleness_seconds")
        for v in staleness:
            stale.record(v)
        return reg

    def test_per_shard_p99_takes_the_worst_shard(self):
        from repro.obs.slo import cluster_rules

        reg = self._registry_with_shards(
            per_shard=[[0.001] * 50, [0.001] * 49 + [0.2]],
            staleness=[0.1],
        )
        rule = SLORule(
            name="p", kind="per_shard_p99", params={"threshold": 0.1}
        )
        (res,) = evaluate([rule], SLOContext(registry=reg))
        assert not res.ok
        # Shard 1's outlier drags its interpolated p99 past the cap.
        assert 0.1 < res.value < 0.2
        assert "cluster.shard.1" in res.detail
        # A generous threshold passes on the same registry.
        ok_rule = SLORule(
            name="p", kind="per_shard_p99", params={"threshold": 0.5}
        )
        (res,) = evaluate([ok_rule], SLOContext(registry=reg))
        assert res.ok

    def test_per_shard_p99_fails_closed_without_data(self):
        rule = SLORule(
            name="p", kind="per_shard_p99", params={"threshold": 1.0}
        )
        (res,) = evaluate([rule], SLOContext(registry=MetricsRegistry()))
        assert not res.ok
        assert "no histograms" in res.detail

    def test_staleness_bound_gates_on_max(self):
        reg = self._registry_with_shards(
            per_shard=[], staleness=[0.1, 0.4, 0.2]
        )
        ok = SLORule(name="s", kind="staleness_bound", params={"bound": 0.5})
        bad = SLORule(name="s", kind="staleness_bound", params={"bound": 0.3})
        (res_ok,) = evaluate([ok], SLOContext(registry=reg))
        (res_bad,) = evaluate([bad], SLOContext(registry=reg))
        assert res_ok.ok and res_ok.value == pytest.approx(0.4)
        assert not res_bad.ok

    def test_staleness_bound_fails_closed_without_data(self):
        rule = SLORule(name="s", kind="staleness_bound", params={"bound": 1.0})
        (res,) = evaluate([rule], SLOContext(registry=MetricsRegistry()))
        assert not res.ok

    def test_cluster_rules_bundle(self):
        from repro.obs.slo import cluster_rules

        rules = cluster_rules(per_shard_p99=0.05, staleness_bound=2.0)
        assert [r.name for r in rules] == [
            "cluster-per-shard-p99",
            "cluster-staleness-bound",
        ]
        reg = self._registry_with_shards(
            per_shard=[[0.001] * 10, [0.002] * 10], staleness=[0.5, 1.0]
        )
        results = evaluate(rules, SLOContext(registry=reg))
        assert all(r.ok for r in results)

    def test_cluster_rules_against_real_cluster_replay(self):
        """Evaluate the bundle against a live ClusterServer replay."""
        import repro.obs as obs
        from repro.obs import metrics as obs_metrics_mod
        from repro.obs.slo import cluster_rules
        from repro.serving.cluster import ClusterConfig, ClusterServer
        from repro.serving.upsert import SlabUpsertProducer
        from repro.serving.workload import zipf_trace

        emb = np.random.default_rng(0).standard_normal((400, 8))
        trace = zipf_trace(
            200, 400, skew=1.1, rate=2000.0, k=5,
            rng=np.random.default_rng(1),
        )
        with obs.enabled():
            obs_metrics_mod.reset()
            server = ClusterServer(
                emb,
                config=ClusterConfig(num_shards=3, replicas=2),
                service_model=lambda s, r, b, rows: 1e-4,
                rng=np.random.default_rng(2),
            )
            server.upserts = SlabUpsertProducer(
                emb, server.sharded.assignment, interval=0.01, rounds=2,
                seed=3,
            )
            server.serve_trace(trace)
            results = evaluate(
                cluster_rules(per_shard_p99=0.5, staleness_bound=5.0),
                SLOContext(),
            )
        assert all(r.ok for r in results)
        assert {r.kind for r in results} == {
            "per_shard_p99", "staleness_bound",
        }
