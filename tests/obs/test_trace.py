"""Span/tracer semantics: nesting, clocks, determinism, aggregation."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.trace import NOOP_SPAN, Span, Tracer, aggregate, walk

from .conftest import FakeClock


class TestNesting:
    def test_children_attach_to_open_parent(self, fake_clock):
        tr = Tracer(clock=fake_clock)
        with tr.span("outer"):
            with tr.span("inner"):
                with tr.span("innermost"):
                    pass
            with tr.span("sibling"):
                pass
        assert [r.name for r in tr.roots] == ["outer"]
        outer = tr.roots[0]
        assert [c.name for c in outer.children] == ["inner", "sibling"]
        assert [c.name for c in outer.children[0].children] == ["innermost"]

    def test_sequential_roots(self, fake_clock):
        tr = Tracer(clock=fake_clock)
        with tr.span("a"):
            pass
        with tr.span("b"):
            pass
        assert [r.name for r in tr.roots] == ["a", "b"]
        assert all(not r.children for r in tr.roots)

    def test_current_tracks_stack(self, fake_clock):
        tr = Tracer(clock=fake_clock)
        assert tr.current() is None
        with tr.span("outer") as outer:
            assert tr.current() is outer
            with tr.span("inner") as inner:
                assert tr.current() is inner
            assert tr.current() is outer
        assert tr.current() is None

    def test_out_of_order_exit_unwinds(self, fake_clock):
        tr = Tracer(clock=fake_clock)
        outer = tr.span("outer")
        leaked = tr.span("leaked")
        outer.__exit__(None, None, None)  # exit parent before child
        assert tr.current() is None
        assert leaked.t_end is not None  # closed at the same instant
        assert leaked.t_end == outer.t_end

    def test_out_of_order_exit_marks_leaked_spans(self, fake_clock):
        tr = Tracer(clock=fake_clock)
        outer = tr.span("outer")
        a = tr.span("leaked-a")
        b = tr.span("leaked-b")
        outer.__exit__(None, None, None)
        assert a.attrs.get("leaked") is True
        assert b.attrs.get("leaked") is True
        assert "leaked" not in outer.attrs  # the finished span is clean

    def test_leak_counter_incremented_when_enabled(self, fake_clock):
        from repro.obs import metrics

        with obs.enabled():
            tr = Tracer(clock=fake_clock)
            outer = tr.span("outer")
            tr.span("leaked")
            outer.__exit__(None, None, None)
            assert metrics.snapshot()["counters"]["obs.spans.leaked"] == 1.0

    def test_leak_counter_silent_when_disabled(self, fake_clock):
        from repro.obs import metrics

        tr = Tracer(clock=fake_clock)
        outer = tr.span("outer")
        tr.span("leaked")
        outer.__exit__(None, None, None)
        assert metrics.snapshot()["counters"] == {}

    def test_exception_recorded_and_reraised(self, fake_clock):
        tr = Tracer(clock=fake_clock)
        with pytest.raises(ValueError):
            with tr.span("failing"):
                raise ValueError("boom")
        sp = tr.roots[0]
        assert sp.attrs["error"] == "ValueError"
        assert sp.t_end is not None


class TestClockAndTimes:
    def test_deterministic_clock_gives_exact_durations(self):
        tr = Tracer(clock=FakeClock(step=1.0))
        with tr.span("outer"):          # start t=0
            with tr.span("inner"):      # start t=1
                pass                    # end   t=2
        # outer ends t=3
        outer = tr.roots[0]
        inner = outer.children[0]
        assert outer.duration == 3.0
        assert inner.duration == 1.0
        assert outer.self_seconds == 2.0

    def test_two_runs_identical(self):
        def run():
            tr = Tracer(clock=FakeClock(step=0.5))
            with tr.span("outer", k=1):
                with tr.span("inner"):
                    pass
            from repro.obs.export import span_to_dict

            return [span_to_dict(r) for r in tr.roots]

        assert run() == run()

    def test_sim_time_accumulates_and_totals(self, fake_clock):
        tr = Tracer(clock=fake_clock)
        with tr.span("outer") as outer:
            outer.add_sim_time(2.0)
            with tr.span("inner") as inner:
                inner.add_sim_time(3.0)
                inner.add_sim_time(1.0)
        assert outer.sim_time == 2.0
        assert inner.sim_time == 4.0
        assert outer.total_sim_time() == 6.0

    def test_open_span_duration_zero(self, fake_clock):
        tr = Tracer(clock=fake_clock)
        sp = tr.span("open")
        assert sp.duration == 0.0

    def test_attrs_via_kwargs_and_set(self, fake_clock):
        tr = Tracer(clock=fake_clock)
        with tr.span("s", a=1) as sp:
            sp.set(b=2).set(a=3)
        assert sp.attrs == {"a": 3, "b": 2}


class TestGlobalApi:
    def test_disabled_returns_noop_singleton(self):
        assert obs.span("anything") is NOOP_SPAN
        assert obs.span("other") is NOOP_SPAN
        assert obs.current_span() is None
        assert obs.get_tracer().roots == []

    def test_enabled_records_then_restores(self):
        assert not obs.is_enabled()
        with obs.enabled():
            assert obs.is_enabled()
            with obs.span("root") as sp:
                assert isinstance(sp, Span)
                assert obs.current_span() is sp
        assert not obs.is_enabled()
        assert [r.name for r in obs.get_tracer().roots] == ["root"]

    def test_enabled_nests_and_restores_prior_state(self):
        with obs.enabled():
            with obs.enabled(False):
                assert not obs.is_enabled()
                assert obs.span("hidden") is NOOP_SPAN
            assert obs.is_enabled()

    def test_set_tracer_swaps_global(self, fake_clock):
        prev = obs.get_tracer()
        mine = Tracer(clock=fake_clock)
        try:
            assert obs.set_tracer(mine) is prev
            with obs.enabled():
                with obs.span("x"):
                    pass
            assert [r.name for r in mine.roots] == ["x"]
            assert prev.roots == []
        finally:
            obs.set_tracer(prev)

    def test_reset_clears(self):
        with obs.enabled():
            with obs.span("x"):
                pass
        obs.reset()
        assert obs.get_tracer().roots == []


class TestThreadSafety:
    def test_worker_spans_never_parent_under_another_thread(self, fake_clock):
        """Regression: with a shared stack, spans opened by a prefetch
        worker attached under whatever span the consumer had open
        (``trainer.iteration`` gaining ``sampler.*`` children it never
        ran). The stack is thread-local now."""
        from concurrent.futures import ThreadPoolExecutor

        tr = Tracer(clock=fake_clock)

        def produce(i):
            with tr.span(f"sampler.sample.{i}"):
                pass

        with tr.span("trainer.iteration") as it:
            with ThreadPoolExecutor(max_workers=2) as pool:
                list(pool.map(produce, range(8)))
        assert it.children == []
        root_names = {r.name for r in tr.roots}
        assert "trainer.iteration" in root_names
        # Every producer span became its own root on its own thread.
        assert {f"sampler.sample.{i}" for i in range(8)} <= root_names
        for r in tr.roots:
            if r.name.startswith("sampler."):
                assert r.tid is not None and r.tid != it.tid

    def test_pipeline_prefetch_never_nests_under_iteration(self, ppi_small):
        """End-to-end: a thread-pool prefetcher samples while the trainer
        iterates; no producer span may appear inside trainer.iteration."""
        from repro.obs.trace import walk as walk_spans
        from repro.train.config import TrainConfig
        from repro.train.trainer import GraphSamplingTrainer

        config = TrainConfig(
            hidden_dims=(16, 16),
            epochs=1,
            seed=0,
            prefetch_depth=2,
            prefetch_workers=1,
        )
        with obs.enabled():
            obs.reset()
            with GraphSamplingTrainer(ppi_small, config) as trainer:
                trainer.train()
            roots = obs.get_tracer().roots
        iterations = [
            sp
            for r in roots
            for sp in walk_spans(r)
            if sp.name == "trainer.iteration"
        ]
        assert iterations
        producer_names = ("sampler.dashboard", "sampler.frontier")
        for it in iterations:
            for sp in walk_spans(it):
                assert sp.name not in producer_names, (
                    f"producer span {sp.name} nested under trainer.iteration"
                )
        # The producers did run — their spans exist as their own roots.
        assert any(
            sp.name in producer_names for r in roots for sp in walk_spans(r)
        )

    def test_concurrent_roots_all_recorded(self, fake_clock):
        import threading

        tr = Tracer(clock=fake_clock)
        n_threads, per_thread = 8, 50

        def worker(t):
            for i in range(per_thread):
                with tr.span(f"w{t}.{i}"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert len(tr.roots) == n_threads * per_thread


class TestAggregate:
    def test_walk_depth_first(self, fake_clock):
        tr = Tracer(clock=fake_clock)
        with tr.span("a"):
            with tr.span("b"):
                with tr.span("c"):
                    pass
            with tr.span("d"):
                pass
        names = [sp.name for sp in walk(tr.roots[0])]
        assert names == ["a", "b", "c", "d"]

    def test_aggregate_groups_by_name(self):
        tr = Tracer(clock=FakeClock(step=1.0))
        for _ in range(3):
            with tr.span("iter") as it:
                it.add_sim_time(5.0)
                with tr.span("work"):
                    pass
        stats = aggregate(tr.roots)
        assert stats["iter"].count == 3
        assert stats["work"].count == 3
        # each iter spans 3 ticks, each work 1 tick
        assert stats["iter"].wall_seconds == pytest.approx(9.0)
        assert stats["work"].wall_seconds == pytest.approx(3.0)
        assert stats["iter"].self_seconds == pytest.approx(6.0)
        assert stats["iter"].sim_time == pytest.approx(15.0)
        assert stats["iter"].as_dict()["count"] == 3.0
