"""Guard: no raw matrix multiplies outside the kernel layer.

The whole point of ``repro.kernels`` is that every GEMM/SpMM on a
training or serving path dispatches through one metered seam. This test
AST-scans ``src/repro`` for raw ``@`` matmuls and ``.dot(`` /
``.matmul(`` calls so a stray hand-rolled multiply cannot creep back in
unnoticed. Files with a legitimate reason to bypass the kernel layer are
allowlisted explicitly — extend the list only with a comment saying why.
"""

from __future__ import annotations

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

# Relative to src/repro. Directories cover their whole subtree.
ALLOWLIST = {
    # The kernel layer itself: raw multiplies live here by design.
    "kernels",
    # Spectral diagnostics: power iteration over small dense vectors,
    # one-shot graph statistics — never on a training/serving path.
    "graphs/spectral.py",
    # Synthetic dataset synthesis (feature sketching): runs once at
    # dataset build time, not per-iteration.
    "graphs/features.py",
}


def _is_allowed(rel: Path) -> bool:
    parts = rel.as_posix()
    for entry in ALLOWLIST:
        if parts == entry or parts.startswith(entry + "/"):
            return True
    return False


def _raw_matmul_sites(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    sites: list[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            sites.append(f"{path.name}:{node.lineno} uses '@'")
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.op, ast.MatMult
        ):
            sites.append(f"{path.name}:{node.lineno} uses '@='")
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("dot", "matmul")
        ):
            sites.append(
                f"{path.name}:{node.lineno} calls .{node.func.attr}()"
            )
    return sites


def _direct_backend_sites(path: Path) -> list[str]:
    """``get_backend(...).gemm(...)`` / ``.spmm(...)`` call sites.

    Dispatching straight off a registry lookup skips the plan cache, the
    reference-policy pin, and the per-class accounting that
    ``kernels.ops`` provides — outside the kernel layer that is always a
    bug, even though no raw ``@`` appears.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    sites: list[str] = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("gemm", "spmm")
            and isinstance(node.func.value, ast.Call)
        ):
            continue
        inner = node.func.value.func
        name = (
            inner.id
            if isinstance(inner, ast.Name)
            else inner.attr
            if isinstance(inner, ast.Attribute)
            else None
        )
        if name == "get_backend":
            sites.append(
                f"{path.name}:{node.lineno} calls "
                f"get_backend(...).{node.func.attr}()"
            )
    return sites


def test_no_raw_matmul_outside_kernel_layer():
    assert SRC.is_dir(), f"source tree not found at {SRC}"
    offenders: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC)
        if _is_allowed(rel):
            continue
        for site in _raw_matmul_sites(path):
            offenders.append(f"{rel.as_posix()} -> {site}")
    assert not offenders, (
        "raw matrix multiplies outside repro.kernels (route them through "
        "repro.kernels.ops or extend the allowlist with a justification):\n"
        + "\n".join(offenders)
    )


def test_no_direct_backend_dispatch_outside_kernel_layer():
    offenders: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC)
        if _is_allowed(rel):
            continue
        for site in _direct_backend_sites(path):
            offenders.append(f"{rel.as_posix()} -> {site}")
    assert not offenders, (
        "direct get_backend(...).gemm/spmm dispatch outside repro.kernels "
        "(it bypasses the plan cache and accounting; call "
        "repro.kernels.ops instead):\n" + "\n".join(offenders)
    )


def test_direct_backend_detector_catches_the_pattern(tmp_path):
    # The detector itself must recognize the chained form it guards.
    sample = tmp_path / "sample.py"
    sample.write_text(
        "from repro.kernels.backends import get_backend\n"
        "def f(a, b, graph, x):\n"
        "    y = get_backend('numpy').gemm(a, b)\n"
        "    z = get_backend('scipy').spmm(graph, x)\n"
        "    return y, z\n"
    )
    sites = _direct_backend_sites(sample)
    assert len(sites) == 2
    assert any(".gemm()" in s for s in sites)
    assert any(".spmm()" in s for s in sites)


def test_allowlist_entries_exist():
    # A deleted/renamed file must not leave a stale hole in the guard.
    for entry in ALLOWLIST:
        assert (SRC / entry).exists(), f"stale allowlist entry: {entry}"
