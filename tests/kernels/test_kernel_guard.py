"""Guard: no raw matrix multiplies outside the kernel layer.

The whole point of ``repro.kernels`` is that every GEMM/SpMM on a
training or serving path dispatches through one metered seam. This test
AST-scans ``src/repro`` for raw ``@`` matmuls and ``.dot(`` /
``.matmul(`` calls so a stray hand-rolled multiply cannot creep back in
unnoticed. Files with a legitimate reason to bypass the kernel layer are
allowlisted explicitly — extend the list only with a comment saying why.
"""

from __future__ import annotations

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

# Relative to src/repro. Directories cover their whole subtree.
ALLOWLIST = {
    # The kernel layer itself: raw multiplies live here by design.
    "kernels",
    # Spectral diagnostics: power iteration over small dense vectors,
    # one-shot graph statistics — never on a training/serving path.
    "graphs/spectral.py",
    # Synthetic dataset synthesis (feature sketching): runs once at
    # dataset build time, not per-iteration.
    "graphs/features.py",
}


def _is_allowed(rel: Path) -> bool:
    parts = rel.as_posix()
    for entry in ALLOWLIST:
        if parts == entry or parts.startswith(entry + "/"):
            return True
    return False


def _raw_matmul_sites(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    sites: list[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            sites.append(f"{path.name}:{node.lineno} uses '@'")
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.op, ast.MatMult
        ):
            sites.append(f"{path.name}:{node.lineno} uses '@='")
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("dot", "matmul")
        ):
            sites.append(
                f"{path.name}:{node.lineno} calls .{node.func.attr}()"
            )
    return sites


def test_no_raw_matmul_outside_kernel_layer():
    assert SRC.is_dir(), f"source tree not found at {SRC}"
    offenders: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC)
        if _is_allowed(rel):
            continue
        for site in _raw_matmul_sites(path):
            offenders.append(f"{rel.as_posix()} -> {site}")
    assert not offenders, (
        "raw matrix multiplies outside repro.kernels (route them through "
        "repro.kernels.ops or extend the allowlist with a justification):\n"
        + "\n".join(offenders)
    )


def test_allowlist_entries_exist():
    # A deleted/renamed file must not leave a stale hole in the guard.
    for entry in ALLOWLIST:
        assert (SRC / entry).exists(), f"stale allowlist entry: {entry}"
