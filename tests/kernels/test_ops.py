"""Dispatch-layer kernels: bit-identity, out= buffers, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import ops as kernel_ops
from repro.kernels.backends import adjacency_matrix


class TestGemm:
    def test_bit_identical_to_matmul(self, rng):
        a = rng.standard_normal((17, 9))
        b = rng.standard_normal((9, 5))
        np.testing.assert_array_equal(kernel_ops.gemm(a, b), a @ b)

    def test_out_buffer_bit_identical(self, rng):
        a = rng.standard_normal((8, 6))
        b = rng.standard_normal((6, 4))
        out = np.empty((8, 4))
        returned = kernel_ops.gemm(a, b, out=out)
        assert returned is out
        np.testing.assert_array_equal(out, a @ b)

    def test_rejects_non_2d(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            kernel_ops.gemm(rng.standard_normal(4), rng.standard_normal((4, 2)))

    def test_rejects_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="mismatch"):
            kernel_ops.gemm(
                rng.standard_normal((3, 4)), rng.standard_normal((5, 2))
            )


class TestGemmAccumulate:
    def test_no_scratch_is_plain_accumulate(self, rng):
        a = rng.standard_normal((6, 3))
        b = rng.standard_normal((3, 2))
        acc = rng.standard_normal((6, 2))
        expected = acc + a @ b
        returned = kernel_ops.gemm_accumulate(acc, a, b)
        assert returned is acc
        np.testing.assert_array_equal(acc, expected)

    def test_scratch_path_matches(self, rng):
        a = rng.standard_normal((6, 3))
        b = rng.standard_normal((3, 2))
        acc = rng.standard_normal((6, 2))
        expected = acc + a @ b
        kernel_ops.gemm_accumulate(acc, a, b, scratch=np.empty((6, 2)))
        np.testing.assert_array_equal(acc, expected)

    def test_rejects_acc_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="acc shape"):
            kernel_ops.gemm_accumulate(
                np.zeros((5, 2)),
                rng.standard_normal((6, 3)),
                rng.standard_normal((3, 2)),
            )


class TestSpmm:
    @pytest.mark.parametrize("backend", ["scipy", "numpy"])
    def test_matches_dense_adjacency(self, medium_graph, rng, backend):
        x = rng.standard_normal((medium_graph.num_vertices, 5))
        dense = adjacency_matrix(medium_graph).toarray()
        result = kernel_ops.spmm(medium_graph, x, backend=backend)
        np.testing.assert_allclose(result, dense @ x, rtol=1e-10)

    @pytest.mark.parametrize("backend", ["scipy", "numpy"])
    def test_out_buffer(self, triangle_graph, rng, backend):
        x = rng.standard_normal((3, 4))
        out = np.empty((3, 4))
        returned = kernel_ops.spmm(triangle_graph, x, out=out, backend=backend)
        assert returned is out
        np.testing.assert_allclose(
            out, adjacency_matrix(triangle_graph).toarray() @ x
        )

    def test_adjoint_equals_forward_for_symmetric_graphs(
        self, medium_graph, rng
    ):
        x = rng.standard_normal((medium_graph.num_vertices, 3))
        np.testing.assert_array_equal(
            kernel_ops.spmm_adjoint(medium_graph, x),
            kernel_ops.spmm(medium_graph, x),
        )

    def test_rejects_wrong_row_count(self, triangle_graph, rng):
        with pytest.raises(ValueError, match="vertices"):
            kernel_ops.spmm(triangle_graph, rng.standard_normal((5, 2)))

    def test_rejects_1d_features(self, triangle_graph, rng):
        with pytest.raises(ValueError, match="2-D"):
            kernel_ops.spmm(triangle_graph, rng.standard_normal(3))


class TestGatherScatter:
    def test_gather_segment_sum_weighted(self, rng):
        src = rng.standard_normal((6, 3))
        take = np.array([0, 2, 4, 1, 1])
        indptr = np.array([0, 3, 3, 5])  # middle destination has no edges
        weights = rng.standard_normal(5)
        out = kernel_ops.gather_segment_sum(
            src, take, indptr, 3, weights=weights
        )
        manual = np.zeros((3, 3))
        for dst in range(3):
            for e in range(indptr[dst], indptr[dst + 1]):
                manual[dst] += weights[e] * src[take[e]]
        np.testing.assert_allclose(out, manual)

    def test_scatter_add_is_gather_adjoint(self, rng):
        # <gather(x), y> == <x, scatter(y)> for the unweighted operator.
        src = rng.standard_normal((7, 2))
        take = np.array([0, 3, 3, 6, 2])
        indptr = np.array([0, 2, 5])
        grad = rng.standard_normal((2, 2))
        fwd = kernel_ops.gather_segment_sum(src, take, indptr, 2)
        per_edge = np.repeat(grad, np.diff(indptr), axis=0)
        bwd = kernel_ops.scatter_add_rows(per_edge, take, 7)
        np.testing.assert_allclose(
            float((fwd * grad).sum()), float((src * bwd).sum())
        )

    def test_gather_weights_keep_feature_dtype(self, rng):
        src = rng.standard_normal((4, 2)).astype(np.float32)
        take = np.array([0, 1, 3])
        indptr = np.array([0, 2, 3])
        weights = rng.standard_normal(3)  # float64 on purpose
        out = kernel_ops.gather_segment_sum(
            src, take, indptr, 2, weights=weights
        )
        assert out.dtype == np.float32


class TestElementwise:
    def test_relu_matches_maximum(self, rng):
        x = rng.standard_normal((5, 4))
        np.testing.assert_array_equal(kernel_ops.relu(x), np.maximum(x, 0.0))
        out = np.empty_like(x)
        kernel_ops.relu(x, out=out)
        np.testing.assert_array_equal(out, np.maximum(x, 0.0))

    def test_relu_backward_paths_agree(self, rng):
        z = rng.standard_normal((5, 4))
        g = rng.standard_normal((5, 4))
        expected = np.where(z > 0.0, g, 0.0)
        np.testing.assert_array_equal(
            kernel_ops.relu_backward(z, g), expected
        )
        out = np.empty_like(z)
        kernel_ops.relu_backward(z, g, out=out)
        np.testing.assert_array_equal(out, expected)

    def test_add_bias_inplace_and_copy(self, rng):
        z = rng.standard_normal((3, 2))
        b = rng.standard_normal(2)
        copied = kernel_ops.add_bias(z.copy(), b)
        np.testing.assert_array_equal(copied, z + b)
        buf = z.copy()
        returned = kernel_ops.add_bias(buf, b, inplace=True)
        assert returned is buf
        np.testing.assert_array_equal(buf, z + b)
