"""Plan-based autotuned dispatch: numerics, determinism, fallback.

The load-bearing properties:

* the ``reference`` policy is *structurally* bit-identical — float64
  calls pin the reference plan even in ``auto`` mode, so no tuned plan
  can ever perturb reference-dtype numerics;
* float32 autotuned results stay within the fast policy's tolerance
  (the tuner drops candidates that stray, so this holds by construction
  — the tests check it holds through the real dispatch seam too);
* the plan table is deterministic per environment fingerprint: a second
  cache over the same directory loads the persisted table and runs zero
  microbenchmarks;
* an unreadable table degrades to static dispatch with a warning — it
  never takes a run down.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.kernels import autotune
from repro.kernels import ops as kernel_ops
from repro.kernels.autotune import (
    REFERENCE_PLAN,
    STATIC_PLAN,
    ExecutionPlan,
    PlanCache,
    ShapeClass,
    Tuner,
)


@pytest.fixture
def plan_cache(tmp_path):
    """A persisted cache installed as the process cache for one test."""
    cache = PlanCache(tmp_path / "plans")
    previous = autotune.set_plan_cache(cache)
    yield cache
    autotune.set_plan_cache(previous)


def _counting_timer():
    """Deterministic timer: every timed region lasts exactly one tick."""
    state = {"t": 0.0}

    def timer() -> float:
        state["t"] += 1.0
        return state["t"]

    return timer


class TestShapeClass:
    def test_nearby_sizes_share_a_bucket(self):
        a = ShapeClass.for_gemm(1000, 16, 64, np.float32)
        b = ShapeClass.for_gemm(1024, 16, 64, np.float32)
        c = ShapeClass.for_gemm(1025, 16, 64, np.float32)
        assert a.key == b.key
        assert a.key != c.key

    def test_key_carries_dtype_and_variant(self):
        sc = ShapeClass.for_gemm(100, 8, 8, np.float32, variant="transient")
        assert sc.key == "gemm[7.3.3|float32|transient]"
        assert (
            ShapeClass.for_gemm(100, 8, 8, np.float64, variant="out").key
            == "gemm[7.3.3|float64|out]"
        )

    def test_spmm_density_decade(self):
        sparse = ShapeClass.for_spmm(1000, 5_000, 64, np.float32)
        dense = ShapeClass.for_spmm(1000, 500_000, 64, np.float32)
        assert sparse.buckets[-1] != dense.buckets[-1]
        assert sparse.op == "spmm"


class TestPlanMode:
    def test_planning_restores_previous_mode(self):
        assert autotune.plan_mode() == "fast"
        with autotune.planning("auto"):
            assert autotune.plan_mode() == "auto"
            with autotune.planning("reference"):
                assert autotune.plan_mode() == "reference"
            assert autotune.plan_mode() == "auto"
        assert autotune.plan_mode() == "fast"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="plan mode"):
            autotune.set_plan_mode("turbo")

    def test_fast_and_reference_modes_never_touch_the_cache(self, plan_cache):
        a = np.ones((8, 4), dtype=np.float32)
        b = np.ones((4, 4), dtype=np.float32)
        for mode, expected in (("fast", STATIC_PLAN), ("reference", REFERENCE_PLAN)):
            with autotune.planning(mode):
                assert autotune.resolve_gemm(a, b, None) is expected
        assert plan_cache.tuner.microbenchmarks == 0
        assert not plan_cache.plans


class TestReferencePinning:
    def test_float64_pins_reference_even_in_auto(self, plan_cache, rng):
        a = rng.standard_normal((64, 8))
        b = rng.standard_normal((8, 8))
        with autotune.planning("auto"):
            assert autotune.resolve_gemm(a, b, None) is REFERENCE_PLAN
        assert plan_cache.tuner.microbenchmarks == 0

    def test_float64_spmm_pins_reference(self, plan_cache, medium_graph, rng):
        x = rng.standard_normal((medium_graph.num_vertices, 4))
        with autotune.planning("auto"):
            assert autotune.resolve_spmm(medium_graph, x) is REFERENCE_PLAN

    def test_mixed_dtype_pins_reference(self, plan_cache, rng):
        a = rng.standard_normal((16, 4)).astype(np.float32)
        b = rng.standard_normal((4, 4))  # float64
        with autotune.planning("auto"):
            assert autotune.resolve_gemm(a, b, None) is REFERENCE_PLAN

    def test_float64_gemm_bit_identical_under_auto(self, plan_cache, rng):
        # The whole-property check through the real dispatch seam.
        a = rng.standard_normal((300, 24))
        b = rng.standard_normal((24, 12))
        with autotune.planning("reference"):
            expected = kernel_ops.gemm(a, b)
        with autotune.planning("auto"):
            got = kernel_ops.gemm(a, b)
        np.testing.assert_array_equal(got, expected)

    def test_float64_spmm_bit_identical_under_auto(
        self, plan_cache, medium_graph, rng
    ):
        x = rng.standard_normal((medium_graph.num_vertices, 6))
        with autotune.planning("reference"):
            expected = kernel_ops.spmm(medium_graph, x)
        with autotune.planning("auto"):
            got = kernel_ops.spmm(medium_graph, x)
        np.testing.assert_array_equal(got, expected)


class TestFloat32Tolerance:
    """Autotuned float32 plans stay within the fast policy's tolerance."""

    @pytest.mark.parametrize(
        "m,k,n,kwargs",
        [
            (3000, 8, 16, {}),
            (3000, 8, 16, {"transient": True}),
            (700, 33, 9, {}),
        ],
    )
    def test_gemm_within_tuner_tolerance(self, plan_cache, rng, m, k, n, kwargs):
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
        with autotune.planning("reference"):
            expected = np.array(kernel_ops.gemm(a, b))
        with autotune.planning("auto"):
            got = np.array(kernel_ops.gemm(a, b, **kwargs))
        tuner = plan_cache.tuner
        np.testing.assert_allclose(got, expected, rtol=tuner.rtol, atol=tuner.atol)
        assert tuner.microbenchmarks > 0  # tuning actually happened

    def test_gemm_out_variant_within_tolerance(self, plan_cache, rng):
        a = rng.standard_normal((3000, 16)).astype(np.float32)
        b = rng.standard_normal((16, 8)).astype(np.float32)
        out = np.empty((3000, 8), dtype=np.float32)
        with autotune.planning("reference"):
            expected = np.array(kernel_ops.gemm(a, b))
        with autotune.planning("auto"):
            returned = kernel_ops.gemm(a, b, out=out)
        assert returned is out
        tuner = plan_cache.tuner
        np.testing.assert_allclose(out, expected, rtol=tuner.rtol, atol=tuner.atol)

    def test_spmm_within_tolerance(self, plan_cache, medium_graph, rng):
        x = rng.standard_normal((medium_graph.num_vertices, 8)).astype(np.float32)
        with autotune.planning("reference"):
            expected = np.array(kernel_ops.spmm(medium_graph, x))
        with autotune.planning("auto"):
            got = np.array(kernel_ops.spmm(medium_graph, x))
        tuner = plan_cache.tuner
        np.testing.assert_allclose(got, expected, rtol=tuner.rtol, atol=tuner.atol)

    def test_repeated_transient_calls_each_correct(self, plan_cache, rng):
        # Arena plans may reuse one buffer across same-class calls; each
        # call's *immediate* value must still be right.
        k, n = 8, 16
        b = rng.standard_normal((k, n)).astype(np.float32)
        with autotune.planning("auto"):
            for _ in range(4):
                a = rng.standard_normal((3000, k)).astype(np.float32)
                got = kernel_ops.gemm(a, b, transient=True)
                with autotune.planning("reference"):
                    expected = kernel_ops.gemm(a, b)
                np.testing.assert_allclose(
                    got, expected, rtol=plan_cache.tuner.rtol, atol=plan_cache.tuner.atol
                )


class TestDeterminismAndPersistence:
    def test_same_environment_same_fingerprint_key(self, tmp_path):
        first = PlanCache(tmp_path)
        second = PlanCache(tmp_path)
        assert first.key == second.key
        assert first.path == second.path

    def test_second_cache_loads_table_with_zero_microbenchmarks(
        self, tmp_path, rng
    ):
        a = rng.standard_normal((2048, 8)).astype(np.float32)
        b = rng.standard_normal((8, 8)).astype(np.float32)
        first = PlanCache(tmp_path, tuner=Tuner(timer=_counting_timer()))
        first.resolve_gemm(a, b, None, transient=True)
        assert first.tuner.microbenchmarks > 0
        assert first.path.exists()

        second = PlanCache(tmp_path, tuner=Tuner(timer=_counting_timer()))
        plan = second.resolve_gemm(a, b, None, transient=True)
        assert second.tuner.microbenchmarks == 0
        assert plan == first.plans[
            ShapeClass.for_gemm(2048, 8, 8, np.float32, variant="transient").key
        ]

    def test_deterministic_timer_gives_identical_plan_tables(self, tmp_path, rng):
        # Same fingerprint key + same (injected) measurements => the two
        # independently tuned tables agree entry for entry.
        a = rng.standard_normal((2048, 8)).astype(np.float32)
        b = rng.standard_normal((8, 8)).astype(np.float32)
        tables = []
        for sub in ("one", "two"):
            cache = PlanCache(
                tmp_path / sub, tuner=Tuner(timer=_counting_timer())
            )
            cache.resolve_gemm(a, b, None, transient=True)
            cache.resolve_gemm(a, b, np.empty((2048, 8), dtype=np.float32))
            tables.append({k: p.as_dict() for k, p in cache.plans.items()})
        assert tables[0] == tables[1]

    def test_persisted_table_is_schema_stamped(self, tmp_path, rng):
        a = rng.standard_normal((1024, 4)).astype(np.float32)
        b = rng.standard_normal((4, 4)).astype(np.float32)
        cache = PlanCache(tmp_path, tuner=Tuner(timer=_counting_timer()))
        cache.resolve_gemm(a, b, None)
        payload = json.loads(cache.path.read_text())
        assert payload["schema"] == autotune.PLAN_SCHEMA_VERSION
        assert payload["key"] == cache.key
        assert payload["plans"]


class TestUnreadableCacheFallback:
    def test_garbage_table_warns_and_degrades_to_static(self, tmp_path, rng):
        cache = PlanCache(tmp_path, tuner=Tuner(timer=_counting_timer()))
        cache.cache_dir.mkdir(parents=True, exist_ok=True)
        cache.path.write_text("{not json")
        a = rng.standard_normal((1024, 4)).astype(np.float32)
        b = rng.standard_normal((4, 4)).astype(np.float32)
        with pytest.warns(RuntimeWarning, match="unreadable"):
            plan = cache.resolve_gemm(a, b, None)
        assert plan is STATIC_PLAN
        assert cache.load_failed
        assert cache.tuner.microbenchmarks == 0
        # The latch holds without re-warning on every call.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.resolve_gemm(a, b, None) is STATIC_PLAN

    def test_clear_resets_the_latch_and_tuning_resumes(self, tmp_path, rng):
        cache = PlanCache(tmp_path, tuner=Tuner(timer=_counting_timer()))
        cache.cache_dir.mkdir(parents=True, exist_ok=True)
        cache.path.write_text("{not json")
        a = rng.standard_normal((1024, 4)).astype(np.float32)
        b = rng.standard_normal((4, 4)).astype(np.float32)
        with pytest.warns(RuntimeWarning):
            cache.resolve_gemm(a, b, None)
        assert cache.clear() == 1
        assert not cache.load_failed
        plan = cache.resolve_gemm(a, b, None)
        assert plan.source == "tuned"
        assert cache.tuner.microbenchmarks > 0

    def test_unknown_backend_entry_is_dropped_with_warning(self, tmp_path, rng):
        probe = PlanCache(tmp_path)
        key = ShapeClass.for_gemm(1024, 4, 4, np.float32).key
        probe.cache_dir.mkdir(parents=True, exist_ok=True)
        probe.path.write_text(
            json.dumps(
                {
                    "schema": autotune.PLAN_SCHEMA_VERSION,
                    "key": probe.key,
                    "plans": {
                        key: {"plan": {"backend": "gone-backend"}},
                    },
                }
            )
        )
        cache = PlanCache(tmp_path, tuner=Tuner(timer=_counting_timer()))
        a = rng.standard_normal((1024, 4)).astype(np.float32)
        b = rng.standard_normal((4, 4)).astype(np.float32)
        with pytest.warns(RuntimeWarning, match="unknown backend"):
            plan = cache.resolve_gemm(a, b, None)
        # The bad entry was dropped, the class re-tuned fresh.
        assert plan.backend != "gone-backend"
        assert cache.tuner.microbenchmarks > 0


class TestExplicitOverrides:
    def test_explicit_plan_wins_over_auto_mode(self, plan_cache, rng):
        a = rng.standard_normal((512, 8)).astype(np.float32)
        b = rng.standard_normal((8, 8)).astype(np.float32)
        forced = ExecutionPlan(block_rows=64)
        with autotune.planning("auto"):
            got = kernel_ops.gemm(a, b, plan=forced)
        assert plan_cache.tuner.microbenchmarks == 0  # no tuning ran
        with autotune.planning("reference"):
            expected = kernel_ops.gemm(a, b)
        np.testing.assert_allclose(got, expected, rtol=2e-3, atol=1e-4)

    def test_explicit_backend_wins_over_auto_mode(self, plan_cache, medium_graph, rng):
        x = rng.standard_normal((medium_graph.num_vertices, 4)).astype(np.float32)
        with autotune.planning("auto"):
            got = kernel_ops.spmm(medium_graph, x, backend="numpy")
        assert plan_cache.tuner.microbenchmarks == 0
        expected = kernel_ops.spmm(medium_graph, x, backend="numpy")
        np.testing.assert_array_equal(got, expected)


class TestTrainConfigThreading:
    def test_kernel_plan_validated(self):
        from repro.train.config import TrainConfig

        assert TrainConfig(kernel_plan="auto").kernel_plan == "auto"
        with pytest.raises(ValueError, match="kernel_plan"):
            TrainConfig(kernel_plan="warp-speed")

    def test_auto_training_f1_within_fast_policy_tolerance(
        self, plan_cache, ppi_small
    ):
        # The downstream acceptance property: a run under autotuned
        # dispatch lands within 0.01 F1 of the same run under the
        # pinned reference policy.
        from repro.train.config import TrainConfig
        from repro.train.trainer import GraphSamplingTrainer

        scores = {}
        for mode in ("reference", "auto"):
            config = TrainConfig(
                hidden_dims=(32, 32), epochs=1, seed=3, kernel_plan=mode
            )
            with GraphSamplingTrainer(ppi_small, config) as trainer:
                scores[mode] = trainer.train().final_val_f1
        assert abs(scores["auto"] - scores["reference"]) <= 0.01
