"""Backend registry and the memoized scipy adjacency cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import edges_to_csr
from repro.kernels import backends
from repro.kernels.backends import (
    KernelBackend,
    adjacency_matrix,
    available_backends,
    default_backend,
    get_backend,
    register_backend,
    segment_sum,
    set_default_backend,
)


class TestRegistry:
    def test_builtin_backends_present(self):
        assert "scipy" in available_backends()
        assert "numpy" in available_backends()
        assert default_backend() == "scipy"

    def test_get_backend_none_is_default(self):
        assert get_backend(None) is get_backend(default_backend())

    def test_unknown_backend_raises_with_available_names(self):
        with pytest.raises(ValueError, match="scipy"):
            get_backend("no-such-backend")

    def test_register_roundtrip_and_overwrite_guard(self):
        probe = KernelBackend(
            name="probe",
            gemm=lambda a, b, out: a @ b,
            spmm=lambda g, x, out: x,
        )
        register_backend(probe)
        try:
            assert get_backend("probe") is probe
            with pytest.raises(ValueError, match="already registered"):
                register_backend(probe)
            register_backend(probe, overwrite=True)
        finally:
            backends._REGISTRY.pop("probe", None)

    def test_set_default_backend_roundtrip(self):
        previous = set_default_backend("numpy")
        try:
            assert previous == "scipy"
            assert default_backend() == "numpy"
        finally:
            set_default_backend(previous)

    def test_set_default_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_default_backend("no-such-backend")


class TestAdjacencyCache:
    def test_same_object_returned_on_repeat_calls(self, triangle_graph):
        first = adjacency_matrix(triangle_graph)
        second = adjacency_matrix(triangle_graph)
        assert first is second

    def test_one_entry_per_dtype(self, triangle_graph):
        f64 = adjacency_matrix(triangle_graph, np.float64)
        f32 = adjacency_matrix(triangle_graph, np.float32)
        assert f64.dtype == np.float64
        assert f32.dtype == np.float32
        assert adjacency_matrix(triangle_graph, np.float32) is f32
        assert adjacency_matrix(triangle_graph, np.float64) is f64

    def test_matrix_matches_graph_structure(self, path_graph):
        dense = adjacency_matrix(path_graph).toarray()
        expected = np.zeros((4, 4))
        for u, v in [(0, 1), (1, 2), (2, 3)]:
            expected[u, v] = expected[v, u] = 1.0
        np.testing.assert_array_equal(dense, expected)

    def test_cache_evicts_collected_graphs(self):
        graph = edges_to_csr(np.array([[0, 1]]), 2)
        adjacency_matrix(graph)
        key = id(graph)
        assert key in backends._ADJACENCY_CACHE
        del graph
        import gc

        gc.collect()
        assert key not in backends._ADJACENCY_CACHE

    def test_stats_count_hits_misses_and_live_entries(self):
        graph = edges_to_csr(np.array([[0, 1], [1, 2]]), 3)
        before = backends.adjacency_cache_stats()
        adjacency_matrix(graph)  # miss (fresh graph object)
        adjacency_matrix(graph)  # hit
        adjacency_matrix(graph)  # hit
        after = backends.adjacency_cache_stats()
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] == before["hits"] + 2
        assert after["live_entries"] >= 1

    def test_obs_counters_track_the_memo_cache(self):
        from repro import obs
        from repro.obs import metrics as obs_metrics

        graph = edges_to_csr(np.array([[0, 1], [0, 2]]), 3)
        obs.reset()
        with obs.enabled():
            adjacency_matrix(graph)
            adjacency_matrix(graph)
        counters = obs_metrics.snapshot()["counters"]
        assert counters["kernels.adjacency_cache.misses"] == 1
        assert counters["kernels.adjacency_cache.hits"] == 1


class TestSegmentSum:
    def test_matches_manual_sums_with_empty_segments(self, rng):
        values = rng.standard_normal((5, 3))
        indptr = np.array([0, 2, 2, 5])  # segment 1 is empty
        out = segment_sum(values, indptr, 3)
        np.testing.assert_allclose(out[0], values[:2].sum(axis=0))
        np.testing.assert_array_equal(out[1], np.zeros(3))
        np.testing.assert_allclose(out[2], values[2:].sum(axis=0))

    def test_zero_rows_input(self):
        values = np.empty((0, 4))
        indptr = np.zeros(3, dtype=np.int64)
        out = segment_sum(values, indptr, 2)
        assert out.shape == (2, 4)
        assert not out.any()

    def test_out_buffer_is_reused(self, rng):
        values = rng.standard_normal((4, 2))
        indptr = np.array([0, 1, 4])
        out = np.full((2, 2), 99.0)
        returned = segment_sum(values, indptr, 2, out=out)
        assert returned is out
        np.testing.assert_allclose(out[1], values[1:].sum(axis=0))


class TestBlockedBackend:
    def test_registered_and_matches_default_within_tolerance(self, rng):
        assert "blocked" in available_backends()
        a = rng.standard_normal((3000, 16)).astype(np.float32)
        b = rng.standard_normal((16, 8)).astype(np.float32)
        expected = get_backend("numpy").gemm(a, b, None)
        got = get_backend("blocked").gemm(a, b, None)
        np.testing.assert_allclose(got, expected, rtol=2e-3, atol=1e-4)

    def test_partial_final_panel_and_out_buffer(self, rng):
        gemm = backends.make_blocked_gemm(7)  # 20 rows -> 2 full + 1 ragged
        a = rng.standard_normal((20, 3))
        b = rng.standard_normal((3, 2))
        out = np.empty((20, 2))
        returned = gemm(a, b, out)
        assert returned is out
        np.testing.assert_allclose(out, a @ b, rtol=1e-12)

    def test_rejects_nonpositive_block(self):
        with pytest.raises(ValueError, match="block_rows"):
            backends.make_blocked_gemm(0)


class TestBackendAgreement:
    def test_scipy_and_numpy_spmm_agree(self, medium_graph, rng):
        x = rng.standard_normal((medium_graph.num_vertices, 7))
        scipy_result = get_backend("scipy").spmm(medium_graph, x, None)
        numpy_result = get_backend("numpy").spmm(medium_graph, x, None)
        np.testing.assert_allclose(scipy_result, numpy_result, rtol=1e-12)
