"""Centralized cost accounting: capture scopes, obs fan-out, and agreement
with the analytic complexity model (Eq. 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.analysis.complexity import eq1_forward_ops
from repro.kernels import accounting
from repro.kernels import ops as kernel_ops
from repro.nn.network import GCN
from repro.propagation.spmm import MeanAggregator


class TestCaptureScopes:
    def test_capture_counts_flops_and_calls(self, rng):
        a = rng.standard_normal((10, 6))
        b = rng.standard_normal((6, 4))
        with accounting.capture() as counters:
            kernel_ops.gemm(a, b)
        assert counters.gemm_calls == 1
        assert counters.gemm_flops == accounting.gemm_flop_count(10, 6, 4)
        assert counters.spmm_calls == 0
        assert counters.gemm_seconds >= 0.0

    def test_spmm_counts(self, triangle_graph, rng):
        x = rng.standard_normal((3, 5))
        with accounting.capture() as counters:
            kernel_ops.spmm(triangle_graph, x)
        assert counters.spmm_calls == 1
        assert counters.spmm_flops == accounting.spmm_flop_count(
            triangle_graph.num_edges_directed, 5
        )

    def test_captures_nest_without_stealing(self, rng):
        a = rng.standard_normal((4, 4))
        with accounting.capture() as outer:
            kernel_ops.gemm(a, a)
            with accounting.capture() as inner:
                kernel_ops.gemm(a, a)
        assert inner.gemm_calls == 1
        assert outer.gemm_calls == 2

    def test_totals_accumulate_and_reset(self, rng):
        a = rng.standard_normal((3, 3))
        before = accounting.TOTALS.gemm_calls
        kernel_ops.gemm(a, a)
        assert accounting.TOTALS.gemm_calls == before + 1
        accounting.reset_totals()
        assert accounting.TOTALS.gemm_calls == 0
        assert accounting.TOTALS.total_flops == 0.0

    def test_snapshot_is_json_ready(self, rng):
        with accounting.capture() as counters:
            kernel_ops.gemm(np.eye(2), np.eye(2))
        snap = counters.snapshot()
        assert set(snap) == {
            "gemm_calls",
            "gemm_flops",
            "gemm_seconds",
            "spmm_calls",
            "spmm_flops",
            "spmm_seconds",
        }
        assert snap["gemm_flops"] == 2.0 * 2 * 2 * 2


class TestObsFanOut:
    def test_counters_emitted_when_enabled(self, triangle_graph, rng):
        a = rng.standard_normal((5, 3))
        b = rng.standard_normal((3, 2))
        x = rng.standard_normal((3, 4))
        obs.reset()
        with obs.enabled():
            kernel_ops.gemm(a, b)
            kernel_ops.spmm(triangle_graph, x)
        counters = obs.metrics.snapshot()["counters"]
        obs.reset()
        assert counters["gemm.ops"] == 1.0
        assert counters["gemm.flops"] == accounting.gemm_flop_count(5, 3, 2)
        assert counters["spmm.ops"] == 1.0
        assert counters["spmm.flops"] == accounting.spmm_flop_count(
            triangle_graph.num_edges_directed, 4
        )

    def test_silent_when_disabled(self, rng):
        obs.reset()
        kernel_ops.gemm(np.eye(3), np.eye(3))
        assert obs.metrics.snapshot()["counters"] == {}


class TestMatchesComplexityModel:
    """Metered flops == 2x (mul+add) the Eq. 1 operation count."""

    @pytest.fixture()
    def setup(self, medium_graph, rng):
        n = medium_graph.num_vertices
        f0, hidden, classes = 12, 8, 5
        features = rng.standard_normal((n, f0))
        model = GCN(f0, [hidden, hidden], classes, concat=True, seed=3)
        agg = MeanAggregator(medium_graph)
        return medium_graph, features, model, agg

    def _eq1_args(self, graph, model, f0):
        nnz = graph.num_edges_directed
        n = graph.num_vertices
        dims = [f0]
        for layer in model.layers:
            dims.append(layer.output_dim)
        dims.append(model.head.out_dim)
        # GCN layers aggregate; the dense head does not.
        edge_counts = [nnz] * len(model.layers) + [0]
        node_counts = [n] * (len(dims))
        return edge_counts, node_counts, dims

    def test_forward_flops_match_eq1(self, setup):
        graph, features, model, agg = setup
        edge_counts, node_counts, dims = self._eq1_args(
            graph, model, features.shape[1]
        )
        with accounting.capture() as counters:
            model.forward(features, agg, train=False)
        analytic = eq1_forward_ops(edge_counts, node_counts, dims)
        # Eq. 1 counts one operation per MAC; the meter counts 2 flops.
        assert counters.total_flops == 2.0 * analytic
        # The split is exact too: agg term -> spmm, weight term -> gemm.
        agg_ops = sum(e * f for e, f in zip(edge_counts, dims[:-1]))
        assert counters.spmm_flops == 2.0 * agg_ops
        assert counters.gemm_flops == 2.0 * (analytic - agg_ops)

    def test_backward_gemm_flops_are_twice_forward(self, setup, rng):
        # dW = h^T dz and dx = dz W^T per product: backward costs exactly
        # 2x the forward gemm flops (the old trainer's analytic 3x-total).
        graph, features, model, agg = setup
        with accounting.capture() as fwd:
            out = model.forward(features, agg, train=True)
        grad = rng.standard_normal(out.shape)
        model.zero_grad()
        with accounting.capture() as bwd:
            model.backward(grad)
        assert bwd.gemm_flops == 2.0 * fwd.gemm_flops
