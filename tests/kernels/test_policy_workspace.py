"""Dtype policies and the workspace buffer arena."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.policy import (
    FAST,
    REFERENCE,
    available_policies,
    resolve_policy,
)
from repro.kernels.workspace import Workspace


class TestDtypePolicy:
    def test_reference_policy(self):
        assert REFERENCE.dtype == np.float64
        assert not REFERENCE.use_workspace

    def test_fast_policy(self):
        assert FAST.dtype == np.float32
        assert FAST.use_workspace
        assert FAST.grad_tol > REFERENCE.grad_tol

    @pytest.mark.parametrize(
        "name, expected",
        [
            ("reference", REFERENCE),
            ("float64", REFERENCE),
            ("fast", FAST),
            ("float32", FAST),
            (None, REFERENCE),
        ],
    )
    def test_resolve_by_name(self, name, expected):
        assert resolve_policy(name) is expected

    def test_resolve_passthrough(self):
        assert resolve_policy(FAST) is FAST

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError, match="reference"):
            resolve_policy("float16")

    def test_available_policies(self):
        assert set(available_policies()) >= {"reference", "fast"}

    def test_cast_converts_and_is_noop_on_match(self, rng):
        x = rng.standard_normal((4, 3))
        assert REFERENCE.cast(x) is x
        y = FAST.cast(x)
        assert y.dtype == np.float32
        assert y.flags["C_CONTIGUOUS"]


class TestWorkspace:
    def test_first_request_allocates_then_reuses(self):
        ws = Workspace()
        a = ws.buffer(("layer", "z"), (8, 4), np.float64)
        assert a.shape == (8, 4)
        assert ws.misses == 1 and ws.hits == 0
        b = ws.buffer(("layer", "z"), (8, 4), np.float64)
        assert b.base is a.base
        assert ws.hits == 1

    def test_smaller_request_reuses_capacity(self):
        # Subgraph sizes jitter per iteration; a shrink must not allocate.
        ws = Workspace()
        big = ws.buffer(("k",), (10, 4), np.float32)
        small = ws.buffer(("k",), (7, 4), np.float32)
        assert small.base is big.base
        assert small.shape == (7, 4)
        assert ws.stats()["misses"] == 1

    def test_growth_reallocates(self):
        ws = Workspace()
        ws.buffer(("k",), (4, 4), np.float64)
        ws.buffer(("k",), (6, 4), np.float64)
        assert ws.misses == 2
        assert ws.num_buffers == 1

    def test_dtype_change_reallocates(self):
        ws = Workspace()
        ws.buffer(("k",), (4, 4), np.float64)
        out = ws.buffer(("k",), (4, 4), np.float32)
        assert out.dtype == np.float32
        assert ws.misses == 2

    def test_distinct_keys_do_not_alias(self):
        ws = Workspace()
        a = ws.buffer(("a",), (3, 3), np.float64)
        b = ws.buffer(("b",), (3, 3), np.float64)
        a[...] = 1.0
        b[...] = 2.0
        assert float(a.sum()) == 9.0
        assert ws.num_buffers == 2

    def test_stats_and_reset(self):
        ws = Workspace()
        ws.buffer(("k",), (2, 2), np.float64)
        stats = ws.stats()
        assert stats["bytes_allocated"] == 4 * 8
        assert stats["bytes_held"] == 4 * 8
        ws.reset_stats()
        assert ws.hits == ws.misses == ws.bytes_allocated == 0
        assert ws.num_buffers == 1  # buffers survive a stats reset
        ws.clear()
        assert ws.num_buffers == 0

    def test_scalar_shape(self):
        ws = Workspace()
        s = ws.buffer(("s",), (), np.float64)
        assert s.shape == ()
