"""Measured roofline: calibration, point math, report, SLO rule."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.kernels import accounting, ops as kernel_ops
from repro.kernels.roofline import (
    MachinePeaks,
    calibrate_peaks,
    render_roofline,
    roofline_points,
    roofline_report,
    write_roofline_json,
)
from repro.obs.slo import SLORule, evaluate, kernel_rules

PEAKS = MachinePeaks(dtype="float32", peak_flops_s=100e9, peak_bytes_s=10e9)


def _bucket(flops, nbytes, seconds, *, op="gemm", calls=3):
    return {
        "op": op,
        "calls": calls,
        "flops": flops,
        "bytes": nbytes,
        "seconds": seconds,
    }


class TestCalibration:
    def test_peaks_positive_and_cached(self):
        first = calibrate_peaks(np.float32)
        assert first.peak_flops_s > 0
        assert first.peak_bytes_s > 0
        assert math.isfinite(first.ridge_intensity)
        assert calibrate_peaks(np.float32) is first  # per-process cache

    def test_ridge_is_flops_over_bytes(self):
        assert PEAKS.ridge_intensity == pytest.approx(10.0)


class TestPointMath:
    def test_compute_bound_point(self):
        # intensity 20 flop/B > ridge 10 => capped by peak compute.
        per_class = {"gemm[x]": _bucket(flops=2e9, nbytes=1e8, seconds=0.04)}
        (p,) = roofline_points(per_class, peaks=PEAKS)
        assert p.intensity == pytest.approx(20.0)
        assert p.attainable_flops_s == pytest.approx(100e9)
        assert p.achieved_flops_s == pytest.approx(50e9)
        assert p.fraction == pytest.approx(0.5)

    def test_bandwidth_bound_point(self):
        # intensity 0.5 flop/B < ridge => capped by intensity * bandwidth.
        per_class = {"spmm[x]": _bucket(flops=5e7, nbytes=1e8, seconds=0.02, op="spmm")}
        (p,) = roofline_points(per_class, peaks=PEAKS)
        assert p.attainable_flops_s == pytest.approx(5e9)
        assert p.achieved_flops_s == pytest.approx(2.5e9)
        assert p.achieved_bytes_s == pytest.approx(5e9)
        assert p.fraction == pytest.approx(0.5)

    def test_zero_time_buckets_skipped(self):
        per_class = {
            "a": _bucket(flops=1e9, nbytes=1e8, seconds=0.0),
            "b": _bucket(flops=1e9, nbytes=1e8, seconds=0.01),
        }
        points = roofline_points(per_class, peaks=PEAKS)
        assert [p.class_key for p in points] == ["b"]

    def test_every_accounted_call_site_gets_a_point(self, rng):
        # Real dispatch: each distinct shape class placed on the roofline.
        accounting.reset_totals()
        kernel_ops.gemm(rng.standard_normal((64, 8)), rng.standard_normal((8, 8)))
        kernel_ops.gemm(rng.standard_normal((300, 16)), rng.standard_normal((16, 4)))
        snap = accounting.per_class_snapshot()
        points = roofline_points(snap, peaks=PEAKS)
        timed = {k for k, b in snap.items() if b["seconds"] > 0}
        assert {p.class_key for p in points} == timed
        assert len(points) == 2


class TestReport:
    def test_schema_and_artifact_roundtrip(self, tmp_path):
        per_class = {"gemm[x]": _bucket(flops=2e9, nbytes=1e8, seconds=0.04)}
        report = roofline_report(per_class, peaks=PEAKS)
        assert report["schema"] == "repro.roofline.v1"
        assert report["fingerprint_key"]
        assert report["environment"]
        path = write_roofline_json(tmp_path, report)
        assert path.name == "OBS_roofline.json"
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(report)
        )

    def test_plan_entries_add_fraction_of_tuned(self):
        per_class = {"gemm[x]": _bucket(flops=2e9, nbytes=1e8, seconds=0.04)}
        entries = {"gemm[x]": {"tuned_flops_s": 100e9}}
        report = roofline_report(per_class, peaks=PEAKS, plan_entries=entries)
        (row,) = report["points"]
        assert row["tuned_flops_s"] == pytest.approx(100e9)
        assert row["fraction_of_tuned"] == pytest.approx(0.5)

    def test_render_lists_every_point(self):
        per_class = {
            "gemm[x]": _bucket(flops=2e9, nbytes=1e8, seconds=0.04),
            "spmm[y]": _bucket(flops=5e7, nbytes=1e8, seconds=0.02, op="spmm"),
        }
        text = render_roofline(roofline_report(per_class, peaks=PEAKS))
        assert "gemm[x]" in text
        assert "spmm[y]" in text
        assert "Gflop/s" in text

    def test_render_empty_report(self):
        text = render_roofline(roofline_report({}, peaks=PEAKS))
        assert "no accounted kernel calls" in text


class TestRooflineFractionSLO:
    def _rule(self, *, min_fraction, entries, per_class):
        (rule,) = kernel_rules(min_fraction=min_fraction)
        return SLORule(
            name=rule.name,
            kind=rule.kind,
            params=dict(
                rule.params, plan_entries=entries, per_class=per_class
            ),
            description=rule.description,
        )

    def test_ok_when_call_sites_near_tuned_rate(self):
        entries = {"gemm[x]": {"tuned_flops_s": 50e9}}
        per_class = {"gemm[x]": _bucket(flops=2e9, nbytes=1e8, seconds=0.05)}
        (result,) = evaluate(
            [self._rule(min_fraction=0.5, entries=entries, per_class=per_class)]
        )
        assert result.ok
        assert result.value == pytest.approx(0.8)  # 40 / 50 Gflop/s

    def test_breach_when_call_site_falls_below_fraction(self):
        entries = {"gemm[x]": {"tuned_flops_s": 50e9}}
        per_class = {"gemm[x]": _bucket(flops=2e9, nbytes=1e8, seconds=0.2)}
        (result,) = evaluate(
            [self._rule(min_fraction=0.5, entries=entries, per_class=per_class)]
        )
        assert not result.ok
        assert result.value == pytest.approx(0.2)  # 10 / 50 Gflop/s
        assert "gemm[x]" in result.detail

    def test_no_tuned_coverage_is_flagged(self):
        (result,) = evaluate(
            [self._rule(min_fraction=0.5, entries={}, per_class={})]
        )
        assert not result.ok
        assert "no accounted shape class" in result.detail
