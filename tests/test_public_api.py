"""The README's public API surface must keep working verbatim."""

from __future__ import annotations

import numpy as np

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_readme_quickstart(self):
        """The exact snippet from README.md (with a smaller budget)."""
        from repro import make_dataset, TrainConfig, GraphSamplingTrainer

        dataset = repro.make_dataset("ppi", scale=0.03, seed=0)
        trainer = GraphSamplingTrainer(
            dataset,
            TrainConfig(
                hidden_dims=(16, 16),
                frontier_size=20,
                budget=100,
                epochs=2,
            ),
        )
        result = trainer.train()
        assert np.isfinite(result.final_val_f1)
        assert set(result.trace.breakdown()) == {
            "sampling",
            "feature_propagation",
            "weight_application",
        }

    def test_machine_factory(self):
        m = repro.xeon_40core()
        assert m.num_cores == 40

    def test_sampler_types_exported(self):
        assert issubclass(repro.DashboardFrontierSampler, repro.GraphSampler)
        assert issubclass(repro.FrontierSampler, repro.GraphSampler)
