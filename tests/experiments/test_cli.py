"""Tests for the command-line experiment runner."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_experiments(self):
        parser = build_parser()
        for name in (
            "table1",
            "fig2",
            "fig3",
            "fig4",
            "table2",
            "ablations",
            "serve-bench",
            "all",
        ):
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_options(self):
        args = build_parser().parse_args(
            ["fig3", "--datasets", "ppi", "reddit", "--hidden", "256", "--seed", "7"]
        )
        assert args.datasets == ["ppi", "reddit"]
        assert args.hidden == 256
        assert args.seed == 7

    def test_serve_bench_options(self):
        args = build_parser().parse_args(
            ["serve-bench", "--queries", "500", "--load-factor", "5.0"]
        )
        assert args.queries == 500
        assert args.load_factor == 5.0


class TestMain:
    def test_table1_to_stdout_and_file(self, tmp_path, capsys):
        rc = main(["table1", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert (tmp_path / "table1.txt").exists()

    def test_fig4_single_dataset(self, capsys):
        rc = main(["fig4", "--datasets", "ppi"])
        assert rc == 0
        assert "Figure 4A" in capsys.readouterr().out

    def test_serve_bench_writes_table_and_json(self, tmp_path, capsys):
        rc = main(
            ["serve-bench", "--queries", "300", "--out", str(tmp_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "naive" in out and "batched+cache+ann" in out
        assert (tmp_path / "serve_bench.txt").exists()
        assert (tmp_path / "BENCH_serve_bench.json").exists()


class TestReport:
    def test_report_assembles_results(self, capsys):
        rc = main(["report"])
        assert rc == 0
        out = capsys.readouterr().out
        # Either assembled results or the guidance message.
        assert ("Table I" in out) or ("no results found" in out)
