"""Tests for ASCII figure rendering."""

from __future__ import annotations

import pytest

from repro.experiments.plotting import ascii_bars, ascii_plot, ascii_speedup_plot


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        out = ascii_plot(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
            title="T",
            width=20,
            height=8,
        )
        assert "T" in out
        assert "o=a" in out and "x=b" in out
        assert "o" in out and "x" in out

    def test_empty(self):
        assert "(no data)" in ascii_plot({}, title="E")

    def test_degenerate_single_point(self):
        out = ascii_plot({"a": [(1.0, 2.0)]}, width=10, height=4)
        assert "o" in out

    def test_axis_labels(self):
        out = ascii_plot(
            {"a": [(0, 0), (10, 5)]}, xlabel="cores", ylabel="speedup"
        )
        assert "cores" in out and "speedup" in out

    def test_extremes_rendered_at_bounds(self):
        out = ascii_plot({"a": [(0, 0), (100, 10)]}, width=30, height=10)
        lines = [l for l in out.splitlines() if "|" in l]
        # Max y appears on the first grid row, min y on the last.
        assert "o" in lines[0]
        assert "o" in lines[-1]


class TestSpeedupPlot:
    def test_includes_ideal_diagonal(self):
        out = ascii_speedup_plot({"ours": {1: 1.0, 10: 7.0, 40: 17.0}})
        assert "ideal" in out
        assert "ours" in out


class TestBars:
    def test_proportional_lengths(self):
        out = ascii_bars({"long": 10.0, "short": 5.0}, width=20)
        long_line = next(l for l in out.splitlines() if l.strip().startswith("long"))
        short_line = next(l for l in out.splitlines() if l.strip().startswith("short"))
        assert long_line.count("#") == 2 * short_line.count("#")

    def test_empty(self):
        assert "(no data)" in ascii_bars({})

    def test_zero_values(self):
        out = ascii_bars({"a": 0.0, "b": 0.0})
        assert "#" not in out
