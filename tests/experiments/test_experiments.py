"""Shape tests for the experiment harness (paper tables/figures).

These assert the *qualitative* claims each artifact must reproduce, on
reduced workloads so the whole file runs in well under a minute.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ablations, fig3, fig4, table1, table2
from repro.experiments.common import format_float, format_table


TINY_SCALES = {"ppi": 0.04, "reddit": 0.005}


class TestFormatting:
    def test_format_table_basic(self):
        out = format_table(
            [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}], title="T"
        )
        assert "T" in out and "a" in out and "2.500" in out

    def test_format_table_empty(self):
        assert "(empty)" in format_table([])

    def test_format_float(self):
        assert format_float(1234567) == "1,234,567"
        assert format_float(float("nan")) == "nan"
        assert format_float(0.5) == "0.500"
        assert format_float("x") == "x"


class TestTable1:
    def test_paper_columns_present(self):
        res = table1.run(scales=TINY_SCALES, seed=0)
        rows = res["rows"]
        assert len(rows) == 4
        generated = [r for r in rows if "generated_vertices" in r]
        assert len(generated) == 2
        out = table1.format_results(res)
        assert "Table I" in out


class TestFig3:
    @pytest.fixture(scope="class")
    def results(self):
        return fig3.run(
            datasets=["reddit"],
            scales=TINY_SCALES,
            hidden_dims=(128,),
            iterations=3,
            seed=0,
        )

    def test_iteration_speedup_monotone(self, results):
        rows = [r for r in results["rows"] if r["cores"] in (1, 10, 40)]
        speedups = {r["cores"]: r["iteration_speedup"] for r in rows}
        assert speedups[1] == pytest.approx(1.0)
        assert speedups[1] < speedups[10] < speedups[40]

    def test_overall_speedup_band_at_40(self, results):
        """Paper: ~20x overall at 40 cores; accept a generous band."""
        at40 = next(r for r in results["rows"] if r["cores"] == 40)
        assert 10.0 <= at40["iteration_speedup"] <= 30.0

    def test_weight_app_band(self, results):
        at40 = next(r for r in results["rows"] if r["cores"] == 40)
        assert 13.0 <= at40["weight_speedup"] <= 20.0  # paper ~16x

    def test_featprop_band(self, results):
        at40 = next(r for r in results["rows"] if r["cores"] == 40)
        assert 20.0 <= at40["featprop_speedup"] <= 30.0  # paper ~25x

    def test_breakdown_sums_to_one(self, results):
        for r in results["rows"]:
            total = r["frac_sampling"] + r["frac_featprop"] + r["frac_weight"]
            assert total == pytest.approx(1.0)


class TestFig4:
    @pytest.fixture(scope="class")
    def results(self):
        return fig4.run(
            datasets=["reddit"], scales=TINY_SCALES, num_subgraphs=6, seed=0
        )

    def test_panel_a_monotone_with_knee(self, results):
        rows = {r["p_inter"]: r["sampling_speedup"] for r in results["panel_a"]}
        assert rows[5] > 3.0
        assert rows[40] > rows[20] > rows[10] > rows[5]
        # NUMA knee: efficiency at 40 clearly below efficiency at 20.
        assert rows[40] / 40 < 0.75 * rows[20] / 20

    def test_panel_a_band_at_40(self, results):
        rows = {r["p_inter"]: r["sampling_speedup"] for r in results["panel_a"]}
        assert 10.0 <= rows[40] <= 22.0  # paper reads ~13-15x

    def test_panel_b_avx_band(self, results):
        for r in results["panel_b"]:
            assert 3.0 <= r["avx_speedup"] <= 8.5  # paper: ~4x avg, 4-8 range


class TestTable2:
    @pytest.fixture(scope="class")
    def results(self):
        return table2.run(
            scale=0.005, hidden=64, layers_list=(1, 2, 3), iterations=2, seed=0
        )

    def test_monotone_in_depth(self, results):
        rows = {r["layers"]: r for r in results["rows"]}
        for cores in ("1-core", "40-core"):
            assert rows[1][cores] < rows[2][cores] < rows[3][cores]

    def test_monotone_in_cores(self, results):
        for r in results["rows"]:
            assert r["1-core"] < r["5-core"] < r["20-core"] < r["40-core"]

    def test_depth_explosion_order_of_magnitude(self, results):
        rows = {r["layers"]: r for r in results["rows"]}
        assert rows[3]["1-core"] > 4 * rows[1]["1-core"]


class TestAblations:
    def test_partitioning_two_approx(self):
        res = ablations.run_partitioning(
            sizes=(1000, 4000), feature_dims=(512,), seed=0
        )
        for row in res["rows"]:
            if row["thm2_conditions"]:
                assert row["ratio_vs_ideal"] <= 2.0 + 1e-9
            assert row["ratio_vs_lb"] <= 2.2

    def test_eta_tradeoff(self):
        res = ablations.run_dashboard_eta(
            dataset="ppi", etas=(1.5, 3.0), num_subgraphs=2, seed=0
        )
        rows = {r["eta"]: r for r in res["rows"]}
        # Larger eta: fewer cleanups, more probes per pop, bigger table.
        assert rows[3.0]["cleanups_per_subgraph"] <= rows[1.5]["cleanups_per_subgraph"]
        assert rows[3.0]["probes_per_pop"] >= rows[1.5]["probes_per_pop"]
        assert rows[3.0]["dashboard_KB"] > rows[1.5]["dashboard_KB"]

    def test_degree_cap_rows(self):
        res = ablations.run_degree_cap(num_subgraphs=3, seed=0)
        caps = [r["cap"] for r in res["rows"]]
        assert caps == ["none", 30]
        for r in res["rows"]:
            assert 0.0 <= r["mean_pairwise_jaccard"] <= 1.0

    def test_sampler_comparison_rows(self):
        res = ablations.run_sampler_comparison(dataset="ppi", epochs=2, seed=0)
        names = {r["sampler"] for r in res["rows"]}
        assert names == {
            "frontier",
            "random_node",
            "random_edge",
            "random_walk",
            "mh_walk",
            "forest_fire",
            "snowball",
        }
        for r in res["rows"]:
            assert 0.0 <= r["degree_ks_vs_full"] <= 1.0
