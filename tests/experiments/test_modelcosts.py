"""Tests for the cross-method modeled-cost pricing."""

from __future__ import annotations

import pytest

from repro.baselines.batched_gcn import BatchedGCNConfig, BatchedGCNTrainer
from repro.baselines.graphsage import GraphSAGETrainer, SageConfig
from repro.experiments.modelcosts import (
    batched_gcn_iteration_cost,
    gcn_iteration_cost,
    graphsage_iteration_cost,
    layer_dims_of,
)
from repro.parallel.machine import xeon_40core


class TestLayerDims:
    def test_concat_doubles(self):
        assert layer_dims_of(50, (64, 64)) == [50, 128, 128]

    def test_sum_variant(self):
        assert layer_dims_of(50, (64,), concat=False) == [50, 64]


class TestGCNIterationCost:
    def test_scales_with_graph_size(self, reddit_small):
        m = xeon_40core()
        full = gcn_iteration_cost(
            reddit_small.graph,
            feature_dims=[reddit_small.attribute_dim, 128, 128],
            num_classes=reddit_small.num_classes,
            machine=m,
        )
        sub, _ = reddit_small.graph.induced_subgraph(
            reddit_small.train_idx[:200]
        )
        small = gcn_iteration_cost(
            sub,
            feature_dims=[reddit_small.attribute_dim, 128, 128],
            num_classes=reddit_small.num_classes,
            machine=m,
        )
        assert full > 4 * small


class TestCrossMethodPricing:
    def test_batched_gcn_priced_on_full_graph(self, reddit_small):
        m = xeon_40core()
        trainer = BatchedGCNTrainer(
            reddit_small, BatchedGCNConfig(hidden_dims=(32, 32), epochs=1)
        )
        cost = batched_gcn_iteration_cost(trainer, m)
        assert cost > 0

    def test_graphsage_requires_recorded_stats(self, reddit_small):
        m = xeon_40core()
        trainer = GraphSAGETrainer(
            reddit_small,
            SageConfig(hidden_dims=(32, 32), fanouts=(5, 5), epochs=1),
        )
        with pytest.raises(ValueError, match="support stats"):
            graphsage_iteration_cost(trainer, m)
        import numpy as np

        trainer.train_iteration(np.arange(64))
        assert graphsage_iteration_cost(trainer, m) > 0

    def test_neighbor_explosion_visible_in_pricing(self, reddit_small):
        """3-layer GraphSAGE iterations cost much more than 1-layer ones
        under the same pricing — the neighbor-explosion signal."""
        import numpy as np

        m = xeon_40core()
        costs = {}
        for layers in (1, 3):
            trainer = GraphSAGETrainer(
                reddit_small,
                SageConfig(
                    hidden_dims=(32,) * layers,
                    fanouts=(10,) * layers,
                    epochs=1,
                    seed=0,
                ),
            )
            trainer.train_iteration(np.arange(32))
            costs[layers] = graphsage_iteration_cost(trainer, m)
        assert costs[3] > 3 * costs[1]
