"""Shape tests for the X6/X7 extension experiments (reduced workloads)."""

from __future__ import annotations

import pytest

from repro.experiments import extensions


class TestDepthAccuracy:
    def test_rows_and_monotone_cost(self):
        res = extensions.run_depth_accuracy(
            dataset="reddit", depths=(1, 2), hidden=16, epochs=2, seed=0
        )
        rows = res["rows"]
        assert [r["layers"] for r in rows] == [1, 2]
        assert rows[1]["gemm_flops_per_iter"] > rows[0]["gemm_flops_per_iter"]
        assert rows[1]["num_parameters"] > rows[0]["num_parameters"]
        for r in rows:
            assert 0.0 <= r["val_f1_micro"] <= 1.0


class TestBudgetScaling:
    def test_budget_fraction_shrinks(self):
        res = extensions.run_budget_scaling(
            dataset="reddit",
            base_scale=0.004,
            scale_factors=(1.0, 2.0),
            budget=150,
            hidden=16,
            epochs=2,
            seed=0,
        )
        rows = res["rows"]
        assert rows[0]["budget"] == rows[1]["budget"] == 150
        assert rows[1]["num_vertices"] > rows[0]["num_vertices"]
        assert rows[1]["budget_fraction"] < rows[0]["budget_fraction"]
        assert rows[1]["batches_per_epoch"] > rows[0]["batches_per_epoch"]
