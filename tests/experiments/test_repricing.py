"""Tests for the scaling re-pricing machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.repricing import (
    iteration_time,
    phase_times_per_iteration,
    speedup_table,
)
from repro.parallel.machine import xeon_40core
from repro.train.config import TrainConfig
from repro.train.trainer import GraphSamplingTrainer


@pytest.fixture(scope="module")
def metrics(reddit_small):
    cfg = TrainConfig(
        hidden_dims=(32, 32), frontier_size=30, budget=190, epochs=1, seed=0,
        eval_every=10**9,
    )
    trainer = GraphSamplingTrainer(reddit_small, cfg)
    result = trainer.train()
    return result.iteration_metrics


class TestPhaseTimes:
    def test_all_phases_positive(self, metrics):
        phases = phase_times_per_iteration(metrics, xeon_40core(), cores=1)
        assert set(phases) == {"sampling", "feature_propagation", "weight_application"}
        assert all(v > 0 for v in phases.values())

    def test_more_cores_never_slower(self, metrics):
        m = xeon_40core()
        totals = [
            iteration_time(phase_times_per_iteration(metrics, m, cores=c))
            for c in (1, 5, 10, 20, 40)
        ]
        assert all(b < a for a, b in zip(totals, totals[1:]))

    def test_validation(self, metrics):
        with pytest.raises(ValueError):
            phase_times_per_iteration([], xeon_40core(), cores=1)
        with pytest.raises(ValueError):
            phase_times_per_iteration(metrics, xeon_40core(), cores=0)


class TestSpeedupTable:
    def test_structure(self, metrics):
        table = speedup_table(metrics, xeon_40core(), cores_list=[1, 10, 40])
        assert set(table) == {1, 10, 40}
        assert table[1]["speedup"] == pytest.approx(1.0)
        assert table[40]["speedup"] > table[10]["speedup"] > 1.0

    def test_total_is_sum_of_phases(self, metrics):
        table = speedup_table(metrics, xeon_40core(), cores_list=[10])
        entry = table[10]
        assert entry["total"] == pytest.approx(
            entry["sampling"]
            + entry["feature_propagation"]
            + entry["weight_application"]
        )
