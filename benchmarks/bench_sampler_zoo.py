"""Benchmark — sampler-zoo family comparison (fast vs reference, x4).

Real wall-clock microbenchmark of every sampler family in
:data:`repro.sampling.zoo.FAMILIES` — dashboard (the paper's frontier
sampler), rw, edge, and edge-indp (the follow-up paper's GraphSAINT
samplers) — at a shared vertex budget on the Reddit-profile workload.
The acceptance bar: every family's vectorized ``fast`` engine clears
``DEFAULT_ZOO_MIN_SPEEDUP`` (2x) over its scalar ``reference`` oracle,
asserted on the emitted payload so ``BENCH_sampler_zoo.json`` records
the per-family verdicts alongside the raw per-repeat wall-time series
the bench-gate tests run on.
"""

from __future__ import annotations

from repro.experiments import samplerbench
from repro.sampling.zoo import FAMILIES


def test_sampler_zoo(paper_bench):
    results = paper_bench(
        "sampler_zoo",
        lambda: samplerbench.run_zoo(repeats=12, seed=0),
        text=samplerbench.format_zoo_results,
    )

    by_family = {row["family"]: row for row in results["rows"]}
    assert set(by_family) == set(FAMILIES)
    for row in by_family.values():
        assert row["fast_median_ms"] > 0
        assert row["reference_median_ms"] > 0
        # Every family fills a comparable fraction of the shared budget
        # (they sample different distributions, but none collapses).
        assert row["unique_vertices"] > results["budget"] / 4

    # The headline claim, recorded in the payload for the history file:
    # every family's fast engine clears the 2x bar.
    for fam in FAMILIES:
        assert results["speedups"][fam] >= samplerbench.DEFAULT_ZOO_MIN_SPEEDUP
    assert results["meets_target"] is True

    samples = results["samples"]
    for fam in FAMILIES:
        assert len(samples[f"sample_wall_s.{fam}.fast"]) == results["repeats"]
        assert len(samples[f"sample_wall_s.{fam}.reference"]) == results["repeats"]
        assert len(samples[f"throughput.{fam}.fast"]) == results["repeats"]
