"""Benchmark T1 — regenerate Table I (dataset statistics).

Also serves as a real benchmark of dataset generation throughput.
"""

from __future__ import annotations

from repro.experiments import table1


def test_table1_dataset_statistics(paper_bench):
    results = paper_bench(
        "table1_datasets",
        lambda: table1.run(seed=0),
        text=table1.format_results,
    )
    rows = results["rows"]
    assert len(rows) == 4
    # Every generated dataset respects its profile's attribute/class spec.
    for row in rows:
        assert row["generated_vertices"] > 0
