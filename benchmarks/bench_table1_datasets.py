"""Benchmark T1 — regenerate Table I (dataset statistics).

Also serves as a real benchmark of dataset generation throughput.
"""

from __future__ import annotations

from repro.experiments import table1


def test_table1_dataset_statistics(benchmark, record_table, record_json):
    results = benchmark.pedantic(
        lambda: table1.run(seed=0), rounds=1, iterations=1
    )
    record_table("table1_datasets", table1.format_results(results))
    record_json("table1_datasets", results)
    rows = results["rows"]
    assert len(rows) == 4
    # Every generated dataset respects its profile's attribute/class spec.
    for row in rows:
        assert row["generated_vertices"] > 0
