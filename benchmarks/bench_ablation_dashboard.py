"""Benchmark X2 — Dashboard enlargement factor (eta) ablation.

Measures the probe-cost vs cleanup-cost trade-off on real sampler runs and
compares with the Eq. 2 prediction. Larger eta: fewer cleanups, more
probes per pop, bigger table; the paper picks eta in 2-3.
"""

from __future__ import annotations

from repro.experiments import ablations
from repro.experiments.common import format_table


def test_ablation_dashboard_eta(paper_bench):
    results = paper_bench(
        "ablation_dashboard_eta",
        lambda: ablations.run_dashboard_eta(num_subgraphs=4, seed=0),
        text=lambda r: format_table(r["rows"], title="X2: Dashboard eta sweep"),
    )
    rows = sorted(results["rows"], key=lambda r: r["eta"])
    cleanups = [r["cleanups_per_subgraph"] for r in rows]
    probes = [r["probes_per_pop"] for r in rows]
    assert cleanups == sorted(cleanups, reverse=True)
    assert probes[-1] >= probes[0]
    # Measured sim time within a small factor of the Eq. 2 closed form.
    for r in rows:
        ratio = r["sim_time_per_subgraph"] / r["eq2_predicted"]
        assert 0.25 <= ratio <= 4.0


def test_ablation_alias_vs_dashboard(paper_bench):
    """Section IV-A's rejected alternative, quantified: per-pop alias
    rebuilds scale O(m) while the Dashboard's incremental update is
    O(d) — the advantage grows with frontier size and exceeds an order of
    magnitude at the paper's m=1000 on sparse graphs."""
    from repro.experiments.ablations import run_alias_contrast

    results = paper_bench(
        "ablation_alias_vs_dashboard",
        lambda: run_alias_contrast(avg_degree=15.0),
        text=lambda r: format_table(
            r["rows"], title="X8: alias rebuilds vs Dashboard updates"
        ),
    )
    advantages = [r["dashboard_advantage"] for r in results["rows"]]
    assert advantages == sorted(advantages)  # grows with m
    assert advantages[-1] > 10.0
