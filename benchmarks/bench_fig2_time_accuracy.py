"""Benchmark F2 — regenerate Figure 2 (accuracy vs sequential time).

Trains the proposed method, GraphSAGE and Batched GCN single-threaded on
all four dataset profiles, then prints the time-accuracy summary with the
paper's threshold rule (best baseline accuracy minus 0.0025).

Paper shapes to check in the output: the proposed method matches or beats
the best baseline's final F1 and reaches the threshold faster serially
(the paper reports 1.9x / 7.8x / 4.7x / 2.1x on PPI / Reddit / Yelp /
Amazon).
"""

from __future__ import annotations

from repro.experiments import fig2


def test_fig2_time_accuracy_all_datasets(paper_bench):
    results = paper_bench(
        "fig2_time_accuracy",
        lambda: fig2.run(hidden=128, epoch_scale=1.0, seed=0),
        text=fig2.format_results,
    )
    for r in results["results"]:
        # The proposed method reaches the threshold on every dataset...
        assert r["time_proposed"] is not None, r["dataset"]
        # ...and its final accuracy is at least baseline minus slack.
        assert r["proposed_final_f1"] >= r["best_baseline_f1"] - 0.05, r["dataset"]


def test_fig2_curves_are_monotone_time(benchmark):
    """Cheap single-dataset variant: curves are time-ordered and in [0,1]."""
    from repro.graphs.datasets import make_dataset

    ds = make_dataset("ppi", scale=0.04, seed=0)
    result = benchmark.pedantic(
        lambda: fig2.run_dataset(ds, hidden=64, epoch_scale=0.3, seed=0),
        rounds=1,
        iterations=1,
    )
    for name, curve in result["curves"].items():
        times = [t for t, _ in curve]
        assert times == sorted(times), name
        assert all(0.0 <= f1 <= 1.0 for _, f1 in curve), name
