"""Shared benchmark fixtures.

Experiment benchmarks run their workload once (``benchmark.pedantic`` with
a single round — these regenerate paper tables, they are not microbenches)
through the :func:`paper_bench` fixture, which owns all the per-runner
output from one code path:

* the paper-style table → ``benchmarks/results/<name>.txt`` + stdout;
* the raw results dict → ``BENCH_<name>.json`` (the cross-PR benchmark
  trajectory);
* the :mod:`repro.obs` trace of the same run → ``OBS_<name>.json``
  (per-phase span aggregates + counters — where the workload's time
  went, not just how long it took).

The pure microbenches in ``bench_kernels.py`` get their stats exported to
``BENCH_kernels.json`` by a session-finish hook.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import obs
from repro.experiments.common import write_bench_json

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Write a rendered experiment table to results/<name>.txt and stdout."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record


@pytest.fixture
def record_json(results_dir):
    """Write a runner's raw results dict to results/BENCH_<name>.json."""

    def _record(name: str, results) -> None:
        path = write_bench_json(
            results_dir / f"BENCH_{name}.json", name, results
        )
        print(f"[written to {path}]")

    return _record


@pytest.fixture
def paper_bench(benchmark, record_table, record_json, results_dir):
    """Run one paper-regeneration workload; emit table + BENCH + OBS json.

    Replaces the per-runner timing boilerplate: the workload executes
    once (``benchmark.pedantic``) inside an enabled ``bench.<name>`` obs
    span, then the fixture writes ``<name>.txt`` (when ``text`` renders a
    table), ``BENCH_<name>.json`` and ``OBS_<name>.json`` — so the
    human-readable table, the results trajectory and the time-breakdown
    trace all come from the same run.
    """

    def _run(name: str, fn, *, text=None):
        obs.reset()
        with obs.enabled(), obs.span(f"bench.{name}"):
            results = benchmark.pedantic(fn, rounds=1, iterations=1)
        if text is not None:
            record_table(name, text(results))
        record_json(name, results)
        path = obs.export.write_obs_json(results_dir / f"OBS_{name}.json", name)
        print(f"[written to {path}]")
        return results

    return _run


def pytest_sessionfinish(session, exitstatus):
    """Export pytest-benchmark microbench stats as BENCH_kernels.json.

    The kernel benches have no results dict of their own — their product
    *is* the timing — so the trajectory file is assembled from the
    benchmark session's stats after the run.
    """
    policy_payload = getattr(session.config, "_kernel_policy_bench", None)
    bench_session = getattr(session.config, "_benchmarksession", None)
    rows = []
    for bench in getattr(bench_session, "benchmarks", None) or []:
        if "bench_kernels" not in getattr(bench, "fullname", ""):
            continue  # table-style runners write their own BENCH_*.json
        stats = getattr(bench, "stats", None)
        if stats is None or getattr(bench, "has_error", False):
            continue
        try:
            rows.append(
                {
                    "name": bench.fullname,
                    "mean_s": stats.mean,
                    "stddev_s": stats.stddev,
                    "min_s": stats.min,
                    "rounds": stats.rounds,
                }
            )
        except (AttributeError, TypeError):
            continue
    if rows or policy_payload:
        RESULTS_DIR.mkdir(exist_ok=True)
        write_bench_json(
            RESULTS_DIR / "BENCH_kernels.json",
            "kernels",
            {"microbench": rows, "dtype_policy": policy_payload},
        )
