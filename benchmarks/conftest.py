"""Shared benchmark fixtures.

Experiment benchmarks run their workload once (``benchmark.pedantic`` with
a single round — these regenerate paper tables, they are not microbenches)
and write the paper-style table to ``benchmarks/results/`` as well as
stdout.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Write a rendered experiment table to results/<name>.txt and stdout."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record
