"""Shared benchmark fixtures.

Experiment benchmarks run their workload once (``benchmark.pedantic`` with
a single round — these regenerate paper tables, they are not microbenches)
through the :func:`paper_bench` fixture. All per-runner output flows
through one :class:`repro.obs.record.BenchReporter`, which owns the
naming convention for the three sibling artifacts of a run:

* the paper-style table → ``benchmarks/results/<name>.txt`` + stdout;
* the raw results dict plus the normalized
  :class:`~repro.obs.record.BenchRecord` (environment fingerprint + raw
  samples) → ``BENCH_<name>.json`` (the cross-PR benchmark trajectory
  that ``bench-record`` / ``bench-gate`` consume);
* the :mod:`repro.obs` trace of the same run → ``OBS_<name>.json``
  (per-phase span aggregates + counters — where the workload's time
  went, not just how long it took).

The pure microbenches in ``bench_kernels.py`` get their stats (raw
rounds included) exported to ``BENCH_kernels.json`` by a session-finish
hook, through the same writer.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import obs
from repro.obs.record import BenchRecord, BenchReporter

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def reporter(results_dir) -> BenchReporter:
    """The one artifact writer every bench fixture goes through."""
    return BenchReporter(results_dir)


@pytest.fixture
def record_table(reporter):
    """Write a rendered experiment table to results/<name>.txt and stdout."""

    def _record(name: str, text: str) -> None:
        path = reporter.write_table(name, text)
        print(f"\n{text}\n[written to {path}]")

    return _record


@pytest.fixture
def record_json(reporter):
    """Write a runner's results + bench record to results/BENCH_<name>.json."""

    def _record(name: str, results) -> None:
        samples = _result_samples(results)
        record = None
        if samples:
            # Build the record explicitly so throughput-style series keep
            # their higher-is-better direction (the default samples= path
            # records everything as lower-is-better seconds).
            record = BenchRecord.from_registry(name)
            for metric, values in samples.items():
                throughput = "throughput" in metric or "per_sec" in metric
                record.add_samples(
                    metric,
                    values,
                    unit="1/s" if throughput else "s",
                    direction="higher" if throughput else "lower",
                )
        path = reporter.write_results(name, results, record=record)
        print(f"[written to {path}]")

    return _record


def _result_samples(results) -> dict[str, list[float]] | None:
    """Raw sample series a runner already computed.

    Two runner conventions feed this: the serving bench's
    ``latency_samples`` (config → per-request latencies) and the generic
    ``samples`` dict (metric name → values) the sampler-throughput bench
    emits.
    """
    if not isinstance(results, dict):
        return None
    series: dict[str, list[float]] = {}
    latency = results.get("latency_samples")
    if isinstance(latency, dict):
        series.update(
            {f"latency_s.{config}": list(v) for config, v in latency.items()}
        )
    generic = results.get("samples")
    if isinstance(generic, dict):
        series.update({str(k): list(v) for k, v in generic.items()})
    return series or None


@pytest.fixture
def paper_bench(benchmark, record_table, record_json, reporter):
    """Run one paper-regeneration workload; emit table + BENCH + OBS json.

    Replaces the per-runner timing boilerplate: the workload executes
    once (``benchmark.pedantic``) inside an enabled ``bench.<name>`` obs
    span, then the fixture writes ``<name>.txt`` (when ``text`` renders a
    table), ``BENCH_<name>.json`` and ``OBS_<name>.json`` — so the
    human-readable table, the results trajectory (with its environment
    fingerprint and any raw samples the obs registry collected) and the
    time-breakdown trace all come from the same run.
    """

    def _run(name: str, fn, *, text=None):
        obs.reset()
        with obs.enabled(), obs.span(f"bench.{name}"):
            results = benchmark.pedantic(fn, rounds=1, iterations=1)
        if text is not None:
            record_table(name, text(results))
        record_json(name, results)
        path = reporter.write_obs(name)
        print(f"[written to {path}]")
        return results

    return _run


def pytest_sessionfinish(session, exitstatus):
    """Export pytest-benchmark microbench stats as BENCH_kernels.json.

    The kernel benches have no results dict of their own — their product
    *is* the timing — so the trajectory file is assembled from the
    benchmark session's stats after the run; the raw per-round samples
    go into the bench record so the gate has distributions to test.
    """
    policy_payload = getattr(session.config, "_kernel_policy_bench", None)
    autotune_payload = getattr(session.config, "_kernel_autotune_bench", None)
    bench_session = getattr(session.config, "_benchmarksession", None)
    rows = []
    samples: dict[str, list[float]] = {}
    for bench in getattr(bench_session, "benchmarks", None) or []:
        if "bench_kernels" not in getattr(bench, "fullname", ""):
            continue  # table-style runners write their own BENCH_*.json
        stats = getattr(bench, "stats", None)
        if stats is None or getattr(bench, "has_error", False):
            continue
        try:
            rows.append(
                {
                    "name": bench.fullname,
                    "mean_s": stats.mean,
                    "stddev_s": stats.stddev,
                    "min_s": stats.min,
                    "rounds": stats.rounds,
                }
            )
            raw = [float(v) for v in getattr(stats, "data", [])]
            if raw:
                samples[f"{bench.name}_s"] = raw
        except (AttributeError, TypeError):
            continue
    if autotune_payload:
        # Per-repeat fast/auto wall series from the plan-dispatch bench:
        # all seconds, lower-is-better, same as the microbench rounds.
        for metric, values in (autotune_payload.get("samples") or {}).items():
            samples[metric] = [float(v) for v in values]
    if rows or policy_payload or autotune_payload:
        BenchReporter(RESULTS_DIR).write_results(
            "kernels",
            {
                "microbench": rows,
                "dtype_policy": policy_payload,
                "plan_dispatch": {
                    k: v
                    for k, v in (autotune_payload or {}).items()
                    if k != "samples"
                }
                or None,
            },
            samples=samples or None,
        )
