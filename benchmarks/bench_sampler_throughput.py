"""Benchmark — sampler-engine throughput (fast vs reference Dashboard).

Real wall-clock microbenchmark of the vectorized ``fast`` engine against
the scalar ``reference`` oracle on the Reddit-profile workload (the graph
family behind the paper's Fig. 4 sampling discussion). The acceptance
bar: the fast engine clears ``DEFAULT_MIN_SPEEDUP`` (3x) median-over-
median, asserted on the emitted payload so the BENCH json records the
verdict alongside the raw per-repeat wall-time series the bench-gate
tests run on.
"""

from __future__ import annotations

from repro.experiments import samplerbench


def test_sampler_throughput(paper_bench):
    results = paper_bench(
        "sampler_throughput",
        lambda: samplerbench.run(repeats=12, seed=0),
        text=samplerbench.format_results,
    )

    by_engine = {row["engine"]: row for row in results["rows"]}
    assert set(by_engine) == {"fast", "reference"}
    for row in by_engine.values():
        assert row["median_ms"] > 0
        # Dashboard probing stays efficient on both engines (eta bounds
        # the invalid fraction; the batched engine only adds the within-
        # round duplicate-miss overhead).
        assert 1.0 <= row["probes_per_pop"] <= 6.0

    # The headline claim, recorded in the payload for the history file.
    assert results["speedup"] >= samplerbench.DEFAULT_MIN_SPEEDUP
    assert results["meets_target"] is True

    samples = results["samples"]
    assert len(samples["sample_wall_s.fast"]) == results["repeats"]
    assert len(samples["sample_wall_s.reference"]) == results["repeats"]
    assert len(samples["throughput.fast"]) == results["repeats"]
