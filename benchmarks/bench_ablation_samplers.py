"""Benchmark X4 — sampler comparison (the paper's future-work section).

Frontier sampling vs simpler samplers, measured on connectivity
preservation (degree-distribution distance, clustering gap, connected
fraction) and downstream GCN validation F1 with the same training budget.
"""

from __future__ import annotations

from repro.experiments import ablations
from repro.experiments.common import format_table


def test_ablation_sampler_comparison(paper_bench):
    results = paper_bench(
        "ablation_samplers",
        lambda: ablations.run_sampler_comparison(dataset="ppi", epochs=12, seed=0),
        text=lambda r: format_table(
            r["rows"], title="X4: sampler comparison (PPI profile)"
        ),
    )
    rows = {r["sampler"]: r for r in results["rows"]}
    # The paper motivates frontier sampling by connectivity preservation,
    # and explicitly leaves "impact on accuracy of various sampling
    # algorithms" to future work — so the accuracy assertion is
    # competitiveness, not dominance.
    best_f1 = max(r["val_f1_micro"] for r in rows.values())
    assert rows["frontier"]["val_f1_micro"] >= best_f1 - 0.15
    # Connectivity: frontier subgraphs are denser and at least as
    # connected as uniform node samples of the same budget.
    assert (
        rows["frontier"]["subgraph_avg_degree"]
        > rows["random_node"]["subgraph_avg_degree"]
    )
    assert (
        rows["frontier"]["largest_cc_frac"]
        >= rows["random_node"]["largest_cc_frac"]
    )
