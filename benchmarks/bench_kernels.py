"""Benchmark K1 — raw kernel throughput (real wall-clock microbenches).

Unlike the experiment benches (single-round paper regenerations), these
are proper pytest-benchmark microbenchmarks of the hot kernels: sparse
aggregation, induced-subgraph extraction, Dashboard sampling, one full
GCN training iteration, and the GraphSAGE support sampler.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.datasets import make_dataset
from repro.kernels import accounting
from repro.kernels import ops as kernel_ops
from repro.nn.loss import make_loss
from repro.nn.network import GCN
from repro.propagation.feature_prop import PartitionedPropagator
from repro.propagation.spmm import MeanAggregator, spmm_sum_numpy, spmm_sum_scipy
from repro.parallel.machine import xeon_40core
from repro.sampling.dashboard import DashboardFrontierSampler
from repro.sampling.frontier import FrontierSampler
from repro.baselines.graphsage import sample_supports
from repro.train.config import TrainConfig
from repro.train.trainer import GraphSamplingTrainer


@pytest.fixture(scope="module")
def dataset():
    return make_dataset("reddit", scale=0.01, seed=0)


@pytest.fixture(scope="module")
def features(dataset):
    rng = np.random.default_rng(0)
    return rng.standard_normal((dataset.graph.num_vertices, 256))


class TestGemmKernels:
    """Dense throughput of the two dtype-policy paths."""

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_gemm(self, benchmark, dtype):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((2000, 256)).astype(dtype)
        b = rng.standard_normal((256, 256)).astype(dtype)
        out = np.empty((2000, 256), dtype=dtype)
        benchmark(kernel_ops.gemm, a, b, out=out)

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_spmm(self, benchmark, dataset, dtype):
        x = (
            np.random.default_rng(0)
            .standard_normal((dataset.graph.num_vertices, 128))
            .astype(dtype)
        )
        benchmark(kernel_ops.spmm, dataset.graph, x)


class TestSpmmKernels:
    def test_spmm_scipy(self, benchmark, dataset, features):
        benchmark(spmm_sum_scipy, dataset.graph, features)

    def test_spmm_numpy(self, benchmark, dataset, features):
        benchmark(spmm_sum_numpy, dataset.graph, features)

    def test_mean_aggregator_forward(self, benchmark, dataset, features):
        agg = MeanAggregator(dataset.graph)
        benchmark(agg.forward, features)

    def test_partitioned_propagator_forward(self, benchmark, dataset, features):
        prop = PartitionedPropagator(dataset.graph, xeon_40core(), cores=40)
        benchmark(prop.forward, features)


class TestGraphKernels:
    def test_induced_subgraph(self, benchmark, dataset):
        rng = np.random.default_rng(1)
        keep = rng.choice(dataset.graph.num_vertices, size=400, replace=False)
        benchmark(dataset.graph.induced_subgraph, keep)


class TestSamplers:
    def test_frontier_reference(self, benchmark, dataset):
        s = FrontierSampler(dataset.graph, frontier_size=100, budget=500)
        rng = np.random.default_rng(2)
        benchmark(s.sample, rng)

    def test_dashboard_sampler(self, benchmark, dataset):
        s = DashboardFrontierSampler(
            dataset.graph, frontier_size=100, budget=500, eta=2.0
        )
        rng = np.random.default_rng(2)
        benchmark(s.sample, rng)

    def test_graphsage_support_sampling(self, benchmark, dataset):
        rng = np.random.default_rng(3)
        batch = rng.choice(dataset.graph.num_vertices, size=128, replace=False)
        benchmark(sample_supports, dataset.graph, batch, (10, 10), rng)


class TestTrainingIteration:
    def test_gs_gcn_forward_backward(self, benchmark, dataset):
        """One complete-GCN forward+backward on a sampled subgraph."""
        rng = np.random.default_rng(4)
        sampler = DashboardFrontierSampler(
            dataset.graph, frontier_size=100, budget=500
        )
        sub = sampler.sample(rng)
        agg = MeanAggregator(sub.graph)
        feats = dataset.features[sub.vertex_map]
        labels = dataset.labels[sub.vertex_map]
        model = GCN(dataset.attribute_dim, [128, 128], dataset.num_classes, seed=0)
        loss = make_loss(dataset.task)

        def step():
            model.zero_grad()
            logits = model.forward(feats, agg, train=True)
            value = loss.forward(logits, labels)
            model.backward(loss.backward(logits, labels))
            return value

        benchmark(step)


class TestPlanDispatch:
    """Acceptance for the plan-based autotuned dispatch tentpole.

    Autotuned (``"auto"``) dispatch must beat the static ``"fast"``
    policy by at least 1.1x on one of the benched shape classes (the
    serving index's tall-skinny transient GEMM is the expected winner:
    its arena plan skips a >32 MiB allocation per call). Tuning happens
    in the warmup, outside the timed repeats. The payload (rows plus the
    per-repeat wall series for both modes) is stashed on the pytest
    config so the session-finish hook merges it into
    ``BENCH_kernels.json``.
    """

    def test_autotuned_vs_static_dispatch(self, request):
        from repro.experiments import kernelbench

        results = kernelbench.run(repeats=7, seed=0)
        request.config._kernel_autotune_bench = results
        print("\n" + kernelbench.format_results(results))
        assert results["tuned_classes"] >= len(kernelbench.BENCH_SHAPES)
        assert results["tuning_microbenchmarks"] > 0
        assert results["meets_target"], (
            f"autotuned dispatch max speedup {results['max_speedup']:.2f}x "
            f"below the {results['min_speedup_target']:.2f}x acceptance "
            f"floor (per-class: {results['speedups']})"
        )


class TestDtypePolicyComparison:
    """The acceptance numbers for the dtype-policy tentpole.

    Trains the same fixed-seed model under the float64 reference policy
    (no workspace — the seed-era allocation pattern) and the float32 fast
    policy (workspace arena), then asserts the two promises the fast path
    makes: validation F1 within 0.01 of the reference, and the
    weight-application (GEMM) phase at least 1.25x faster. The measured
    payload is stashed on the pytest config so the session-finish hook
    merges it into ``BENCH_kernels.json``.
    """

    def _run_policy(self, dataset, policy: str) -> dict:
        config = TrainConfig(
            hidden_dims=(128, 128),
            frontier_size=100,
            budget=500,
            epochs=6,
            eval_every=6,
            seed=0,
            dtype_policy=policy,
        )
        trainer = GraphSamplingTrainer(dataset, config)
        with accounting.capture() as costs:
            result = trainer.train()
        iterations = max(result.iterations, 1)
        ws = trainer.workspace
        row = {
            "policy": policy,
            "final_val_f1": result.final_val_f1,
            "iterations": result.iterations,
            "gemm_seconds": costs.gemm_seconds,
            "spmm_seconds": costs.spmm_seconds,
            "gemm_flops": costs.gemm_flops,
            # Allocation behavior: without a workspace every kernel call
            # allocates its result; with one, only workspace misses do.
            "allocs_per_iteration": (
                ws.misses / iterations
                if ws is not None
                else (costs.gemm_calls + costs.spmm_calls) / iterations
            ),
            "workspace": ws.stats() if ws is not None else None,
        }
        return row

    def test_reference_vs_fast_policy(self, request, dataset):
        reference = self._run_policy(dataset, "reference")
        fast = self._run_policy(dataset, "fast")
        f1_gap = abs(reference["final_val_f1"] - fast["final_val_f1"])
        speedup = reference["gemm_seconds"] / fast["gemm_seconds"]
        payload = {
            "reference": reference,
            "fast": fast,
            "f1_gap": f1_gap,
            "weight_application_speedup": speedup,
        }
        request.config._kernel_policy_bench = payload
        print(
            f"\n[policy] f1 ref={reference['final_val_f1']:.4f} "
            f"fast={fast['final_val_f1']:.4f} (gap {f1_gap:.4f}); "
            f"gemm {reference['gemm_seconds']:.3f}s -> "
            f"{fast['gemm_seconds']:.3f}s ({speedup:.2f}x); "
            f"allocs/iter {reference['allocs_per_iteration']:.1f} -> "
            f"{fast['allocs_per_iteration']:.1f}"
        )
        assert f1_gap <= 0.01
        assert speedup >= 1.25
