"""Benchmark K1 — raw kernel throughput (real wall-clock microbenches).

Unlike the experiment benches (single-round paper regenerations), these
are proper pytest-benchmark microbenchmarks of the hot kernels: sparse
aggregation, induced-subgraph extraction, Dashboard sampling, one full
GCN training iteration, and the GraphSAGE support sampler.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.datasets import make_dataset
from repro.nn.loss import make_loss
from repro.nn.network import GCN
from repro.propagation.feature_prop import PartitionedPropagator
from repro.propagation.spmm import MeanAggregator, spmm_sum_numpy, spmm_sum_scipy
from repro.parallel.machine import xeon_40core
from repro.sampling.dashboard import DashboardFrontierSampler
from repro.sampling.frontier import FrontierSampler
from repro.baselines.graphsage import sample_supports


@pytest.fixture(scope="module")
def dataset():
    return make_dataset("reddit", scale=0.01, seed=0)


@pytest.fixture(scope="module")
def features(dataset):
    rng = np.random.default_rng(0)
    return rng.standard_normal((dataset.graph.num_vertices, 256))


class TestSpmmKernels:
    def test_spmm_scipy(self, benchmark, dataset, features):
        benchmark(spmm_sum_scipy, dataset.graph, features)

    def test_spmm_numpy(self, benchmark, dataset, features):
        benchmark(spmm_sum_numpy, dataset.graph, features)

    def test_mean_aggregator_forward(self, benchmark, dataset, features):
        agg = MeanAggregator(dataset.graph)
        benchmark(agg.forward, features)

    def test_partitioned_propagator_forward(self, benchmark, dataset, features):
        prop = PartitionedPropagator(dataset.graph, xeon_40core(), cores=40)
        benchmark(prop.forward, features)


class TestGraphKernels:
    def test_induced_subgraph(self, benchmark, dataset):
        rng = np.random.default_rng(1)
        keep = rng.choice(dataset.graph.num_vertices, size=400, replace=False)
        benchmark(dataset.graph.induced_subgraph, keep)


class TestSamplers:
    def test_frontier_reference(self, benchmark, dataset):
        s = FrontierSampler(dataset.graph, frontier_size=100, budget=500)
        rng = np.random.default_rng(2)
        benchmark(s.sample, rng)

    def test_dashboard_sampler(self, benchmark, dataset):
        s = DashboardFrontierSampler(
            dataset.graph, frontier_size=100, budget=500, eta=2.0
        )
        rng = np.random.default_rng(2)
        benchmark(s.sample, rng)

    def test_graphsage_support_sampling(self, benchmark, dataset):
        rng = np.random.default_rng(3)
        batch = rng.choice(dataset.graph.num_vertices, size=128, replace=False)
        benchmark(sample_supports, dataset.graph, batch, (10, 10), rng)


class TestTrainingIteration:
    def test_gs_gcn_forward_backward(self, benchmark, dataset):
        """One complete-GCN forward+backward on a sampled subgraph."""
        rng = np.random.default_rng(4)
        sampler = DashboardFrontierSampler(
            dataset.graph, frontier_size=100, budget=500
        )
        sub = sampler.sample(rng)
        agg = MeanAggregator(sub.graph)
        feats = dataset.features[sub.vertex_map]
        labels = dataset.labels[sub.vertex_map]
        model = GCN(dataset.attribute_dim, [128, 128], dataset.num_classes, seed=0)
        loss = make_loss(dataset.task)

        def step():
            model.zero_grad()
            logits = model.forward(feats, agg, train=True)
            value = loss.forward(logits, labels)
            model.backward(loss.backward(logits, labels))
            return value

        benchmark(step)
