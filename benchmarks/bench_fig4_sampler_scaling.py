"""Benchmark F4 — regenerate Figure 4 (frontier-sampler scaling).

Panel A: sampling speedup vs p_inter with AVX (paper: near-linear to 20
cores, NUMA knee to ~13-15x at 40). Panel B: AVX gain per p_inter (paper:
~4x average, data-dependent through lane under-utilization on low-degree
vertices).
"""

from __future__ import annotations

from repro.experiments import fig4


def test_fig4_sampler_scaling(paper_bench):
    results = paper_bench(
        "fig4_sampler_scaling",
        lambda: fig4.run(num_subgraphs=16, seed=0),
        text=fig4.format_results,
    )

    by_dataset: dict[str, dict[int, float]] = {}
    for row in results["panel_a"]:
        by_dataset.setdefault(row["dataset"], {})[row["p_inter"]] = row[
            "sampling_speedup"
        ]
    for name, curve in by_dataset.items():
        assert curve[40] > curve[20] > curve[5], name
        assert 10.0 <= curve[40] <= 22.0, name  # paper ~13-15x
        # NUMA knee: marginal efficiency drops crossing the socket.
        assert (curve[40] - curve[20]) / 20 < (curve[20] - curve[5]) / 15, name
    for row in results["panel_b"]:
        assert 3.0 <= row["avx_speedup"] <= 8.5
