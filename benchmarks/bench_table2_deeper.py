"""Benchmark T2 — regenerate Table II (deeper GCNs vs parallelized
GraphSAGE on the Reddit profile).

Paper shape: the speedup of the proposed method over TF GraphSAGE grows
with both depth (neighbor explosion: orders of magnitude by 3 layers) and
core count (the baseline's communication-bound scaling saturates early).
Absolute values depend on the calibrated TF-overhead constant; see
EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments import table2


def test_table2_deeper_gcn_speedups(paper_bench):
    results = paper_bench(
        "table2_deeper_gcn",
        lambda: table2.run(hidden=128, iterations=3, seed=0),
        text=table2.format_results,
    )
    rows = {r["layers"]: r for r in results["rows"]}
    # Monotone in depth at every core count.
    for cores in ("1-core", "5-core", "10-core", "20-core", "40-core"):
        assert rows[1][cores] < rows[2][cores] < rows[3][cores]
    # Monotone in cores at every depth.
    for r in results["rows"]:
        assert r["1-core"] < r["40-core"]
    # Orders-of-magnitude blow-up by 3 layers.
    assert rows[3]["40-core"] > 20 * rows[1]["1-core"]
