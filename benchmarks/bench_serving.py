"""Benchmark S1 — embedding serving under a Zipf-skewed query trace.

Replays the same saturating request stream (skew mirroring the Amazon
profile's degree distribution) through four server configurations and
records the paper-style table plus the BENCH_serving.json trajectory
file.

Shapes to hold: micro-batching alone beats per-request brute force;
adding the LRU cache and the cluster-pruned ANN index compounds to at
least 5x the naive throughput while keeping recall@10 >= 0.9; shed and
degradation counters are reported for every configuration.
"""

from __future__ import annotations

from repro.experiments import serving


def test_serving_configurations(paper_bench):
    results = paper_bench(
        "serving",
        lambda: serving.run(num_queries=3000, seed=0),
        text=serving.format_results,
    )

    rows = {r["config"]: r for r in results["rows"]}
    assert set(rows) == set(serving.CONFIG_NAMES)
    naive = rows["naive"]
    full = rows["batched+cache+ann"]
    # The acceptance bar: the full serving stack sustains >= 5x the naive
    # per-request brute-force throughput at recall@10 >= 0.9.
    assert full["throughput_qps"] >= 5.0 * naive["throughput_qps"]
    assert full["recall_at_k"] >= 0.9
    # Exact configurations must not lose recall at all.
    assert naive["recall_at_k"] == 1.0
    assert rows["batched"]["recall_at_k"] == 1.0
    # Each added mechanism helps throughput on a saturating Zipf trace.
    assert rows["batched"]["throughput_qps"] > naive["throughput_qps"]
    assert (
        rows["batched+cache"]["throughput_qps"]
        > rows["batched"]["throughput_qps"]
    )
    # The latency/overload columns are populated for every configuration.
    for r in results["rows"]:
        assert r["p50_ms"] <= r["p95_ms"] <= r["p99_ms"]
        assert r["served"] + r["shed"] == len(
            range(results["meta"]["num_queries"])
        )
        assert r["hit_rate"] >= 0.0 and "shed" in r
    # The skewed trace makes the cache earn its keep.
    assert rows["batched+cache"]["hit_rate"] > 0.3
