"""Benchmark S2 — sharded, replicated cluster serving (the PR-6 tentpole).

Runs the three-phase cluster experiment at paper scale — the
million-vertex Zipf trace, the bursty hedging comparison against a
deterministic straggler replica, and the streaming-upsert soak under
the cluster SLO rules — and records the table plus the
BENCH_serve_cluster.json trajectory file.

Shapes to hold: 4 shards x 2 replicas sustain >= 2x the batched
single-server throughput at recall@10 >= 0.9 (centroid routing at
fanout 2 of 4); hedged requests lower p99 on the bursty trace; the
streaming upserts land on every shard while queries are in flight and
keep both cluster SLOs (worst per-shard p99, staleness bound) green.
"""

from __future__ import annotations

from repro.experiments import serving


def test_cluster_serving(paper_bench):
    results = paper_bench(
        "serve_cluster",
        lambda: serving.run_cluster(
            num_queries=2000, num_vertices=1_000_000, seed=0
        ),
        text=serving.format_cluster_results,
    )

    meta = results["meta"]
    rows = {(r["phase"], r["config"]): r for r in results["rows"]}
    assert set(r["phase"] for r in results["rows"]) == set(
        serving.CLUSTER_PHASES
    )

    # Acceptance bar 1: the 4x2 cluster sustains >= 2x the batched
    # single server's throughput on the million-vertex Zipf trace while
    # fanout-2 centroid routing keeps recall@10 >= 0.9 against the
    # single server's exact answers.
    assert meta["num_shards"] >= 4 and meta["replicas"] >= 2
    assert meta["speedup_vs_single"] >= 2.0
    assert meta["recall_at_k_cluster"] >= 0.9

    # Acceptance bar 2: hedged requests measurably lower p99 against
    # the deterministic straggler replica on the bursty trace.
    assert meta["p99_ms_hedge"] < meta["p99_ms_nohedge"]
    assert meta["hedges"] > 0 and meta["hedge_wins"] > 0

    # Acceptance bar 3: streaming upserts refreshed every shard while
    # queries were in flight, and both cluster SLOs stayed green.
    assert meta["upserts_applied"] == 3 * meta["num_shards"]
    assert meta["max_staleness_s"] <= meta["staleness_bound_s"]
    assert meta["slo_ok"], results["slo"]
    assert {r["rule"] for r in results["slo"]} == {
        "cluster-per-shard-p99",
        "cluster-staleness-bound",
    }

    # Request conservation and sane latency ordering in every phase.
    for r in results["rows"]:
        assert r["served"] + r["shed"] > 0
        assert r["p50_ms"] <= r["p95_ms"] <= r["p99_ms"]
    cluster_row = rows[("zipf-throughput", f"cluster-{meta['num_shards']}x{meta['replicas']}")]
    assert cluster_row["mean_fanout"] <= meta["fanout"]
