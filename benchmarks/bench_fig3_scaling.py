"""Benchmark F3 — regenerate Figure 3 (training-phase scaling, breakdown).

One metered training run per (dataset, hidden dim in {512, 1024}) is
re-priced at 1-40 simulated cores. Paper shapes: overall iteration speedup
~20x at 40 cores, feature propagation ~25x, weight application ~16x
(MKL-bound), sampling a small fraction of the breakdown throughout.
"""

from __future__ import annotations

from repro.experiments import fig3


def test_fig3_scaling_hidden_512(paper_bench):
    results = paper_bench(
        "fig3_scaling_h512",
        lambda: fig3.run(hidden_dims=(512,), iterations=4, seed=0),
        text=fig3.format_results,
    )
    for row in results["rows"]:
        if row["cores"] == 40:
            assert 10.0 <= row["iteration_speedup"] <= 30.0
            assert 13.0 <= row["weight_speedup"] <= 20.0
            assert 20.0 <= row["featprop_speedup"] <= 30.0


def test_fig3_scaling_hidden_1024(paper_bench):
    results = paper_bench(
        "fig3_scaling_h1024",
        lambda: fig3.run(hidden_dims=(1024,), iterations=3, seed=0),
        text=fig3.format_results,
    )
    # Larger hidden dim: weight application dominates even more, and the
    # speedup curves keep the same shape.
    for row in results["rows"]:
        if row["cores"] == 40:
            assert row["frac_weight"] >= 0.5
