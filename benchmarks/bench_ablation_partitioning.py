"""Benchmark X1 — Theorem 2 in practice (partitioning ablation).

Compares the paper's feature-only plan against the brute-force optimum
with an ideal partitioner and a realistic random partitioner. Within the
theorem's preconditions the modeled communication ratio is <= 2.
"""

from __future__ import annotations

from repro.experiments import ablations
from repro.experiments.common import format_table


def test_ablation_partitioning_2approx(paper_bench):
    results = paper_bench(
        "ablation_partitioning",
        lambda: ablations.run_partitioning(seed=0),
        text=lambda r: format_table(
            r["rows"], title="X1: feature-only partitioning vs optimum"
        ),
    )
    for row in results["rows"]:
        if row["thm2_conditions"]:
            assert row["ratio_vs_ideal"] <= 2.0 + 1e-9
        # A random partitioner never beats the paper's plan here: gamma_P
        # stays so close to 1 that graph partitioning buys nothing.
        assert row["gcomm_random_MB"] >= row["gcomm_ours_MB"] * 0.999


def test_ablation_partitioner_gamma(paper_bench):
    """Measured gamma_P of real partitioners on a sampled subgraph: all
    stay far above the 1/P ideal, the premise of Theorem 2."""
    from repro.experiments.ablations import run_partitioner_gamma

    results = paper_bench(
        "ablation_partitioner_gamma",
        lambda: run_partitioner_gamma(seed=0),
        text=lambda r: format_table(
            r["rows"], title="X1b: measured gamma_P on a sampled subgraph"
        ),
    )
    for row in results["rows"]:
        for key in ("gamma_random", "gamma_bfs", "gamma_greedy"):
            # Far above the 1/P ideal (for P=2 "far" saturates near 1.0,
            # so assert a margin that scales with the available headroom).
            lb = row["gamma_lower_bound"]
            assert row[key] >= lb + 0.3 * (1.0 - lb)
