"""Benchmarks X6/X7 — the paper's deferred questions, answered.

X6: depth vs accuracy (Section VI-D leaves deeper-GCN accuracy to future
work; the harness makes depth cheap so we measure it). X7: Section III-B's
claim that subgraph budgets need not grow with the training graph.
"""

from __future__ import annotations

from repro.experiments import extensions
from repro.experiments.common import format_table


def test_extension_depth_accuracy(paper_bench):
    results = paper_bench(
        "extension_depth_accuracy",
        lambda: extensions.run_depth_accuracy(seed=0),
        text=lambda r: format_table(
            r["rows"], title="X6: depth vs accuracy (Reddit profile)"
        ),
    )
    rows = {r["layers"]: r for r in results["rows"]}
    # Cost grows ~linearly with depth (the graph-sampling property that
    # makes this experiment affordable at all).
    assert rows[4]["gemm_flops_per_iter"] < 3.0 * rows[1]["gemm_flops_per_iter"]
    # Every depth trains to a usable model.
    for r in results["rows"]:
        assert r["val_f1_micro"] > 0.5


def test_extension_budget_scaling(paper_bench):
    results = paper_bench(
        "extension_budget_scaling",
        lambda: extensions.run_budget_scaling(seed=0),
        text=lambda r: format_table(
            r["rows"], title="X7: fixed sampler budget, growing graph"
        ),
    )
    rows = results["rows"]
    f1s = [r["val_f1_micro"] for r in rows]
    # Section III-B's claim: accuracy holds while the budget fraction
    # shrinks 4x.
    assert min(f1s) >= max(f1s) - 0.06
    assert rows[-1]["budget_fraction"] < 0.3 * rows[0]["budget_fraction"]
