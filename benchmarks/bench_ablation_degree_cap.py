"""Benchmark X3 — degree cap on skewed graphs (Amazon profile).

The paper caps a vertex's DB entries at 30 on Amazon "to prevent the
situation where all subgraphs contain mostly the same set of vertices".
This ablation measures subgraph overlap, hub inclusion and coverage with
and without the cap.
"""

from __future__ import annotations

from repro.experiments import ablations
from repro.experiments.common import format_table


def test_ablation_degree_cap(paper_bench):
    results = paper_bench(
        "ablation_degree_cap",
        lambda: ablations.run_degree_cap(num_subgraphs=8, seed=0),
        text=lambda r: format_table(
            r["rows"], title="X3: degree cap on the Amazon profile"
        ),
    )
    uncapped, capped = results["rows"]
    assert uncapped["cap"] == "none" and capped["cap"] == 30
    # The cap must not *hurt* diversity: overlap no higher, coverage no
    # lower (strict improvement depends on the realized skew at this
    # scale; both quantities are reported in the table).
    assert capped["mean_pairwise_jaccard"] <= uncapped["mean_pairwise_jaccard"] + 0.02
    assert capped["vertex_coverage"] >= uncapped["vertex_coverage"] - 0.02
