"""Shim for legacy editable installs (`pip install -e .` without `wheel`).

The environment has setuptools but no `wheel` package, so PEP-660 editable
installs fail with `invalid command 'bdist_wheel'`; this file lets pip fall
back to the classic `setup.py develop` path. All real metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
