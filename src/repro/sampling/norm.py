"""GraphSAINT normalization: inclusion probabilities → variance weights.

The follow-up paper ("Accurate, Efficient and Scalable Training of Graph
Neural Networks", PAPERS.md) trains on sampled subgraphs with two
bias-correction coefficient families, both derived from the sampler's
inclusion probabilities:

* **Loss normalization** — the full-graph objective is
  ``L = (1/n) * sum_v L_v``; a subgraph minibatch estimates it by
  ``sum_{v in G_s} lambda_v L_v`` with ``lambda_v = 1 / (n * p_v)``
  where ``p_v = P(v in G_s)``. Taking expectations,
  ``E[sum_{v in G_s} lambda_v L_v] = L`` — the estimator is unbiased for
  *any* sampler, and the expected total batch weight is exactly 1, so
  gradient magnitudes stay comparable to the plain batch mean.
* **Aggregation normalization** — the edge message ``u -> v`` appears in
  a subgraph with probability ``p_{u,v}``; conditioned on ``v`` being
  present, dividing the message by ``alpha_{u,v} = p_{u,v} / p_v``
  (equivalently multiplying by ``p_v / p_{u,v}``) makes the sampled
  aggregation an unbiased estimator of the full-graph aggregation.

Closed forms exist for the two edge samplers (per-edge draw/keep
probabilities are known exactly); the frontier and random-walk samplers
get *empirical* coefficients the way the follow-up paper's preprocessing
does — count vertex/edge appearances over a pre-sampling pass of ``K``
subgraphs and use the observed frequencies.

Edge-probability conventions: the "undirected" arrays returned by
:func:`edge_sampling_weights` hold one row per undirected edge
(``u <= v`` over the stored CSR edges); :func:`directed_slot_probs`
broadcasts per-undirected-edge values back onto the CSR slot order
(``graph.indices``) so aggregation coefficients line up with SpMM
adjacency traversal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from .base import GraphSampler

__all__ = [
    "NormCoefficients",
    "edge_sampling_weights",
    "directed_slot_probs",
    "independent_edge_coefficients",
    "edge_draw_coefficients",
    "empirical_coefficients",
    "loss_weights_from_probs",
    "aggregation_weights",
]

#: Default cap on the aggregation coefficient ``p_v / p_{u,v}`` — rare
#: edges otherwise receive unboundedly-large messages (the follow-up
#: paper clips the same way).
DEFAULT_AGG_CLIP = 10.0

#: Stream tag mixed into the empirical pre-sampling SeedSequence so its
#: subgraphs are decorrelated from training subgraphs drawn at the same
#: user seed (the prefetcher uses ``SeedSequence(seed, spawn_key=(i,))``;
#: estimating probabilities from the very subgraphs later trained on
#: would bias the correction).
_NORM_STREAM = 0x5A17


@dataclass(frozen=True)
class NormCoefficients:
    """Per-node and per-edge normalization coefficients of one sampler.

    Attributes
    ----------
    node_prob:
        ``float64[n]`` — ``p_v``, the probability vertex ``v`` appears in
        one sampled subgraph (empirical frequency for the empirical
        method).
    loss_weight:
        ``float64[n]`` — ``lambda_v = 1 / (n * p_v)``; multiply each
        subgraph vertex's loss term by its weight and *sum* (no batch
        mean) for an unbiased full-graph loss estimate.
    edge_prob:
        ``float64[m_directed] | None`` — ``p_{u,v}`` per stored CSR edge
        slot (aligned with ``graph.indices``), or None when edges were
        not tracked.
    edge_weight:
        ``float64[m_directed] | None`` — the aggregation coefficient
        ``min(p_v / p_{u,v}, clip)`` per CSR slot, where ``v`` is the
        slot's row owner; None when edges were not tracked.
    method:
        ``"closed_form"`` or ``"empirical"``.
    """

    node_prob: np.ndarray
    loss_weight: np.ndarray
    edge_prob: np.ndarray | None = None
    edge_weight: np.ndarray | None = None
    method: str = "closed_form"

    @property
    def expected_batch_weight(self) -> float:
        """``E[sum of loss weights over one subgraph]`` — 1.0 when exact."""
        return float((self.node_prob * self.loss_weight).sum())


def edge_sampling_weights(
    graph: CSRGraph,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Undirected edge list + GraphSAINT edge weights.

    Returns ``(und_src, und_dst, w)`` where each stored undirected edge
    ``{u, v}`` (``u <= v``, taken from the CSR's directed slots) carries
    the follow-up paper's weight ``w_e = 1/deg(u) + 1/deg(v)`` — the
    probability-proportional weighting that makes the edge samplers'
    minibatch gradient variance small.
    """
    src = graph.edge_sources()
    dst = graph.indices
    mask = src <= dst
    und_src = src[mask].astype(np.int64)
    und_dst = dst[mask].astype(np.int64)
    if und_src.size == 0:
        raise ValueError("graph has no edges to weight")
    deg = graph.degrees.astype(np.float64)
    w = 1.0 / deg[und_src] + 1.0 / deg[und_dst]
    return und_src, und_dst, w


def directed_slot_probs(
    graph: CSRGraph,
    und_src: np.ndarray,
    und_dst: np.ndarray,
    edge_values: np.ndarray,
) -> np.ndarray:
    """Broadcast per-undirected-edge values onto the CSR slot order.

    ``und_src``/``und_dst`` must come from :func:`edge_sampling_weights`
    (``u <= v``, CSR traversal order, hence sorted by the composite key
    ``u * n + v``); the returned array has one value per stored directed
    edge, aligned with ``graph.indices``.
    """
    n = graph.num_vertices
    und_keys = und_src * n + und_dst
    src = graph.edge_sources().astype(np.int64)
    dst = graph.indices.astype(np.int64)
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    idx = np.searchsorted(und_keys, lo * n + hi)
    return np.asarray(edge_values, dtype=np.float64)[idx]


def loss_weights_from_probs(
    node_prob: np.ndarray, *, floor: float | None = None
) -> np.ndarray:
    """``lambda_v = 1 / (n * p_v)`` with safe handling of ``p_v = 0``.

    Vertices the sampler can never (or empirically never did) include get
    the neutral uniform weight ``1/n`` — they contribute to no batch, so
    any finite value preserves unbiasedness. ``floor`` optionally clips
    tiny probabilities from below, bounding the largest weight at
    ``1 / (n * floor)`` (the empirical method uses ``1/K`` resolution, so
    a floor guards against a single lucky appearance exploding a weight).
    """
    p = np.asarray(node_prob, dtype=np.float64)
    if p.ndim != 1 or p.size == 0:
        raise ValueError("node_prob must be a non-empty 1-D array")
    if np.any(p < 0.0) or np.any(p > 1.0 + 1e-12):
        raise ValueError("node_prob values must lie in [0, 1]")
    n = p.size
    eff = p.copy()
    if floor is not None:
        if floor <= 0.0:
            raise ValueError("floor must be positive")
        np.maximum(eff, floor, out=eff)
    lam = np.empty(n, dtype=np.float64)
    seen = eff > 0.0
    lam[seen] = 1.0 / (n * eff[seen])
    lam[~seen] = 1.0 / n
    return lam


def aggregation_weights(
    node_prob: np.ndarray,
    slot_edge_prob: np.ndarray,
    row_owner: np.ndarray,
    *,
    clip: float = DEFAULT_AGG_CLIP,
) -> np.ndarray:
    """Per-CSR-slot aggregation coefficient ``min(p_v / p_{u,v}, clip)``.

    ``row_owner[k]`` is the destination vertex of slot ``k`` (the CSR row
    being aggregated into). Since an edge can only appear when both of
    its endpoints do, ``p_{u,v} <= p_v`` and the raw ratio is >= 1; the
    clip bounds the variance contributed by rarely-sampled edges.
    """
    if clip < 1.0:
        raise ValueError("clip must be >= 1")
    p_v = np.asarray(node_prob, dtype=np.float64)[row_owner]
    p_e = np.asarray(slot_edge_prob, dtype=np.float64)
    out = np.ones_like(p_e)
    ok = p_e > 0.0
    out[ok] = np.minimum(p_v[ok] / p_e[ok], clip)
    out[~ok] = 1.0
    return out


def independent_edge_coefficients(
    graph: CSRGraph, edge_budget: int, *, clip: float = DEFAULT_AGG_CLIP
) -> NormCoefficients:
    """Closed-form coefficients for independent per-edge Bernoulli sampling.

    Each undirected edge is kept independently with
    ``p_e = min(1, edge_budget * w_e / sum(w))``; a vertex appears iff at
    least one incident edge is kept, so
    ``p_v = 1 - prod_{e : v in e} (1 - p_e)`` (self-loops count once).
    """
    if edge_budget <= 0:
        raise ValueError("edge_budget must be positive")
    und_src, und_dst, w = edge_sampling_weights(graph)
    p_e = np.minimum(1.0, edge_budget * w / w.sum())
    with np.errstate(divide="ignore"):
        log_miss = np.log1p(-p_e)  # -inf where p_e == 1 -> p_v == 1
    n = graph.num_vertices
    acc = np.bincount(und_src, weights=log_miss, minlength=n)
    non_loop = und_src != und_dst
    acc += np.bincount(und_dst[non_loop], weights=log_miss[non_loop], minlength=n)
    node_prob = -np.expm1(acc)
    slot_p = directed_slot_probs(graph, und_src, und_dst, p_e)
    return NormCoefficients(
        node_prob=node_prob,
        loss_weight=loss_weights_from_probs(node_prob),
        edge_prob=slot_p,
        edge_weight=aggregation_weights(
            node_prob, slot_p, graph.edge_sources().astype(np.int64), clip=clip
        ),
        method="closed_form",
    )


def edge_draw_coefficients(
    graph: CSRGraph, num_draws: int, *, clip: float = DEFAULT_AGG_CLIP
) -> NormCoefficients:
    """Closed-form coefficients for with-replacement weighted edge draws.

    ``num_draws`` i.i.d. draws from ``q_e = w_e / sum(w)`` give
    ``p_e = 1 - (1 - q_e)^D`` per edge and, since a vertex is missed only
    when every draw avoids all of its incident edges,
    ``p_v = 1 - (1 - Q_v)^D`` with ``Q_v = sum_{e : v in e} q_e``.
    """
    if num_draws <= 0:
        raise ValueError("num_draws must be positive")
    und_src, und_dst, w = edge_sampling_weights(graph)
    q = w / w.sum()
    p_e = -np.expm1(num_draws * np.log1p(-q))
    n = graph.num_vertices
    q_v = np.bincount(und_src, weights=q, minlength=n)
    non_loop = und_src != und_dst
    q_v += np.bincount(und_dst[non_loop], weights=q[non_loop], minlength=n)
    with np.errstate(divide="ignore"):
        node_prob = -np.expm1(num_draws * np.log1p(-np.minimum(q_v, 1.0)))
    slot_p = directed_slot_probs(graph, und_src, und_dst, p_e)
    return NormCoefficients(
        node_prob=node_prob,
        loss_weight=loss_weights_from_probs(node_prob),
        edge_prob=slot_p,
        edge_weight=aggregation_weights(
            node_prob, slot_p, graph.edge_sources().astype(np.int64), clip=clip
        ),
        method="closed_form",
    )


def empirical_coefficients(
    sampler: GraphSampler,
    *,
    num_subgraphs: int = 32,
    seed: int = 0,
    track_edges: bool = False,
    clip: float = DEFAULT_AGG_CLIP,
) -> NormCoefficients:
    """Pre-sampling estimation of the coefficients for any sampler.

    Runs the sampler ``num_subgraphs`` times on its own deterministic
    seed stream (one :class:`numpy.random.SeedSequence` child per
    subgraph, independent of training seeds) and uses appearance
    frequencies as the inclusion probabilities — exactly the follow-up
    paper's preprocessing for samplers without closed forms (frontier,
    random walk). ``track_edges=True`` additionally counts per-CSR-slot
    edge appearances for aggregation coefficients (one sorted-key
    ``searchsorted`` per subgraph).

    The loss weights are floored at one appearance in ``num_subgraphs``
    so resolution-limited estimates cannot explode a single weight.
    """
    if num_subgraphs < 1:
        raise ValueError("num_subgraphs must be >= 1")
    graph = sampler.graph
    n = graph.num_vertices
    node_counts = np.zeros(n, dtype=np.float64)
    edge_counts = (
        np.zeros(graph.num_edges_directed, dtype=np.float64)
        if track_edges
        else None
    )
    if track_edges:
        slot_keys = (
            graph.edge_sources().astype(np.int64) * n
            + graph.indices.astype(np.int64)
        )
    root = np.random.SeedSequence((seed, _NORM_STREAM))
    for child in root.spawn(num_subgraphs):
        sub = sampler.sample(np.random.default_rng(child))
        node_counts[sub.vertex_map] += 1.0
        if edge_counts is not None and sub.graph.num_edges_directed:
            parent_src = sub.vertex_map[sub.graph.edge_sources()].astype(np.int64)
            parent_dst = sub.vertex_map[sub.graph.indices].astype(np.int64)
            slots = np.searchsorted(slot_keys, parent_src * n + parent_dst)
            edge_counts[slots] += 1.0
    node_prob = node_counts / num_subgraphs
    floor = 1.0 / num_subgraphs
    edge_prob = edge_weight = None
    if edge_counts is not None:
        edge_prob = edge_counts / num_subgraphs
        edge_weight = aggregation_weights(
            node_prob,
            edge_prob,
            graph.edge_sources().astype(np.int64),
            clip=clip,
        )
    return NormCoefficients(
        node_prob=node_prob,
        loss_weight=loss_weights_from_probs(node_prob, floor=floor),
        edge_prob=edge_prob,
        edge_weight=edge_weight,
        method="empirical",
    )
