"""Degree-weighted edge sampler (GraphSAINT ``edge_sampling``).

The follow-up paper ("Accurate, Efficient and Scalable Training of Graph
Neural Networks", PAPERS.md) samples a subgraph by drawing ``D``
undirected edges with replacement with probability proportional to
``w_e = 1/deg(u) + 1/deg(v)`` and inducing on the union of drawn
endpoints. The weighting is the paper's variance-minimizing choice: it
up-weights edges whose endpoints have few other chances to be covered,
so low-degree regions are not starved.

The weight distribution is *static* (it depends only on the graph), so
this is exactly the workload where the alias method shines — the
contrast case :mod:`repro.sampling.alias` documents for Section IV-A.
An :class:`~repro.sampling.alias.AliasTable` over the undirected-edge
weights is built once at construction; every subgraph then costs
``D`` O(1) draws.

Execution engines (the PR 5 recipe):

* ``engine="reference"`` — ``D`` scalar ``AliasTable.sample(rng)`` calls,
  one edge at a time. The correctness oracle.
* ``engine="fast"`` (default) — a single batched
  ``AliasTable.sample(rng, D)`` call plus two slab gathers for the
  endpoint arrays.

Both engines draw i.i.d. from the identical alias distribution and meter
identical :class:`~repro.parallel.costmodel.CostCounter` totals: two
``rand_ops`` (uniform column + coin) and two shared table reads
(``prob`` + ``alias``) per draw, two private endpoint-buffer writes per
draw, and the endpoint gathers charged as vector chunks — the cost model
prices the algorithm's structure, not the Python execution strategy.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..obs import is_enabled as obs_enabled
from ..obs import metrics as obs_metrics
from ..obs.trace import span
from ..parallel.costmodel import CostCounter
from .alias import AliasTable
from .base import GraphSampler, SampledSubgraph
from .dashboard import ENGINES
from .norm import edge_sampling_weights

__all__ = ["DegreeWeightedEdgeSampler"]


class DegreeWeightedEdgeSampler(GraphSampler):
    """GraphSAINT-style with-replacement weighted edge sampler.

    Parameters
    ----------
    graph:
        Graph to sample; must contain at least one edge.
    num_draws:
        ``D`` — edges drawn with replacement per subgraph; the vertex
        budget is at most ``2 * D`` before deduplication.
    vector_lanes:
        Lane width used for vector-chunk metering of the endpoint
        gathers.
    engine:
        ``"fast"`` (one batched alias draw, the default) or
        ``"reference"`` (scalar draws).
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        num_draws: int,
        vector_lanes: int = 8,
        engine: str = "fast",
    ) -> None:
        super().__init__(graph)
        if num_draws <= 0:
            raise ValueError("num_draws must be positive")
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self.num_draws = num_draws
        self.vector_lanes = vector_lanes
        self.engine = engine
        self._src, self._dst, self._weights = edge_sampling_weights(graph)
        self._alias = AliasTable(self._weights)

    @property
    def budget(self) -> int:
        """Maximum distinct endpoint visits per subgraph: ``2 * num_draws``."""
        return 2 * self.num_draws

    @property
    def edge_weights(self) -> np.ndarray:
        """The per-undirected-edge weights ``1/deg(u) + 1/deg(v)``."""
        return self._weights

    def sample(self, rng: np.random.Generator) -> SampledSubgraph:
        """Draw ``num_draws`` weighted edges and induce on their endpoints."""
        with span("sampler.edge") as sp:
            return self._sample(rng, sp)

    def _sample(self, rng: np.random.Generator, sp) -> SampledSubgraph:
        d = self.num_draws
        counter = CostCounter()

        if self.engine == "reference":
            picks = np.empty(d, dtype=np.int64)
            for j in range(d):
                picks[j] = self._alias.sample(rng)
        else:
            picks = self._alias.sample(rng, d)

        # Identical metering for both engines (see module docstring).
        counter.rand_ops += 2 * d  # uniform column + coin per draw
        counter.mem_ops += 2 * d  # shared prob + alias table reads
        counter.private_mem_ops += 2 * d  # two endpoint-buffer writes
        counter.count_vector_op(d, self.vector_lanes)  # src endpoint slab
        counter.count_vector_op(d, self.vector_lanes)  # dst endpoint slab

        endpoints = np.concatenate((self._src[picks], self._dst[picks]))

        if obs_enabled():
            obs_metrics.inc("sampler.subgraphs")
            obs_metrics.inc("sampler.edge_draws", d)
            sp.set(draws=d, engine=self.engine)

        subgraph, vertex_map = self.graph.induced_subgraph(endpoints)
        stats = {
            # Probe-model keys (zero: alias draws never probe) keep the
            # stats dict compatible with simulated_sampler_time / the
            # prefetch pool's pricing path.
            "pops": 0.0,
            "probes": 0.0,
            "edge_draws": float(d),
            "unique_vertices": float(vertex_map.shape[0]),
            "rand_ops": counter.rand_ops,
            "mem_ops": counter.mem_ops,
            "private_mem_ops": counter.private_mem_ops,
            "vector_elements": counter.vector_elements,
            "vector_chunks": counter.vector_chunks,
        }
        return SampledSubgraph(graph=subgraph, vertex_map=vertex_map, stats=stats)
