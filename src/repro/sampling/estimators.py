"""Graph-property estimation from frontier samples.

Frontier sampling was invented (Ribeiro & Towsley, the paper's reference
[5]) to *estimate properties of huge graphs from small samples*. The GCN
paper inherits the sampler; this module closes the loop by implementing
the estimators, which double as a quantitative test of the paper's
Section III-C claim that sampled subgraphs represent the original graph:

* frontier sampling visits vertices with probability ∝ degree, so
  unbiased vertex-function estimates reweight by ``1/deg`` (importance
  sampling / respondent-driven style estimator);
* :func:`estimate_mean_degree` uses the harmonic-mean identity
  ``E_pi[1/deg] = n / sum(deg)`` to recover the true average degree from
  degree-biased visits;
* :func:`estimate_vertex_mean` generalizes to any per-vertex function.

Estimates converge to the true values as the number of sampled subgraphs
grows — asserted in the test suite.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..graphs.csr import CSRGraph
from .base import GraphSampler

__all__ = [
    "degree_biased_visits",
    "estimate_mean_degree",
    "estimate_vertex_mean",
    "estimate_degree_distribution",
]


def degree_biased_visits(
    sampler: GraphSampler, num_subgraphs: int, rng: np.random.Generator
) -> np.ndarray:
    """Concatenated vertex visits from ``num_subgraphs`` sampler runs.

    Frontier-sampler visits are approximately stationary-distribution
    (degree-proportional) draws; other samplers can be passed for
    comparison but their bias correction will differ.
    """
    if num_subgraphs < 1:
        raise ValueError("num_subgraphs must be >= 1")
    visits = [sampler.sample(rng).vertex_map for _ in range(num_subgraphs)]
    return np.concatenate(visits)


def estimate_mean_degree(
    graph: CSRGraph, visits: np.ndarray
) -> float:
    """Unbiased average-degree estimate from degree-biased visits.

    Under visit probability ``pi(v) ∝ deg(v)``:
    ``E_pi[1/deg] = sum_v (deg_v / sum_deg) / deg_v = n / sum_deg``, so
    ``mean degree = sum_deg / n = 1 / mean(1/deg over visits)``.
    """
    if visits.size == 0:
        raise ValueError("no visits")
    deg = graph.degrees[visits].astype(np.float64)
    if np.any(deg == 0):
        raise ValueError("visits include zero-degree vertices")
    return float(1.0 / np.mean(1.0 / deg))


def estimate_vertex_mean(
    graph: CSRGraph,
    visits: np.ndarray,
    func: Callable[[np.ndarray], np.ndarray],
) -> float:
    """Estimate ``mean_v f(v)`` from degree-biased visits.

    Self-normalized importance sampling with weights ``1/deg``:
    ``sum(f/deg) / sum(1/deg)``. ``func`` maps an array of vertex ids to
    per-vertex values.
    """
    if visits.size == 0:
        raise ValueError("no visits")
    deg = graph.degrees[visits].astype(np.float64)
    if np.any(deg == 0):
        raise ValueError("visits include zero-degree vertices")
    w = 1.0 / deg
    values = np.asarray(func(visits), dtype=np.float64)
    if values.shape != visits.shape:
        raise ValueError("func must return one value per visited vertex")
    return float(np.sum(values * w) / np.sum(w))


def estimate_degree_distribution(
    graph: CSRGraph, visits: np.ndarray, *, max_degree: int | None = None
) -> np.ndarray:
    """Estimated degree pmf ``P(deg = k)`` from degree-biased visits.

    Each visit of a degree-``k`` vertex contributes weight ``1/k``;
    normalizing the per-degree weight mass de-biases the visit
    distribution back to the uniform-over-vertices pmf.
    """
    if visits.size == 0:
        raise ValueError("no visits")
    deg = graph.degrees[visits].astype(np.int64)
    if np.any(deg == 0):
        raise ValueError("visits include zero-degree vertices")
    top = int(deg.max()) if max_degree is None else max_degree
    weights = 1.0 / deg
    pmf = np.bincount(
        np.minimum(deg, top), weights=weights, minlength=top + 1
    )
    total = pmf.sum()
    return pmf / total if total > 0 else pmf
