"""Walker alias tables — the classic O(1) static sampler, for contrast.

Section IV-A: "Existing well-known methods for fast sampling such as
aliasing (which can output a sample in O(1) time with linear processing)
cannot be modified easily for this problem [sampling a dynamic degree
distribution]." This module implements the alias method so that claim is
measurable rather than asserted:

* :class:`AliasTable` — O(n) construction, O(1) exact sampling from a
  fixed discrete distribution. Used productively where the distribution
  *is* static: FastGCN's importance distribution.
* :func:`dynamic_sampling_cost` — the cost of running the frontier
  sampler's pop-replace loop on alias tables (a full O(m) rebuild per
  replacement) vs the Dashboard's incremental update; the X8 ablation
  turns this into the paper's comparison.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AliasTable", "dynamic_sampling_cost"]


class AliasTable:
    """Walker's alias method over non-negative weights.

    Construction is O(n); each draw uses one uniform index + one uniform
    float (O(1)). Sampling is exact: probabilities equal
    ``weights / weights.sum()``.
    """

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        if not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite")
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must not all be zero")
        n = weights.size
        self.n = n
        # Normalize before scaling: (w / total) * n avoids overflow when
        # the total is denormal-small (n / total can exceed float range).
        prob = (weights / total) * n
        self.prob = np.ones(n, dtype=np.float64)
        self.alias = np.arange(n, dtype=np.int64)
        small = [i for i in range(n) if prob[i] < 1.0]
        large = [i for i in range(n) if prob[i] >= 1.0]
        prob = prob.copy()
        while small and large:
            s = small.pop()
            l = large.pop()
            self.prob[s] = prob[s]
            self.alias[s] = l
            prob[l] = prob[l] - (1.0 - prob[s])
            (small if prob[l] < 1.0 else large).append(l)
        for i in large + small:
            self.prob[i] = 1.0
            self.alias[i] = i

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | int:
        """Draw one index (``size=None``) or ``size`` i.i.d. indices."""
        count = 1 if size is None else size
        cols = rng.integers(0, self.n, size=count)
        coins = rng.random(count)
        out = np.where(coins < self.prob[cols], cols, self.alias[cols])
        return int(out[0]) if size is None else out.astype(np.int64)


def dynamic_sampling_cost(
    *, m: int, pops: int, avg_degree: float, eta: float = 2.0
) -> dict[str, float]:
    """Modeled operation counts for frontier sampling's dynamic pop-replace
    loop under the two data structures.

    Alias tables support O(1) draws but not single-element updates: every
    pop replaces one frontier vertex, invalidating the table, so each of
    the ``pops`` iterations pays a full O(m) rebuild. The Dashboard pays
    the amortized Eq. 2 update term instead.
    """
    if m <= 0 or pops < 0 or avg_degree <= 0 or eta <= 1.0:
        raise ValueError("invalid parameters")
    alias = float(pops) * (m + 1.0)  # rebuild + O(1) draw per pop
    dashboard = float(pops) * (eta + (4.0 + 3.0 / (eta - 1.0)) * avg_degree)
    return {
        "alias_ops": alias,
        "dashboard_ops": dashboard,
        "dashboard_advantage": alias / dashboard if dashboard else float("inf"),
    }
