"""Sampler cost model: Equation 2 and Theorem 1 of the paper.

Two complementary entry points:

* **Analytic** — :func:`sampler_cost_eq2` evaluates the paper's closed-form
  per-subgraph cost for ``p`` processors, and :func:`theorem1_speedup_bound`
  / :func:`theorem1_max_processors` reproduce the scalability guarantee
  (speedup >= p / (1 + eps) for all p <= eps*d*(4 + 3/(eta-1)) - eta).

* **Empirical** — :func:`simulated_sampler_time` converts the *measured*
  operation statistics of one real :class:`DashboardFrontierSampler` run
  into simulated time on a machine with ``p_intra`` vector lanes. Probing
  is special-cased: with ``p`` lanes probing concurrently, the expected
  number of rounds to find a valid entry is ``1 / (1 - (1 - r)^p)`` where
  ``r`` is the measured valid-entry ratio, exactly the term in Eq. 2.
"""

from __future__ import annotations

import numpy as np

from ..parallel.machine import MachineSpec

__all__ = [
    "sampler_cost_eq2",
    "serial_sampler_cost",
    "theorem1_speedup_bound",
    "theorem1_max_processors",
    "probe_rounds_expected",
    "simulated_sampler_time",
]


def probe_rounds_expected(valid_ratio: float, p: int) -> float:
    """Expected probing rounds for >= 1 hit with ``p`` concurrent probes."""
    if not (0.0 < valid_ratio <= 1.0):
        raise ValueError("valid_ratio must lie in (0, 1]")
    if p <= 0:
        raise ValueError("p must be positive")
    miss = (1.0 - valid_ratio) ** p
    return 1.0 / (1.0 - miss)


def sampler_cost_eq2(
    *,
    n: int,
    m: int,
    d: float,
    eta: float,
    p: int,
    cost_rand: float = 1.0,
    cost_mem: float = 1.0,
) -> float:
    """Equation 2: cost to sample one subgraph with ``p`` processors.

    ``(COSTrand / (1 - (1 - 1/eta)^p) + (4 + 3/(eta-1)) * d * COSTmem / p)
    * (n - m)``
    """
    if n < m:
        raise ValueError("budget n must be >= frontier size m")
    if eta <= 1.0:
        raise ValueError("eta must exceed 1")
    probe = cost_rand * probe_rounds_expected(1.0 / eta, p)
    update = (4.0 + 3.0 / (eta - 1.0)) * d * cost_mem / p
    return (probe + update) * (n - m)


def serial_sampler_cost(
    *, n: int, m: int, d: float, eta: float, cost_rand: float = 1.0, cost_mem: float = 1.0
) -> float:
    """Eq. 2 at p=1: ``(eta*COSTrand + (4 + 3/(eta-1)) d COSTmem)(n-m)``."""
    return sampler_cost_eq2(
        n=n, m=m, d=d, eta=eta, p=1, cost_rand=cost_rand, cost_mem=cost_mem
    )


def theorem1_max_processors(*, d: float, eta: float, epsilon: float) -> float:
    """Largest p for which Theorem 1 guarantees speedup >= p/(1+eps)."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return epsilon * d * (4.0 + 3.0 / (eta - 1.0)) - eta


def theorem1_speedup_bound(
    *, p: int, d: float, eta: float, epsilon: float
) -> float | None:
    """Guaranteed speedup ``p / (1 + eps)``, or None when p is out of range."""
    if p > theorem1_max_processors(d=d, eta=eta, epsilon=epsilon):
        return None
    return p / (1.0 + epsilon)


def simulated_sampler_time(
    stats: dict[str, float],
    machine: MachineSpec,
    *,
    p_intra: int = 1,
    contention_factor: float = 1.0,
) -> float:
    """Simulated time of one metered sampler run with ``p_intra`` lanes.

    Parameters
    ----------
    stats:
        The ``stats`` dict of a :class:`DashboardFrontierSampler` sample
        (keys: pops, probes, capacity, rand_ops, mem_ops, private_mem_ops,
        vector_elements, vector_chunks).
    p_intra:
        Intra-sampler parallelism (1 = scalar; 8 = AVX2 over 32-bit ints).
    contention_factor:
        Per-instance memory slowdown when many sampler instances run
        concurrently (see ``MachineSpec.sampler_contention_factor``);
        applied to every memory-bound term, not to random-number
        generation.
    """
    if p_intra <= 0:
        raise ValueError("p_intra must be positive")
    if contention_factor < 1.0:
        raise ValueError("contention_factor must be >= 1")
    pops = stats["pops"]
    probes = stats["probes"]
    if pops > 0 and probes > 0:
        # Measured serial probes imply the empirical valid ratio:
        # probes/pop = 1/r  =>  r = pops/probes.
        r = min(max(pops / probes, 1e-9), 1.0)
        probe_rounds = pops * probe_rounds_expected(r, p_intra)
    else:
        probe_rounds = 0.0
    probe_time = probe_rounds * (
        machine.cost_rand + machine.cost_mem * contention_factor
    )

    # Entry updates (invalidate/append/cleanup moves): vector chunks when
    # p_intra > 1, scalar element count otherwise. The metered chunks were
    # recorded at machine.vector_lanes width; rescale to p_intra lanes from
    # the element distribution: chunks_p = elements/p * utilization-free
    # upper bound, but per-vertex granularity matters, so reconstruct from
    # the recorded pair (elements, chunks_at_lanes).
    elements = stats["vector_elements"]
    chunks_at_lanes = stats["vector_chunks"]
    if p_intra == 1:
        update_time = elements * machine.cost_mem
    else:
        update_time = (
            _rescale_chunks(elements, chunks_at_lanes, machine.vector_lanes, p_intra)
            * machine.cost_mem
        )
    update_time *= contention_factor
    # Neighbor-selection adjacency reads are shared-graph traffic.
    shared = stats.get("mem_ops", 0.0) - probes  # probe reads handled above
    shared_time = max(shared, 0.0) * machine.cost_mem * contention_factor
    private_time = stats.get("private_mem_ops", 0.0) * machine.cost_mem
    rand_time = (stats.get("rand_ops", 0.0) - probes) * machine.cost_rand
    return probe_time + update_time + shared_time + private_time + max(rand_time, 0.0)


def _rescale_chunks(
    elements: float, chunks: float, recorded_lanes: int, target_lanes: int
) -> float:
    """Estimate vector chunks at a different lane width.

    The metering recorded, per vectorized region of length L,
    ``ceil(L / recorded_lanes)`` chunks. Without per-region lengths we use
    the average region length ``L_bar = elements / regions`` where regions
    is estimated from the recorded pair; ceil waste then scales as
    ``regions * ceil(L_bar / target_lanes)``. Exact for uniform degrees and
    a close bound otherwise.
    """
    if elements <= 0:
        return 0.0
    if target_lanes == recorded_lanes:
        return chunks
    # regions * (L_bar/recorded + waste) = chunks; approximate the number of
    # regions from the average ceil overhead of 0.5 chunk per region.
    regions = max(chunks - elements / recorded_lanes, 0.0) * 2.0
    if regions <= 0.0:
        # Perfectly divisible recordings: assume no ceil waste either way.
        return elements / target_lanes
    l_bar = elements / regions
    return regions * np.ceil(l_bar / target_lanes)
