"""The sampler zoo: one factory over every subgraph-sampler family.

Four families share the :class:`~repro.sampling.base.GraphSampler`
interface and therefore compose identically with
:class:`~repro.sampling.pipeline.SubgraphPrefetcher`, ``TrainConfig``
and the bench CLIs:

========== ============================================== ==============
family     sampler                                        normalization
========== ============================================== ==============
dashboard  :class:`~repro.sampling.dashboard.DashboardFrontierSampler` empirical
rw         :class:`~repro.sampling.rw.RandomWalkBatchSampler`          empirical
edge       :class:`~repro.sampling.edge.DegreeWeightedEdgeSampler`     closed form
edge-indp  :class:`~repro.sampling.edge_indp.IndependentEdgeSampler`   closed form
========== ==============================================

:func:`make_sampler` maps a shared vertex ``budget`` onto each family's
native knob — random walks get ``budget // (walk_depth + 1)`` roots (so
total visits match the budget), the edge samplers get ``budget // 2``
draws / expected edges (two endpoints per edge) — keeping the four
families comparable at a fixed workload size.
:func:`norm_coefficients` returns each sampler's GraphSAINT
normalization coefficients, closed-form where exact formulas exist and
empirical (pre-sampling frequency counts) otherwise.
"""

from __future__ import annotations

from ..graphs.csr import CSRGraph
from .base import GraphSampler
from .dashboard import DashboardFrontierSampler
from .edge import DegreeWeightedEdgeSampler
from .edge_indp import IndependentEdgeSampler
from .norm import (
    NormCoefficients,
    edge_draw_coefficients,
    empirical_coefficients,
    independent_edge_coefficients,
)
from .rw import RandomWalkBatchSampler

__all__ = ["FAMILIES", "DEFAULT_WALK_DEPTH", "make_sampler", "norm_coefficients"]

#: Every sampler family `make_sampler` accepts, in bench display order.
FAMILIES = ("dashboard", "rw", "edge", "edge-indp")

#: Default random-walk depth ``h`` (the follow-up paper's Reddit/PPI runs
#: use short walks of depth 2-4).
DEFAULT_WALK_DEPTH = 3


def make_sampler(
    family: str,
    graph: CSRGraph,
    *,
    budget: int,
    frontier_size: int | None = None,
    engine: str = "fast",
    eta: float = 2.0,
    max_entries_per_vertex: int | None = None,
    vector_lanes: int = 8,
    walk_depth: int = DEFAULT_WALK_DEPTH,
    round_pops: int | None = None,
) -> GraphSampler:
    """Build one sampler of the requested family at a shared budget.

    Parameters
    ----------
    family:
        One of :data:`FAMILIES`.
    graph:
        Graph to sample (min degree >= 1 for dashboard/rw).
    budget:
        Target vertex-visit budget; translated to each family's native
        parameter (see module docstring).
    frontier_size:
        Dashboard frontier size ``m``; defaults to ``max(budget // 5, 1)``
        (the ratio of the ``TrainConfig`` defaults). Ignored by the
        other families.
    engine:
        ``"fast"`` or ``"reference"``, forwarded to every family.
    eta, max_entries_per_vertex, round_pops:
        Dashboard-only knobs, forwarded verbatim.
    vector_lanes:
        Metering lane width, forwarded to every family.
    walk_depth:
        Random-walk depth ``h`` (rw only).
    """
    if family == "dashboard":
        m = max(budget // 5, 1) if frontier_size is None else frontier_size
        return DashboardFrontierSampler(
            graph,
            frontier_size=min(m, budget),
            budget=budget,
            eta=eta,
            max_entries_per_vertex=max_entries_per_vertex,
            vector_lanes=vector_lanes,
            engine=engine,
            round_pops=round_pops,
        )
    if family == "rw":
        return RandomWalkBatchSampler(
            graph,
            num_roots=max(1, budget // (walk_depth + 1)),
            walk_depth=walk_depth,
            vector_lanes=vector_lanes,
            engine=engine,
        )
    if family == "edge":
        return DegreeWeightedEdgeSampler(
            graph,
            num_draws=max(1, budget // 2),
            vector_lanes=vector_lanes,
            engine=engine,
        )
    if family == "edge-indp":
        return IndependentEdgeSampler(
            graph,
            edge_budget=max(1, budget // 2),
            vector_lanes=vector_lanes,
            engine=engine,
        )
    raise ValueError(f"family must be one of {FAMILIES}, got {family!r}")


def norm_coefficients(
    sampler: GraphSampler,
    *,
    num_subgraphs: int = 32,
    seed: int = 0,
    track_edges: bool = False,
) -> NormCoefficients:
    """GraphSAINT normalization coefficients for any sampler.

    Dispatches to the exact closed forms for the two edge families
    (their per-edge probabilities are known analytically) and to
    :func:`~repro.sampling.norm.empirical_coefficients` pre-sampling for
    everything else — including user-supplied custom samplers, which
    only need the base :class:`~repro.sampling.base.GraphSampler`
    contract. ``num_subgraphs``/``seed`` parameterize the empirical
    pre-sampling pass and are ignored by the closed forms.
    """
    if isinstance(sampler, IndependentEdgeSampler):
        return independent_edge_coefficients(sampler.graph, sampler.edge_budget)
    if isinstance(sampler, DegreeWeightedEdgeSampler):
        return edge_draw_coefficients(sampler.graph, sampler.num_draws)
    return empirical_coefficients(
        sampler,
        num_subgraphs=num_subgraphs,
        seed=seed,
        track_edges=track_edges,
    )
