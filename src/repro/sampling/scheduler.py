"""Training scheduler with inter-/intra-subgraph parallelism (Algorithm 5).

Training never samples on the critical path one subgraph at a time:
whenever its pool of unused subgraphs is empty, the scheduler launches
``p_inter`` independent sampler instances (one per core, each internally
parallelized ``p_intra``-wide with AVX) and refills the pool in one batch.

On this host the sampler instances run serially for real; the pool records
the *simulated* fill makespan — per-instance metered cost converted to
time with ``p_intra`` lanes and the machine's NUMA factor at ``p_inter``
bound cores, then scheduled LPT onto the available cores. The trainer
amortizes that makespan over the batch to report per-iteration sampling
time, which is how Figures 3 and 4 are regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import is_enabled as obs_enabled
from ..obs.trace import span
from ..parallel.costmodel import parallel_time
from ..parallel.machine import MachineSpec
from .base import GraphSampler, SampledSubgraph
from .cost import simulated_sampler_time

__all__ = ["PoolFill", "SubgraphPool"]


@dataclass(frozen=True)
class PoolFill:
    """Statistics of one pool refill: ``p_inter`` sampler launches."""

    num_subgraphs: int
    simulated_makespan: float
    simulated_total_work: float
    wall_seconds: float

    @property
    def simulated_time_per_subgraph(self) -> float:
        return self.simulated_makespan / max(self.num_subgraphs, 1)

    @property
    def simulated_speedup(self) -> float:
        """Speedup of the batched fill vs running all instances serially."""
        if self.simulated_makespan == 0.0:
            return 1.0
        return self.simulated_total_work / self.simulated_makespan


@dataclass
class SubgraphPool:
    """Pool of pre-sampled subgraphs (the ``{G_i}`` set of Algorithm 5).

    Parameters
    ----------
    sampler:
        Any :class:`GraphSampler`; Algorithm 5 uses the Dashboard frontier
        sampler, whose metered stats feed the simulated timings.
    machine:
        Cost-model platform.
    p_inter:
        Number of concurrent sampler instances (cores).
    p_intra:
        Intra-instance vector parallelism (AVX lanes; 1 = scalar).
    """

    sampler: GraphSampler
    machine: MachineSpec
    p_inter: int = 1
    p_intra: int = 1
    rng: np.random.Generator = field(default_factory=np.random.default_rng)
    fills: list[PoolFill] = field(default_factory=list)
    _queue: list[SampledSubgraph] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.p_inter <= 0 or self.p_intra <= 0:
            raise ValueError("p_inter and p_intra must be positive")

    def __len__(self) -> int:
        return len(self._queue)

    def refill(self) -> PoolFill:
        """Launch ``p_inter`` sampler instances and enqueue their output."""
        import time

        with span("sampler.pool.refill") as sp:
            t0 = time.perf_counter()
            contention = self.machine.sampler_contention_factor(self.p_inter)
            costs: list[float] = []
            for _ in range(self.p_inter):
                sub = self.sampler.sample(self.rng)
                if sub.stats and "vector_elements" in sub.stats:
                    cost = simulated_sampler_time(
                        sub.stats, self.machine, p_intra=self.p_intra, contention_factor=contention
                    )
                else:
                    # Samplers without metering: charge their reported work (or
                    # subgraph size) serially.
                    cost = sub.stats.get(
                        "distribution_work", float(sub.num_vertices)
                    )
                costs.append(cost)
                self._queue.append(sub)
            makespan = parallel_time(costs, min(self.p_inter, self.machine.num_cores))
            fill = PoolFill(
                num_subgraphs=self.p_inter,
                simulated_makespan=makespan,
                simulated_total_work=float(sum(costs)),
                wall_seconds=time.perf_counter() - t0,
            )
            self.fills.append(fill)
            if obs_enabled():
                sp.set(subgraphs=fill.num_subgraphs)
                sp.add_sim_time(makespan)
        return fill

    def get(self) -> tuple[SampledSubgraph, float]:
        """Pop one subgraph; returns ``(subgraph, amortized_sim_time)``.

        The amortized time is the last refill's makespan divided by its
        batch size — the per-iteration sampling cost a training loop
        observes (zero for subgraphs served from a still-warm pool is the
        wrong model: the fill happened on the critical path, so its cost is
        spread uniformly over the batch it produced).
        """
        if not self._queue:
            self.refill()
        sub = self._queue.pop()
        amortized = self.fills[-1].simulated_time_per_subgraph
        return sub, amortized
