"""Independent per-edge Bernoulli sampler (GraphSAINT ``edge_indp_sampling``).

The follow-up paper ("Accurate, Efficient and Scalable Training of Graph
Neural Networks", PAPERS.md) describes a second edge-sampler variant:
instead of drawing a fixed number of edges with replacement, every
undirected edge flips an independent coin and is kept with probability
``p_e = min(1, budget * w_e / sum(w))`` where
``w_e = 1/deg(u) + 1/deg(v)``. The expected number of kept edges is (at
most) ``budget``, the subgraph size varies run to run, and — crucially
for normalization — inclusion probabilities have exact closed forms
(:func:`repro.sampling.norm.independent_edge_coefficients`), making this
the cleanest sampler to verify variance-corrected training against.

Execution engines (the PR 5 recipe):

* ``engine="reference"`` — one scalar ``rng.random()`` coin per
  undirected edge, in edge order. The correctness oracle.
* ``engine="fast"`` (default) — a single ``rng.random(m) < p`` vector
  comparison over all undirected edges.

Both engines flip one independent coin per edge against the same
``p_e`` (so they draw from the identical subgraph distribution) and
meter identical :class:`~repro.parallel.costmodel.CostCounter` totals:
one ``rand_op`` and one shared probability read per undirected edge, the
full-edge-list comparison charged as vector chunks, and two private
endpoint-buffer writes per *kept* edge. In the (possible but
astronomically unlikely at practical budgets) event that no edge
survives, the sampler redraws — rejection keeps every kept subgraph
non-empty without biasing edge inclusion beyond the negligible
conditioning on non-emptiness.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..obs import is_enabled as obs_enabled
from ..obs import metrics as obs_metrics
from ..obs.trace import span
from ..parallel.costmodel import CostCounter
from .base import GraphSampler, SampledSubgraph
from .dashboard import ENGINES
from .norm import edge_sampling_weights

__all__ = ["IndependentEdgeSampler"]


class IndependentEdgeSampler(GraphSampler):
    """GraphSAINT-style independent Bernoulli edge sampler.

    Parameters
    ----------
    graph:
        Graph to sample; must contain at least one edge.
    edge_budget:
        Expected number of kept undirected edges (before the
        ``min(1, .)`` clip); per-edge keep probability is
        ``min(1, edge_budget * w_e / sum(w))``.
    vector_lanes:
        Lane width used for vector-chunk metering of the coin-flip
        comparison.
    engine:
        ``"fast"`` (one vectorized comparison, the default) or
        ``"reference"`` (scalar per-edge coins).
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        edge_budget: int,
        vector_lanes: int = 8,
        engine: str = "fast",
    ) -> None:
        super().__init__(graph)
        if edge_budget <= 0:
            raise ValueError("edge_budget must be positive")
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self.edge_budget = edge_budget
        self.vector_lanes = vector_lanes
        self.engine = engine
        self._src, self._dst, weights = edge_sampling_weights(graph)
        self._edge_prob = np.minimum(1.0, edge_budget * weights / weights.sum())

    @property
    def budget(self) -> int:
        """Expected kept-edge count (the constructor's ``edge_budget``)."""
        return self.edge_budget

    @property
    def edge_prob(self) -> np.ndarray:
        """Per-undirected-edge keep probability ``min(1, B * w_e / sum w)``."""
        return self._edge_prob

    def sample(self, rng: np.random.Generator) -> SampledSubgraph:
        """Flip every edge's coin and induce on the kept endpoints."""
        with span("sampler.edge_indp") as sp:
            return self._sample(rng, sp)

    def _sample(self, rng: np.random.Generator, sp) -> SampledSubgraph:
        m = self._edge_prob.shape[0]
        counter = CostCounter()

        rounds = 0
        while True:
            rounds += 1
            if self.engine == "reference":
                keep = np.empty(m, dtype=bool)
                for e in range(m):
                    keep[e] = rng.random() < self._edge_prob[e]
            else:
                keep = rng.random(m) < self._edge_prob
            # Identical metering for both engines, charged per round (see
            # module docstring).
            counter.rand_ops += m  # one coin per undirected edge
            counter.mem_ops += m  # shared probability reads
            counter.count_vector_op(m, self.vector_lanes)
            kept = int(keep.sum())
            if kept:
                break
        counter.private_mem_ops += 2 * kept  # endpoint-buffer writes

        endpoints = np.concatenate((self._src[keep], self._dst[keep]))

        if obs_enabled():
            obs_metrics.inc("sampler.subgraphs")
            obs_metrics.inc("sampler.edges_kept", kept)
            sp.set(kept=kept, rounds=rounds, engine=self.engine)

        subgraph, vertex_map = self.graph.induced_subgraph(endpoints)
        stats = {
            # Probe-model keys (zero: coin flips never probe) keep the
            # stats dict compatible with simulated_sampler_time / the
            # prefetch pool's pricing path.
            "pops": 0.0,
            "probes": 0.0,
            "edges_kept": float(kept),
            "coin_rounds": float(rounds),
            "unique_vertices": float(vertex_map.shape[0]),
            "rand_ops": counter.rand_ops,
            "mem_ops": counter.mem_ops,
            "private_mem_ops": counter.private_mem_ops,
            "vector_elements": counter.vector_elements,
            "vector_chunks": counter.vector_chunks,
        }
        return SampledSubgraph(graph=subgraph, vertex_map=vertex_map, stats=stats)
