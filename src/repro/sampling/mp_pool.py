"""Real multi-process subgraph sampling.

The :class:`~repro.sampling.scheduler.SubgraphPool` *simulates* Algorithm
5's inter-subgraph parallelism through the cost model (the right tool for
reproducing the paper's scaling figures on any host). This module is the
*actual* parallel implementation for users with real cores: sampler
instances run in worker processes via :mod:`concurrent.futures`, each with
an independent child of the parent seed sequence, so results are
reproducible regardless of completion order.

Notes on fidelity to Algorithm 5:

* one sampler instance per worker process = inter-subgraph parallelism
  (``p_inter``); Python cannot express the paper's AVX intra-sampler
  parallelism, which remains simulated;
* the training graph is shipped to workers once (fork/pickle at pool
  start), mirroring the paper's shared read-only adjacency;
* like the paper's scheduler, batches of ``batch_size`` subgraphs are
  produced ahead of consumption.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from .base import GraphSampler, SampledSubgraph

__all__ = ["sample_batch_parallel", "ParallelSamplerPool"]

# Module-level worker state (set by the pool initializer in each worker).
_WORKER_SAMPLER: GraphSampler | None = None


def _init_worker(sampler: GraphSampler) -> None:
    global _WORKER_SAMPLER
    _WORKER_SAMPLER = sampler


def _sample_one(seed_entropy: int) -> SampledSubgraph:
    assert _WORKER_SAMPLER is not None, "worker not initialized"
    rng = np.random.default_rng(seed_entropy)
    return _WORKER_SAMPLER.sample(rng)


def sample_batch_parallel(
    sampler: GraphSampler,
    count: int,
    *,
    workers: int,
    seed: int = 0,
) -> list[SampledSubgraph]:
    """Draw ``count`` independent subgraphs across ``workers`` processes.

    Deterministic given ``seed``: subgraph ``i`` is always produced from
    ``default_rng(spawn_key_i)`` regardless of scheduling. For
    ``workers=1`` the sampling happens in-process (no pool overhead).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    seeds = np.random.SeedSequence(seed).spawn(count)
    entropies = [int(s.generate_state(1)[0]) for s in seeds]
    if workers == 1 or count <= 1:
        return [_run_inline(sampler, e) for e in entropies]
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker, initargs=(sampler,)
    ) as pool:
        return list(pool.map(_sample_one, entropies))


def _run_inline(sampler: GraphSampler, entropy: int) -> SampledSubgraph:
    return sampler.sample(np.random.default_rng(entropy))


class ParallelSamplerPool:
    """Persistent worker pool producing subgraph batches on demand.

    Keeps the :class:`ProcessPoolExecutor` alive across batches so the
    graph is shipped to workers once. Use as a context manager::

        with ParallelSamplerPool(sampler, workers=4, seed=0) as pool:
            batch = pool.next_batch(8)
    """

    def __init__(
        self, sampler: GraphSampler, *, workers: int, seed: int = 0
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.sampler = sampler
        self.workers = workers
        self._seeds = np.random.SeedSequence(seed)
        self._executor: ProcessPoolExecutor | None = None
        if workers > 1:
            self._executor = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(sampler,),
            )

    def next_batch(self, count: int) -> list[SampledSubgraph]:
        """Produce ``count`` fresh subgraphs (seed stream continues)."""
        children = self._seeds.spawn(count)
        entropies = [int(s.generate_state(1)[0]) for s in children]
        if self._executor is None:
            return [_run_inline(self.sampler, e) for e in entropies]
        return list(self._executor.map(_sample_one, entropies))

    def close(self) -> None:
        """Shut down worker processes (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ParallelSamplerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
