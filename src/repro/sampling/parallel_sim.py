"""Explicit simulation of the parallel Dashboard sampler (Algorithm 4).

:mod:`repro.sampling.cost` prices sampler runs with closed-form terms.
This module instead *executes* Algorithm 3/4's parallel structure on the
work-span executor, one region per ``pardo`` block:

* ``para_POP_FRONTIER`` — a probing region (each round: p concurrent
  probes, geometric until a hit; sequential across rounds) followed by a
  statically-chunked invalidation of the popped vertex's ``deg`` entries;
* ``para_ADD_TO_FRONTIER`` — statically-chunked writes of ``3 * deg``
  slots;
* ``para_CLEANUP`` — a serial IA cumulative-sum plus chunked entry moves.

Because it replays a *real* Dashboard run (the per-pop degrees and cleanup
events of an actual sample), the resulting speedup curves validate
Theorem 1 against measured workloads rather than expectations — the
theorem-verification experiment of the test suite and the X2 bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from ..parallel.executor import ParallelRegion, WorkSpanExecutor
from ..parallel.machine import MachineSpec
from .cost import probe_rounds_expected

__all__ = ["PopEvent", "CleanupEvent", "SamplerReplay", "record_replay", "simulate_replay"]


@dataclass(frozen=True)
class PopEvent:
    """One pop: entries invalidated and the valid ratio at pop time."""

    entries: int
    valid_ratio: float
    new_entries: int  # entries appended for the replacement vertex


@dataclass(frozen=True)
class CleanupEvent:
    """One cleanup: IA length traversed and alive entries moved."""

    ia_entries: int
    moved_entries: int


@dataclass(frozen=True)
class SamplerReplay:
    """The event log of one frontier-sampling run."""

    pops: tuple[PopEvent, ...]
    cleanups: tuple[CleanupEvent, ...]
    initial_entries: int


def record_replay(
    graph: CSRGraph,
    *,
    frontier_size: int,
    budget: int,
    eta: float = 2.0,
    max_entries_per_vertex: int | None = None,
    rng: np.random.Generator,
) -> SamplerReplay:
    """Run the frontier-sampling process and log its parallel-relevant
    events (per-pop degrees, valid ratios, cleanup sizes).

    This intentionally re-implements the *process* (not the Dashboard
    arrays) so the log captures exactly what Algorithm 4's regions depend
    on; distribution-level agreement with the real sampler is covered by
    the Dashboard's own tests.
    """
    if frontier_size <= 0 or budget < frontier_size:
        raise ValueError("invalid frontier/budget")
    if np.any(graph.degrees == 0):
        raise ValueError("min degree >= 1 required")
    cap = max_entries_per_vertex

    def entries_of(v: int) -> int:
        d = graph.degree(v)
        return min(d, cap) if cap is not None else d

    d_bar = max(graph.average_degree, 1.0)
    if cap is not None:
        d_bar = min(d_bar, float(cap))
    capacity = int(np.ceil(eta * frontier_size * d_bar))

    frontier = list(rng.choice(graph.num_vertices, size=frontier_size, replace=False))
    weights = [entries_of(v) for v in frontier]
    used = sum(weights)
    capacity = max(capacity, used + max(weights))
    alive = used

    pops: list[PopEvent] = []
    cleanups: list[CleanupEvent] = []
    initial = used
    num_added = frontier_size
    for _ in range(budget - frontier_size):
        total = sum(weights)
        probs = np.asarray(weights, dtype=np.float64) / total
        slot = int(rng.choice(len(frontier), p=probs))
        popped_entries = weights[slot]
        valid_ratio = alive / capacity
        replacement = graph.random_neighbor(frontier[slot], rng)
        new_entries = entries_of(int(replacement))
        if used + new_entries > capacity:
            cleanups.append(
                CleanupEvent(ia_entries=num_added, moved_entries=alive - popped_entries)
            )
            used = alive - popped_entries
            num_added = frontier_size
        frontier[slot] = int(replacement)
        alive = alive - popped_entries + new_entries
        used += new_entries
        num_added += 1
        pops.append(
            PopEvent(
                entries=popped_entries,
                valid_ratio=max(valid_ratio, 1e-9),
                new_entries=new_entries,
            )
        )
        weights[slot] = new_entries
    return SamplerReplay(
        pops=tuple(pops), cleanups=tuple(cleanups), initial_entries=initial
    )


def simulate_replay(
    replay: SamplerReplay,
    machine: MachineSpec,
    *,
    workers: int,
) -> WorkSpanExecutor:
    """Execute the replay's Algorithm-4 regions on ``workers`` lanes.

    Returns the executor (work, span, speedup, per-region breakdown).
    """
    ex = WorkSpanExecutor(machine, workers=workers)
    cost_probe = machine.cost_rand + machine.cost_mem
    for pop in replay.pops:
        # Probing: expected sequential rounds with `workers` concurrent
        # probes; each round is one parallel region of `workers` tasks,
        # collapsed here into its serial_cost equivalent (rounds are
        # dependent, so they cannot overlap).
        rounds = probe_rounds_expected(pop.valid_ratio, workers)
        ex.run(
            ParallelRegion(
                "probe",
                task_costs=(),
                serial_cost=rounds * cost_probe,
            )
        )
        # Invalidation: deg slot writes, statically chunked.
        ex.run(
            ParallelRegion(
                "invalidate",
                task_costs=(machine.cost_mem,) * pop.entries,
                schedule="static",
            )
        )
        # Append: 3 slots per new entry.
        ex.run(
            ParallelRegion(
                "append",
                task_costs=(machine.cost_mem,) * (3 * pop.new_entries),
                schedule="static",
            )
        )
    for ev in replay.cleanups:
        ex.run(
            ParallelRegion(
                "cleanup",
                task_costs=(machine.cost_mem,) * (3 * ev.moved_entries),
                schedule="static",
                serial_cost=ev.ia_entries * machine.cost_mem,
            )
        )
    return ex
