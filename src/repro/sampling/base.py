"""Sampler interfaces and the sampled-subgraph container."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..graphs.csr import CSRGraph

__all__ = ["SampledSubgraph", "GraphSampler"]


@dataclass(frozen=True)
class SampledSubgraph:
    """Output of one sampler run: an induced subgraph + id mapping.

    Attributes
    ----------
    graph:
        The induced subgraph with vertices relabeled ``0..k-1``.
    vertex_map:
        ``vertex_map[i]`` is the original-graph id of subgraph vertex ``i``
        (sorted ascending, unique).
    stats:
        Optional sampler-specific operation statistics (used by the cost
        model); plain dict so samplers can report what they like.
    """

    graph: CSRGraph
    vertex_map: np.ndarray
    stats: dict[str, float] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.vertex_map.shape[0] != self.graph.num_vertices:
            raise ValueError("vertex_map length must equal subgraph size")

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices


class GraphSampler(abc.ABC):
    """Base class: samplers produce induced subgraphs of a fixed graph.

    Implementations must be deterministic given the supplied generator, so
    training runs are reproducible and sampler instances can be replayed
    across processes (Algorithm 5 launches many independent instances).
    """

    def __init__(self, graph: CSRGraph) -> None:
        if graph.num_vertices == 0:
            raise ValueError("cannot sample from an empty graph")
        self.graph = graph

    @property
    def name(self) -> str:
        return type(self).__name__

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> SampledSubgraph:
        """Draw one subgraph."""

    def sample_many(
        self, count: int, rng: np.random.Generator
    ) -> list[SampledSubgraph]:
        """Draw ``count`` independent subgraphs (convenience)."""
        return [self.sample(rng) for _ in range(count)]
