"""Serial frontier sampler — the reference implementation of Algorithm 2.

The frontier sampling algorithm of Ribeiro & Towsley maintains a fixed-size
frontier of ``m`` vertices. Each step pops one frontier vertex with
probability proportional to its degree, replaces it with a uniformly-random
neighbor, and adds the popped vertex to the sample. This implementation is
deliberately straightforward — O(m) per pop via an explicit probability
vector — and serves as the correctness oracle for the Dashboard-based
sampler (Section IV-B), which computes the same distribution with O(1)
expected work per pop.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..obs import is_enabled as obs_enabled
from ..obs import metrics as obs_metrics
from ..obs.trace import span
from .base import GraphSampler, SampledSubgraph

__all__ = ["FrontierSampler"]


class FrontierSampler(GraphSampler):
    """Algorithm 2: degree-proportional frontier sampling.

    Parameters
    ----------
    graph:
        Graph to sample; every vertex must have degree >= 1 (the pop step
        draws a uniform neighbor of the popped vertex).
    frontier_size:
        ``m`` — the paper cites 1000 as a good empirical value; scaled
        datasets use proportionally smaller frontiers.
    budget:
        ``n`` — the number of sampling iterations is ``budget -
        frontier_size``; the returned subgraph has at most ``budget``
        (unique) vertices.
    """

    def __init__(
        self, graph: CSRGraph, *, frontier_size: int, budget: int
    ) -> None:
        super().__init__(graph)
        if frontier_size <= 0:
            raise ValueError("frontier_size must be positive")
        if budget < frontier_size:
            raise ValueError("budget must be >= frontier_size")
        if frontier_size > graph.num_vertices:
            raise ValueError(
                f"frontier_size {frontier_size} exceeds graph size {graph.num_vertices}"
            )
        if np.any(graph.degrees == 0):
            raise ValueError(
                "frontier sampling requires min degree >= 1; "
                "preprocess with ensure_min_degree"
            )
        self.frontier_size = frontier_size
        self.budget = budget

    def sample(self, rng: np.random.Generator) -> SampledSubgraph:
        with span("sampler.frontier") as sp:
            return self._sample(rng, sp)

    def _sample(self, rng: np.random.Generator, sp) -> SampledSubgraph:
        graph = self.graph
        m = self.frontier_size
        frontier = rng.choice(graph.num_vertices, size=m, replace=False)
        frontier_deg = graph.degrees[frontier].astype(np.float64)

        sampled = np.empty(self.budget, dtype=np.int64)
        sampled[:m] = frontier
        pops = self.budget - m
        degrees = graph.degrees
        for i in range(pops):
            # Degree-proportional pop (Algorithm 2, line 4): inverse-CDF
            # draw over the degree weights. Still O(m) per pop — the
            # serial complexity the Dashboard removes — but the cumsum +
            # searchsorted pair is one vectorized pass where the previous
            # normalize-then-``rng.choice(p=...)`` rebuilt a full
            # probability vector (and re-validated it) every iteration.
            cum = np.cumsum(frontier_deg)
            slot = int(np.searchsorted(cum, rng.random() * cum[-1], side="right"))
            popped = frontier[slot]
            # Uniform neighbor replacement (lines 5-6).
            replacement = graph.random_neighbor(popped, rng)
            frontier[slot] = replacement
            frontier_deg[slot] = degrees[replacement]
            sampled[m + i] = popped

        if obs_enabled():
            obs_metrics.inc("sampler.pops", pops)
            obs_metrics.inc("sampler.subgraphs")
            sp.set(pops=pops, budget=self.budget)

        subgraph, vertex_map = graph.induced_subgraph(sampled)
        return SampledSubgraph(
            graph=subgraph,
            vertex_map=vertex_map,
            stats={
                "pops": float(pops),
                "unique_vertices": float(vertex_map.shape[0]),
                # O(m) distribution rebuild per pop — the serial complexity
                # the Dashboard structure removes.
                "distribution_work": float(pops * m),
            },
        )
