"""Root-sampled random-walk subgraph sampler (GraphSAINT ``rw_sampling``).

The follow-up paper ("Accurate, Efficient and Scalable Training of Graph
Neural Networks", PAPERS.md) samples a subgraph by picking ``r`` root
vertices uniformly at random (with replacement) and walking ``h`` steps
from each root; the subgraph is induced on the union of all visited
vertices, so the budget is ``r * (h + 1)`` visits. Walks favor
well-connected regions — the sampled subgraphs keep more of the original
edges between their vertices than uniform node sampling, which is what
makes the family competitive with the paper's frontier sampler.

Execution engines (the PR 5 recipe, mirroring
:mod:`repro.sampling.dashboard`):

* ``engine="reference"`` — one scalar walk at a time: every step draws a
  uniform neighbor through :meth:`CSRGraph.random_neighbor`. The
  correctness oracle.
* ``engine="fast"`` (default) — level-synchronous execution: all ``r``
  walkers advance one step per level through one batched
  :meth:`CSRGraph.random_neighbors` call, and each level's visits land
  in the visit buffer as one slab write.

Both engines draw from the same subgraph distribution (each walker's
trajectory is an independent uniform random walk either way; verified
statistically in the test suite) and meter identical
:class:`~repro.parallel.costmodel.CostCounter` totals: one ``rand_op``
and two shared adjacency reads (indptr + indices) per step, one private
visit-buffer write per visit, and the per-level neighbor gather charged
as vector chunks at ``vector_lanes`` width — the cost model prices the
algorithm's parallel structure, not the Python execution strategy.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..obs import is_enabled as obs_enabled
from ..obs import metrics as obs_metrics
from ..obs.trace import span
from ..parallel.costmodel import CostCounter
from .base import GraphSampler, SampledSubgraph
from .dashboard import ENGINES

__all__ = ["RandomWalkBatchSampler"]


class RandomWalkBatchSampler(GraphSampler):
    """GraphSAINT-style multi-root random-walk sampler.

    Parameters
    ----------
    graph:
        Graph to sample; every vertex needs degree >= 1 (walks cannot
        leave an isolated vertex).
    num_roots:
        ``r`` — roots drawn uniformly with replacement per subgraph.
    walk_depth:
        ``h`` — steps taken from each root; each walk visits
        ``h + 1`` vertices including the root.
    vector_lanes:
        Lane width used for vector-chunk metering of the per-level
        neighbor gathers.
    engine:
        ``"fast"`` (level-synchronous batched walks, the default) or
        ``"reference"`` (one scalar walk at a time).
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        num_roots: int,
        walk_depth: int,
        vector_lanes: int = 8,
        engine: str = "fast",
    ) -> None:
        super().__init__(graph)
        if num_roots <= 0:
            raise ValueError("num_roots must be positive")
        if walk_depth < 1:
            raise ValueError("walk_depth must be >= 1")
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        if np.any(graph.degrees == 0):
            raise ValueError(
                "random-walk sampling requires min degree >= 1; "
                "preprocess with ensure_min_degree"
            )
        self.num_roots = num_roots
        self.walk_depth = walk_depth
        self.vector_lanes = vector_lanes
        self.engine = engine

    @property
    def budget(self) -> int:
        """Visits per subgraph: ``num_roots * (walk_depth + 1)``."""
        return self.num_roots * (self.walk_depth + 1)

    def sample(self, rng: np.random.Generator) -> SampledSubgraph:
        """Walk ``num_roots`` trajectories and induce on their union."""
        with span("sampler.rw") as sp:
            return self._sample(rng, sp)

    def _sample(self, rng: np.random.Generator, sp) -> SampledSubgraph:
        graph = self.graph
        r, h = self.num_roots, self.walk_depth
        counter = CostCounter()

        # Roots: one batched uniform draw in both engines (with
        # replacement, as in the GraphSAINT reference implementation).
        roots = rng.integers(0, graph.num_vertices, size=r)
        counter.rand_ops += r

        visited = np.empty((h + 1, r), dtype=np.int64)
        visited[0] = roots
        if self.engine == "reference":
            for j in range(r):
                cur = int(roots[j])
                for step in range(h):
                    cur = graph.random_neighbor(cur, rng)
                    visited[step + 1, j] = cur
        else:
            cur = roots
            for step in range(h):
                cur = graph.random_neighbors(cur, rng)
                visited[step + 1] = cur

        steps = r * h
        # Identical metering for both engines (see module docstring): the
        # reference oracle performs the same logical work the fast engine
        # batches, so it reports the same parallelizable structure.
        counter.rand_ops += steps  # one neighbor-offset draw per step
        counter.mem_ops += 2 * steps  # shared indptr + indices reads
        counter.private_mem_ops += r * (h + 1)  # visit-buffer writes
        for _ in range(h):
            counter.count_vector_op(r, self.vector_lanes)

        if obs_enabled():
            obs_metrics.inc("sampler.subgraphs")
            obs_metrics.inc("sampler.walk_steps", steps)
            sp.set(roots=r, depth=h, engine=self.engine)

        subgraph, vertex_map = graph.induced_subgraph(visited.ravel())
        stats = {
            # Probe-model keys (zero: walks never probe) keep the stats
            # dict compatible with simulated_sampler_time / the prefetch
            # pool's pricing path.
            "pops": 0.0,
            "probes": 0.0,
            "num_roots": float(r),
            "walk_steps": float(steps),
            "unique_vertices": float(vertex_map.shape[0]),
            "rand_ops": counter.rand_ops,
            "mem_ops": counter.mem_ops,
            "private_mem_ops": counter.private_mem_ops,
            "vector_elements": counter.vector_elements,
            "vector_chunks": counter.vector_chunks,
        }
        return SampledSubgraph(graph=subgraph, vertex_map=vertex_map, stats=stats)
