"""Graph samplers: frontier (serial + Dashboard), the GraphSAINT zoo
(random-walk / edge / independent-edge with normalization coefficients),
scheduler, prefetch pipeline, extensions."""

from .alias import AliasTable, dynamic_sampling_cost
from .base import GraphSampler, SampledSubgraph
from .estimators import (
    degree_biased_visits,
    estimate_degree_distribution,
    estimate_mean_degree,
    estimate_vertex_mean,
)
from .cost import (
    probe_rounds_expected,
    sampler_cost_eq2,
    serial_sampler_cost,
    simulated_sampler_time,
    theorem1_max_processors,
    theorem1_speedup_bound,
)
from .dashboard import ENGINES, Dashboard, DashboardFrontierSampler
from .edge import DegreeWeightedEdgeSampler
from .edge_indp import IndependentEdgeSampler
from .extra import (
    ForestFireSampler,
    MetropolisHastingsWalkSampler,
    RandomEdgeSampler,
    RandomNodeSampler,
    RandomWalkSampler,
    SnowballSampler,
)
from .mp_pool import ParallelSamplerPool, sample_batch_parallel
from .pipeline import (
    PrefetchingSubgraphPool,
    PrefetchStats,
    SubgraphPrefetcher,
)
from .parallel_sim import (
    CleanupEvent,
    PopEvent,
    SamplerReplay,
    record_replay,
    simulate_replay,
)
from .frontier import FrontierSampler
from .norm import (
    NormCoefficients,
    edge_draw_coefficients,
    edge_sampling_weights,
    empirical_coefficients,
    independent_edge_coefficients,
    loss_weights_from_probs,
)
from .rw import RandomWalkBatchSampler
from .scheduler import PoolFill, SubgraphPool
from .zoo import FAMILIES, make_sampler, norm_coefficients

__all__ = [
    "GraphSampler",
    "ENGINES",
    "PrefetchStats",
    "SubgraphPrefetcher",
    "PrefetchingSubgraphPool",
    "AliasTable",
    "dynamic_sampling_cost",
    "degree_biased_visits",
    "estimate_mean_degree",
    "estimate_vertex_mean",
    "estimate_degree_distribution",
    "SampledSubgraph",
    "FrontierSampler",
    "Dashboard",
    "DashboardFrontierSampler",
    "RandomWalkBatchSampler",
    "DegreeWeightedEdgeSampler",
    "IndependentEdgeSampler",
    "FAMILIES",
    "make_sampler",
    "norm_coefficients",
    "NormCoefficients",
    "edge_sampling_weights",
    "edge_draw_coefficients",
    "independent_edge_coefficients",
    "empirical_coefficients",
    "loss_weights_from_probs",
    "SubgraphPool",
    "PoolFill",
    "RandomNodeSampler",
    "RandomEdgeSampler",
    "RandomWalkSampler",
    "ForestFireSampler",
    "MetropolisHastingsWalkSampler",
    "SnowballSampler",
    "PopEvent",
    "CleanupEvent",
    "SamplerReplay",
    "record_replay",
    "simulate_replay",
    "ParallelSamplerPool",
    "sample_batch_parallel",
    "sampler_cost_eq2",
    "serial_sampler_cost",
    "simulated_sampler_time",
    "probe_rounds_expected",
    "theorem1_max_processors",
    "theorem1_speedup_bound",
]
