"""Additional graph samplers (the future-work section of the paper).

Section VII announces "extend[ing] the parallel sampler implementation to
support a wider class of sampling algorithms". These samplers implement
that extension behind the same :class:`GraphSampler` interface so they are
drop-in replacements in the trainer, and the X4 ablation compares them to
frontier sampling on connectivity preservation and downstream accuracy:

* :class:`RandomNodeSampler` — uniform vertex sample (no connectivity bias).
* :class:`RandomEdgeSampler` — uniform edge sample, keep endpoints.
* :class:`RandomWalkSampler` — multiple fixed-length random walks
  (GraphSAINT's RW sampler, which this paper grew into).
* :class:`ForestFireSampler` — probabilistic BFS burn (Leskovec et al.).
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from .base import GraphSampler, SampledSubgraph

__all__ = [
    "RandomNodeSampler",
    "RandomEdgeSampler",
    "RandomWalkSampler",
    "ForestFireSampler",
    "MetropolisHastingsWalkSampler",
    "SnowballSampler",
]


class RandomNodeSampler(GraphSampler):
    """Uniformly sample ``budget`` distinct vertices."""

    def __init__(self, graph: CSRGraph, *, budget: int) -> None:
        super().__init__(graph)
        if not (0 < budget <= graph.num_vertices):
            raise ValueError("budget must lie in [1, num_vertices]")
        self.budget = budget

    def sample(self, rng: np.random.Generator) -> SampledSubgraph:
        vertices = rng.choice(self.graph.num_vertices, size=self.budget, replace=False)
        sub, vmap = self.graph.induced_subgraph(vertices)
        return SampledSubgraph(sub, vmap, stats={"unique_vertices": float(vmap.size)})


class RandomEdgeSampler(GraphSampler):
    """Sample edges uniformly until ~``budget`` endpoint vertices collected."""

    def __init__(self, graph: CSRGraph, *, budget: int) -> None:
        super().__init__(graph)
        if not (0 < budget <= graph.num_vertices):
            raise ValueError("budget must lie in [1, num_vertices]")
        if graph.num_edges_directed == 0:
            raise ValueError("graph has no edges")
        self.budget = budget

    def sample(self, rng: np.random.Generator) -> SampledSubgraph:
        graph = self.graph
        src_all = graph.edge_sources()
        chosen: list[np.ndarray] = []
        count = 0
        # Draw edges in budget-sized batches until enough unique endpoints.
        seen = np.zeros(graph.num_vertices, dtype=bool)
        while count < self.budget:
            eids = rng.integers(0, graph.num_edges_directed, size=self.budget)
            endpoints = np.concatenate([src_all[eids], graph.indices[eids]])
            new = endpoints[~seen[endpoints]]
            if new.size:
                seen[new] = True
                chosen.append(np.unique(new))
                count = int(seen.sum())
        vertices = np.flatnonzero(seen)[: self.budget]
        sub, vmap = graph.induced_subgraph(vertices)
        return SampledSubgraph(sub, vmap, stats={"unique_vertices": float(vmap.size)})


class RandomWalkSampler(GraphSampler):
    """``num_roots`` simple random walks of length ``walk_length``.

    The multi-dimensional random-walk family frontier sampling generalizes;
    root vertices are uniform, every visited vertex joins the sample.
    """

    def __init__(
        self, graph: CSRGraph, *, num_roots: int, walk_length: int
    ) -> None:
        super().__init__(graph)
        if num_roots <= 0 or walk_length <= 0:
            raise ValueError("num_roots and walk_length must be positive")
        if np.any(graph.degrees == 0):
            raise ValueError("random walks require min degree >= 1")
        self.num_roots = num_roots
        self.walk_length = walk_length

    def sample(self, rng: np.random.Generator) -> SampledSubgraph:
        graph = self.graph
        current = rng.choice(
            graph.num_vertices, size=self.num_roots, replace=self.num_roots > graph.num_vertices
        )
        visited = [current.copy()]
        for _ in range(self.walk_length):
            current = graph.random_neighbors(current, rng)
            visited.append(current.copy())
        vertices = np.concatenate(visited)
        sub, vmap = graph.induced_subgraph(vertices)
        return SampledSubgraph(sub, vmap, stats={"unique_vertices": float(vmap.size)})


class ForestFireSampler(GraphSampler):
    """Forest-fire sampling: BFS burn where each frontier vertex ignites a
    geometric number of unburned neighbors (mean ``burn_ratio / (1 -
    burn_ratio)``), restarted from fresh uniform roots until ``budget``
    vertices burned."""

    def __init__(
        self, graph: CSRGraph, *, budget: int, burn_ratio: float = 0.7
    ) -> None:
        super().__init__(graph)
        if not (0 < budget <= graph.num_vertices):
            raise ValueError("budget must lie in [1, num_vertices]")
        if not (0.0 < burn_ratio < 1.0):
            raise ValueError("burn_ratio must lie in (0, 1)")
        self.budget = budget
        self.burn_ratio = burn_ratio

    def sample(self, rng: np.random.Generator) -> SampledSubgraph:
        graph = self.graph
        burned = np.zeros(graph.num_vertices, dtype=bool)
        count = 0
        while count < self.budget:
            root = int(rng.integers(graph.num_vertices))
            if burned[root]:
                continue
            burned[root] = True
            count += 1
            frontier = [root]
            while frontier and count < self.budget:
                v = frontier.pop()
                nbrs = graph.neighbors(v)
                fresh = nbrs[~burned[nbrs]]
                if fresh.size == 0:
                    continue
                k = min(int(rng.geometric(1.0 - self.burn_ratio)), fresh.size)
                picks = rng.choice(fresh, size=k, replace=False)
                burned[picks] = True
                count += k
                frontier.extend(int(p) for p in picks)
        vertices = np.flatnonzero(burned)[: self.budget]
        sub, vmap = graph.induced_subgraph(vertices)
        return SampledSubgraph(sub, vmap, stats={"unique_vertices": float(vmap.size)})


class MetropolisHastingsWalkSampler(GraphSampler):
    """Metropolis–Hastings random walk: a degree-*unbiased* walker.

    A proposal to move from ``u`` to neighbor ``v`` is accepted with
    probability ``min(1, deg(u)/deg(v))``, making the stationary
    distribution uniform over vertices instead of degree-proportional —
    the classic contrast to frontier sampling for the X4 ablation.
    """

    def __init__(
        self, graph: CSRGraph, *, num_roots: int, walk_length: int
    ) -> None:
        super().__init__(graph)
        if num_roots <= 0 or walk_length <= 0:
            raise ValueError("num_roots and walk_length must be positive")
        if np.any(graph.degrees == 0):
            raise ValueError("random walks require min degree >= 1")
        self.num_roots = num_roots
        self.walk_length = walk_length

    def sample(self, rng: np.random.Generator) -> SampledSubgraph:
        graph = self.graph
        current = rng.choice(
            graph.num_vertices,
            size=self.num_roots,
            replace=self.num_roots > graph.num_vertices,
        ).astype(np.int64)
        visited = [current.copy()]
        deg = graph.degrees
        for _ in range(self.walk_length):
            proposal = graph.random_neighbors(current, rng)
            accept_prob = np.minimum(
                1.0, deg[current].astype(np.float64) / deg[proposal]
            )
            accept = rng.random(current.shape[0]) < accept_prob
            current = np.where(accept, proposal, current).astype(np.int64)
            visited.append(current.copy())
        vertices = np.concatenate(visited)
        sub, vmap = graph.induced_subgraph(vertices)
        return SampledSubgraph(sub, vmap, stats={"unique_vertices": float(vmap.size)})


class SnowballSampler(GraphSampler):
    """Snowball sampling: BFS from ``num_seeds`` roots keeping at most
    ``fanout`` fresh neighbors per expanded vertex, until ``budget``
    vertices are collected. A bounded-breadth contrast to forest fire."""

    def __init__(
        self,
        graph: CSRGraph,
        *,
        budget: int,
        num_seeds: int = 4,
        fanout: int = 5,
    ) -> None:
        super().__init__(graph)
        if not (0 < budget <= graph.num_vertices):
            raise ValueError("budget must lie in [1, num_vertices]")
        if num_seeds < 1 or fanout < 1:
            raise ValueError("num_seeds and fanout must be >= 1")
        self.budget = budget
        self.num_seeds = num_seeds
        self.fanout = fanout

    def sample(self, rng: np.random.Generator) -> SampledSubgraph:
        graph = self.graph
        taken = np.zeros(graph.num_vertices, dtype=bool)
        seeds = rng.choice(
            graph.num_vertices,
            size=min(self.num_seeds, self.budget),
            replace=False,
        )
        taken[seeds] = True
        count = int(taken.sum())
        frontier = list(int(s) for s in seeds)
        while frontier and count < self.budget:
            next_frontier: list[int] = []
            for v in frontier:
                if count >= self.budget:
                    break
                nbrs = graph.neighbors(v)
                fresh = nbrs[~taken[nbrs]]
                if fresh.size == 0:
                    continue
                k = min(self.fanout, fresh.size, self.budget - count)
                picks = rng.choice(fresh, size=k, replace=False)
                taken[picks] = True
                count += k
                next_frontier.extend(int(p) for p in picks)
            frontier = next_frontier
            if not frontier and count < self.budget:
                # Graph exhausted locally: reseed from unvisited vertices.
                remaining = np.flatnonzero(~taken)
                if remaining.size == 0:
                    break
                seed = int(remaining[rng.integers(remaining.size)])
                taken[seed] = True
                count += 1
                frontier = [seed]
        vertices = np.flatnonzero(taken)[: self.budget]
        sub, vmap = graph.induced_subgraph(vertices)
        return SampledSubgraph(sub, vmap, stats={"unique_vertices": float(vmap.size)})
