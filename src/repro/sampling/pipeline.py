"""Sampler-ahead subgraph pipeline: bounded prefetch feeding the trainer.

The paper's training loop (Algorithm 5) never samples on the critical
path: subgraphs are produced by dedicated sampler instances ahead of the
optimizer, so the trainer only ever *takes* a finished subgraph. The
:class:`~repro.sampling.scheduler.SubgraphPool` models that overlap on
the simulated clock; this module implements it for real wall-clock time —
a bounded prefetch queue that keeps up to ``depth`` subgraphs in flight
while the trainer computes, in the spirit of GraphVite's pipelined CPU
sampling and the GraphSAINT pre-sampled subgraph pools.

Producers are either one background thread (``workers=1``, the default:
the Dashboard sampler spends its time in numpy ops that release the GIL,
so sampling genuinely overlaps the trainer's numpy compute) or a
persistent process pool reusing :mod:`repro.sampling.mp_pool`'s worker
initialization (``workers > 1``). Seeding is deterministic regardless of
completion order: submission ``i`` always samples from the ``i``-th child
of one :class:`numpy.random.SeedSequence`, exactly like
:func:`~repro.sampling.mp_pool.sample_batch_parallel`.

Observability (all under the ``pipeline.`` prefix, emitted only when
:mod:`repro.obs` is enabled):

* ``pipeline.gets`` / ``pipeline.submitted`` — counters;
* ``pipeline.queue_depth`` — gauge: finished subgraphs ready at the last
  :meth:`~SubgraphPrefetcher.get`;
* ``pipeline.consumer_stall_seconds`` — histogram: time the trainer
  blocked waiting for an unfinished subgraph (the quantity the paper
  claims is ~zero when sampling is cheap enough);
* ``pipeline.producer_stall_seconds`` — histogram: time the *oldest
  ready* subgraph sat finished before being consumed while every slot was
  already done (the producers had nothing left to do — the queue bound,
  not sampler speed, was the limit);
* ``pipeline.staleness_seconds`` — histogram: age of each consumed
  subgraph (finish → consume); high staleness with zero consumer stall
  means ``depth`` can be lowered.
"""

from __future__ import annotations

import collections
import time
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..obs import is_enabled as obs_enabled
from ..obs import metrics as obs_metrics
from ..obs.flight import flight_event
from ..obs.trace import span
from ..parallel.machine import MachineSpec
from .base import GraphSampler, SampledSubgraph
from .cost import simulated_sampler_time
from .mp_pool import _init_worker, _sample_one

__all__ = ["PrefetchStats", "SubgraphPrefetcher", "PrefetchingSubgraphPool"]


@dataclass
class PrefetchStats:
    """Aggregate pipeline telemetry (also exported via obs metrics)."""

    gets: int = 0
    submitted: int = 0
    consumer_stall_seconds: float = 0.0
    producer_stall_seconds: float = 0.0
    staleness_seconds: float = 0.0

    @property
    def mean_staleness(self) -> float:
        return self.staleness_seconds / self.gets if self.gets else 0.0


class _Slot:
    """One in-flight subgraph: its future plus a completion timestamp."""

    __slots__ = ("future", "done_at")

    def __init__(self, future: Future) -> None:
        self.future = future
        self.done_at: float | None = None
        future.add_done_callback(self._mark)

    def _mark(self, _fut: Future) -> None:
        self.done_at = time.perf_counter()


class SubgraphPrefetcher:
    """Bounded sampler-ahead queue of :class:`SampledSubgraph` futures.

    Parameters
    ----------
    sampler:
        Any :class:`GraphSampler`; shipped to workers once at pool start.
    depth:
        Number of subgraphs kept in flight ahead of the consumer (>= 1).
    workers:
        1 = one background thread (in-process sampler, zero pickling);
        > 1 = a persistent :class:`ProcessPoolExecutor`.
    seed:
        Root of the deterministic per-submission seed stream.

    Use as a context manager, or call :meth:`close` — a process pool left
    open keeps worker processes alive.
    """

    def __init__(
        self,
        sampler: GraphSampler,
        *,
        depth: int,
        workers: int = 1,
        seed: int = 0,
    ) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.sampler = sampler
        self.depth = depth
        self.workers = workers
        self.stats = PrefetchStats()
        self._seed = seed
        self._slots: collections.deque[_Slot] = collections.deque()
        self._executor: Executor
        if workers == 1:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="subgraph-prefetch"
            )
            self._submit = self._submit_inline
        else:
            self._executor = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(sampler,),
            )
            self._submit = self._submit_worker
        self._closed = False
        for _ in range(depth):
            self._enqueue()

    # -- producers -----------------------------------------------------
    def _entropy_at(self, index: int) -> int:
        """Entropy of submission ``index`` — stateless, order-independent.

        ``SeedSequence(seed, spawn_key=(index,))`` is bit-identical to the
        ``index``-th child of sequential ``SeedSequence(seed).spawn()``
        (numpy's documented spawn-key construction), but depends only on
        ``(seed, index)``: no shared mutable spawn counter, so two
        prefetchers over different sampler families can never perturb
        each other's streams, and submission ``i`` of a given config
        draws the same subgraph in every process, forever.
        """
        child = np.random.SeedSequence(self._seed, spawn_key=(index,))
        return int(child.generate_state(1)[0])

    def _submit_inline(self, entropy: int) -> Future:
        return self._executor.submit(
            self.sampler.sample, np.random.default_rng(entropy)
        )

    def _submit_worker(self, entropy: int) -> Future:
        return self._executor.submit(_sample_one, entropy)

    def _enqueue(self) -> None:
        entropy = self._entropy_at(self.stats.submitted)
        self._slots.append(_Slot(self._submit(entropy)))
        self.stats.submitted += 1

    # -- consumer ------------------------------------------------------
    def ready(self) -> int:
        """Finished (not yet consumed) subgraphs currently queued."""
        return sum(1 for s in self._slots if s.future.done())

    def get(self) -> SampledSubgraph:
        """Take the oldest subgraph, blocking if it is not finished.

        Immediately tops the queue back up to ``depth``, so the producers
        keep running while the caller works on the returned subgraph.
        """
        if self._closed:
            raise RuntimeError("prefetcher is closed")
        slot = self._slots.popleft()
        all_done = slot.future.done() and not any(
            not s.future.done() for s in self._slots
        )
        t0 = time.perf_counter()
        sub = slot.future.result()
        now = time.perf_counter()
        consumer_stall = now - t0
        staleness = max(0.0, now - slot.done_at) if slot.done_at else 0.0
        # Producer-side stall: every slot was already finished when the
        # consumer arrived — the bounded queue idled the producers for (at
        # least) the time the oldest result sat ready.
        producer_stall = staleness if all_done else 0.0
        self._enqueue()

        st = self.stats
        st.gets += 1
        st.consumer_stall_seconds += consumer_stall
        st.producer_stall_seconds += producer_stall
        st.staleness_seconds += staleness
        if obs_enabled():
            obs_metrics.inc("pipeline.gets")
            obs_metrics.inc("pipeline.submitted")
            obs_metrics.set_gauge("pipeline.queue_depth", self.ready())
            obs_metrics.observe("pipeline.consumer_stall_seconds", consumer_stall)
            obs_metrics.observe("pipeline.staleness_seconds", staleness)
            if producer_stall:
                obs_metrics.observe(
                    "pipeline.producer_stall_seconds", producer_stall
                )
                # Producer stalls are exactly the "synchronization
                # wins/regressions" signal later perf PRs hunt for, so
                # they also land in the flight recorder's event ring.
                flight_event(
                    "pipeline.producer_stall",
                    stall_seconds=producer_stall,
                    queue_depth=self.ready(),
                )
        return sub

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Cancel pending work and shut the executor down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for slot in self._slots:
            slot.future.cancel()
        self._slots.clear()
        self._executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "SubgraphPrefetcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PrefetchingSubgraphPool:
    """Drop-in for :class:`~repro.sampling.scheduler.SubgraphPool`.

    Serves subgraphs from a :class:`SubgraphPrefetcher` while reporting
    the same ``(subgraph, amortized_sim_time)`` contract the trainer
    expects. On the simulated clock, ``workers`` prefetch producers are
    ``p_inter`` concurrent sampler instances: each subgraph's metered cost
    is priced with the machine's contention factor at that core count and
    amortized across the instances, matching how
    :meth:`SubgraphPool.refill` spreads its batch makespan.
    """

    def __init__(
        self,
        sampler: GraphSampler,
        machine: MachineSpec,
        *,
        depth: int,
        workers: int = 1,
        p_intra: int = 1,
        seed: int = 0,
    ) -> None:
        if p_intra <= 0:
            raise ValueError("p_intra must be positive")
        self.machine = machine
        self.workers = workers
        self.p_intra = p_intra
        self.prefetcher = SubgraphPrefetcher(
            sampler, depth=depth, workers=workers, seed=seed
        )

    @property
    def stats(self) -> PrefetchStats:
        return self.prefetcher.stats

    def get(self) -> tuple[SampledSubgraph, float]:
        """Take one prefetched subgraph and its amortized simulated cost."""
        with span("sampler.pipeline.get") as sp:
            sub = self.prefetcher.get()
            if sub.stats and "vector_elements" in sub.stats:
                contention = self.machine.sampler_contention_factor(self.workers)
                cost = simulated_sampler_time(
                    sub.stats,
                    self.machine,
                    p_intra=self.p_intra,
                    contention_factor=contention,
                )
            else:
                cost = sub.stats.get(
                    "distribution_work", float(sub.num_vertices)
                )
            amortized = cost / min(self.workers, self.machine.num_cores)
            if obs_enabled():
                sp.set(vertices=sub.num_vertices)
                sp.add_sim_time(amortized)
        return sub, amortized

    def close(self) -> None:
        """Shut down the underlying prefetcher."""
        self.prefetcher.close()

    def __enter__(self) -> "PrefetchingSubgraphPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
