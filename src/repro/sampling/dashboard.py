"""Dashboard-based frontier sampler (Algorithms 3 & 4, Section IV-B).

The serial frontier sampler pays O(m) per pop to rebuild the degree
distribution. The paper's Dashboard replaces that with an array-probing
scheme that supports O(1)-expected-time pops and incremental updates:

* ``DB`` — a table of ``ceil(eta * m * d_bar)`` entries. A frontier vertex
  ``v`` owns ``deg(v)`` *contiguous* entries, so probing DB uniformly at
  random and keeping the first valid hit realizes the degree-proportional
  pop distribution. Three slots per entry: the vertex id, an offset back
  to the vertex's first entry (the first entry stores ``-deg`` so the
  popper can recover the degree), and the vertex's insertion index ``k``.
* ``IA`` — an index array mapping insertion index ``k`` to the DB start
  position and an alive flag, so cleanup can compact DB without scanning
  all of it.

Entries of popped ("historical") vertices are invalidated in place rather
than freed; when an append no longer fits, a cleanup pass compacts the
alive entries. The enlargement factor ``eta > 1`` keeps the expected valid
ratio at ``1/eta`` so probing succeeds quickly and cleanups are rare
(``(n - m) / ((eta - 1) m)`` times per subgraph).

Operation metering: every probe, slot write, cleanup move and IA touch is
tallied in a :class:`~repro.parallel.costmodel.CostCounter`; per-vertex
entry updates are recorded as vector chunks (the paper parallelizes them
with AVX, Section IV-C), so the cost model can convert one serial run into
simulated parallel time.

The ``max_entries_per_vertex`` knob implements the Amazon side-note of
Section VI-C2: on heavily-skewed graphs a hub vertex may otherwise own tens
of thousands of DB entries, making every subgraph contain the same hubs.
Capping its entries bounds its pop probability (the replacement neighbor is
still uniform over the full neighbor list).
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..obs import is_enabled as obs_enabled
from ..obs import metrics as obs_metrics
from ..obs.trace import span
from ..parallel.costmodel import CostCounter
from .base import GraphSampler, SampledSubgraph

__all__ = ["Dashboard", "DashboardFrontierSampler"]

INV = -1  # INValid marker for DB slot 0 and IA entries
_PROBE_BATCH = 16  # vectorized probe draws per round (amortizes rng calls)


class Dashboard:
    """The DB + IA pair with probe/pop/add/cleanup operations.

    Parameters
    ----------
    capacity:
        Total DB entries (``ceil(eta * m * d_bar)`` in the sampler).
    vector_lanes:
        Lane width used for vector-chunk metering of entry updates.
    """

    def __init__(self, capacity: int, *, vector_lanes: int = 8) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.vector_lanes = vector_lanes
        # DB slots: paper packs them as one R^{3 x capacity} table (INT32 +
        # 2x INT16); separate arrays are the numpy idiom with identical
        # semantics. modeled_bytes reports the paper's packed footprint.
        self.db_vertex = np.full(capacity, INV, dtype=np.int64)
        self.db_offset = np.zeros(capacity, dtype=np.int64)
        self.db_index = np.full(capacity, INV, dtype=np.int64)
        # IA slots (capacity + 1 entries in the paper; the "+1 running used
        # count" is held in self.used instead of a sentinel row).
        self.ia_start = np.full(capacity + 1, INV, dtype=np.int64)
        self.ia_alive = np.zeros(capacity + 1, dtype=bool)
        self.used = 0  # DB entries consumed (current + historical)
        self.num_added = 0  # vertices ever added since last cleanup
        self.alive_entries = 0  # DB entries owned by current frontier
        self.counter = CostCounter()
        self.num_cleanups = 0
        self.num_grows = 0
        self.num_pops = 0
        self.num_probes = 0

    # ------------------------------------------------------------------
    @property
    def valid_ratio(self) -> float:
        """Fraction of all DB entries owned by current frontier vertices."""
        return self.alive_entries / self.capacity

    @property
    def modeled_bytes(self) -> int:
        """Paper-faithful footprint: INT32 + 2x INT16 per DB entry."""
        return self.capacity * (4 + 2 + 2)

    def free_entries(self) -> int:
        """Unused DB entries remaining before a cleanup is required."""
        return self.capacity - self.used

    # ------------------------------------------------------------------
    def add(self, vertex: int, num_entries: int) -> None:
        """Append ``num_entries`` contiguous entries for ``vertex``.

        Caller must ensure the entries fit (run :meth:`cleanup` first when
        they do not — mirroring lines 20-22 of Algorithm 3).
        """
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        if num_entries > self.free_entries():
            raise RuntimeError(
                f"dashboard overflow: need {num_entries}, have {self.free_entries()} "
                "(run cleanup first or increase eta)"
            )
        start = self.used
        end = start + num_entries
        k = self.num_added
        self.db_vertex[start:end] = vertex
        # First entry stores -deg; the rest store their offset back to it.
        self.db_offset[start] = -num_entries
        if num_entries > 1:
            self.db_offset[start + 1 : end] = np.arange(1, num_entries)
        self.db_index[start:end] = k
        self.ia_start[k] = start
        self.ia_alive[k] = True
        self.used = end
        self.num_added = k + 1
        self.alive_entries += num_entries
        # 3 slot-arrays written over num_entries entries, vectorizable.
        for _ in range(3):
            self.counter.count_vector_op(num_entries, self.vector_lanes)
        self.counter.private_mem_ops += 2  # IA bookkeeping

    def pop(self, rng: np.random.Generator) -> int:
        """Degree-proportional pop via uniform probing (para_POP_FRONTIER).

        Draws batches of uniform indices over the whole DB until one lands
        on a valid entry, then invalidates the popped vertex's entries and
        clears its IA alive flag.
        """
        if self.alive_entries == 0:
            raise RuntimeError("pop from an empty dashboard")
        hit = -1
        while hit < 0:
            # Batch the random draws for numpy efficiency, but account only
            # the probes a serial sampler would have issued: everything up
            # to and including the first valid hit.
            probes = rng.integers(0, self.capacity, size=_PROBE_BATCH)
            valid = self.db_vertex[probes] != INV
            first = int(np.argmax(valid))
            if valid[first]:
                hit = int(probes[first])
                consumed = first + 1
            else:
                consumed = _PROBE_BATCH
            self.num_probes += consumed
            self.counter.rand_ops += consumed
            self.counter.mem_ops += consumed  # DB slot-0 reads
        vertex = int(self.db_vertex[hit])
        offset = int(self.db_offset[hit])
        start = hit - offset if offset > 0 else hit
        deg = -int(self.db_offset[start])
        self.db_vertex[start : start + deg] = INV
        self.ia_alive[self.db_index[hit]] = False
        self.alive_entries -= deg
        self.num_pops += 1
        self.counter.count_vector_op(deg, self.vector_lanes)  # invalidation
        self.counter.private_mem_ops += 4  # offset/deg/IA reads + flag write
        return vertex

    def cleanup(self) -> None:
        """Compact alive entries to the front of DB (para_CLEANUP).

        One IA traversal computes the alive vertices' new start offsets
        (cumulative sum of their entry counts, masked by the alive flag);
        the alive DB entries are then gathered into the new positions.
        """
        ks = np.flatnonzero(self.ia_alive[: self.num_added])
        starts = self.ia_start[ks]
        degs = -self.db_offset[starts]
        total = int(degs.sum())
        self.counter.mem_ops += self.num_added  # IA traversal + cumsum

        new_vertex = np.full(self.capacity, INV, dtype=np.int64)
        new_offset = np.zeros(self.capacity, dtype=np.int64)
        new_index = np.full(self.capacity, INV, dtype=np.int64)
        if total:
            gather = np.repeat(starts, degs) + _flat_aranges(degs)
            dest = np.arange(total)
            new_vertex[dest] = self.db_vertex[gather]
            new_starts = np.zeros(ks.shape[0], dtype=np.int64)
            if ks.shape[0] > 1:
                np.cumsum(degs[:-1], out=new_starts[1:])
            new_offset[dest] = dest - np.repeat(new_starts, degs)
            new_offset[new_starts] = -degs
            new_index[dest] = np.repeat(
                np.arange(ks.shape[0], dtype=np.int64), degs
            )
        # Re-index IA for the compacted layout.
        self.ia_start[:] = INV
        self.ia_alive[:] = False
        if total:
            new_starts_full = np.zeros(ks.shape[0], dtype=np.int64)
            if ks.shape[0] > 1:
                np.cumsum(degs[:-1], out=new_starts_full[1:])
            self.ia_start[: ks.shape[0]] = new_starts_full
            self.ia_alive[: ks.shape[0]] = True
        self.db_vertex = new_vertex
        self.db_offset = new_offset
        self.db_index = new_index
        self.used = total
        self.num_added = ks.shape[0]
        self.alive_entries = total
        self.num_cleanups += 1
        # 3 slots moved per alive entry, fully parallelizable.
        for _ in range(3):
            self.counter.count_vector_op(total, self.vector_lanes)

    def grow(self, new_capacity: int) -> None:
        """Enlarge DB/IA (deviation guard; see sampler docstring).

        The paper sizes DB once from the training graph's average degree.
        A frontier that drifts onto high-degree vertices can exceed that
        sizing even right after a cleanup; growing (rare, geometric) keeps
        the run alive without changing the sampling distribution.
        """
        if new_capacity <= self.capacity:
            raise ValueError("new_capacity must exceed current capacity")
        extra = new_capacity - self.capacity
        self.db_vertex = np.concatenate(
            [self.db_vertex, np.full(extra, INV, dtype=np.int64)]
        )
        self.db_offset = np.concatenate(
            [self.db_offset, np.zeros(extra, dtype=np.int64)]
        )
        self.db_index = np.concatenate(
            [self.db_index, np.full(extra, INV, dtype=np.int64)]
        )
        self.ia_start = np.concatenate(
            [self.ia_start, np.full(extra, INV, dtype=np.int64)]
        )
        self.ia_alive = np.concatenate([self.ia_alive, np.zeros(extra, dtype=bool)])
        self.capacity = new_capacity
        self.num_grows += 1

    def alive_vertices(self) -> np.ndarray:
        """Current frontier vertex ids (one per alive IA entry)."""
        ks = np.flatnonzero(self.ia_alive[: self.num_added])
        return self.db_vertex[self.ia_start[ks]]


class DashboardFrontierSampler(GraphSampler):
    """Algorithm 3: frontier sampling through the Dashboard structure.

    Produces subgraphs from the same distribution as
    :class:`~repro.sampling.frontier.FrontierSampler` (verified
    statistically in the test suite) at O(1) expected work per pop, and
    meters every operation for the parallel cost model.

    Parameters
    ----------
    eta:
        Enlargement factor ``eta > 1``; the paper uses 2-3.
    max_entries_per_vertex:
        Degree cap for skewed graphs (the paper uses 30 for Amazon);
        ``None`` disables capping.
    vector_lanes:
        AVX width assumed when metering vectorizable entry updates.
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        frontier_size: int,
        budget: int,
        eta: float = 2.0,
        max_entries_per_vertex: int | None = None,
        vector_lanes: int = 8,
    ) -> None:
        super().__init__(graph)
        if frontier_size <= 0:
            raise ValueError("frontier_size must be positive")
        if budget < frontier_size:
            raise ValueError("budget must be >= frontier_size")
        if frontier_size > graph.num_vertices:
            raise ValueError("frontier_size exceeds graph size")
        if eta <= 1.0:
            raise ValueError("eta must exceed 1")
        if max_entries_per_vertex is not None and max_entries_per_vertex < 1:
            raise ValueError("max_entries_per_vertex must be >= 1")
        if np.any(graph.degrees == 0):
            raise ValueError(
                "frontier sampling requires min degree >= 1; "
                "preprocess with ensure_min_degree"
            )
        self.frontier_size = frontier_size
        self.budget = budget
        self.eta = eta
        self.max_entries_per_vertex = max_entries_per_vertex
        self.vector_lanes = vector_lanes

    def _entries_for(self, vertex: int) -> int:
        deg = self.graph.degree(vertex)
        if self.max_entries_per_vertex is not None:
            deg = min(deg, self.max_entries_per_vertex)
        return deg

    def _capacity(self, initial_entries: int) -> int:
        d_bar = max(self.graph.average_degree, 1.0)
        if self.max_entries_per_vertex is not None:
            d_bar = min(d_bar, float(self.max_entries_per_vertex))
        cap = int(np.ceil(self.eta * self.frontier_size * d_bar))
        max_alloc = (
            self.max_entries_per_vertex
            if self.max_entries_per_vertex is not None
            else int(self.graph.degrees.max())
        )
        # DB must at least hold the concrete initial frontier plus one
        # maximal append, else the very first add() could overflow.
        return max(cap, initial_entries + max_alloc)

    def sample(self, rng: np.random.Generator) -> SampledSubgraph:
        with span("sampler.dashboard") as sp:
            return self._sample(rng, sp)

    def _sample(self, rng: np.random.Generator, sp) -> SampledSubgraph:
        graph = self.graph
        m = self.frontier_size

        frontier = rng.choice(graph.num_vertices, size=m, replace=False)
        entry_counts = [self._entries_for(int(v)) for v in frontier]
        board = Dashboard(
            self._capacity(sum(entry_counts)), vector_lanes=self.vector_lanes
        )
        sampled = np.empty(self.budget, dtype=np.int64)
        sampled[:m] = frontier
        for v, cnt in zip(frontier, entry_counts):
            board.add(int(v), cnt)

        pops = self.budget - m
        for i in range(pops):
            popped = board.pop(rng)
            replacement = graph.random_neighbor(popped, rng)
            board.counter.rand_ops += 1
            board.counter.mem_ops += 2  # adjacency indptr + indices reads
            entries = self._entries_for(replacement)
            if entries > board.free_entries():
                board.cleanup()
                if entries > board.free_entries():
                    board.grow(max(2 * board.capacity, board.used + entries))
            board.add(replacement, entries)
            sampled[m + i] = popped

        if obs_enabled():
            # Regenerate/occupancy telemetry: one guarded batch per sampled
            # subgraph (never per pop — that is the O(1) hot loop).
            obs_metrics.inc("sampler.pops", board.num_pops)
            obs_metrics.inc("sampler.probes", board.num_probes)
            obs_metrics.inc("sampler.cleanups", board.num_cleanups)
            obs_metrics.inc("sampler.grows", board.num_grows)
            obs_metrics.inc("sampler.subgraphs")
            obs_metrics.observe("sampler.frontier_occupancy", board.valid_ratio)
            obs_metrics.set_gauge("sampler.valid_ratio", board.valid_ratio)
            sp.set(
                pops=board.num_pops,
                probes=board.num_probes,
                cleanups=board.num_cleanups,
                capacity=board.capacity,
            )

        subgraph, vertex_map = graph.induced_subgraph(sampled)
        stats = {
            "pops": float(board.num_pops),
            "probes": float(board.num_probes),
            "cleanups": float(board.num_cleanups),
            "capacity": float(board.capacity),
            "unique_vertices": float(vertex_map.shape[0]),
            "modeled_bytes": float(board.modeled_bytes),
            "rand_ops": board.counter.rand_ops,
            "mem_ops": board.counter.mem_ops,
            "private_mem_ops": board.counter.private_mem_ops,
            "vector_elements": board.counter.vector_elements,
            "vector_chunks": board.counter.vector_chunks,
        }
        return SampledSubgraph(graph=subgraph, vertex_map=vertex_map, stats=stats)


def _flat_aranges(lengths: np.ndarray) -> np.ndarray:
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    starts = np.zeros(lengths.shape[0], dtype=np.int64)
    if lengths.shape[0] > 1:
        np.cumsum(lengths[:-1], out=starts[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)
