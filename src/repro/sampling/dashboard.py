"""Dashboard-based frontier sampler (Algorithms 3 & 4, Section IV-B).

The serial frontier sampler pays O(m) per pop to rebuild the degree
distribution. The paper's Dashboard replaces that with an array-probing
scheme that supports O(1)-expected-time pops and incremental updates:

* ``DB`` — a table of ``ceil(eta * m * d_bar)`` entries. A frontier vertex
  ``v`` owns ``deg(v)`` *contiguous* entries, so probing DB uniformly at
  random and keeping the first valid hit realizes the degree-proportional
  pop distribution. Three slots per entry: the vertex id, an offset back
  to the vertex's first entry (the first entry stores ``-deg`` so the
  popper can recover the degree), and the vertex's insertion index ``k``.
* ``IA`` — an index array mapping insertion index ``k`` to the DB start
  position and an alive flag, so cleanup can compact DB without scanning
  all of it.

Entries of popped ("historical") vertices are invalidated in place rather
than freed; when an append no longer fits, a cleanup pass compacts the
alive entries. The enlargement factor ``eta > 1`` keeps the expected valid
ratio at ``1/eta`` so probing succeeds quickly and cleanups are rare
(``(n - m) / ((eta - 1) m)`` times per subgraph).

Execution engines
-----------------

The sampler dispatches between two engines that draw from the same pop
distribution (verified statistically in the test suite):

* ``engine="reference"`` — the scalar Algorithm-3 loop: one probe scan,
  one neighbor draw and one append per pop. This is the correctness
  oracle; it is deliberately simple and slow.
* ``engine="fast"`` (default) — round-based batched execution mirroring
  Algorithm 4's ``para_POP_FRONTIER``: probe indices are drawn in large
  vectorized blocks, valid hits and intra-round duplicate pops are
  resolved with numpy masking (a probe landing on a vertex already popped
  this round counts as a miss, exactly as it would against invalidated
  entries in the serial order), replacement neighbors are drawn through
  :meth:`CSRGraph.random_neighbors` in one batch, and invalidations plus
  appends are applied as whole-round slab writes. Like the paper's
  parallel pops, the vertices appended within a round only become
  probe-able in the next round, so the round size is bounded to a small
  fraction of the frontier (``round_pops``, default ``m // 8``).

Operation metering: every probe, slot write, cleanup move and IA touch is
tallied in a :class:`~repro.parallel.costmodel.CostCounter`; per-vertex
entry updates are recorded as vector chunks (the paper parallelizes them
with AVX, Section IV-C), so the cost model can convert one serial run into
simulated parallel time. Both engines meter identically: probes count the
draws actually examined, ``rand_ops`` counts the uniform indices actually
drawn (probe draws are buffered and the unused tail carried across pops,
so the meter matches the RNG traffic), and entry updates are charged one
vector chunk per ``vector_lanes`` elements per vertex.

The ``max_entries_per_vertex`` knob implements the Amazon side-note of
Section VI-C2: on heavily-skewed graphs a hub vertex may otherwise own tens
of thousands of DB entries, making every subgraph contain the same hubs.
Capping its entries bounds its pop probability (the replacement neighbor is
still uniform over the full neighbor list).
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..obs import is_enabled as obs_enabled
from ..obs import metrics as obs_metrics
from ..obs.trace import span
from ..parallel.costmodel import CostCounter
from .base import GraphSampler, SampledSubgraph

__all__ = ["ENGINES", "Dashboard", "DashboardFrontierSampler"]

INV = -1  # INValid marker for DB slot 0 and IA entries
_PROBE_BATCH = 16  # reference-engine probe draws per buffer refill
_FAST_MIN_BLOCK = 64  # smallest vectorized probe block of the fast engine

#: Valid values of ``DashboardFrontierSampler(engine=...)``.
ENGINES = ("fast", "reference")


class Dashboard:
    """The DB + IA pair with probe/pop/add/cleanup operations.

    Parameters
    ----------
    capacity:
        Total DB entries (``ceil(eta * m * d_bar)`` in the sampler).
    vector_lanes:
        Lane width used for vector-chunk metering of entry updates.
    """

    def __init__(self, capacity: int, *, vector_lanes: int = 8) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.vector_lanes = vector_lanes
        # DB slots: paper packs them as one R^{3 x capacity} table (INT32 +
        # 2x INT16); separate arrays are the numpy idiom with identical
        # semantics. modeled_bytes reports the paper's packed footprint.
        self.db_vertex = np.full(capacity, INV, dtype=np.int64)
        self.db_offset = np.zeros(capacity, dtype=np.int64)
        self.db_index = np.full(capacity, INV, dtype=np.int64)
        # IA slots (capacity + 1 entries in the paper; the "+1 running used
        # count" is held in self.used instead of a sentinel row).
        self.ia_start = np.full(capacity + 1, INV, dtype=np.int64)
        self.ia_alive = np.zeros(capacity + 1, dtype=bool)
        self.used = 0  # DB entries consumed (current + historical)
        self.num_added = 0  # vertices ever added since last cleanup
        self.alive_entries = 0  # DB entries owned by current frontier
        self.counter = CostCounter()
        self.num_cleanups = 0
        self.num_grows = 0
        self.num_pops = 0
        self.num_probes = 0
        # Buffered uniform probe draws shared by pop()/pop_many(): the
        # unused tail is carried across pops so metered rand_ops equals the
        # indices actually drawn (invalidated only when capacity changes).
        self._probe_buf = np.empty(0, dtype=np.int64)
        self._probe_pos = 0

    # ------------------------------------------------------------------
    @property
    def valid_ratio(self) -> float:
        """Fraction of all DB entries owned by current frontier vertices."""
        return self.alive_entries / self.capacity

    @property
    def modeled_bytes(self) -> int:
        """Paper-faithful footprint: INT32 + 2x INT16 per DB entry."""
        return self.capacity * (4 + 2 + 2)

    def free_entries(self) -> int:
        """Unused DB entries remaining before a cleanup is required."""
        return self.capacity - self.used

    def _refill_probes(self, rng: np.random.Generator, size: int) -> None:
        """Draw ``size`` fresh uniform DB indices into the probe buffer.

        Any unconsumed tail is kept ahead of the fresh draws — carried
        draws are examined (and metered) before new ones, in draw order.
        """
        fresh = rng.integers(0, self.capacity, size=size)
        tail = self._probe_buf[self._probe_pos :]
        self._probe_buf = np.concatenate([tail, fresh]) if tail.size else fresh
        self._probe_pos = 0
        self.counter.rand_ops += size

    def _available_probes(self) -> np.ndarray:
        return self._probe_buf[self._probe_pos :]

    # ------------------------------------------------------------------
    def add(self, vertex: int, num_entries: int) -> None:
        """Append ``num_entries`` contiguous entries for ``vertex``.

        Caller must ensure the entries fit (run :meth:`cleanup` first when
        they do not — mirroring lines 20-22 of Algorithm 3).
        """
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        if num_entries > self.free_entries():
            raise RuntimeError(
                f"dashboard overflow: need {num_entries}, have {self.free_entries()} "
                "(run cleanup first or increase eta)"
            )
        start = self.used
        end = start + num_entries
        k = self.num_added
        self.db_vertex[start:end] = vertex
        # First entry stores -deg; the rest store their offset back to it.
        self.db_offset[start] = -num_entries
        if num_entries > 1:
            self.db_offset[start + 1 : end] = np.arange(1, num_entries)
        self.db_index[start:end] = k
        self.ia_start[k] = start
        self.ia_alive[k] = True
        self.used = end
        self.num_added = k + 1
        self.alive_entries += num_entries
        # 3 slot-arrays written over num_entries entries, vectorizable.
        for _ in range(3):
            self.counter.count_vector_op(num_entries, self.vector_lanes)
        self.counter.private_mem_ops += 2  # IA bookkeeping

    def add_many(self, vertices: np.ndarray, counts: np.ndarray) -> None:
        """Append entries for a batch of vertices in one slab write.

        Semantically equal to calling :meth:`add` once per vertex in order
        (same DB/IA layout, same metered totals), but the three slot
        arrays are written with whole-slab fancy indexing instead of a
        Python loop. Duplicated vertex ids are allowed — each occurrence
        gets its own insertion index, exactly as repeated :meth:`add`
        calls would.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if vertices.shape != counts.shape or vertices.ndim != 1:
            raise ValueError("vertices and counts must be equal-length 1-D")
        if vertices.size == 0:
            return
        if np.any(counts <= 0):
            raise ValueError("num_entries must be positive")
        total = int(counts.sum())
        if total > self.free_entries():
            raise RuntimeError(
                f"dashboard overflow: need {total}, have {self.free_entries()} "
                "(run cleanup first or increase eta)"
            )
        ks = self.num_added + np.arange(vertices.size, dtype=np.int64)
        starts = self.used + _exclusive_cumsum(counts)
        # One fused repeat expands start/vertex/k per entry.
        expanded = np.repeat(np.stack([starts, vertices, ks]), counts, axis=1)
        within = np.arange(total, dtype=np.int64) - (expanded[0] - self.used)
        positions = expanded[0] + within
        self.db_vertex[positions] = expanded[1]
        # Head slot of each block stores -deg, the rest their back-offset
        # (head written second, overwriting the zero ``within``).
        self.db_offset[positions] = within
        self.db_offset[starts] = -counts
        self.db_index[positions] = expanded[2]
        self.ia_start[ks] = starts
        self.ia_alive[ks] = True
        self.used += total
        self.num_added += vertices.size
        self.alive_entries += total
        # Identical tallies to per-vertex add(): 3 slot arrays, chunked at
        # per-vertex granularity (a degree-3 vertex still under-fills its
        # vector lanes even inside a batch).
        chunks = int(np.sum(-(-counts // self.vector_lanes)))
        self.counter.vector_elements += 3 * total
        self.counter.vector_chunks += 3 * chunks
        self.counter.private_mem_ops += 2 * vertices.size

    def pop(self, rng: np.random.Generator) -> int:
        """Degree-proportional pop via uniform probing (para_POP_FRONTIER).

        Scans buffered uniform indices over the whole DB until one lands
        on a valid entry, then invalidates the popped vertex's entries and
        clears its IA alive flag. Unused draws are carried to the next
        pop, so ``counter.rand_ops`` counts the indices actually drawn.
        """
        if self.alive_entries == 0:
            raise RuntimeError("pop from an empty dashboard")
        hit = -1
        while hit < 0:
            if self._probe_pos >= self._probe_buf.shape[0]:
                self._refill_probes(rng, _PROBE_BATCH)
            probes = self._available_probes()
            valid = self.db_vertex[probes] != INV
            first = int(np.argmax(valid))
            if valid[first]:
                hit = int(probes[first])
                consumed = first + 1
            else:
                consumed = probes.shape[0]
            self._probe_pos += consumed
            self.num_probes += consumed
            self.counter.mem_ops += consumed  # DB slot-0 reads
        vertex = int(self.db_vertex[hit])
        offset = int(self.db_offset[hit])
        start = hit - offset if offset > 0 else hit
        deg = -int(self.db_offset[start])
        self.db_vertex[start : start + deg] = INV
        self.ia_alive[self.db_index[hit]] = False
        self.alive_entries -= deg
        self.num_pops += 1
        self.counter.count_vector_op(deg, self.vector_lanes)  # invalidation
        self.counter.private_mem_ops += 4  # offset/deg/IA reads + flag write
        return vertex

    def pop_many(self, rng: np.random.Generator, max_pops: int) -> np.ndarray:
        """Pop up to ``max_pops`` distinct frontier occupants in one round.

        The vectorized core of the fast engine. Probes are examined in
        draw order against the round-start DB state; the first valid hit
        of each insertion index wins, later probes of an already-popped
        occupant count as misses (in the serial order they would land on
        invalidated entries — the same outcome), and all invalidations are
        applied as one slab write after the hits are chosen. Mirrors
        Algorithm 4's ``para_POP_FRONTIER`` with ``max_pops`` concurrent
        poppers: vertices appended after the round starts cannot be popped
        within it.

        Returns the popped vertex ids in pop order (length <= ``max_pops``;
        always >= 1). Metering matches ``max_pops`` scalar :meth:`pop`
        calls: probes examined, draws issued, one invalidation vector op
        and 4 private touches per pop.
        """
        if max_pops <= 0:
            raise ValueError("max_pops must be positive")
        if self.alive_entries == 0:
            raise RuntimeError("pop from an empty dashboard")
        alive_k = int(np.count_nonzero(self.ia_alive[: self.num_added]))
        max_pops = min(max_pops, alive_k)
        popped_k = np.zeros(self.num_added, dtype=bool)
        hits: list[np.ndarray] = []
        taken = 0
        while taken < max_pops:
            need = max_pops - taken
            expect = need * self.capacity / max(self.alive_entries, 1)
            if self._probe_buf.shape[0] - self._probe_pos < expect:
                # Top up so one block almost always covers the round
                # (carried tail is examined first; see _refill_probes).
                self._refill_probes(
                    rng, max(_FAST_MIN_BLOCK, int(2 * expect) + 1)
                )
            probes = self._available_probes()
            valid = self.db_vertex[probes] != INV
            ks = self.db_index[probes]
            # A valid entry whose occupant was already popped this round is
            # a miss (its entries are invalidated in the serial order).
            eligible = valid & ~popped_k[np.where(valid, ks, 0)]
            positions = np.flatnonzero(eligible)
            if positions.shape[0] == 0:
                consumed = probes.shape[0]
                self._probe_pos += consumed
                self.num_probes += consumed
                self.counter.mem_ops += consumed
                continue
            # First probe of each distinct insertion index, in draw order.
            _, first = np.unique(ks[positions], return_index=True)
            order = np.sort(first)[: max_pops - taken]
            sel = positions[order]
            consumed = int(sel[-1]) + 1  # probes examined incl. last hit
            self._probe_pos += consumed
            self.num_probes += consumed
            self.counter.mem_ops += consumed
            popped_k[ks[sel]] = True
            hits.append(probes[sel])
            taken += sel.shape[0]
        hit_idx = hits[0] if len(hits) == 1 else np.concatenate(hits)
        vertices = self.db_vertex[hit_idx].copy()
        offsets = self.db_offset[hit_idx]
        starts = np.where(offsets > 0, hit_idx - offsets, hit_idx)
        degs = -self.db_offset[starts]
        self.db_vertex[_flat_ranges(starts, degs)] = INV
        self.ia_alive[self.db_index[hit_idx]] = False
        self.alive_entries -= int(degs.sum())
        self.num_pops += taken
        # Same per-pop tallies as the scalar path, summed over the round.
        self.counter.vector_elements += int(degs.sum())
        self.counter.vector_chunks += int(np.sum(-(-degs // self.vector_lanes)))
        self.counter.private_mem_ops += 4 * taken
        return vertices

    def cleanup(self) -> None:
        """Compact alive entries to the front of DB (para_CLEANUP).

        One IA traversal computes the alive vertices' new start offsets
        (cumulative sum of their entry counts, masked by the alive flag);
        the alive DB entries are then gathered into the new positions.
        """
        ks = np.flatnonzero(self.ia_alive[: self.num_added])
        starts = self.ia_start[ks]
        degs = -self.db_offset[starts]
        total = int(degs.sum())
        self.counter.mem_ops += self.num_added  # IA traversal + cumsum

        # Dead-region db_offset/db_index is never read (probes check
        # db_vertex first and only dereference valid hits), so only the
        # vertex slots need the INV fill.
        new_vertex = np.full(self.capacity, INV, dtype=np.int64)
        new_offset = np.empty(self.capacity, dtype=np.int64)
        new_index = np.empty(self.capacity, dtype=np.int64)
        new_starts = _exclusive_cumsum(degs)
        if total:
            gather = _flat_ranges(starts, degs)
            dest = np.arange(total)
            new_vertex[dest] = self.db_vertex[gather]
            new_offset[dest] = dest - np.repeat(new_starts, degs)
            new_offset[new_starts] = -degs
            new_index[dest] = np.repeat(
                np.arange(ks.shape[0], dtype=np.int64), degs
            )
        # Re-index IA for the compacted layout.
        self.ia_start[:] = INV
        self.ia_alive[:] = False
        if total:
            self.ia_start[: ks.shape[0]] = new_starts
            self.ia_alive[: ks.shape[0]] = True
        self.db_vertex = new_vertex
        self.db_offset = new_offset
        self.db_index = new_index
        self.used = total
        self.num_added = ks.shape[0]
        self.alive_entries = total
        self.num_cleanups += 1
        # 3 slots moved per alive entry, fully parallelizable.
        for _ in range(3):
            self.counter.count_vector_op(total, self.vector_lanes)

    def grow(self, new_capacity: int) -> None:
        """Enlarge DB/IA (deviation guard; see sampler docstring).

        The paper sizes DB once from the training graph's average degree.
        A frontier that drifts onto high-degree vertices can exceed that
        sizing even right after a cleanup; growing (rare, geometric) keeps
        the run alive without changing the sampling distribution.
        """
        if new_capacity <= self.capacity:
            raise ValueError("new_capacity must exceed current capacity")
        extra = new_capacity - self.capacity
        self.db_vertex = np.concatenate(
            [self.db_vertex, np.full(extra, INV, dtype=np.int64)]
        )
        self.db_offset = np.concatenate(
            [self.db_offset, np.zeros(extra, dtype=np.int64)]
        )
        self.db_index = np.concatenate(
            [self.db_index, np.full(extra, INV, dtype=np.int64)]
        )
        self.ia_start = np.concatenate(
            [self.ia_start, np.full(extra, INV, dtype=np.int64)]
        )
        self.ia_alive = np.concatenate([self.ia_alive, np.zeros(extra, dtype=bool)])
        self.capacity = new_capacity
        self.num_grows += 1
        # Buffered draws were uniform over the old capacity; discard them.
        self._probe_buf = np.empty(0, dtype=np.int64)
        self._probe_pos = 0

    def alive_vertices(self) -> np.ndarray:
        """Current frontier vertex ids (one per alive IA entry)."""
        ks = np.flatnonzero(self.ia_alive[: self.num_added])
        return self.db_vertex[self.ia_start[ks]]


class DashboardFrontierSampler(GraphSampler):
    """Algorithm 3: frontier sampling through the Dashboard structure.

    Produces subgraphs from the same distribution as
    :class:`~repro.sampling.frontier.FrontierSampler` (verified
    statistically in the test suite) at O(1) expected work per pop, and
    meters every operation for the parallel cost model.

    Parameters
    ----------
    eta:
        Enlargement factor ``eta > 1``; the paper uses 2-3.
    max_entries_per_vertex:
        Degree cap for skewed graphs (the paper uses 30 for Amazon);
        ``None`` disables capping.
    vector_lanes:
        AVX width assumed when metering vectorizable entry updates.
    engine:
        ``"fast"`` (vectorized round-based execution, the default) or
        ``"reference"`` (the scalar per-pop oracle); see the module
        docstring.
    round_pops:
        Fast-engine round size (concurrent pops per round). Defaults to
        ``max(1, frontier_size // 8)`` — a small fraction of the frontier,
        like the paper's ``p`` concurrent poppers, so replacements appended
        mid-round being invisible to the round's remaining probes has a
        negligible distributional effect.
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        frontier_size: int,
        budget: int,
        eta: float = 2.0,
        max_entries_per_vertex: int | None = None,
        vector_lanes: int = 8,
        engine: str = "fast",
        round_pops: int | None = None,
    ) -> None:
        super().__init__(graph)
        if frontier_size <= 0:
            raise ValueError("frontier_size must be positive")
        if budget < frontier_size:
            raise ValueError("budget must be >= frontier_size")
        if frontier_size > graph.num_vertices:
            raise ValueError("frontier_size exceeds graph size")
        if eta <= 1.0:
            raise ValueError("eta must exceed 1")
        if max_entries_per_vertex is not None and max_entries_per_vertex < 1:
            raise ValueError("max_entries_per_vertex must be >= 1")
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        if round_pops is not None and round_pops < 1:
            raise ValueError("round_pops must be >= 1 when set")
        if np.any(graph.degrees == 0):
            raise ValueError(
                "frontier sampling requires min degree >= 1; "
                "preprocess with ensure_min_degree"
            )
        self.frontier_size = frontier_size
        self.budget = budget
        self.eta = eta
        self.max_entries_per_vertex = max_entries_per_vertex
        self.vector_lanes = vector_lanes
        self.engine = engine
        self.round_pops = round_pops

    def _entries_for(self, vertex: int) -> int:
        deg = self.graph.degree(vertex)
        if self.max_entries_per_vertex is not None:
            deg = min(deg, self.max_entries_per_vertex)
        return deg

    def _entry_counts(self, vertices: np.ndarray) -> np.ndarray:
        """Capped DB entry counts for a batch of vertices (vectorized)."""
        counts = self.graph.degrees[vertices].astype(np.int64, copy=True)
        if self.max_entries_per_vertex is not None:
            np.minimum(counts, self.max_entries_per_vertex, out=counts)
        return counts

    def _capacity(self, initial_entries: int) -> int:
        d_bar = max(self.graph.average_degree, 1.0)
        if self.max_entries_per_vertex is not None:
            d_bar = min(d_bar, float(self.max_entries_per_vertex))
        cap = int(np.ceil(self.eta * self.frontier_size * d_bar))
        max_alloc = (
            self.max_entries_per_vertex
            if self.max_entries_per_vertex is not None
            else int(self.graph.degrees.max())
        )
        # DB must at least hold the concrete initial frontier plus one
        # maximal append, else the very first add() could overflow.
        return max(cap, initial_entries + max_alloc)

    def sample(self, rng: np.random.Generator) -> SampledSubgraph:
        with span("sampler.dashboard") as sp:
            return self._sample(rng, sp)

    def _sample(self, rng: np.random.Generator, sp) -> SampledSubgraph:
        graph = self.graph
        m = self.frontier_size

        frontier = rng.choice(graph.num_vertices, size=m, replace=False)
        entry_counts = self._entry_counts(frontier)
        board = Dashboard(
            self._capacity(int(entry_counts.sum())),
            vector_lanes=self.vector_lanes,
        )
        sampled = np.empty(self.budget, dtype=np.int64)
        sampled[:m] = frontier
        board.add_many(frontier, entry_counts)

        if self.engine == "reference":
            self._run_reference(board, sampled, rng)
        else:
            self._run_fast(board, sampled, rng)

        if obs_enabled():
            # Regenerate/occupancy telemetry: one guarded batch per sampled
            # subgraph (never per pop — that is the O(1) hot loop).
            obs_metrics.inc("sampler.pops", board.num_pops)
            obs_metrics.inc("sampler.probes", board.num_probes)
            obs_metrics.inc("sampler.cleanups", board.num_cleanups)
            obs_metrics.inc("sampler.grows", board.num_grows)
            obs_metrics.inc("sampler.subgraphs")
            obs_metrics.observe("sampler.frontier_occupancy", board.valid_ratio)
            obs_metrics.set_gauge("sampler.valid_ratio", board.valid_ratio)
            sp.set(
                pops=board.num_pops,
                probes=board.num_probes,
                cleanups=board.num_cleanups,
                capacity=board.capacity,
                engine=self.engine,
            )

        subgraph, vertex_map = graph.induced_subgraph(sampled)
        stats = {
            "pops": float(board.num_pops),
            "probes": float(board.num_probes),
            "cleanups": float(board.num_cleanups),
            "capacity": float(board.capacity),
            "unique_vertices": float(vertex_map.shape[0]),
            "modeled_bytes": float(board.modeled_bytes),
            "rand_ops": board.counter.rand_ops,
            "mem_ops": board.counter.mem_ops,
            "private_mem_ops": board.counter.private_mem_ops,
            "vector_elements": board.counter.vector_elements,
            "vector_chunks": board.counter.vector_chunks,
        }
        return SampledSubgraph(graph=subgraph, vertex_map=vertex_map, stats=stats)

    # ------------------------------------------------------------------
    # Engines
    # ------------------------------------------------------------------
    def _run_reference(
        self, board: Dashboard, sampled: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Scalar Algorithm-3 loop: one pop/replace/append per iteration."""
        graph = self.graph
        m = self.frontier_size
        pops = self.budget - m
        for i in range(pops):
            popped = board.pop(rng)
            replacement = graph.random_neighbor(popped, rng)
            board.counter.rand_ops += 1
            board.counter.mem_ops += 2  # adjacency indptr + indices reads
            entries = self._entries_for(replacement)
            if entries > board.free_entries():
                board.cleanup()
                if entries > board.free_entries():
                    board.grow(max(2 * board.capacity, board.used + entries))
            board.add(replacement, entries)
            sampled[m + i] = popped

    def _run_fast(
        self, board: Dashboard, sampled: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Round-based batched execution (see module docstring)."""
        graph = self.graph
        m = self.frontier_size
        pops = self.budget - m
        round_cap = self.round_pops or max(1, m // 4)
        done = 0
        while done < pops:
            popped = board.pop_many(rng, min(round_cap, pops - done))
            n_round = popped.shape[0]
            replacements = graph.random_neighbors(popped, rng)
            board.counter.rand_ops += n_round
            board.counter.mem_ops += 2 * n_round  # indptr + indices reads
            entries = self._entry_counts(replacements)
            # Whole-round fit check: cleanup may land up to one round
            # earlier than the scalar trigger, but the cleanup *count*
            # over a run is set by appended volume vs post-cleanup slack,
            # so the metered totals stay equivalent (asserted in tests).
            total = int(entries.sum())
            if total > board.free_entries():
                board.cleanup()
                if total > board.free_entries():
                    board.grow(max(2 * board.capacity, board.used + total))
            board.add_many(replacements, entries)
            sampled[m + done : m + done + n_round] = popped
            done += n_round


def _exclusive_cumsum(lengths: np.ndarray) -> np.ndarray:
    lengths = np.asarray(lengths, dtype=np.int64)
    starts = np.zeros(lengths.shape[0], dtype=np.int64)
    if lengths.shape[0] > 1:
        np.cumsum(lengths[:-1], out=starts[1:])
    return starts


def _flat_aranges(lengths: np.ndarray) -> np.ndarray:
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    return np.arange(total, dtype=np.int64) - np.repeat(
        _exclusive_cumsum(lengths), lengths
    )


def _flat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenated ``[arange(s, s + l) for s, l in zip(starts, lengths)]``.

    Equivalent to ``np.repeat(starts, lengths) + _flat_aranges(lengths)``
    in a single repeat pass.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    return np.arange(total, dtype=np.int64) + np.repeat(
        starts - _exclusive_cumsum(lengths), lengths
    )
