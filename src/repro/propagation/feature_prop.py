"""Feature-partitioned propagation driver (Algorithm 6) with metering.

Executes the real mean-aggregation kernel in ``Q`` feature-dimension chunks
— the paper's cache-aware schedule — and reports the modeled communication
and computation of the run plus its simulated parallel time:

* computation parallelizes across cores (chunks are independent and equal-
  sized: "optimal load-balancing" per Section V-B);
* communication (DRAM streaming of CSR indices + the cache-missing feature
  gathers) parallelizes only up to the machine's bandwidth saturation.

Forward and backward propagation have identical cost structure (Section
III-B), so the trainer charges this model once per direction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from ..kernels.workspace import Workspace
from ..obs import is_enabled as obs_enabled
from ..obs import metrics as obs_metrics
from ..obs.trace import span
from ..parallel.machine import MachineSpec
from .partition_model import BYTES_PER_FEATURE, g_comm, g_comp, theorem2_plan
from .spmm import MeanAggregator

__all__ = ["PropagationReport", "PartitionedPropagator"]


@dataclass(frozen=True)
class PropagationReport:
    """Modeled costs of one propagation pass over the subgraph."""

    n: int
    f: int
    q: int
    rounds: int
    comp_ops: float
    comm_bytes: float
    cache_bytes_per_round: float

    def simulated_time(self, machine: MachineSpec, *, cores: int) -> float:
        """Simulated duration on ``cores`` workers.

        Compute scales with ``cores``; streamed bytes scale with
        ``min(cores, dram_saturation_cores)`` (bandwidth ceiling). The
        blend reproduces the paper's ~25x feature-propagation speedup at
        40 cores.
        """
        if cores <= 0:
            raise ValueError("cores must be positive")
        # Aggregation is an irregular gather-accumulate: Algorithm 6 keeps
        # its working set cache-resident, but the gather stream still moves
        # through the shared memory system, so both terms are bounded by
        # the aggregate-bandwidth ceiling (the paper's feature propagation
        # tops out near 25x on 40 cores).
        eff_cores = min(float(cores), machine.dram_saturation_cores)
        comp_time = self.comp_ops * machine.cost_gather / eff_cores
        comm_time = self.comm_bytes * machine.dram_cost_per_byte / eff_cores
        return comp_time + comm_time


class PartitionedPropagator:
    """Mean aggregation over ``Q`` feature chunks (Algorithm 6).

    Drop-in replacement for :class:`~repro.propagation.spmm.MeanAggregator`
    (same ``forward``/``backward`` interface, bitwise-equal results since
    feature chunking commutes with the row-wise spmm) that additionally
    records a :class:`PropagationReport` per pass in :attr:`reports`.

    Parameters
    ----------
    graph:
        The sampled subgraph.
    machine:
        Platform spec: supplies the L2 capacity for choosing ``Q`` and the
        cost parameters for simulated timing.
    cores:
        Worker count ``C`` used in the ``Q = max(C, 8nf/S_cache)`` rule.
    backend:
        Kernel-registry SpMM backend name (``"scipy"`` / ``"numpy"``),
        or ``None`` to let the kernel layer's plan resolution choose.
    workspace:
        Optional :class:`repro.kernels.Workspace`; when given, each
        pass's output lands in a reused arena buffer instead of a fresh
        ``np.empty_like``. Buffers are keyed per pass direction *and*
        per call index within this propagator's lifetime, so one layer's
        cached aggregation is never clobbered by the next layer's.
    """

    def __init__(
        self,
        graph: CSRGraph,
        machine: MachineSpec,
        *,
        cores: int,
        backend: str | None = "scipy",
        workspace: Workspace | None = None,
    ) -> None:
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.graph = graph
        self.machine = machine
        self.cores = cores
        self.workspace = workspace
        self._agg = MeanAggregator(graph, backend=backend)
        self._calls: dict[str, int] = {}
        self.reports: list[PropagationReport] = []

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    def choose_q(self, f: int) -> int:
        """Theorem-2 partition count for feature size ``f`` (capped at f)."""
        plan = theorem2_plan(
            n=self.graph.num_vertices,
            d=self.graph.average_degree,
            f=f,
            cores=self.cores,
            cache_bytes=self.machine.l2_bytes,
        )
        return min(plan.q, max(f, 1))  # cannot split finer than one column

    def _run(self, x: np.ndarray, op, span_name: str) -> np.ndarray:
        n, f = x.shape
        with span(span_name) as sp:
            q = self.choose_q(f)
            if self.workspace is None:
                out = np.empty_like(x)
            else:
                call_idx = self._calls.get(span_name, 0)
                self._calls[span_name] = call_idx + 1
                out = self.workspace.buffer(
                    ("prop", span_name, call_idx), x.shape, x.dtype
                )
            bounds = np.linspace(0, f, q + 1).astype(int)
            for j in range(q):
                lo, hi = bounds[j], bounds[j + 1]
                if lo == hi:
                    continue
                out[:, lo:hi] = op(np.ascontiguousarray(x[:, lo:hi]))
            d = self.graph.average_degree
            report = PropagationReport(
                n=n,
                f=f,
                q=q,
                rounds=-(-q // self.cores),
                comp_ops=g_comp(n, d, f),
                comm_bytes=g_comm(n, d, f, 1, q, 1.0),
                cache_bytes_per_round=BYTES_PER_FEATURE * n * f / q,
            )
            self.reports.append(report)
            if obs_enabled():
                sp.set(n=n, f=f, q=q)
                sp.add_sim_time(
                    report.simulated_time(self.machine, cores=self.cores)
                )
                obs_metrics.inc("prop.passes")
                obs_metrics.inc("prop.chunks", q)
        return out

    def forward(self, features: np.ndarray) -> np.ndarray:
        """Mean-aggregate features, chunked along the feature dimension."""
        if features.shape[0] != self.num_vertices:
            raise ValueError("features rows must equal subgraph vertices")
        return self._run(features, self._agg.forward, "prop.forward")

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Adjoint pass, same chunking and identical modeled cost."""
        if grad.shape[0] != self.num_vertices:
            raise ValueError("grad rows must equal subgraph vertices")
        return self._run(grad, self._agg.backward, "prop.backward")

    def total_simulated_time(self, *, cores: int | None = None) -> float:
        """Summed simulated time of every recorded pass."""
        c = cores if cores is not None else self.cores
        return sum(r.simulated_time(self.machine, cores=c) for r in self.reports)

    def reset_reports(self) -> None:
        """Drop accumulated propagation reports."""
        self.reports.clear()
