"""Set-associative cache simulator for the propagation access pattern.

Theorem 2's cache constraint (``8 n f / Q <= S_cache``) asserts that with
the right feature-partition count the per-round feature working set stays
cache-resident, so the random gathers of feature aggregation stop missing
to DRAM. The closed-form model takes that as an assumption; this module
*checks the mechanism*: it simulates an LRU set-associative cache over the
actual address trace of a partitioned propagation pass and reports miss
rates — partitioned runs should approach the compulsory-miss floor, while
unpartitioned runs on working sets larger than the cache should thrash.

The simulator is deliberately simple (single level, LRU, word-granularity
addresses grouped into lines) and is used at small scale in tests and the
cache ablation; it is not on any hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from ..obs import is_enabled as obs_enabled
from ..obs import metrics as obs_metrics

__all__ = ["CacheSim", "CacheStats", "propagation_trace", "simulate_propagation_misses"]


@dataclass(frozen=True)
class CacheStats:
    accesses: int
    misses: int

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class CacheSim:
    """LRU set-associative cache over word addresses.

    Parameters
    ----------
    capacity_bytes:
        Total cache capacity.
    line_bytes:
        Cache-line size (addresses are mapped to lines).
    ways:
        Associativity (use a power of two; sets = capacity / line / ways).
    """

    def __init__(
        self, capacity_bytes: int, *, line_bytes: int = 64, ways: int = 8
    ) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("cache parameters must be positive")
        num_lines = capacity_bytes // line_bytes
        if num_lines < ways:
            raise ValueError("capacity too small for the requested associativity")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = max(num_lines // ways, 1)
        # tags[set, way] = line tag; lru[set, way] = age counter.
        self._tags = np.full((self.num_sets, ways), -1, dtype=np.int64)
        self._ages = np.zeros((self.num_sets, ways), dtype=np.int64)
        self._clock = 0
        self.accesses = 0
        self.misses = 0

    def access(self, byte_addresses: np.ndarray) -> int:
        """Touch addresses in order; returns misses incurred by this call."""
        lines = np.asarray(byte_addresses, dtype=np.int64) // self.line_bytes
        sets = lines % self.num_sets
        misses_before = self.misses
        for line, s in zip(lines, sets):
            self._clock += 1
            self.accesses += 1
            row_tags = self._tags[s]
            hit = np.flatnonzero(row_tags == line)
            if hit.size:
                self._ages[s, hit[0]] = self._clock
                continue
            self.misses += 1
            victim = int(np.argmin(self._ages[s]))
            self._tags[s, victim] = line
            self._ages[s, victim] = self._clock
        return self.misses - misses_before

    @property
    def stats(self) -> CacheStats:
        return CacheStats(accesses=self.accesses, misses=self.misses)


def propagation_trace(
    graph: CSRGraph, *, f: int, q: int, feature_base: int = 0
) -> np.ndarray:
    """Byte-address trace of the feature gathers of one propagation pass.

    For each of the ``q`` feature chunks, every edge (u, v) reads vertex
    u's chunk of ``f/q`` doubles from the feature matrix (row-major
    ``n x f`` doubles starting at ``feature_base``). CSR index reads are
    streamed (hardware-prefetchable) and excluded; the question Theorem 2
    answers is about the random feature gathers.
    """
    if f <= 0 or q <= 0 or q > f:
        raise ValueError("need 0 < q <= f")
    sources = graph.indices.astype(np.int64)  # gathered rows, edge order
    bounds = np.linspace(0, f, q + 1).astype(np.int64)
    traces = []
    for j in range(q):
        lo, hi = int(bounds[j]), int(bounds[j + 1])
        if lo == hi:
            continue
        width = hi - lo
        # Each gather touches `width` consecutive doubles of the row; one
        # address per 8 bytes keeps traces small while hitting every line.
        offsets = (np.arange(width, dtype=np.int64) + lo) * 8
        addrs = (
            feature_base
            + sources[:, None] * (f * 8)
            + offsets[None, :]
        ).reshape(-1)
        traces.append(addrs)
    return np.concatenate(traces) if traces else np.empty(0, dtype=np.int64)


def simulate_propagation_misses(
    graph: CSRGraph,
    *,
    f: int,
    q: int,
    capacity_bytes: int,
    line_bytes: int = 64,
    ways: int = 8,
) -> CacheStats:
    """Miss statistics of one partitioned propagation pass."""
    sim = CacheSim(capacity_bytes, line_bytes=line_bytes, ways=ways)
    sim.access(propagation_trace(graph, f=f, q=q))
    if obs_enabled():
        obs_metrics.inc("prop.cache_sim.accesses", sim.accesses)
        obs_metrics.inc("prop.cache_sim.hits", sim.accesses - sim.misses)
        obs_metrics.inc("prop.cache_sim.misses", sim.misses)
    return sim.stats
