"""Sparse feature-aggregation kernels (the ``(A^T) H`` step of Algorithm 1).

The GCN's feature-aggregation step computes, for every vertex, the mean of
its neighbors' feature vectors. On the sampled subgraph this is the
dominant irregular kernel (Section V of the paper). Two interchangeable
backends are provided:

* :func:`spmm_sum_scipy` — scipy CSR matvec, the fast path (C loops).
* :func:`spmm_sum_numpy` — pure-numpy ``add.reduceat`` over the CSR arrays;
  used as an independent oracle in tests and by the partitioned
  propagation driver, whose per-feature-chunk traffic the cache model
  meters explicitly.

:class:`MeanAggregator` wraps a graph once (building the scipy operator a
single time) and exposes the forward mean-aggregation and its adjoint for
backpropagation. For an undirected graph with row-mean normalization
``M = D^{-1} A``, the adjoint is ``M^T G = A (D^{-1} G)`` because ``A`` is
symmetric.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graphs.csr import CSRGraph
from ..obs import is_enabled as obs_enabled
from ..obs import metrics as obs_metrics

__all__ = ["spmm_sum_scipy", "spmm_sum_numpy", "MeanAggregator"]


def _to_scipy(graph: CSRGraph) -> sp.csr_matrix:
    data = np.ones(graph.num_edges_directed, dtype=np.float64)
    n = graph.num_vertices
    return sp.csr_matrix((data, graph.indices, graph.indptr), shape=(n, n))


def spmm_sum_scipy(graph: CSRGraph, features: np.ndarray) -> np.ndarray:
    """``A @ H``: per-vertex sum of neighbor features via scipy CSR."""
    return _to_scipy(graph) @ features


def spmm_sum_numpy(graph: CSRGraph, features: np.ndarray) -> np.ndarray:
    """``A @ H`` in pure numpy.

    Gathers all neighbor rows then segment-sums them with
    ``np.add.reduceat``. Zero-degree vertices produce zero rows (reduceat's
    empty-segment pitfall is handled explicitly).
    """
    n = graph.num_vertices
    f = features.shape[1]
    out = np.zeros((n, f), dtype=features.dtype)
    if graph.num_edges_directed == 0:
        return out
    gathered = features[graph.indices]
    nonempty = np.flatnonzero(graph.degrees > 0)
    starts = graph.indptr[nonempty]
    out[nonempty] = np.add.reduceat(gathered, starts, axis=0)
    return out


class MeanAggregator:
    """Mean neighbor aggregation ``M = D^{-1} A`` with adjoint.

    Parameters
    ----------
    graph:
        Undirected graph (symmetric adjacency). Zero-degree vertices
        aggregate to the zero vector.
    backend:
        ``"scipy"`` (default, fast) or ``"numpy"`` (oracle).
    """

    def __init__(self, graph: CSRGraph, *, backend: str = "scipy") -> None:
        if backend not in ("scipy", "numpy"):
            raise ValueError(f"unknown backend {backend!r}")
        self.graph = graph
        self.backend = backend
        deg = graph.degrees.astype(np.float64)
        self._inv_deg = np.divide(
            1.0, deg, out=np.zeros_like(deg), where=deg > 0
        )[:, None]
        self._mat = _to_scipy(graph) if backend == "scipy" else None

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    def _spmm(self, x: np.ndarray) -> np.ndarray:
        if obs_enabled():
            # One SpMM op = one sparse row-sum over the whole matrix slice;
            # flops ~ 2 * nnz * cols (multiply-free sum counted as adds).
            obs_metrics.inc("spmm.ops")
            obs_metrics.inc(
                "spmm.flops", 2.0 * self.graph.num_edges_directed * x.shape[1]
            )
        if self._mat is not None:
            return self._mat @ x
        return spmm_sum_numpy(self.graph, x)

    def forward(self, features: np.ndarray) -> np.ndarray:
        """``D^{-1} A @ H`` — mean of neighbor feature vectors."""
        if features.shape[0] != self.num_vertices:
            raise ValueError(
                f"features rows {features.shape[0]} != vertices {self.num_vertices}"
            )
        return self._inv_deg * self._spmm(features)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Adjoint ``M^T G = A (D^{-1} G)`` (valid for symmetric ``A``)."""
        if grad.shape[0] != self.num_vertices:
            raise ValueError(
                f"grad rows {grad.shape[0]} != vertices {self.num_vertices}"
            )
        return self._spmm(self._inv_deg * grad)

    def dense(self) -> np.ndarray:
        """Dense ``M`` for small graphs (testing only)."""
        n = self.num_vertices
        eye = np.eye(n)
        return self.forward(eye)
