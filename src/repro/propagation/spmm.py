"""Sparse feature-aggregation adapters (the ``(A^T) H`` step of Algorithm 1).

The GCN's feature-aggregation step computes, for every vertex, the mean of
its neighbors' feature vectors. On the sampled subgraph this is the
dominant irregular kernel (Section V of the paper). The actual SpMM now
lives in :mod:`repro.kernels` — this module keeps the historical entry
points as thin adapters over it:

* :func:`spmm_sum_scipy` — the ``"scipy"`` kernel backend (CSR matvec,
  C loops). The scipy operator is memoized per graph by the kernel
  layer's adjacency cache, so repeated calls no longer rebuild it.
* :func:`spmm_sum_numpy` — the ``"numpy"`` backend (pure-numpy
  ``add.reduceat``); an independent oracle in tests and the kernel the
  partitioned propagation driver's cache model reasons about.

:class:`MeanAggregator` wraps a graph and exposes the forward
mean-aggregation and its adjoint for backpropagation. For an undirected
graph with row-mean normalization ``M = D^{-1} A``, the adjoint is
``M^T G = A (D^{-1} G)`` because ``A`` is symmetric. Flop/op counting
happens inside :mod:`repro.kernels.accounting` — not here.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..kernels import ops as kernel_ops
from ..kernels.backends import available_backends

__all__ = ["spmm_sum_scipy", "spmm_sum_numpy", "MeanAggregator"]


def spmm_sum_scipy(graph: CSRGraph, features: np.ndarray) -> np.ndarray:
    """``A @ H``: per-vertex sum of neighbor features via scipy CSR."""
    return kernel_ops.spmm(graph, features, backend="scipy")


def spmm_sum_numpy(graph: CSRGraph, features: np.ndarray) -> np.ndarray:
    """``A @ H`` in pure numpy (gather + ``np.add.reduceat`` segment sum)."""
    return kernel_ops.spmm(graph, features, backend="numpy")


class MeanAggregator:
    """Mean neighbor aggregation ``M = D^{-1} A`` with adjoint.

    A thin adapter over :func:`repro.kernels.ops.spmm` /
    :func:`~repro.kernels.ops.spmm_adjoint`: it owns only the degree
    normalization (cached per dtype) and delegates the sparse kernel —
    and its cost accounting — to the kernel layer.

    Parameters
    ----------
    graph:
        Undirected graph (symmetric adjacency). Zero-degree vertices
        aggregate to the zero vector.
    backend:
        Kernel-registry backend name: ``"scipy"`` (default, fast) or
        ``"numpy"`` (oracle). ``None`` leaves the choice to the kernel
        layer's plan resolution (static default in ``"fast"`` mode,
        the autotuned per-shape-class plan in ``"auto"`` mode).
    """

    def __init__(self, graph: CSRGraph, *, backend: str | None = "scipy") -> None:
        if backend is not None and backend not in available_backends():
            raise ValueError(f"unknown backend {backend!r}")
        self.graph = graph
        self.backend = backend
        deg = graph.degrees.astype(np.float64)
        self._inv_deg = np.divide(
            1.0, deg, out=np.zeros_like(deg), where=deg > 0
        )[:, None]
        self._inv_deg_by_dtype: dict[np.dtype, np.ndarray] = {
            np.dtype(np.float64): self._inv_deg
        }

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    def _inv_deg_for(self, dtype: np.dtype) -> np.ndarray:
        """``1/deg`` column in ``dtype`` (computed in float64, then cast)."""
        inv = self._inv_deg_by_dtype.get(dtype)
        if inv is None:
            inv = self._inv_deg_by_dtype[dtype] = self._inv_deg.astype(dtype)
        return inv

    def forward(
        self, features: np.ndarray, *, out: np.ndarray | None = None
    ) -> np.ndarray:
        """``D^{-1} A @ H`` — mean of neighbor feature vectors."""
        if features.shape[0] != self.num_vertices:
            raise ValueError(
                f"features rows {features.shape[0]} != vertices {self.num_vertices}"
            )
        inv = self._inv_deg_for(features.dtype)
        if out is None:
            return inv * kernel_ops.spmm(self.graph, features, backend=self.backend)
        kernel_ops.spmm(self.graph, features, out=out, backend=self.backend)
        np.multiply(out, inv, out=out)
        return out

    def backward(
        self, grad: np.ndarray, *, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Adjoint ``M^T G = A (D^{-1} G)`` (valid for symmetric ``A``)."""
        if grad.shape[0] != self.num_vertices:
            raise ValueError(
                f"grad rows {grad.shape[0]} != vertices {self.num_vertices}"
            )
        scaled = self._inv_deg_for(grad.dtype) * grad
        return kernel_ops.spmm_adjoint(
            self.graph, scaled, out=out, backend=self.backend
        )

    def dense(self) -> np.ndarray:
        """Dense ``M`` for small graphs (testing only)."""
        n = self.num_vertices
        eye = np.eye(n)
        return self.forward(eye)
