"""Communication model and partitioning theory (Section V-B of the paper).

Feature propagation in the sampled subgraph pulls every vertex's neighbor
features. The paper considers partitioning the graph into ``P`` vertex
partitions and each feature vector into ``Q`` equal parts, and derives (its
Equation 3) the computation and communication over all ``P*Q`` rounds:

    g_comp(P, Q) = n * d * f                      (partition-independent)
    g_comm(P, Q) = 2*Q*n*d + 8*P*n*f*gamma_P      (bytes)

where ``gamma_P = |V_src^(i)| / |V|`` is the expansion of a partition's
source set (INT16 vertex indices = 2 bytes streamed per edge per feature
round; DOUBLE features = 8 bytes of random access per source vertex per
feature chunk). The minimization problem (Equation 4) constrains ``P*Q >=
C`` (use all cores) and ``8*n*f*gamma_P / Q <= S_cache`` (each round's
feature working set must be cache-resident).

Theorem 2 proves the *feature-only* solution ``P = 1, Q = max(C,
8nf/S_cache)`` is a 2-approximation whenever ``C <= 4f/d`` and ``2nd <=
S_cache`` — no graph partitioner needed, which also buys optimal load
balance and zero preprocessing. This module implements the model, the
theorem's construction, and a brute-force optimum for verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..graphs.csr import CSRGraph

__all__ = [
    "g_comp",
    "g_comm",
    "gamma_lower_bound",
    "gamma_random_partition",
    "gamma_of_partition",
    "theorem2_plan",
    "theorem2_conditions_hold",
    "gcomm_lower_bound",
    "brute_force_optimum",
    "PartitionPlan",
    "random_vertex_partition",
]

BYTES_PER_INDEX = 2  # INT16 subgraph vertex ids (paper footnote 2)
BYTES_PER_FEATURE = 8  # DOUBLE feature values


def g_comp(n: int, d: float, f: int) -> float:
    """Equation 3, computation: ``n * d * f`` multiply-adds."""
    return float(n) * d * f


def g_comm(
    n: int, d: float, f: int, p: int, q: int, gamma_p: float
) -> float:
    """Equation 3, communication in bytes: ``2 Q n d + 8 P n f gamma_P``."""
    if p < 1 or q < 1:
        raise ValueError("P and Q must be >= 1")
    if not (0.0 < gamma_p <= 1.0):
        raise ValueError("gamma_P must lie in (0, 1]")
    return BYTES_PER_INDEX * q * n * d + BYTES_PER_FEATURE * p * n * f * gamma_p


def gamma_lower_bound(p: int) -> float:
    """``gamma_P >= 1/P`` for any partitioner (each part needs its own)."""
    return 1.0 / p


def gamma_random_partition(p: int, degrees: np.ndarray) -> float:
    """Expected ``gamma_P`` of a uniform random vertex partition.

    Vertex ``u`` is a source for partition ``i`` iff ``u`` or one of its
    neighbors lands in ``V(i)`` (self-connections included per the paper);
    under uniform assignment that misses with probability
    ``(1 - 1/P)^(deg(u) + 1)``.
    """
    if p < 1:
        raise ValueError("P must be >= 1")
    if p == 1:
        return 1.0
    degrees = np.asarray(degrees, dtype=np.float64)
    return float(np.mean(1.0 - (1.0 - 1.0 / p) ** (degrees + 1.0)))


def gamma_of_partition(graph: CSRGraph, assignment: np.ndarray) -> float:
    """Measured average ``|V_src^(i)| / |V|`` of a concrete partition."""
    assignment = np.asarray(assignment)
    if assignment.shape[0] != graph.num_vertices:
        raise ValueError("assignment length must equal num_vertices")
    p = int(assignment.max()) + 1 if assignment.size else 1
    n = graph.num_vertices
    src = graph.edge_sources()
    # Source sets: for each partition i, vertices with a neighbor in V(i),
    # plus V(i) itself (self-connection).
    is_source = np.zeros((p, n), dtype=bool)
    is_source[assignment, np.arange(n)] = True
    np.logical_or.at(is_source, (assignment[graph.indices], src), True)
    return float(is_source.sum() / (p * n))


def random_vertex_partition(
    n: int, p: int, rng: np.random.Generator
) -> np.ndarray:
    """Near-balanced uniform random assignment of ``n`` vertices to ``p``."""
    assignment = np.arange(n) % p
    rng.shuffle(assignment)
    return assignment


@dataclass(frozen=True)
class PartitionPlan:
    """A chosen (P, Q) with its modeled costs."""

    p: int
    q: int
    gamma_p: float
    comm_bytes: float
    comp_ops: float
    cache_bytes_per_round: float
    feasible: bool


def theorem2_plan(
    *, n: int, d: float, f: int, cores: int, cache_bytes: int
) -> PartitionPlan:
    """The paper's solution: ``P=1, Q=max(C, ceil(8nf/S_cache))``."""
    if min(n, f, cores, cache_bytes) <= 0:
        raise ValueError("n, f, cores, cache_bytes must be positive")
    q = max(cores, int(np.ceil(BYTES_PER_FEATURE * n * f / cache_bytes)))
    gamma = 1.0
    comm = g_comm(n, d, f, 1, q, gamma)
    per_round = BYTES_PER_FEATURE * n * f * gamma / q
    return PartitionPlan(
        p=1,
        q=q,
        gamma_p=gamma,
        comm_bytes=comm,
        comp_ops=g_comp(n, d, f),
        cache_bytes_per_round=per_round,
        feasible=per_round <= cache_bytes and q >= cores,
    )


def theorem2_conditions_hold(
    *, n: int, d: float, f: int, cores: int, cache_bytes: int
) -> bool:
    """Preconditions of Theorem 2: ``C <= 4f/d`` and ``2nd <= S_cache``."""
    return cores <= 4.0 * f / d and 2.0 * n * d <= cache_bytes


def gcomm_lower_bound(n: int, f: int) -> float:
    """``g_comm >= 8nf`` for every feasible (P, Q) (Theorem 2's proof)."""
    return float(BYTES_PER_FEATURE) * n * f


def brute_force_optimum(
    *,
    n: int,
    d: float,
    f: int,
    cores: int,
    cache_bytes: int,
    gamma_fn: Callable[[int], float] | None = None,
    max_p: int = 64,
    max_q: int = 4096,
) -> PartitionPlan:
    """Exhaustive search over integer (P, Q) for the minimal ``g_comm``.

    ``gamma_fn`` models the partitioner quality; the default is the
    information-theoretic best case ``gamma_P = 1/P``, which makes the
    returned optimum a *lower bound* on any real partitioner — exactly the
    comparison Theorem 2's approximation ratio is stated against.
    """
    if gamma_fn is None:
        gamma_fn = gamma_lower_bound
    best: PartitionPlan | None = None
    for p in range(1, max_p + 1):
        gamma = gamma_fn(p)
        # For fixed P, g_comm increases with Q, so the best feasible Q is
        # the smallest one satisfying both constraints.
        q_cache = int(np.ceil(BYTES_PER_FEATURE * n * f * gamma / cache_bytes))
        q_cores = int(np.ceil(cores / p))
        q = max(1, q_cache, q_cores)
        if q > max_q:
            continue
        comm = g_comm(n, d, f, p, q, gamma)
        per_round = BYTES_PER_FEATURE * n * f * gamma / q
        plan = PartitionPlan(
            p=p,
            q=q,
            gamma_p=gamma,
            comm_bytes=comm,
            comp_ops=g_comp(n, d, f),
            cache_bytes_per_round=per_round,
            feasible=True,
        )
        if best is None or plan.comm_bytes < best.comm_bytes:
            best = plan
    if best is None:
        raise ValueError("no feasible (P, Q) within the search bounds")
    return best
