"""Feature propagation: spmm kernels, partitioning model, Algorithm 6."""

from .cache_model import (
    CacheSim,
    CacheStats,
    propagation_trace,
    simulate_propagation_misses,
)
from .feature_prop import PartitionedPropagator, PropagationReport
from .partition_model import (
    BYTES_PER_FEATURE,
    BYTES_PER_INDEX,
    PartitionPlan,
    brute_force_optimum,
    g_comm,
    g_comp,
    gamma_lower_bound,
    gamma_of_partition,
    gamma_random_partition,
    gcomm_lower_bound,
    random_vertex_partition,
    theorem2_conditions_hold,
    theorem2_plan,
)
from .spmm import MeanAggregator, spmm_sum_numpy, spmm_sum_scipy

__all__ = [
    "MeanAggregator",
    "spmm_sum_numpy",
    "spmm_sum_scipy",
    "PartitionedPropagator",
    "CacheSim",
    "CacheStats",
    "propagation_trace",
    "simulate_propagation_misses",
    "PropagationReport",
    "PartitionPlan",
    "g_comp",
    "g_comm",
    "gamma_lower_bound",
    "gamma_random_partition",
    "gamma_of_partition",
    "random_vertex_partition",
    "theorem2_plan",
    "theorem2_conditions_hold",
    "gcomm_lower_bound",
    "brute_force_optimum",
    "BYTES_PER_INDEX",
    "BYTES_PER_FEATURE",
]
