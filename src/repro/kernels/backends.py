"""Kernel backends and the registry that selects between them.

A backend is a named pair of implementations — one dense ``gemm``, one
sparse ``spmm`` — registered under a string key. The dispatch functions
in :mod:`repro.kernels.ops` look the key up here, so swapping the
implementation under every layer/trainer/serving call site is a one-line
``backend=`` change (or a :func:`set_default_backend` call), never a
model-code edit. Three backends ship:

* ``"scipy"`` — numpy BLAS gemm + scipy CSR spmm (the fast path);
* ``"numpy"`` — numpy BLAS gemm + pure-numpy ``add.reduceat``
  segment-sum spmm (dependency-free oracle, also what the partitioned
  propagation driver models);
* ``"blocked"`` — row-paneled gemm (:func:`make_blocked_gemm`) + scipy
  spmm: the tunable blocking axis the autotuner explores (never
  bit-identical to full BLAS, so only eligible under float32).

The scipy backend memoizes the ``scipy.sparse.csr_matrix`` view of each
:class:`~repro.graphs.csr.CSRGraph` in a weak, id-keyed cache (one entry
per dtype), so repeated SpMMs over the same graph — every training
iteration, every propagation pass — reuse one operator instead of
rebuilding indptr/indices/data wrappers per call.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np
import scipy.sparse as sp

from ..obs import is_enabled as _obs_enabled
from ..obs import metrics as _obs_metrics

if TYPE_CHECKING:  # import only for annotations: keeps repro.kernels
    # importable before repro.graphs finishes initializing (no cycle).
    from ..graphs.csr import CSRGraph

__all__ = [
    "KernelBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "default_backend",
    "set_default_backend",
    "adjacency_matrix",
    "adjacency_cache_stats",
    "make_blocked_gemm",
    "segment_sum",
]


# ---------------------------------------------------------------------------
# Memoized scipy adjacency


# id(graph) -> (weakref to graph, {dtype: csr_matrix}). CSRGraph holds
# ndarrays and is therefore unhashable, so a WeakKeyDictionary cannot be
# used; instead entries are keyed by object id and evicted by a weakref
# callback when the graph is collected (id reuse is also guarded by an
# identity check on lookup).
_ADJACENCY_CACHE: dict[int, tuple["weakref.ref[CSRGraph]", dict] ] = {}

# Running hit/miss tally for the memo cache. A "hit" is a lookup that
# found the (graph, dtype) operator already built; a "miss" had to build
# one (the pre-PR-3 rebuild-per-call cost this cache eliminated). The
# live-entry count is derived: one cache slot per live graph.
_ADJACENCY_STATS = {"hits": 0, "misses": 0}


def adjacency_cache_stats() -> dict[str, int]:
    """Hit/miss/live-entry counts for the weak CSR adjacency memo cache."""
    return {
        "hits": _ADJACENCY_STATS["hits"],
        "misses": _ADJACENCY_STATS["misses"],
        "live_entries": len(_ADJACENCY_CACHE),
    }


def adjacency_matrix(graph: CSRGraph, dtype=np.float64) -> sp.csr_matrix:
    """The unweighted scipy CSR adjacency of ``graph``, memoized per graph.

    The cache is weak in the graph: dropping the last reference to a
    ``CSRGraph`` frees its cached operator too. One entry is kept per
    requested dtype (float32 serving and float64 reference can coexist).
    """
    dtype = np.dtype(dtype)
    key = id(graph)
    entry = _ADJACENCY_CACHE.get(key)
    if entry is None or entry[0]() is not graph:

        def _evict(_ref: object, _key: int = key) -> None:
            _ADJACENCY_CACHE.pop(_key, None)

        entry = (weakref.ref(graph, _evict), {})
        _ADJACENCY_CACHE[key] = entry
    per_dtype = entry[1]
    mat = per_dtype.get(dtype)
    if mat is None:
        _ADJACENCY_STATS["misses"] += 1
        if _obs_enabled():
            _obs_metrics.inc("kernels.adjacency_cache.misses")
            _obs_metrics.set_gauge(
                "kernels.adjacency_cache.live_entries", len(_ADJACENCY_CACHE)
            )
        data = np.ones(graph.num_edges_directed, dtype=dtype)
        n = graph.num_vertices
        mat = sp.csr_matrix((data, graph.indices, graph.indptr), shape=(n, n))
        per_dtype[dtype] = mat
    else:
        _ADJACENCY_STATS["hits"] += 1
        if _obs_enabled():
            _obs_metrics.inc("kernels.adjacency_cache.hits")
    return mat


# ---------------------------------------------------------------------------
# Raw kernel implementations


def _gemm_numpy(
    a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray]
) -> np.ndarray:
    if out is None:
        return a @ b
    return np.matmul(a, b, out=out)


def _spmm_scipy(
    graph: CSRGraph, x: np.ndarray, out: Optional[np.ndarray]
) -> np.ndarray:
    result = adjacency_matrix(graph, x.dtype if x.dtype.kind == "f" else np.float64) @ x
    if out is None:
        return result
    np.copyto(out, result)
    return out


def segment_sum(
    values: np.ndarray,
    indptr: np.ndarray,
    num_segments: int,
    *,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Sum contiguous row-segments of ``values`` delimited by ``indptr``.

    Segment ``i`` is ``values[indptr[i]:indptr[i+1]]``; empty segments
    yield zero rows (``np.add.reduceat``'s empty-segment pitfall — it
    would return the *next* element — is handled by only reducing at the
    starts of non-empty segments).
    """
    shape = (num_segments,) + values.shape[1:]
    if out is None:
        out = np.zeros(shape, dtype=values.dtype)
    else:
        out[...] = 0
    if values.shape[0] == 0:
        return out
    lengths = np.diff(indptr)
    nonempty = np.flatnonzero(lengths > 0)
    out[nonempty] = np.add.reduceat(values, indptr[nonempty], axis=0)
    return out


def make_blocked_gemm(
    block_rows: int = 1024,
    base: Callable[
        [np.ndarray, np.ndarray, Optional[np.ndarray]], np.ndarray
    ] = _gemm_numpy,
) -> Callable[[np.ndarray, np.ndarray, Optional[np.ndarray]], np.ndarray]:
    """A gemm that processes ``a`` in row panels of ``block_rows``.

    Row blocking keeps the active slice of the output (and of ``a``)
    cache-resident for tall-skinny shapes, at the price of one extra
    Python-level loop — a real trade-off, which is exactly what the
    autotuner needs: on some shape classes this wins, on most it loses.
    Panel results are written straight into the output buffer, so the
    result is *not* guaranteed bit-identical to a single full-matrix
    BLAS call (different accumulation blocking); the tuner therefore
    only ever selects it under the float32 tolerance regime.
    """
    if block_rows < 1:
        raise ValueError(f"block_rows must be positive, got {block_rows}")

    def _blocked(
        a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray]
    ) -> np.ndarray:
        m, n = a.shape[0], b.shape[1]
        if m <= block_rows:
            return base(a, b, out)
        if out is None:
            out = np.empty((m, n), dtype=np.result_type(a, b))
        for i in range(0, m, block_rows):
            base(a[i : i + block_rows], b, out[i : i + block_rows])
        return out

    return _blocked


def _spmm_numpy(
    graph: CSRGraph, x: np.ndarray, out: Optional[np.ndarray]
) -> np.ndarray:
    if graph.num_edges_directed == 0:
        shape = (graph.num_vertices, x.shape[1])
        if out is None:
            return np.zeros(shape, dtype=x.dtype)
        out[...] = 0
        return out
    gathered = x[graph.indices]
    return segment_sum(gathered, graph.indptr, graph.num_vertices, out=out)


# ---------------------------------------------------------------------------
# Registry


@dataclass(frozen=True)
class KernelBackend:
    """A named (gemm, spmm) implementation pair.

    ``gemm(a, b, out)`` multiplies two 2-D arrays; ``spmm(graph, x, out)``
    computes the unweighted neighbor-sum ``A @ x`` over a CSR graph. Both
    must write into ``out`` when it is given and return the result array
    either way. Implementations are *raw*: dispatch, validation, timing
    and flop accounting live in :mod:`repro.kernels.ops`.
    """

    name: str
    gemm: Callable[[np.ndarray, np.ndarray, Optional[np.ndarray]], np.ndarray]
    spmm: Callable[[CSRGraph, np.ndarray, Optional[np.ndarray]], np.ndarray]


_REGISTRY: dict[str, KernelBackend] = {}
_DEFAULT_NAME = "scipy"


def register_backend(backend: KernelBackend, *, overwrite: bool = False) -> None:
    """Add ``backend`` to the registry under ``backend.name``."""
    if backend.name in _REGISTRY and not overwrite:
        raise ValueError(f"backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend


def get_backend(name: Optional[str] = None) -> KernelBackend:
    """Look up a backend by name (``None`` → the current default)."""
    key = _DEFAULT_NAME if name is None else name
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {key!r}; available: {available_backends()}"
        ) from None


def available_backends() -> list[str]:
    """Sorted names of every registered backend."""
    return sorted(_REGISTRY)


def default_backend() -> str:
    """Name of the backend used when call sites pass ``backend=None``."""
    return _DEFAULT_NAME


def set_default_backend(name: str) -> str:
    """Change the process-wide default backend; returns the previous name."""
    global _DEFAULT_NAME
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown kernel backend {name!r}; available: {available_backends()}"
        )
    previous = _DEFAULT_NAME
    _DEFAULT_NAME = name
    return previous


register_backend(KernelBackend(name="scipy", gemm=_gemm_numpy, spmm=_spmm_scipy))
register_backend(KernelBackend(name="numpy", gemm=_gemm_numpy, spmm=_spmm_numpy))
register_backend(
    KernelBackend(name="blocked", gemm=make_blocked_gemm(1024), spmm=_spmm_scipy)
)
