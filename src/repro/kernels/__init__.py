"""repro.kernels — the unified compute-kernel layer.

Every GEMM and SpMM in the repo dispatches through this package
(Section V of the paper treats these two kernels as *the* performance
story; GraphVite/GOSH make the same architectural bet). The pieces:

* :mod:`repro.kernels.ops` — ``gemm`` / ``gemm_accumulate`` / ``spmm`` /
  ``spmm_adjoint`` / block gather-scatter / elementwise helpers, all with
  optional ``out=`` buffers, all metered;
* :mod:`repro.kernels.backends` — the named backend registry (``"scipy"``
  CSR vs pure-``"numpy"`` reduceat SpMM vs row-paneled ``"blocked"``
  gemm) plus the weak-ref-memoized scipy adjacency cache;
* :mod:`repro.kernels.autotune` — plan-based dispatch: log-bucketed
  :class:`~repro.kernels.autotune.ShapeClass` keys, per-class
  :class:`~repro.kernels.autotune.ExecutionPlan` microbenchmark-tuned at
  first use, persisted per environment fingerprint;
* :mod:`repro.kernels.roofline` — achieved flops/s and bytes/s per shape
  class vs calibrated machine peaks, for the ``roofline-report`` CLI;
* :mod:`repro.kernels.policy` — :data:`~repro.kernels.policy.REFERENCE`
  (float64, no workspace, bit-identical to the seed) and
  :data:`~repro.kernels.policy.FAST` (float32 + workspace) dtype
  policies;
* :mod:`repro.kernels.workspace` — the keyed buffer arena trainers share
  across iterations;
* :mod:`repro.kernels.accounting` — centralized flop/time counters that
  feed ``repro.obs`` metrics and the simulated-time cost model from one
  place.

See the "Compute kernels" section of ``docs/architecture.md``.
"""

from . import accounting, autotune, backends, ops, policy, roofline, workspace
from .accounting import KernelCounters, capture
from .autotune import (
    ExecutionPlan,
    PlanCache,
    ShapeClass,
    Tuner,
    plan_mode,
    planning,
    set_plan_mode,
)
from .backends import (
    KernelBackend,
    adjacency_cache_stats,
    adjacency_matrix,
    available_backends,
    default_backend,
    get_backend,
    register_backend,
    set_default_backend,
)
from .ops import (
    add_bias,
    gather_segment_sum,
    gemm,
    gemm_accumulate,
    relu,
    relu_backward,
    scatter_add_rows,
    spmm,
    spmm_adjoint,
)
from .policy import FAST, REFERENCE, DtypePolicy, available_policies, resolve_policy
from .workspace import Workspace

__all__ = [
    "accounting",
    "autotune",
    "backends",
    "ops",
    "policy",
    "roofline",
    "workspace",
    "KernelCounters",
    "capture",
    "ExecutionPlan",
    "PlanCache",
    "ShapeClass",
    "Tuner",
    "plan_mode",
    "planning",
    "set_plan_mode",
    "KernelBackend",
    "adjacency_cache_stats",
    "adjacency_matrix",
    "available_backends",
    "default_backend",
    "get_backend",
    "register_backend",
    "set_default_backend",
    "gemm",
    "gemm_accumulate",
    "spmm",
    "spmm_adjoint",
    "gather_segment_sum",
    "scatter_add_rows",
    "relu",
    "relu_backward",
    "add_bias",
    "DtypePolicy",
    "REFERENCE",
    "FAST",
    "resolve_policy",
    "available_policies",
    "Workspace",
]
