"""Centralized flop/byte/time accounting for the kernel layer.

Every GEMM and SpMM dispatched through :mod:`repro.kernels.ops` reports
here, which makes this module the *single source of truth* for compute
cost in the repo: the ``repro.obs`` counters (``gemm.flops``,
``spmm.flops``, ...), the trainer's simulated-time cost model (via
:func:`capture`) and the kernel benchmarks all read the same numbers.
Before this layer existed the spmm flop count lived in
``propagation/spmm.py`` and the gemm count was re-derived analytically in
``train/trainer.py``; both now come from the one place that actually ran
the kernels.

Conventions (shared with :mod:`repro.analysis.complexity`):

* GEMM ``(m, k) @ (k, n)`` costs ``2 * m * k * n`` flops
  (multiply + add per MAC);
* SpMM over ``nnz`` stored edges and ``f`` feature columns costs
  ``2 * nnz * f`` flops (the gather-accumulate counted as one
  multiply-add per edge-feature, matching the paper's Section V count).

Accounting is **always on** for the process-wide :data:`TOTALS` (a few
float adds and two ``perf_counter`` reads per kernel call — negligible
next to any real matmul); the :mod:`repro.obs` metrics are only written
while obs instrumentation is enabled, preserving its kill-switch
guarantee.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from ..obs import is_enabled as _obs_enabled
from ..obs import metrics as _obs_metrics

__all__ = [
    "KernelCounters",
    "ClassCounters",
    "TOTALS",
    "PER_CLASS",
    "capture",
    "record_gemm",
    "record_spmm",
    "reset_totals",
    "per_class_snapshot",
    "gemm_flop_count",
    "spmm_flop_count",
    "gemm_bytes_moved",
    "spmm_bytes_moved",
]


def gemm_flop_count(m: int, k: int, n: int) -> float:
    """Flops of one ``(m, k) @ (k, n)`` dense multiply."""
    return 2.0 * m * k * n


def spmm_flop_count(nnz: int, cols: int) -> float:
    """Flops of one sparse row-gather-sum over ``nnz`` edges, ``cols`` wide."""
    return 2.0 * nnz * cols


def gemm_bytes_moved(m: int, k: int, n: int, itemsize: int) -> float:
    """Modeled minimum memory traffic of one dense multiply.

    Each operand read once, the result written once — the compulsory
    traffic a perfect cache would incur. Real traffic is higher when
    ``k``/``n`` exceed cache, but the roofline's operational-intensity
    axis conventionally uses this lower bound.
    """
    return float(itemsize) * (m * k + k * n + m * n)


def spmm_bytes_moved(rows: int, nnz: int, cols: int, itemsize: int) -> float:
    """Modeled memory traffic of one CSR neighbor-sum ``A @ x``.

    Structure reads (``indptr``: int64, ``indices``: per-edge int32/64 —
    modeled at 8 bytes to match the repo's int64 CSR arrays), one gathered
    feature row per edge, and the dense result written once.
    """
    structure = 8.0 * (rows + 1) + 8.0 * nnz
    gathered = float(itemsize) * nnz * cols
    result = float(itemsize) * rows * cols
    return structure + gathered + result


class KernelCounters:
    """One bucket of kernel-cost counters (flops, calls, wall seconds)."""

    __slots__ = (
        "gemm_calls",
        "gemm_flops",
        "gemm_seconds",
        "spmm_calls",
        "spmm_flops",
        "spmm_seconds",
    )

    def __init__(self) -> None:
        self.gemm_calls = 0
        self.gemm_flops = 0.0
        self.gemm_seconds = 0.0
        self.spmm_calls = 0
        self.spmm_flops = 0.0
        self.spmm_seconds = 0.0

    def snapshot(self) -> dict[str, float]:
        """JSON-ready copy of every counter."""
        return {name: getattr(self, name) for name in self.__slots__}

    def reset(self) -> None:
        """Zero every counter."""
        self.__init__()

    @property
    def total_flops(self) -> float:
        return self.gemm_flops + self.spmm_flops


class ClassCounters:
    """Per-shape-class cost bucket: flops, modeled bytes, wall seconds.

    One instance per :class:`~repro.kernels.autotune.ShapeClass` key
    accumulates in :data:`PER_CLASS`; :mod:`repro.kernels.roofline`
    reads these to place every call site on the achieved-vs-peak chart.
    """

    __slots__ = ("op", "calls", "flops", "bytes", "seconds")

    def __init__(self, op: str = "") -> None:
        self.op = op
        self.calls = 0
        self.flops = 0.0
        self.bytes = 0.0
        self.seconds = 0.0

    def snapshot(self) -> dict[str, float]:
        """JSON-ready copy of this bucket's counters (plus its op)."""
        return {
            "op": self.op,
            "calls": self.calls,
            "flops": self.flops,
            "bytes": self.bytes,
            "seconds": self.seconds,
        }


#: Process-wide totals, always accumulating (cheap), never auto-reset.
TOTALS = KernelCounters()

#: Shape-class key -> :class:`ClassCounters`. Populated by every kernel
#: call dispatched with a class key; reset with :func:`reset_totals`.
PER_CLASS: dict[str, ClassCounters] = {}

# Active capture scopes; every record fans out to all of them plus TOTALS.
_CAPTURES: list[KernelCounters] = []

_perf_counter = time.perf_counter


def _record_class(
    op: str, class_key: str, flops: float, bytes_moved: float, seconds: float
) -> None:
    bucket = PER_CLASS.get(class_key)
    if bucket is None:
        bucket = PER_CLASS[class_key] = ClassCounters(op)
    bucket.calls += 1
    bucket.flops += flops
    bucket.bytes += bytes_moved
    bucket.seconds += seconds


def record_gemm(
    m: int,
    k: int,
    n: int,
    seconds: float,
    *,
    class_key: str | None = None,
    itemsize: int = 8,
) -> None:
    """Account one dense multiply of shape ``(m, k) @ (k, n)``.

    ``class_key``/``itemsize`` additionally feed the per-shape-class
    roofline buckets; callers outside the dispatch layer may omit them.
    """
    flops = 2.0 * m * k * n
    TOTALS.gemm_calls += 1
    TOTALS.gemm_flops += flops
    TOTALS.gemm_seconds += seconds
    for cap in _CAPTURES:
        cap.gemm_calls += 1
        cap.gemm_flops += flops
        cap.gemm_seconds += seconds
    if class_key is not None:
        _record_class(
            "gemm", class_key, flops, gemm_bytes_moved(m, k, n, itemsize), seconds
        )
    if _obs_enabled():
        _obs_metrics.inc("gemm.ops")
        _obs_metrics.inc("gemm.flops", flops)
        _obs_metrics.inc("gemm.seconds", seconds)


def record_spmm(
    nnz: int,
    cols: int,
    seconds: float,
    *,
    rows: int = 0,
    class_key: str | None = None,
    itemsize: int = 8,
) -> None:
    """Account one sparse aggregation over ``nnz`` edges, ``cols`` wide."""
    flops = 2.0 * nnz * cols
    TOTALS.spmm_calls += 1
    TOTALS.spmm_flops += flops
    TOTALS.spmm_seconds += seconds
    for cap in _CAPTURES:
        cap.spmm_calls += 1
        cap.spmm_flops += flops
        cap.spmm_seconds += seconds
    if class_key is not None:
        _record_class(
            "spmm",
            class_key,
            flops,
            spmm_bytes_moved(rows, nnz, cols, itemsize),
            seconds,
        )
    if _obs_enabled():
        _obs_metrics.inc("spmm.ops")
        _obs_metrics.inc("spmm.flops", flops)
        _obs_metrics.inc("spmm.seconds", seconds)


def per_class_snapshot() -> dict[str, dict[str, float]]:
    """JSON-ready copy of every per-shape-class bucket."""
    return {key: PER_CLASS[key].snapshot() for key in sorted(PER_CLASS)}


@contextmanager
def capture() -> Iterator[KernelCounters]:
    """Scope that accumulates the kernel costs of everything inside it.

    Scopes nest: an inner capture does not steal counts from an outer
    one — every active scope sees every kernel call. The trainer wraps
    each iteration's forward+backward in a capture and prices the metered
    ``gemm_flops`` through the Amdahl cost model.
    """
    counters = KernelCounters()
    _CAPTURES.append(counters)
    try:
        yield counters
    finally:
        _CAPTURES.remove(counters)


def reset_totals() -> None:
    """Zero :data:`TOTALS` and :data:`PER_CLASS` (bench runners call this)."""
    TOTALS.reset()
    PER_CLASS.clear()
