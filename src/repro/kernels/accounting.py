"""Centralized flop/byte/time accounting for the kernel layer.

Every GEMM and SpMM dispatched through :mod:`repro.kernels.ops` reports
here, which makes this module the *single source of truth* for compute
cost in the repo: the ``repro.obs`` counters (``gemm.flops``,
``spmm.flops``, ...), the trainer's simulated-time cost model (via
:func:`capture`) and the kernel benchmarks all read the same numbers.
Before this layer existed the spmm flop count lived in
``propagation/spmm.py`` and the gemm count was re-derived analytically in
``train/trainer.py``; both now come from the one place that actually ran
the kernels.

Conventions (shared with :mod:`repro.analysis.complexity`):

* GEMM ``(m, k) @ (k, n)`` costs ``2 * m * k * n`` flops
  (multiply + add per MAC);
* SpMM over ``nnz`` stored edges and ``f`` feature columns costs
  ``2 * nnz * f`` flops (the gather-accumulate counted as one
  multiply-add per edge-feature, matching the paper's Section V count).

Accounting is **always on** for the process-wide :data:`TOTALS` (a few
float adds and two ``perf_counter`` reads per kernel call — negligible
next to any real matmul); the :mod:`repro.obs` metrics are only written
while obs instrumentation is enabled, preserving its kill-switch
guarantee.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from ..obs import is_enabled as _obs_enabled
from ..obs import metrics as _obs_metrics

__all__ = [
    "KernelCounters",
    "TOTALS",
    "capture",
    "record_gemm",
    "record_spmm",
    "reset_totals",
    "gemm_flop_count",
    "spmm_flop_count",
]


def gemm_flop_count(m: int, k: int, n: int) -> float:
    """Flops of one ``(m, k) @ (k, n)`` dense multiply."""
    return 2.0 * m * k * n


def spmm_flop_count(nnz: int, cols: int) -> float:
    """Flops of one sparse row-gather-sum over ``nnz`` edges, ``cols`` wide."""
    return 2.0 * nnz * cols


class KernelCounters:
    """One bucket of kernel-cost counters (flops, calls, wall seconds)."""

    __slots__ = (
        "gemm_calls",
        "gemm_flops",
        "gemm_seconds",
        "spmm_calls",
        "spmm_flops",
        "spmm_seconds",
    )

    def __init__(self) -> None:
        self.gemm_calls = 0
        self.gemm_flops = 0.0
        self.gemm_seconds = 0.0
        self.spmm_calls = 0
        self.spmm_flops = 0.0
        self.spmm_seconds = 0.0

    def snapshot(self) -> dict[str, float]:
        """JSON-ready copy of every counter."""
        return {name: getattr(self, name) for name in self.__slots__}

    def reset(self) -> None:
        """Zero every counter."""
        self.__init__()

    @property
    def total_flops(self) -> float:
        return self.gemm_flops + self.spmm_flops


#: Process-wide totals, always accumulating (cheap), never auto-reset.
TOTALS = KernelCounters()

# Active capture scopes; every record fans out to all of them plus TOTALS.
_CAPTURES: list[KernelCounters] = []

_perf_counter = time.perf_counter


def record_gemm(m: int, k: int, n: int, seconds: float) -> None:
    """Account one dense multiply of shape ``(m, k) @ (k, n)``."""
    flops = 2.0 * m * k * n
    TOTALS.gemm_calls += 1
    TOTALS.gemm_flops += flops
    TOTALS.gemm_seconds += seconds
    for cap in _CAPTURES:
        cap.gemm_calls += 1
        cap.gemm_flops += flops
        cap.gemm_seconds += seconds
    if _obs_enabled():
        _obs_metrics.inc("gemm.ops")
        _obs_metrics.inc("gemm.flops", flops)
        _obs_metrics.inc("gemm.seconds", seconds)


def record_spmm(nnz: int, cols: int, seconds: float) -> None:
    """Account one sparse aggregation over ``nnz`` edges, ``cols`` wide."""
    flops = 2.0 * nnz * cols
    TOTALS.spmm_calls += 1
    TOTALS.spmm_flops += flops
    TOTALS.spmm_seconds += seconds
    for cap in _CAPTURES:
        cap.spmm_calls += 1
        cap.spmm_flops += flops
        cap.spmm_seconds += seconds
    if _obs_enabled():
        _obs_metrics.inc("spmm.ops")
        _obs_metrics.inc("spmm.flops", flops)
        _obs_metrics.inc("spmm.seconds", seconds)


@contextmanager
def capture() -> Iterator[KernelCounters]:
    """Scope that accumulates the kernel costs of everything inside it.

    Scopes nest: an inner capture does not steal counts from an outer
    one — every active scope sees every kernel call. The trainer wraps
    each iteration's forward+backward in a capture and prices the metered
    ``gemm_flops`` through the Amdahl cost model.
    """
    counters = KernelCounters()
    _CAPTURES.append(counters)
    try:
        yield counters
    finally:
        _CAPTURES.remove(counters)


def reset_totals() -> None:
    """Zero the process-wide :data:`TOTALS` (bench runners call this)."""
    TOTALS.reset()
