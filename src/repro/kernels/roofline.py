"""Measured roofline: achieved vs attainable throughput per shape class.

:mod:`repro.kernels.accounting` already buckets every dispatched kernel
call by :class:`~repro.kernels.autotune.ShapeClass` — exact flops, a
compulsory-traffic byte model, and wall seconds. This module turns those
buckets into the classic roofline picture:

* **achieved** — ``flops / seconds`` and ``bytes / seconds`` actually
  measured for the bucket;
* **attainable** — ``min(peak_compute, intensity × peak_bandwidth)``
  where ``intensity = flops / bytes`` is the bucket's operational
  intensity and the peaks come from a short on-machine calibration
  (one cache-busting GEMM for compute, one large memcpy for bandwidth),
  not from a spec sheet;
* **fraction** — achieved / attainable, the number the
  ``roofline_fraction`` SLO rule watches.

Distinct from :mod:`repro.analysis.roofline`, which places kernels on the
*paper's analytic cost model*; this module reports what the hardware
actually did. The ``roofline-report`` CLI renders the table and writes an
``OBS_roofline.json`` artifact next to the other obs exports.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import asdict, dataclass

import numpy as np

from ..obs.record import environment_fingerprint, fingerprint_key
from . import accounting

__all__ = [
    "MachinePeaks",
    "RooflinePoint",
    "calibrate_peaks",
    "roofline_points",
    "roofline_report",
    "render_roofline",
    "write_roofline_json",
]


@dataclass(frozen=True)
class MachinePeaks:
    """Calibrated machine ceilings, per dtype of the compute probe."""

    dtype: str
    peak_flops_s: float
    peak_bytes_s: float

    @property
    def ridge_intensity(self) -> float:
        """Flops/byte where the roofline's two ceilings meet."""
        if self.peak_bytes_s <= 0:
            return float("inf")
        return self.peak_flops_s / self.peak_bytes_s


_PEAKS_CACHE: dict[str, MachinePeaks] = {}


def calibrate_peaks(
    dtype=np.float32,
    *,
    timer=time.perf_counter,
    gemm_size: int = 384,
    copy_mib: int = 32,
    repeats: int = 3,
) -> MachinePeaks:
    """Measure this machine's compute and bandwidth ceilings.

    Compute: the best of ``repeats`` square GEMMs (large enough to be
    compute-bound, small enough to finish in milliseconds). Bandwidth:
    the best of ``repeats`` large copies, counted as read + write
    traffic. Cached per dtype — calibration runs once per process.
    """
    key = np.dtype(dtype).name
    cached = _PEAKS_CACHE.get(key)
    if cached is not None:
        return cached
    rng = np.random.default_rng(0)
    a = rng.standard_normal((gemm_size, gemm_size)).astype(dtype)
    b = rng.standard_normal((gemm_size, gemm_size)).astype(dtype)
    out = np.empty_like(a)
    np.matmul(a, b, out=out)  # warm the BLAS path
    best_gemm = float("inf")
    for _ in range(repeats):
        t0 = timer()
        np.matmul(a, b, out=out)
        best_gemm = min(best_gemm, timer() - t0)
    peak_flops = 2.0 * gemm_size**3 / max(best_gemm, 1e-12)

    n_items = copy_mib * (1 << 20) // np.dtype(dtype).itemsize
    src = np.zeros(n_items, dtype=dtype)
    dst = np.empty_like(src)
    np.copyto(dst, src)  # fault the pages in
    best_copy = float("inf")
    for _ in range(repeats):
        t0 = timer()
        np.copyto(dst, src)
        best_copy = min(best_copy, timer() - t0)
    peak_bytes = 2.0 * src.nbytes / max(best_copy, 1e-12)

    peaks = MachinePeaks(
        dtype=key, peak_flops_s=peak_flops, peak_bytes_s=peak_bytes
    )
    _PEAKS_CACHE[key] = peaks
    return peaks


@dataclass(frozen=True)
class RooflinePoint:
    """One shape class placed on the roofline."""

    class_key: str
    op: str
    calls: int
    flops: float
    bytes: float
    seconds: float
    intensity: float
    achieved_flops_s: float
    achieved_bytes_s: float
    attainable_flops_s: float
    fraction: float


def roofline_points(
    per_class: dict[str, dict[str, float]] | None = None,
    *,
    peaks: MachinePeaks | None = None,
) -> list[RooflinePoint]:
    """Place every accounted shape class on the roofline.

    ``per_class`` defaults to :func:`accounting.per_class_snapshot` —
    i.e. everything dispatched since the last ``reset_totals``. Buckets
    with no measured wall time are skipped (nothing to place).
    """
    if per_class is None:
        per_class = accounting.per_class_snapshot()
    if peaks is None:
        peaks = calibrate_peaks()
    points = []
    for key in sorted(per_class):
        bucket = per_class[key]
        seconds = float(bucket["seconds"])
        flops = float(bucket["flops"])
        nbytes = float(bucket["bytes"])
        if seconds <= 0 or flops <= 0:
            continue
        intensity = flops / nbytes if nbytes > 0 else float("inf")
        attainable = min(peaks.peak_flops_s, intensity * peaks.peak_bytes_s)
        achieved = flops / seconds
        points.append(
            RooflinePoint(
                class_key=key,
                op=str(bucket.get("op", "")),
                calls=int(bucket["calls"]),
                flops=flops,
                bytes=nbytes,
                seconds=seconds,
                intensity=intensity,
                achieved_flops_s=achieved,
                achieved_bytes_s=nbytes / seconds,
                attainable_flops_s=attainable,
                fraction=achieved / attainable if attainable > 0 else 0.0,
            )
        )
    return points


def roofline_report(
    per_class: dict[str, dict[str, float]] | None = None,
    *,
    peaks: MachinePeaks | None = None,
    plan_entries: dict[str, dict] | None = None,
) -> dict:
    """JSON-ready roofline document: peaks, points, environment.

    When ``plan_entries`` (the plan cache's tuned table) is given, each
    point also carries the tuned throughput of its shape class and the
    achieved/tuned ratio — the quantity the SLO rule gates on.
    """
    if peaks is None:
        peaks = calibrate_peaks()
    points = roofline_points(per_class, peaks=peaks)
    env = environment_fingerprint()
    rows = []
    for p in points:
        row = asdict(p)
        if plan_entries is not None:
            entry = plan_entries.get(p.class_key)
            tuned = entry.get("tuned_flops_s") if entry else None
            row["tuned_flops_s"] = tuned
            row["fraction_of_tuned"] = (
                p.achieved_flops_s / tuned if tuned else None
            )
        rows.append(row)
    return {
        "schema": "repro.roofline.v1",
        "peaks": asdict(peaks),
        "ridge_intensity": peaks.ridge_intensity,
        "points": rows,
        "environment": env,
        "fingerprint_key": fingerprint_key(env),
    }


def render_roofline(report: dict) -> str:
    """Fixed-width table of a :func:`roofline_report` document."""
    peaks = report["peaks"]
    lines = [
        "roofline (measured peaks: "
        f"{peaks['peak_flops_s'] / 1e9:.1f} Gflop/s compute, "
        f"{peaks['peak_bytes_s'] / 1e9:.1f} GB/s bandwidth, "
        f"ridge {report['ridge_intensity']:.1f} flop/B)",
        f"{'shape class':<34} {'calls':>6} {'int.':>7} "
        f"{'achieved':>12} {'attainable':>12} {'frac':>6}",
    ]
    for p in report["points"]:
        intensity = p["intensity"]
        int_s = f"{intensity:7.2f}" if np.isfinite(intensity) else "    inf"
        lines.append(
            f"{p['class_key']:<34} {p['calls']:>6} {int_s} "
            f"{p['achieved_flops_s'] / 1e9:>10.2f} G "
            f"{p['attainable_flops_s'] / 1e9:>10.2f} G "
            f"{p['fraction']:>6.2f}"
        )
    if len(lines) == 2:
        lines.append("  (no accounted kernel calls)")
    return "\n".join(lines)


def write_roofline_json(out_dir: pathlib.Path | str, report: dict) -> pathlib.Path:
    """Write the OBS_*-style roofline artifact; returns its path."""
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / "OBS_roofline.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
