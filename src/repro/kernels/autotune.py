"""Plan-based autotuned kernel dispatch.

The Harvard embedding-dimension study (arXiv:2212.00827) observes that
the optimal execution strategy for GCN compute flips with the shape
triple ``(n, d, f)`` — no single backend × blocking × workspace choice
wins across the workloads this repo runs. This module turns the static
dispatch of :mod:`repro.kernels.ops` into *plan-based* dispatch:

* :class:`ShapeClass` — a log-bucketed shape descriptor (``m``/``k``/``n``
  for GEMM; vertices/columns/sparsity-density for SpMM) plus the dtype
  and call variant, so "the same kind of call" maps to one tuning key
  even though sampled-subgraph sizes jitter iteration to iteration;
* :class:`ExecutionPlan` — what to do for one shape class: which
  registry backend, row-blocking factor, and workspace strategy
  (``"fresh"`` allocation vs the shared arena for transient results);
* :class:`Tuner` — microbenchmarks the candidate plans *on the live
  operands of the first call* in a shape class, drops candidates whose
  output is not numerically acceptable, and picks the fastest;
* :class:`PlanCache` — the per-process plan table, persisted to disk
  keyed by :func:`repro.obs.record.fingerprint_key` so later runs on
  the same environment skip tuning entirely.

Three process-wide **plan modes** govern resolution (see
:func:`set_plan_mode` / :func:`planning`):

* ``"fast"`` (default) — static dispatch: the registry default backend,
  unblocked, fresh allocations. Bit-for-bit the pre-autotune behavior.
* ``"reference"`` — same dispatch as ``"fast"`` but semantically pinned:
  never tunes, never blocks, regardless of any cached plan.
* ``"auto"`` — resolve through the :class:`PlanCache`, tuning at first
  use. **float64 inputs always pin the reference plan** even in auto
  mode: the reference dtype policy's bit-identity guarantee is
  structural, not best-effort (blocked BLAS and the numpy SpMM are not
  bit-identical to the defaults — measured, not assumed).

Explicit ``backend=`` or ``plan=`` arguments at a call site always win
over the mode. Tuning microbenchmarks run on raw backend
implementations and are **never** recorded by
:mod:`repro.kernels.accounting` — the flop account only ever sees real
work.

The **arena** workspace strategy returns memory owned by a shared
:class:`~repro.kernels.workspace.Workspace`, which the *next* call of
the same shape class will reuse. It therefore only applies to calls the
caller has marked ``transient=True`` — "I consume this result before my
next same-shaped kernel call" (the serving index's similarity blocks,
for example). Unmarked calls always get fresh or caller-provided
memory.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from ..obs import is_enabled as _obs_enabled
from ..obs import metrics as _obs_metrics
from ..obs.record import environment_fingerprint, fingerprint_key
from .backends import KernelBackend, available_backends, get_backend
from .workspace import Workspace

if TYPE_CHECKING:  # annotation-only; avoids the graphs init cycle.
    from ..graphs.csr import CSRGraph

__all__ = [
    "PLAN_MODES",
    "PLAN_SCHEMA_VERSION",
    "ShapeClass",
    "ExecutionPlan",
    "REFERENCE_PLAN",
    "STATIC_PLAN",
    "Tuner",
    "PlanCache",
    "plan_mode",
    "set_plan_mode",
    "planning",
    "get_plan_cache",
    "set_plan_cache",
    "default_cache_dir",
]

#: Valid values of the process-wide plan mode and of
#: ``TrainConfig.kernel_plan`` / ``ServerConfig.kernel_plan``.
PLAN_MODES = ("auto", "fast", "reference")

#: Bumped when the persisted plan-table shape changes incompatibly.
PLAN_SCHEMA_VERSION = 1

#: Environment variable overriding the on-disk plan-table directory.
CACHE_DIR_ENV = "REPRO_KERNEL_PLAN_CACHE"


def default_cache_dir() -> pathlib.Path:
    """Where plan tables persist: ``$REPRO_KERNEL_PLAN_CACHE`` or
    ``~/.cache/repro/kernel-plans``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return pathlib.Path(override).expanduser()
    return pathlib.Path("~/.cache/repro/kernel-plans").expanduser()


# ---------------------------------------------------------------------------
# Shape classes


def _log2_bucket(x: int) -> int:
    """``ceil(log2(x))`` for x >= 1 (0 for x <= 1): the size bucket."""
    return max(0, int(x) - 1).bit_length()


def _density_bucket(nnz: int, rows: int) -> int:
    """``floor(log10(nnz / rows^2))`` — the sparsity-density decade."""
    if rows <= 0 or nnz <= 0:
        return -12
    density = nnz / (float(rows) * float(rows))
    return int(math.floor(math.log10(max(density, 1e-12))))


@dataclass(frozen=True)
class ShapeClass:
    """One tuning key: op, log-bucketed dims, dtype and call variant.

    ``variant`` captures how the call provides its result memory —
    ``"out"`` (caller buffer), ``"alloc"`` (fresh allocation) or
    ``"transient"`` (caller marked the result short-lived) — because the
    winning plan genuinely differs between them: the arena strategy only
    exists for transient calls, and blocking pays off mainly when the
    result memory is warm.
    """

    op: str
    buckets: tuple[int, ...]
    dtype: str
    variant: str = "alloc"

    @property
    def key(self) -> str:
        dims = ".".join(str(b) for b in self.buckets)
        return f"{self.op}[{dims}|{self.dtype}|{self.variant}]"

    @classmethod
    def for_gemm(
        cls, m: int, k: int, n: int, dtype: np.dtype, *, variant: str = "alloc"
    ) -> "ShapeClass":
        return cls(
            op="gemm",
            buckets=(_log2_bucket(m), _log2_bucket(k), _log2_bucket(n)),
            dtype=np.dtype(dtype).name,
            variant=variant,
        )

    @classmethod
    def for_spmm(
        cls, rows: int, nnz: int, cols: int, dtype: np.dtype, *, variant: str = "alloc"
    ) -> "ShapeClass":
        return cls(
            op="spmm",
            buckets=(
                _log2_bucket(rows),
                _log2_bucket(cols),
                _density_bucket(nnz, rows),
            ),
            dtype=np.dtype(dtype).name,
            variant=variant,
        )


# ---------------------------------------------------------------------------
# Execution plans


@dataclass(frozen=True)
class ExecutionPlan:
    """How to run one shape class.

    ``backend=None`` means the registry default; ``block_rows=0`` means
    unblocked; ``workspace`` is ``"fresh"`` (allocate/out= as given) or
    ``"arena"`` (transient results land in the shared arena buffer).
    ``source`` records where the plan came from — purely diagnostic.
    """

    backend: Optional[str] = None
    block_rows: int = 0
    workspace: str = "fresh"
    source: str = "static"

    def as_dict(self) -> dict:
        """JSON-ready form, inverse of :meth:`from_dict`."""
        return {
            "backend": self.backend,
            "block_rows": self.block_rows,
            "workspace": self.workspace,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ExecutionPlan":
        backend = d.get("backend")
        return cls(
            backend=None if backend is None else str(backend),
            block_rows=int(d.get("block_rows", 0)),
            workspace=str(d.get("workspace", "fresh")),
            source=str(d.get("source", "tuned")),
        )

    def describe(self) -> str:
        """Compact human label, e.g. ``default+block1024+arena``."""
        parts = [self.backend or "default"]
        if self.block_rows:
            parts.append(f"block{self.block_rows}")
        if self.workspace != "fresh":
            parts.append(self.workspace)
        return "+".join(parts)


#: The bit-identical plan: default backend, unblocked, fresh memory —
#: literally the pre-autotune dispatch sequence.
REFERENCE_PLAN = ExecutionPlan(source="reference")

#: The static fast-path plan (same dispatch as the reference plan; kept
#: distinct so diagnostics can tell "pinned" from "never tuned").
STATIC_PLAN = ExecutionPlan(source="static")


def _gemm_candidates(variant: str) -> list[ExecutionPlan]:
    """Candidate plans for one float32 GEMM shape class."""
    plans = [ExecutionPlan(source="tuned")]
    if variant == "out":
        plans += [
            ExecutionPlan(block_rows=b, source="tuned") for b in (256, 1024, 4096)
        ]
    elif variant == "transient":
        plans += [
            ExecutionPlan(workspace="arena", source="tuned"),
            ExecutionPlan(block_rows=256, workspace="arena", source="tuned"),
            ExecutionPlan(block_rows=1024, workspace="arena", source="tuned"),
        ]
    else:  # plain allocation: blocking into cold memory rarely pays,
        # but let the tuner check one blocked variant anyway.
        plans.append(ExecutionPlan(block_rows=1024, source="tuned"))
    return plans


def _spmm_candidates(variant: str) -> list[ExecutionPlan]:
    """Candidate plans for one float32 SpMM shape class."""
    names = [n for n in ("scipy", "numpy") if n in available_backends()]
    return [ExecutionPlan(backend=n, source="tuned") for n in names]


# ---------------------------------------------------------------------------
# Plan execution (shared by dispatch and the tuner's microbenchmarks)

#: Arena behind the ``"arena"`` workspace strategy. Keyed by shape
#: class, capacity-matched: same-class transient calls reuse one buffer.
_ARENA = Workspace()


def transient_arena() -> Workspace:
    """The shared arena backing ``workspace="arena"`` plans (stats/tests)."""
    return _ARENA


def execute_gemm(
    impl: KernelBackend,
    plan: ExecutionPlan,
    a: np.ndarray,
    b: np.ndarray,
    out: Optional[np.ndarray],
    *,
    transient: bool = False,
) -> np.ndarray:
    """Run ``a @ b`` under ``plan`` (blocking + workspace strategy)."""
    m, n = a.shape[0], b.shape[1]
    if out is None and transient and plan.workspace == "arena":
        out = _ARENA.buffer(("gemm", n, a.dtype.str), (m, n), a.dtype)
    if plan.block_rows and m > plan.block_rows:
        if out is None:
            out = np.empty((m, n), dtype=np.result_type(a, b))
        step = plan.block_rows
        for i in range(0, m, step):
            impl.gemm(a[i : i + step], b, out[i : i + step])
        return out
    return impl.gemm(a, b, out)


def execute_spmm(
    impl: KernelBackend,
    plan: ExecutionPlan,
    graph: "CSRGraph",
    x: np.ndarray,
    out: Optional[np.ndarray],
) -> np.ndarray:
    """Run ``A @ x`` under ``plan`` (backend choice only, today)."""
    return impl.spmm(graph, x, out)


# ---------------------------------------------------------------------------
# Tuner


class Tuner:
    """Microbenchmarks candidate plans on live operands; picks the winner.

    ``timer`` is injectable so tests can drive deterministic choices;
    ``repeats``/``warmup`` bound the first-use cost (warmup also doubles
    as the correctness probe: candidates whose output strays from the
    default plan's beyond ``rtol``/``atol`` are dropped, so a tuned plan
    can never be numerically worse than the fast policy's tolerance).
    ``microbenchmarks`` counts individual candidate timings — the cached
    second-run smoke test asserts it stays zero.
    """

    def __init__(
        self,
        *,
        repeats: int = 3,
        warmup: int = 1,
        timer=time.perf_counter,
        rtol: float = 2e-3,
        atol: float = 1e-4,
    ) -> None:
        self.repeats = repeats
        self.warmup = warmup
        self.timer = timer
        self.rtol = rtol
        self.atol = atol
        self.microbenchmarks = 0

    def _time(self, fn) -> float:
        best = math.inf
        for _ in range(max(1, self.repeats)):
            t0 = self.timer()
            fn()
            best = min(best, self.timer() - t0)
            self.microbenchmarks += 1
            if _obs_enabled():
                _obs_metrics.inc("kernels.tune.microbench")
        return best

    def pick(
        self,
        candidates: list[ExecutionPlan],
        run,
        *,
        flops: float,
        exact: bool = False,
    ) -> tuple[ExecutionPlan, dict]:
        """Fastest acceptable candidate plus its table entry.

        ``run(plan)`` executes one candidate and returns its result
        array. The first candidate is the baseline: with ``exact=True``
        later candidates must match it bit-for-bit, otherwise within
        ``rtol``/``atol``.
        """
        if not candidates:
            raise ValueError("no candidate plans to tune over")
        reference = np.asarray(run(candidates[0]))
        timings: dict[str, float] = {}
        kept: list[tuple[ExecutionPlan, float]] = []
        for plan in candidates:
            result = np.asarray(run(plan))  # warmup + correctness probe
            if result.shape != reference.shape:
                continue
            if exact:
                acceptable = bool(np.array_equal(result, reference))
            else:
                acceptable = bool(
                    np.allclose(result, reference, rtol=self.rtol, atol=self.atol)
                )
            if not acceptable:
                continue
            best = self._time(lambda p=plan: run(p))
            timings[plan.describe()] = best
            kept.append((plan, best))
        if not kept:  # every alternative failed the probe: stay static
            return STATIC_PLAN, {"plan": STATIC_PLAN.as_dict(), "timings_s": {}}
        winner, best_s = min(kept, key=lambda pair: pair[1])
        entry = {
            "plan": winner.as_dict(),
            "best_s": best_s,
            "tuned_flops_s": (flops / best_s) if best_s > 0 else None,
            "timings_s": timings,
            "candidates": len(candidates),
        }
        return winner, entry


# ---------------------------------------------------------------------------
# Plan cache


class PlanCache:
    """Shape class → :class:`ExecutionPlan`, persisted per environment.

    The on-disk table lives at ``<cache_dir>/plans-<fingerprint_key>.json``
    where the key digests the configuration part of the environment
    fingerprint (python/numpy/platform — never the git sha), so a table
    tuned once is reused by every later run on the same environment and
    never leaks across environments.

    An unreadable table is not fatal: resolution warns once and falls
    back to the default backend (static plans) until :meth:`clear`
    rebuilds the file — a corrupted cache degrades to the pre-autotune
    behavior, it cannot take training down.
    """

    def __init__(
        self,
        cache_dir: pathlib.Path | str | None = None,
        *,
        env: dict[str, str] | None = None,
        tuner: Tuner | None = None,
        persist: bool = True,
    ) -> None:
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir else default_cache_dir()
        self.env = env or environment_fingerprint()
        self.key = fingerprint_key(self.env)
        self.tuner = tuner or Tuner()
        self.persist = persist
        self.plans: dict[str, ExecutionPlan] = {}
        self.entries: dict[str, dict] = {}
        self.load_failed = False
        self._loaded = False

    # -- persistence ---------------------------------------------------
    @property
    def path(self) -> pathlib.Path:
        return self.cache_dir / f"plans-{self.key}.json"

    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        if not self.path.exists():
            return
        try:
            payload = json.loads(self.path.read_text())
            table = payload["plans"]
            if not isinstance(table, dict):
                raise ValueError("plan table is not a mapping")
        except (OSError, ValueError, KeyError) as exc:
            self.load_failed = True
            warnings.warn(
                f"kernel plan cache {self.path} is unreadable ({exc}); "
                "falling back to the default backend — run "
                "`python -m repro.cli kernel-tune clear` to rebuild it",
                RuntimeWarning,
                stacklevel=3,
            )
            if _obs_enabled():
                _obs_metrics.inc("kernels.plan.load_failed")
            return
        known = set(available_backends())
        for key, entry in table.items():
            try:
                plan = ExecutionPlan.from_dict(entry["plan"])
            except (TypeError, KeyError, ValueError):
                warnings.warn(
                    f"kernel plan cache {self.path}: dropping malformed "
                    f"entry {key!r}",
                    RuntimeWarning,
                    stacklevel=3,
                )
                continue
            if plan.backend is not None and plan.backend not in known:
                warnings.warn(
                    f"kernel plan cache {self.path}: entry {key!r} names "
                    f"unknown backend {plan.backend!r}; using the default "
                    "backend for that shape class",
                    RuntimeWarning,
                    stacklevel=3,
                )
                continue
            self.plans[key] = plan
            self.entries[key] = dict(entry)
        if _obs_enabled():
            _obs_metrics.inc("kernels.plan.loaded", len(self.plans))

    def save(self) -> pathlib.Path | None:
        """Write the table (atomic replace); returns the path or None."""
        if not self.persist:
            return None
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": PLAN_SCHEMA_VERSION,
            "key": self.key,
            "env": dict(self.env),
            "plans": {
                key: dict(self.entries[key], plan=self.plans[key].as_dict())
                for key in sorted(self.plans)
            },
        }
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        tmp.replace(self.path)
        return self.path

    def clear(self) -> int:
        """Drop the in-memory table and delete this environment's file.

        Returns the number of on-disk tables removed. Also resets the
        unreadable-cache latch so tuning resumes.
        """
        removed = 0
        if self.path.exists():
            self.path.unlink()
            removed = 1
        self.plans.clear()
        self.entries.clear()
        self.load_failed = False
        self._loaded = False
        return removed

    def tuned_entries(self) -> dict[str, dict]:
        """Entries with a measured tuned throughput (for the SLO rule)."""
        self._ensure_loaded()
        return {
            key: entry
            for key, entry in self.entries.items()
            if entry.get("tuned_flops_s")
        }

    # -- resolution ----------------------------------------------------
    def _lookup(self, sc: ShapeClass) -> ExecutionPlan | None:
        self._ensure_loaded()
        plan = self.plans.get(sc.key)
        if _obs_enabled():
            _obs_metrics.inc(
                "kernels.plan.hits" if plan is not None else "kernels.plan.misses"
            )
        return plan

    def _store(self, sc: ShapeClass, plan: ExecutionPlan, entry: dict) -> None:
        self.plans[sc.key] = plan
        self.entries[sc.key] = entry
        try:
            self.save()
        except OSError as exc:  # read-only cache dir: tune per process
            warnings.warn(
                f"could not persist kernel plan table to {self.path}: {exc}",
                RuntimeWarning,
                stacklevel=3,
            )

    def resolve_gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        out: Optional[np.ndarray],
        *,
        transient: bool = False,
    ) -> ExecutionPlan:
        """Plan for this GEMM call, tuning on first use of its class."""
        if a.dtype != b.dtype or a.dtype.kind != "f" or a.dtype == np.float64:
            # The reference (float64) regime is pinned bit-identical; a
            # mixed-dtype call is on nobody's hot path — don't tune it.
            return REFERENCE_PLAN
        self._ensure_loaded()  # the latch below must see the load result
        if self.load_failed:
            return STATIC_PLAN
        variant = (
            "out" if out is not None else ("transient" if transient else "alloc")
        )
        sc = ShapeClass.for_gemm(
            a.shape[0], a.shape[1], b.shape[1], a.dtype, variant=variant
        )
        plan = self._lookup(sc)
        if plan is not None:
            return plan
        scratch = np.empty((a.shape[0], b.shape[1]), dtype=a.dtype)
        impl_of = get_backend

        def run(p: ExecutionPlan) -> np.ndarray:
            # Each candidate is timed exactly as dispatch would run it —
            # arena plans land in the shared arena buffer, "out" calls in
            # the probe scratch (standing in for the caller's buffer, so
            # the tuner never touches real caller memory), and
            # alloc/transient fresh-workspace plans pay the allocation.
            if p.workspace == "arena":
                arena_out = _ARENA.buffer(
                    ("gemm", b.shape[1], a.dtype.str), scratch.shape, a.dtype
                )
                return execute_gemm(
                    impl_of(p.backend),
                    ExecutionPlan(p.backend, p.block_rows, "fresh", p.source),
                    a,
                    b,
                    arena_out,
                )
            if variant == "out":
                return execute_gemm(impl_of(p.backend), p, a, b, scratch)
            return execute_gemm(impl_of(p.backend), p, a, b, None)

        flops = 2.0 * a.shape[0] * a.shape[1] * b.shape[1]
        plan, entry = self.tuner.pick(_gemm_candidates(variant), run, flops=flops)
        entry["shape"] = [int(a.shape[0]), int(a.shape[1]), int(b.shape[1])]
        entry["op"] = "gemm"
        self._store(sc, plan, entry)
        return plan

    def resolve_spmm(self, graph: "CSRGraph", x: np.ndarray) -> ExecutionPlan:
        """Plan for this SpMM call, tuning on first use of its class."""
        if x.dtype == np.float64 or x.dtype.kind != "f":
            return REFERENCE_PLAN
        self._ensure_loaded()  # the latch below must see the load result
        if self.load_failed:
            return STATIC_PLAN
        sc = ShapeClass.for_spmm(
            graph.num_vertices, graph.num_edges_directed, x.shape[1], x.dtype
        )
        plan = self._lookup(sc)
        if plan is not None:
            return plan

        def run(p: ExecutionPlan) -> np.ndarray:
            return execute_spmm(get_backend(p.backend), p, graph, x, None)

        flops = 2.0 * graph.num_edges_directed * x.shape[1]
        plan, entry = self.tuner.pick(
            _spmm_candidates("alloc"), run, flops=flops
        )
        entry["shape"] = [
            int(graph.num_vertices),
            int(graph.num_edges_directed),
            int(x.shape[1]),
        ]
        entry["op"] = "spmm"
        self._store(sc, plan, entry)
        return plan


# ---------------------------------------------------------------------------
# Process-wide mode + cache


_PLAN_MODE = "fast"
_PLAN_CACHE: PlanCache | None = None


def plan_mode() -> str:
    """The current process-wide plan mode."""
    return _PLAN_MODE


def set_plan_mode(mode: str) -> str:
    """Set the plan mode; returns the previous one. Validates ``mode``."""
    global _PLAN_MODE
    if mode not in PLAN_MODES:
        raise ValueError(f"kernel plan mode must be one of {PLAN_MODES}, got {mode!r}")
    previous = _PLAN_MODE
    _PLAN_MODE = mode
    return previous


@contextmanager
def planning(mode: str) -> Iterator[None]:
    """Scoped plan mode: restores the previous mode on exit."""
    previous = set_plan_mode(mode)
    try:
        yield
    finally:
        set_plan_mode(previous)


def get_plan_cache() -> PlanCache:
    """The process-wide plan cache (created on first use)."""
    global _PLAN_CACHE
    if _PLAN_CACHE is None:
        _PLAN_CACHE = PlanCache()
    return _PLAN_CACHE


def set_plan_cache(cache: PlanCache | None) -> PlanCache | None:
    """Swap the process-wide plan cache; returns the previous one."""
    global _PLAN_CACHE
    previous = _PLAN_CACHE
    _PLAN_CACHE = cache
    return previous


# -- the dispatch-facing resolvers (one branch in fast/reference mode) --


def resolve_gemm(
    a: np.ndarray,
    b: np.ndarray,
    out: Optional[np.ndarray],
    *,
    transient: bool = False,
) -> ExecutionPlan:
    """Plan for a ``backend=None`` GEMM call under the current mode."""
    if _PLAN_MODE == "auto":
        return get_plan_cache().resolve_gemm(a, b, out, transient=transient)
    return REFERENCE_PLAN if _PLAN_MODE == "reference" else STATIC_PLAN


def resolve_spmm(graph: "CSRGraph", x: np.ndarray) -> ExecutionPlan:
    """Plan for a ``backend=None`` SpMM call under the current mode."""
    if _PLAN_MODE == "auto":
        return get_plan_cache().resolve_spmm(graph, x)
    return REFERENCE_PLAN if _PLAN_MODE == "reference" else STATIC_PLAN
