"""Dtype policies: the float64 reference path and the float32 fast path.

A :class:`DtypePolicy` bundles everything a trainer/server needs to pick
a numeric regime in one object:

* ``dtype`` — the array dtype for features, parameters and activations;
* ``use_workspace`` — whether layers should run through the
  :class:`~repro.kernels.workspace.Workspace` buffer arena (the reference
  policy keeps ``use_workspace=False`` so its computation sequence is
  *literally* the seed-era one, temporaries and all — bit-identical
  losses on fixed seeds);
* ``grad_eps`` / ``grad_tol`` — the finite-difference step and tolerance
  that :mod:`repro.nn.gradcheck` should use under this dtype (float32
  cannot resolve a 1e-6 step; the relaxed values are what the shared
  gradcheck harness parametrizes over).

Policies are immutable and addressed by name through
:func:`resolve_policy` (``TrainConfig.dtype_policy`` stores the name).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DtypePolicy", "REFERENCE", "FAST", "resolve_policy", "available_policies"]


@dataclass(frozen=True)
class DtypePolicy:
    """Numeric regime: dtype + workspace use + gradcheck tolerances."""

    name: str
    dtype: np.dtype
    use_workspace: bool
    grad_eps: float
    grad_tol: float

    def cast(self, x: np.ndarray) -> np.ndarray:
        """``x`` in this policy's dtype (no copy when already there)."""
        return np.ascontiguousarray(x, dtype=self.dtype)

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize


#: Seed-equivalent float64 path: no workspace, today's tolerances,
#: bit-identical training trajectories.
REFERENCE = DtypePolicy(
    name="reference",
    dtype=np.dtype(np.float64),
    use_workspace=False,
    grad_eps=1e-6,
    grad_tol=1e-4,
)

#: float32 + workspace-reuse fast path (half the memory traffic of the
#: reference path; tolerances relaxed to what float32 resolution allows).
FAST = DtypePolicy(
    name="fast",
    dtype=np.dtype(np.float32),
    use_workspace=True,
    grad_eps=1e-2,
    grad_tol=4e-2,
)

_POLICIES = {
    "reference": REFERENCE,
    "fast": FAST,
    # Aliases so configs can name the dtype directly.
    "float64": REFERENCE,
    "float32": FAST,
}


def resolve_policy(policy: "DtypePolicy | str | None") -> DtypePolicy:
    """Map a policy object, name or ``None`` (→ reference) to a policy."""
    if policy is None:
        return REFERENCE
    if isinstance(policy, DtypePolicy):
        return policy
    try:
        return _POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown dtype policy {policy!r}; available: {available_policies()}"
        ) from None


def available_policies() -> list[str]:
    """Sorted names accepted by :func:`resolve_policy`."""
    return sorted(_POLICIES)
