"""Workspace arena: named, reusable kernel buffers.

The seed implementation allocated every activation, pre-activation and
gradient array fresh each training iteration. Shapes are identical from
one iteration to the next (the sampler re-draws vertices but the trainer
uses fixed support sizes per layer), so those allocations — and the page
faults behind them — are pure overhead. A :class:`Workspace` hands out
buffers by key::

    ws = Workspace()
    z = ws.buffer(("layer0", "z"), (n, d), np.float32)

The first request allocates; later requests with the same key and a
matching shape/dtype return the *same* array (a hit). A shape or dtype
change reallocates in place of the old buffer. Keys are hierarchical
tuples (owner prefix first) so a trainer can share one arena across all
its layers and the propagation driver without collisions.

Buffer contents are **undefined** on hand-out — callers must fully
overwrite them (every kernel in :mod:`repro.kernels.ops` does when given
``out=``). The arena tracks hits/misses/bytes so benchmarks can report
per-iteration allocation counts (see ``benchmarks/bench_kernels.py``).
"""

from __future__ import annotations

from typing import Hashable, Tuple

import numpy as np

__all__ = ["Workspace"]

Key = Tuple[Hashable, ...]


class Workspace:
    """Keyed arena of reusable ndarrays with hit/miss statistics.

    Each key owns a flat backing array; :meth:`buffer` returns a reshaped
    view of its first ``prod(shape)`` elements. Matching on *capacity*
    rather than exact shape matters for graph-sampling training, where
    the sampled subgraph's vertex count jitters around the budget from
    iteration to iteration — an exact-shape arena would reallocate on
    nearly every iteration, this one only when a request outgrows the
    backing store.
    """

    def __init__(self) -> None:
        self._buffers: dict[Key, np.ndarray] = {}
        self.hits = 0
        self.misses = 0
        self.bytes_allocated = 0

    def buffer(self, key: Key, shape: tuple[int, ...], dtype) -> np.ndarray:
        """A ``shape``/``dtype`` view of the backing store under ``key``
        (grown when too small)."""
        dtype = np.dtype(dtype)
        needed = int(np.prod(shape)) if shape else 1
        raw = self._buffers.get(key)
        if raw is not None and raw.dtype == dtype and raw.size >= needed:
            self.hits += 1
        else:
            raw = np.empty(needed, dtype=dtype)
            self._buffers[key] = raw
            self.misses += 1
            self.bytes_allocated += raw.nbytes
        return raw[:needed].reshape(shape)

    @property
    def num_buffers(self) -> int:
        return len(self._buffers)

    @property
    def bytes_held(self) -> int:
        """Bytes of all currently-live buffers."""
        return sum(b.nbytes for b in self._buffers.values())

    def stats(self) -> dict[str, int]:
        """JSON-ready hit/miss/size statistics."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "num_buffers": self.num_buffers,
            "bytes_held": self.bytes_held,
            "bytes_allocated": self.bytes_allocated,
        }

    def reset_stats(self) -> None:
        """Zero the hit/miss counters, keeping the buffers."""
        self.hits = 0
        self.misses = 0
        self.bytes_allocated = 0

    def clear(self) -> None:
        """Drop every buffer (and its statistics)."""
        self._buffers.clear()
        self.reset_stats()
