"""The single dispatch point for every dense/sparse compute kernel.

All hot-path matrix math in the repo goes through these functions —
``nn`` layers, the sampling baselines, feature propagation, the trainer
and the serving indexes. Each call:

1. validates shapes,
2. resolves an :class:`~repro.kernels.autotune.ExecutionPlan` — an
   explicit ``plan=`` or ``backend=`` argument wins outright; otherwise
   the process-wide plan mode decides (``"fast"``/``"reference"`` →
   static default-backend dispatch, ``"auto"`` → the
   :class:`~repro.kernels.autotune.PlanCache`, tuning at first use),
3. executes the plan against the selected
   :class:`~repro.kernels.backends.KernelBackend`, optionally writing a
   caller-provided ``out=`` buffer (the
   :class:`~repro.kernels.workspace.Workspace` arena hands these out), and
4. reports its exact flop count, modeled bytes and wall time —
   per-shape-class — to :mod:`repro.kernels.accounting`.

With ``out=None`` under the default static dispatch every function is
*bit-identical* to the raw numpy expression it replaced (``a @ b``,
gather + ``add.reduceat``, ...), and float64 operands **always** resolve
to the pinned reference plan even in auto mode — which is what keeps the
float64 reference dtype policy reproducing seed-era results exactly. A
guard test (``tests/kernels/test_kernel_guard.py``) AST-scans the tree so
no raw matmul — and no raw ``get_backend(...).gemm`` bypass — creeps back
in outside this package.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

import numpy as np

from . import accounting, autotune

if TYPE_CHECKING:  # annotation-only: see backends.py on the import cycle.
    from ..graphs.csr import CSRGraph
from .autotune import ExecutionPlan, ShapeClass
from .backends import get_backend, segment_sum

__all__ = [
    "gemm",
    "gemm_accumulate",
    "spmm",
    "spmm_adjoint",
    "gather_segment_sum",
    "scatter_add_rows",
    "relu",
    "relu_backward",
    "add_bias",
]

_perf_counter = time.perf_counter


def _check_2d(a: np.ndarray, b: np.ndarray) -> None:
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(f"gemm expects 2-D operands, got {a.ndim}-D and {b.ndim}-D")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"gemm shape mismatch: {a.shape} @ {b.shape}")


def _resolve_gemm_plan(
    a: np.ndarray,
    b: np.ndarray,
    out: Optional[np.ndarray],
    backend: Optional[str],
    plan: Optional[ExecutionPlan],
    transient: bool,
) -> ExecutionPlan:
    """Plan for one gemm call: explicit plan > explicit backend > mode."""
    if plan is not None:
        return plan
    if backend is not None:
        return ExecutionPlan(backend=backend, source="explicit")
    return autotune.resolve_gemm(a, b, out, transient=transient)


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    out: Optional[np.ndarray] = None,
    backend: Optional[str] = None,
    plan: Optional[ExecutionPlan] = None,
    transient: bool = False,
) -> np.ndarray:
    """Dense ``a @ b`` with optional ``out=`` buffer, metered.

    ``transient=True`` marks the result as consumed before the caller's
    next same-shaped kernel call, which lets an autotuned plan place it
    in the shared arena (the buffer is *reused* by the next transient
    call of the same shape class — never pass it somewhere long-lived).
    """
    _check_2d(a, b)
    resolved = _resolve_gemm_plan(a, b, out, backend, plan, transient)
    impl = get_backend(resolved.backend)
    variant = "out" if out is not None else ("transient" if transient else "alloc")
    sc = ShapeClass.for_gemm(
        a.shape[0], a.shape[1], b.shape[1], a.dtype, variant=variant
    )
    t0 = _perf_counter()
    result = autotune.execute_gemm(impl, resolved, a, b, out, transient=transient)
    accounting.record_gemm(
        a.shape[0],
        a.shape[1],
        b.shape[1],
        _perf_counter() - t0,
        class_key=sc.key,
        itemsize=result.dtype.itemsize,
    )
    return result


def gemm_accumulate(
    acc: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    *,
    scratch: Optional[np.ndarray] = None,
    backend: Optional[str] = None,
    plan: Optional[ExecutionPlan] = None,
) -> np.ndarray:
    """``acc += a @ b`` (gradient accumulation), metered.

    Without ``scratch`` this is literally ``acc += a @ b`` — one temporary
    per call, bit-identical to the seed expressions. With ``scratch`` the
    product lands in the reusable buffer first, so steady-state training
    allocates nothing here.
    """
    _check_2d(a, b)
    if acc.shape != (a.shape[0], b.shape[1]):
        raise ValueError(f"acc shape {acc.shape} != product shape ({a.shape[0]}, {b.shape[1]})")
    resolved = _resolve_gemm_plan(a, b, scratch, backend, plan, False)
    impl = get_backend(resolved.backend)
    sc = ShapeClass.for_gemm(
        a.shape[0],
        a.shape[1],
        b.shape[1],
        a.dtype,
        variant="out" if scratch is not None else "alloc",
    )
    t0 = _perf_counter()
    if scratch is None:
        acc += autotune.execute_gemm(impl, resolved, a, b, None)
    else:
        autotune.execute_gemm(impl, resolved, a, b, scratch)
        acc += scratch
    accounting.record_gemm(
        a.shape[0],
        a.shape[1],
        b.shape[1],
        _perf_counter() - t0,
        class_key=sc.key,
        itemsize=acc.dtype.itemsize,
    )
    return acc


def spmm(
    graph: CSRGraph,
    x: np.ndarray,
    *,
    out: Optional[np.ndarray] = None,
    backend: Optional[str] = None,
    plan: Optional[ExecutionPlan] = None,
) -> np.ndarray:
    """Sparse neighbor-sum ``A @ x`` over a CSR graph, metered."""
    if x.ndim != 2:
        raise ValueError(f"spmm expects a 2-D feature matrix, got {x.ndim}-D")
    if x.shape[0] != graph.num_vertices:
        raise ValueError(f"feature rows {x.shape[0]} != vertices {graph.num_vertices}")
    if plan is None:
        if backend is not None:
            plan = ExecutionPlan(backend=backend, source="explicit")
        else:
            plan = autotune.resolve_spmm(graph, x)
    impl = get_backend(plan.backend)
    sc = ShapeClass.for_spmm(
        graph.num_vertices, graph.num_edges_directed, x.shape[1], x.dtype
    )
    t0 = _perf_counter()
    result = autotune.execute_spmm(impl, plan, graph, x, out)
    accounting.record_spmm(
        graph.num_edges_directed,
        x.shape[1],
        _perf_counter() - t0,
        rows=graph.num_vertices,
        class_key=sc.key,
        itemsize=result.dtype.itemsize,
    )
    return result


def spmm_adjoint(
    graph: CSRGraph,
    grad: np.ndarray,
    *,
    out: Optional[np.ndarray] = None,
    backend: Optional[str] = None,
    plan: Optional[ExecutionPlan] = None,
) -> np.ndarray:
    """Adjoint SpMM ``A^T @ grad``.

    All graphs in this repo store symmetric (undirected) adjacency, so
    ``A^T = A`` and the same kernel serves both directions; this entry
    point keeps the forward/adjoint distinction explicit at call sites
    (and is the seam where a directed-graph transpose kernel would slot
    in).
    """
    return spmm(graph, grad, out=out, backend=backend, plan=plan)


def gather_segment_sum(
    src: np.ndarray,
    take: np.ndarray,
    indptr: np.ndarray,
    num_out: int,
    *,
    weights: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Bipartite SpMM: gather ``src`` rows then segment-sum per ``indptr``.

    This is the sampled-block aggregation of the layer-sampling baselines
    (GraphSAGE / FastGCN): ``take`` holds per-edge source positions,
    ``weights`` optional per-edge coefficients. Metered as an SpMM over
    ``take.size`` edges.
    """
    t0 = _perf_counter()
    gathered = src[take]
    if weights is not None:
        if weights.dtype != src.dtype:
            # Keep the feature dtype in charge: float32 features must not
            # be promoted through float64 edge weights.
            weights = weights.astype(src.dtype)
        gathered = gathered * weights[:, None]
    result = segment_sum(gathered, indptr, num_out, out=out)
    sc = ShapeClass.for_spmm(
        num_out, int(take.size), src.shape[1], src.dtype, variant="gather"
    )
    accounting.record_spmm(
        int(take.size),
        src.shape[1],
        _perf_counter() - t0,
        rows=num_out,
        class_key=sc.key,
        itemsize=result.dtype.itemsize,
    )
    return result


def scatter_add_rows(
    per_edge: np.ndarray,
    take: np.ndarray,
    num_out: int,
    *,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Adjoint of :func:`gather_segment_sum`: scatter-add edge rows to
    ``num_out`` destination rows. Metered as an SpMM over ``take.size``
    edges."""
    t0 = _perf_counter()
    if out is None:
        out = np.zeros((num_out,) + per_edge.shape[1:], dtype=per_edge.dtype)
    else:
        out[...] = 0
    np.add.at(out, take, per_edge)
    cols = per_edge.shape[1] if per_edge.ndim > 1 else 1
    sc = ShapeClass.for_spmm(
        num_out, int(take.size), cols, per_edge.dtype, variant="scatter"
    )
    accounting.record_spmm(
        int(take.size),
        cols,
        _perf_counter() - t0,
        rows=num_out,
        class_key=sc.key,
        itemsize=out.dtype.itemsize,
    )
    return out


# ---------------------------------------------------------------------------
# Elementwise helpers (out=-aware; not metered — memory-bound, no MACs)


def relu(x: np.ndarray, *, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Elementwise ``max(x, 0)``; dtype-preserving."""
    if out is None:
        return np.maximum(x, 0.0)
    return np.maximum(x, 0.0, out=out)


def relu_backward(
    z: np.ndarray, grad_out: np.ndarray, *, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Gradient through ReLU given pre-activation ``z``."""
    if out is None:
        return np.where(z > 0.0, grad_out, 0.0)
    np.multiply(grad_out, z > 0.0, out=out)
    return out


def add_bias(z: np.ndarray, b: np.ndarray, *, inplace: bool = False) -> np.ndarray:
    """Row-broadcast bias add; in place when the caller owns ``z``."""
    if inplace:
        z += b
        return z
    return z + b
