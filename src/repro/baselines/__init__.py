"""Layer-sampling baselines: GraphSAGE, FastGCN, Batched GCN."""

from .batched_gcn import BatchedGCNConfig, BatchedGCNTrainer
from .blocks import SampledBlock, positions_in
from .fastgcn import (
    FastGCNConfig,
    FastGCNModel,
    FastGCNTrainer,
    importance_distribution,
)
from .graphsage import (
    GraphSAGEModel,
    GraphSAGETrainer,
    SageConfig,
    full_block,
    sample_supports,
)
from .sage_layers import BipartiteGCNLayer, ConvOnlyLayer

__all__ = [
    "SampledBlock",
    "positions_in",
    "BipartiteGCNLayer",
    "ConvOnlyLayer",
    "SageConfig",
    "GraphSAGEModel",
    "GraphSAGETrainer",
    "sample_supports",
    "full_block",
    "FastGCNConfig",
    "FastGCNModel",
    "FastGCNTrainer",
    "importance_distribution",
    "BatchedGCNConfig",
    "BatchedGCNTrainer",
]
