"""GCN layers operating on bipartite sampled blocks.

Mirrors :class:`repro.nn.layers.GCNLayer` (same weights, same concat/ReLU
structure) but consumes a :class:`SampledBlock`, so source and destination
supports may differ — the layer-sampling computation pattern whose
"neighbor explosion" the paper analyzes. ``BipartiteGCNLayer`` keeps the
self path (GraphSAGE); ``ConvOnlyLayer`` drops it (FastGCN's plain
convolution over an importance-weighted block).
"""

from __future__ import annotations

import numpy as np

from ..kernels import ops as kernel_ops
from ..nn.activations import relu, relu_grad
from ..nn.init import xavier_uniform
from .blocks import SampledBlock

__all__ = ["BipartiteGCNLayer", "ConvOnlyLayer"]


class BipartiteGCNLayer:
    """W_self/W_neigh layer from source support to destination support."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        *,
        activation: str = "relu",
        concat: bool = True,
        rng: np.random.Generator,
        dtype=np.float64,
    ) -> None:
        if activation not in ("relu", "identity"):
            raise ValueError(f"unsupported activation {activation!r}")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.concat = concat
        self.dtype = np.dtype(dtype)
        self.params: dict[str, np.ndarray] = {
            "W_self": xavier_uniform(in_dim, out_dim, rng=rng, dtype=self.dtype),
            "W_neigh": xavier_uniform(in_dim, out_dim, rng=rng, dtype=self.dtype),
            "b_self": np.zeros(out_dim, dtype=self.dtype),
            "b_neigh": np.zeros(out_dim, dtype=self.dtype),
        }
        self.grads: dict[str, np.ndarray] = {
            k: np.zeros_like(v) for k, v in self.params.items()
        }
        self._cache: dict[str, object] | None = None

    @property
    def output_dim(self) -> int:
        return 2 * self.out_dim if self.concat else self.out_dim

    def forward(
        self, h_src: np.ndarray, block: SampledBlock, *, train: bool = True
    ) -> np.ndarray:
        """Propagate source-support features to the destination support."""
        h_agg = block.aggregate(h_src)
        h_self = block.gather_self(h_src)
        z_neigh = kernel_ops.gemm(h_agg, self.params["W_neigh"]) + self.params["b_neigh"]
        z_self = kernel_ops.gemm(h_self, self.params["W_self"]) + self.params["b_self"]
        z = (
            np.concatenate([z_neigh, z_self], axis=1)
            if self.concat
            else z_neigh + z_self
        )
        out = relu(z) if self.activation == "relu" else z
        self._cache = (
            {"h_agg": h_agg, "h_self": h_self, "z": z, "block": block}
            if train
            else None
        )
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate weight grads; return the source-support gradient."""
        if self._cache is None:
            raise RuntimeError("backward without cached forward(train=True)")
        h_agg: np.ndarray = self._cache["h_agg"]  # type: ignore[assignment]
        h_self: np.ndarray = self._cache["h_self"]  # type: ignore[assignment]
        z: np.ndarray = self._cache["z"]  # type: ignore[assignment]
        block: SampledBlock = self._cache["block"]  # type: ignore[assignment]

        dz = relu_grad(z, grad_out) if self.activation == "relu" else grad_out
        if self.concat:
            dz_neigh, dz_self = dz[:, : self.out_dim], dz[:, self.out_dim :]
        else:
            dz_neigh = dz_self = dz
        kernel_ops.gemm_accumulate(self.grads["W_neigh"], h_agg.T, dz_neigh)
        kernel_ops.gemm_accumulate(self.grads["W_self"], h_self.T, dz_self)
        self.grads["b_neigh"] += dz_neigh.sum(axis=0)
        self.grads["b_self"] += dz_self.sum(axis=0)
        d_src = block.aggregate_backward(
            kernel_ops.gemm(dz_neigh, self.params["W_neigh"].T)
        )
        d_src += block.gather_self_backward(
            kernel_ops.gemm(dz_self, self.params["W_self"].T)
        )
        return d_src

    def zero_grad(self) -> None:
        """Reset accumulated parameter gradients to zero."""
        for g in self.grads.values():
            g[...] = 0.0


class ConvOnlyLayer:
    """Single-weight graph convolution (FastGCN style, no self path)."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        *,
        activation: str = "relu",
        rng: np.random.Generator,
        dtype=np.float64,
    ) -> None:
        if activation not in ("relu", "identity"):
            raise ValueError(f"unsupported activation {activation!r}")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.dtype = np.dtype(dtype)
        self.params: dict[str, np.ndarray] = {
            "W": xavier_uniform(in_dim, out_dim, rng=rng, dtype=self.dtype),
            "b": np.zeros(out_dim, dtype=self.dtype),
        }
        self.grads: dict[str, np.ndarray] = {
            k: np.zeros_like(v) for k, v in self.params.items()
        }
        self._cache: dict[str, object] | None = None

    @property
    def output_dim(self) -> int:
        return self.out_dim

    def forward(
        self, h_src: np.ndarray, block: SampledBlock, *, train: bool = True
    ) -> np.ndarray:
        """Importance-weighted convolution to the destination support."""
        h_agg = block.aggregate(h_src)
        z = kernel_ops.gemm(h_agg, self.params["W"]) + self.params["b"]
        out = relu(z) if self.activation == "relu" else z
        self._cache = {"h_agg": h_agg, "z": z, "block": block} if train else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate weight grads; return the source-support gradient."""
        if self._cache is None:
            raise RuntimeError("backward without cached forward(train=True)")
        h_agg: np.ndarray = self._cache["h_agg"]  # type: ignore[assignment]
        z: np.ndarray = self._cache["z"]  # type: ignore[assignment]
        block: SampledBlock = self._cache["block"]  # type: ignore[assignment]
        dz = relu_grad(z, grad_out) if self.activation == "relu" else grad_out
        kernel_ops.gemm_accumulate(self.grads["W"], h_agg.T, dz)
        self.grads["b"] += dz.sum(axis=0)
        return block.aggregate_backward(
            kernel_ops.gemm(dz, self.params["W"].T)
        )

    def zero_grad(self) -> None:
        """Reset accumulated parameter gradients to zero."""
        for g in self.grads.values():
            g[...] = 0.0
