"""FastGCN baseline: node-based layer sampling (reference [3]).

Two-phase sampling per Section II-A: (1) every layer's node set is drawn
i.i.d. from a *precomputed* importance distribution ``q(v) ∝ ||A_hat[:,
v]||^2`` (the expensive preprocessing the paper charges FastGCN with); (2)
inter-layer edges are reconstructed as the original-graph edges between
consecutive sampled sets, importance-rescaled by ``1 / (t_l * q(u))`` so
the aggregation is an unbiased estimator of the full convolution.

Destinations whose neighborhoods miss the sampled source set entirely
aggregate to zero — the "overly sparse inter-layer connection" failure mode
the paper attributes to deeper FastGCN models. The per-iteration fraction
of such starved nodes is recorded in :attr:`FastGCNTrainer.starvation`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from ..graphs.datasets import Dataset
from ..obs import is_enabled as obs_enabled
from ..obs import metrics as obs_metrics
from ..obs.trace import span
from ..nn.layers import DenseLayer
from ..nn.loss import make_loss
from ..nn.metrics import accuracy, f1_macro, f1_micro
from ..nn.optim import Adam, ParamGroup
from ..train.evaluation import EvalResult
from ..train.trainer import EpochRecord, TrainResult
from .blocks import SampledBlock, positions_in
from .sage_layers import ConvOnlyLayer

__all__ = ["FastGCNConfig", "FastGCNModel", "FastGCNTrainer", "importance_distribution"]


def importance_distribution(graph: CSRGraph) -> np.ndarray:
    """FastGCN's sampling distribution: ``q(v) ∝ ||A_hat[:, v]||^2``.

    With ``A_hat = D^{-1} A`` (mean aggregation), column ``v`` holds
    ``1/deg(u)`` for every in-neighbor ``u``, so the squared column norm is
    ``sum_{u in N(v)} 1/deg(u)^2``. One pass over the edges.
    """
    deg = graph.degrees.astype(np.float64)
    inv_deg_sq = np.divide(1.0, deg * deg, out=np.zeros_like(deg), where=deg > 0)
    q = np.zeros(graph.num_vertices, dtype=np.float64)
    np.add.at(q, graph.indices, inv_deg_sq[graph.edge_sources()])
    total = q.sum()
    if total == 0.0:
        raise ValueError("graph has no edges")
    return q / total


@dataclass(frozen=True)
class FastGCNConfig:
    """FastGCN training hyperparameters."""

    hidden_dims: tuple[int, ...] = (128, 128)
    layer_sizes: tuple[int, ...] = (400, 400)  # t_l per hidden layer
    batch_size: int = 256
    lr: float = 0.01
    epochs: int = 10
    eval_every: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.layer_sizes) != len(self.hidden_dims):
            raise ValueError("need one layer size per hidden layer")
        if min(self.layer_sizes) < 1 or self.batch_size < 1:
            raise ValueError("layer sizes and batch_size must be positive")


def _importance_block(
    graph: CSRGraph,
    src: np.ndarray,
    dst: np.ndarray,
    q: np.ndarray,
    t_src: int,
) -> SampledBlock:
    """Edges of ``graph`` between sampled ``src`` and ``dst`` sets, with
    importance-sampling weights ``A_hat(v, u) / (t_src * q(u))``."""
    in_src = np.zeros(graph.num_vertices, dtype=bool)
    in_src[src] = True
    nbr_chunks: list[np.ndarray] = []
    counts = np.empty(dst.shape[0], dtype=np.int64)
    for i, v in enumerate(dst):
        nbrs = graph.neighbors(int(v))
        kept = nbrs[in_src[nbrs]]
        counts[i] = kept.shape[0]
        if kept.shape[0]:
            nbr_chunks.append(kept.astype(np.int64))
    kept_all = (
        np.concatenate(nbr_chunks) if nbr_chunks else np.empty(0, dtype=np.int64)
    )
    indptr = np.zeros(dst.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    inv_deg = 1.0 / graph.degrees[dst].astype(np.float64)
    weights = (
        np.repeat(inv_deg, counts) / (t_src * q[kept_all])
        if kept_all.size
        else np.empty(0, dtype=np.float64)
    )
    return SampledBlock(
        num_src=src.shape[0],
        num_dst=dst.shape[0],
        indptr=indptr,
        neighbor_pos=positions_in(np.sort(src), kept_all) if kept_all.size else kept_all,
        self_pos=np.full(dst.shape[0], -1, dtype=np.int64),
        edge_weight=weights,
        mean_normalize=False,
    )


class FastGCNModel:
    """Stack of single-weight convolution layers + dense head."""

    def __init__(
        self,
        in_dim: int,
        hidden_dims: tuple[int, ...],
        num_classes: int,
        *,
        seed: int = 0,
        dtype=np.float64,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.dtype = np.dtype(dtype)
        self.layers: list[ConvOnlyLayer] = []
        dim = in_dim
        for h in hidden_dims:
            layer = ConvOnlyLayer(dim, h, rng=rng, dtype=self.dtype)
            self.layers.append(layer)
            dim = h
        self.head = DenseLayer(dim, num_classes, rng=rng, dtype=self.dtype)

    def parameter_groups(self) -> list[ParamGroup]:
        """(params, grads) dict pairs for every layer plus the head."""
        groups: list[ParamGroup] = [(l.params, l.grads) for l in self.layers]
        groups.append((self.head.params, self.head.grads))
        return groups

    def zero_grad(self) -> None:
        """Reset accumulated gradients in every layer and the head."""
        for layer in self.layers:
            layer.zero_grad()
        self.head.zero_grad()

    def forward(
        self, h: np.ndarray, blocks: list[SampledBlock], *, train: bool = True
    ) -> np.ndarray:
        """Forward through one importance-weighted block per layer."""
        for layer, block in zip(self.layers, blocks):
            h = layer.forward(h, block, train=train)
        return self.head.forward(h, train=train)

    def backward(self, grad_logits: np.ndarray) -> np.ndarray:
        """Backprop through the blocks of the last training forward."""
        g = self.head.backward(grad_logits)
        for layer in reversed(self.layers):
            g = layer.backward(g)
        return g


class FastGCNTrainer:
    """Minibatch FastGCN training on the training graph."""

    def __init__(self, dataset: Dataset, config: FastGCNConfig) -> None:
        self.dataset = dataset
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.train_graph, self.train_vmap = dataset.graph.induced_subgraph(
            dataset.train_idx
        )
        if np.any(self.train_graph.degrees == 0):
            from ..graphs.generators import ensure_min_degree

            self.train_graph = ensure_min_degree(self.train_graph, 1, rng=self.rng)
        self.train_features = dataset.features[self.train_vmap]
        self.train_labels = dataset.labels[self.train_vmap]
        with span("fastgcn.preprocess") as prep_sp:
            t0 = time.perf_counter()
            self.q = importance_distribution(self.train_graph)
            self.preprocessing_seconds = time.perf_counter() - t0
        if obs_enabled():
            prep_sp.set(vertices=self.train_graph.num_vertices)
            obs_metrics.observe(
                "fastgcn.preprocess_seconds", self.preprocessing_seconds
            )
        self.model = FastGCNModel(
            dataset.features.shape[1],
            config.hidden_dims,
            dataset.num_classes,
            seed=config.seed,
        )
        self.loss = make_loss(dataset.task)
        self.optimizer = Adam(lr=config.lr)
        self.starvation: list[float] = []
        self._q_full = importance_distribution(dataset.graph)

    def _sample_blocks(
        self, batch: np.ndarray
    ) -> tuple[np.ndarray, list[SampledBlock]]:
        cfg = self.config
        n = self.train_graph.num_vertices
        sets: list[np.ndarray] = [np.unique(batch)]
        for t in reversed(cfg.layer_sizes):
            t_eff = min(t, n)
            src = np.unique(
                self.rng.choice(n, size=t_eff, replace=True, p=self.q)
            )
            sets.insert(0, src)
        blocks: list[SampledBlock] = []
        for l in range(len(sets) - 1):
            src, dst = sets[l], sets[l + 1]
            block = _importance_block(
                self.train_graph, src, dst, self.q, max(src.shape[0], 1)
            )
            blocks.append(block)
            starved = float(np.mean(block.degrees == 0)) if block.num_dst else 0.0
            self.starvation.append(starved)
        return sets[0], blocks

    def train_iteration(self, batch: np.ndarray) -> float:
        """One two-phase-sampled update; returns the minibatch loss."""
        src0, blocks = self._sample_blocks(batch)
        feats = self.train_features[np.sort(src0)]
        labels = self.train_labels[np.unique(batch)]
        self.model.zero_grad()
        logits = self.model.forward(feats, blocks, train=True)
        batch_loss = self.loss.forward(logits, labels)
        self.model.backward(self.loss.backward(logits, labels))
        self.optimizer.step(self.model.parameter_groups())
        return batch_loss

    def evaluate(self, split: str = "val") -> EvalResult:
        """Exact-convolution evaluation on a split (no sampling)."""
        idx = {
            "train": self.dataset.train_idx,
            "val": self.dataset.val_idx,
            "test": self.dataset.test_idx,
        }[split]
        graph = self.dataset.graph
        n = graph.num_vertices
        every = np.arange(n, dtype=np.int64)
        exact = SampledBlock(
            num_src=n,
            num_dst=n,
            indptr=graph.indptr.copy(),
            neighbor_pos=graph.indices.astype(np.int64),
            self_pos=np.full(n, -1, dtype=np.int64),
            edge_weight=np.repeat(
                1.0 / np.maximum(graph.degrees, 1), graph.degrees
            ).astype(np.float64),
            mean_normalize=False,
        )
        del every
        blocks = [exact] * len(self.model.layers)
        logits = self.model.forward(self.dataset.features, blocks, train=False)[idx]
        labels = self.dataset.labels[idx]
        preds = self.loss.predict(logits)
        return EvalResult(
            loss=self.loss.forward(logits, labels),
            f1_micro=f1_micro(labels, preds, self.dataset.num_classes),
            f1_macro=f1_macro(labels, preds, self.dataset.num_classes),
            accuracy=accuracy(labels, preds),
            split=split,
        )

    def train(self, *, epochs: int | None = None) -> TrainResult:
        """Run minibatch training; wall time includes preprocessing."""
        cfg = self.config
        total_epochs = epochs if epochs is not None else cfg.epochs
        result = TrainResult()
        n_train = self.train_graph.num_vertices
        wall_total = self.preprocessing_seconds  # charged up front
        for epoch in range(total_epochs):
            t0 = time.perf_counter()
            order = self.rng.permutation(n_train)
            losses = []
            for lo in range(0, n_train, cfg.batch_size):
                batch = order[lo : lo + cfg.batch_size]
                losses.append(self.train_iteration(batch))
                result.iterations += 1
            wall_total += time.perf_counter() - t0
            val = self.evaluate("val") if (epoch + 1) % cfg.eval_every == 0 else None
            result.epochs.append(
                EpochRecord(
                    epoch=epoch,
                    train_loss=float(np.mean(losses)),
                    wall_seconds_total=wall_total,
                    sim_time_total=0.0,
                    val=val,
                )
            )
        return result
