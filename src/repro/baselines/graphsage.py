"""GraphSAGE baseline: edge-based layer sampling (reference [2]).

For every minibatch of target vertices, a fixed ``fanout`` of neighbors is
sampled per node per layer, producing a tree of supports whose size grows
multiplicatively with depth — the "neighbor explosion" of Section II-A.
The support sizes of every iteration are recorded, which is the measured
quantity behind the paper's Case-1 complexity analysis and Table II.

Evaluation runs the exact (un-sampled) computation: a full block whose
neighbor lists are the whole adjacency, equivalent to the GCN forward pass
with the same weights.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..graphs.csr import CSRGraph
from ..graphs.datasets import Dataset
from ..nn.init import xavier_uniform
from ..nn.layers import DenseLayer
from ..nn.loss import make_loss
from ..nn.metrics import accuracy, f1_macro, f1_micro
from ..nn.optim import Adam, ParamGroup
from ..train.evaluation import EvalResult
from ..train.trainer import EpochRecord, TrainResult
from .blocks import SampledBlock, positions_in
from .sage_layers import BipartiteGCNLayer

__all__ = ["SageConfig", "GraphSAGEModel", "GraphSAGETrainer", "sample_supports", "full_block"]


@dataclass(frozen=True)
class SageConfig:
    """GraphSAGE training hyperparameters."""

    hidden_dims: tuple[int, ...] = (128, 128)
    fanouts: tuple[int, ...] = (25, 10)
    batch_size: int = 256
    lr: float = 0.01
    epochs: int = 10
    eval_every: int = 1
    concat: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.fanouts) != len(self.hidden_dims):
            raise ValueError("need one fanout per layer")
        if min(self.fanouts) < 1 or self.batch_size < 1:
            raise ValueError("fanouts and batch_size must be positive")


def sample_supports(
    graph: CSRGraph,
    batch: np.ndarray,
    fanouts: tuple[int, ...],
    rng: np.random.Generator,
) -> tuple[list[np.ndarray], list[SampledBlock]]:
    """Sample the layered supports of a minibatch, deepest first.

    Returns ``(supports, blocks)`` where ``supports[0]`` is the layer-0
    (input) support and ``blocks[l]`` maps ``supports[l]`` to
    ``supports[l+1]``; ``supports[-1]`` equals the (unique, sorted) batch.
    """
    if np.any(graph.degrees == 0):
        raise ValueError("layer sampling requires min degree >= 1")
    supports = [np.unique(np.asarray(batch, dtype=np.int64))]
    blocks_rev: list[SampledBlock] = []
    for fanout in reversed(fanouts):
        dst = supports[0]
        starts = graph.indptr[dst]
        degs = graph.indptr[dst + 1] - starts
        offsets = rng.integers(0, degs[:, None], size=(dst.shape[0], fanout))
        nbrs = graph.indices[starts[:, None] + offsets]
        src = np.unique(np.concatenate([dst, nbrs.ravel()]))
        block = SampledBlock(
            num_src=src.shape[0],
            num_dst=dst.shape[0],
            indptr=np.arange(0, dst.shape[0] * fanout + 1, fanout, dtype=np.int64),
            neighbor_pos=positions_in(src, nbrs.ravel().astype(np.int64)),
            self_pos=positions_in(src, dst),
        )
        blocks_rev.append(block)
        supports.insert(0, src)
    return supports, blocks_rev[::-1]


def full_block(graph: CSRGraph) -> SampledBlock:
    """Exact (no sampling) block over the whole graph, for evaluation."""
    n = graph.num_vertices
    return SampledBlock(
        num_src=n,
        num_dst=n,
        indptr=graph.indptr.copy(),
        neighbor_pos=graph.indices.astype(np.int64),
        self_pos=np.arange(n, dtype=np.int64),
    )


class GraphSAGEModel:
    """Stack of bipartite GCN layers + dense head."""

    def __init__(
        self,
        in_dim: int,
        hidden_dims: tuple[int, ...],
        num_classes: int,
        *,
        concat: bool = True,
        seed: int = 0,
        dtype=np.float64,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.dtype = np.dtype(dtype)
        self.layers: list[BipartiteGCNLayer] = []
        dim = in_dim
        for h in hidden_dims:
            layer = BipartiteGCNLayer(
                dim, h, concat=concat, rng=rng, dtype=self.dtype
            )
            self.layers.append(layer)
            dim = layer.output_dim
        self.head = DenseLayer(dim, num_classes, rng=rng, dtype=self.dtype)
        self.in_dim = in_dim
        self.num_classes = num_classes

    def parameter_groups(self) -> list[ParamGroup]:
        """(params, grads) dict pairs for every layer plus the head."""
        groups: list[ParamGroup] = [(l.params, l.grads) for l in self.layers]
        groups.append((self.head.params, self.head.grads))
        return groups

    def zero_grad(self) -> None:
        """Reset accumulated gradients in every layer and the head."""
        for layer in self.layers:
            layer.zero_grad()
        self.head.zero_grad()

    def forward(
        self,
        h: np.ndarray,
        blocks: list[SampledBlock],
        *,
        train: bool = True,
    ) -> np.ndarray:
        """Forward through one block per layer; returns batch logits."""
        if len(blocks) != len(self.layers):
            raise ValueError("need one block per layer")
        for layer, block in zip(self.layers, blocks):
            h = layer.forward(h, block, train=train)
        return self.head.forward(h, train=train)

    def backward(self, grad_logits: np.ndarray) -> np.ndarray:
        """Backprop through the blocks of the last training forward."""
        g = self.head.backward(grad_logits)
        for layer in reversed(self.layers):
            g = layer.backward(g)
        return g


@dataclass
class SupportStats:
    """Per-iteration support sizes (the neighbor-explosion measurements)."""

    nodes_per_layer: list[list[int]] = field(default_factory=list)
    edges_per_layer: list[list[int]] = field(default_factory=list)

    def record(self, supports: list[np.ndarray], blocks: list[SampledBlock]) -> None:
        """Append one iteration's support-node and block-edge counts."""
        self.nodes_per_layer.append([int(s.shape[0]) for s in supports])
        self.edges_per_layer.append([int(b.num_edges) for b in blocks])

    def mean_total_nodes(self) -> float:
        """Mean, over iterations, of the summed per-layer support sizes."""
        if not self.nodes_per_layer:
            return 0.0
        return float(np.mean([sum(row) for row in self.nodes_per_layer]))

    def mean_input_support(self) -> float:
        """Mean size of the deepest (layer-0) support across iterations."""
        if not self.nodes_per_layer:
            return 0.0
        return float(np.mean([row[0] for row in self.nodes_per_layer]))


class GraphSAGETrainer:
    """Minibatch GraphSAGE training on the training graph."""

    def __init__(self, dataset: Dataset, config: SageConfig) -> None:
        self.dataset = dataset
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.train_graph, self.train_vmap = dataset.graph.induced_subgraph(
            dataset.train_idx
        )
        if np.any(self.train_graph.degrees == 0):
            from ..graphs.generators import ensure_min_degree

            self.train_graph = ensure_min_degree(self.train_graph, 1, rng=self.rng)
        self.train_features = dataset.features[self.train_vmap]
        self.train_labels = dataset.labels[self.train_vmap]
        self.model = GraphSAGEModel(
            dataset.features.shape[1],
            config.hidden_dims,
            dataset.num_classes,
            concat=config.concat,
            seed=config.seed,
        )
        self.loss = make_loss(dataset.task)
        self.optimizer = Adam(lr=config.lr)
        self.support_stats = SupportStats()
        self._eval_block = full_block(dataset.graph)

    def train_iteration(self, batch: np.ndarray) -> float:
        """One sampled-support update; returns the minibatch loss."""
        supports, blocks = sample_supports(
            self.train_graph, batch, self.config.fanouts, self.rng
        )
        self.support_stats.record(supports, blocks)
        feats = self.train_features[supports[0]]
        labels = self.train_labels[supports[-1]]
        self.model.zero_grad()
        logits = self.model.forward(feats, blocks, train=True)
        batch_loss = self.loss.forward(logits, labels)
        self.model.backward(self.loss.backward(logits, labels))
        self.optimizer.step(self.model.parameter_groups())
        return batch_loss

    def evaluate(self, split: str = "val") -> EvalResult:
        """Exact (un-sampled) full-neighborhood evaluation on a split."""
        idx = {
            "train": self.dataset.train_idx,
            "val": self.dataset.val_idx,
            "test": self.dataset.test_idx,
        }[split]
        blocks = [self._eval_block] * len(self.model.layers)
        logits = self.model.forward(
            self.dataset.features, blocks, train=False
        )[idx]
        labels = self.dataset.labels[idx]
        preds = self.loss.predict(logits)
        return EvalResult(
            loss=self.loss.forward(logits, labels),
            f1_micro=f1_micro(labels, preds, self.dataset.num_classes),
            f1_macro=f1_macro(labels, preds, self.dataset.num_classes),
            accuracy=accuracy(labels, preds),
            split=split,
        )

    def train(self, *, epochs: int | None = None) -> TrainResult:
        """Run minibatch training; returns per-epoch records."""
        cfg = self.config
        total_epochs = epochs if epochs is not None else cfg.epochs
        result = TrainResult()
        n_train = self.train_graph.num_vertices
        wall_total = 0.0
        for epoch in range(total_epochs):
            t0 = time.perf_counter()
            order = self.rng.permutation(n_train)
            losses = []
            for lo in range(0, n_train, cfg.batch_size):
                batch = order[lo : lo + cfg.batch_size]
                losses.append(self.train_iteration(batch))
                result.iterations += 1
            wall_total += time.perf_counter() - t0
            val = (
                self.evaluate("val") if (epoch + 1) % cfg.eval_every == 0 else None
            )
            result.epochs.append(
                EpochRecord(
                    epoch=epoch,
                    train_loss=float(np.mean(losses)),
                    wall_seconds_total=wall_total,
                    sim_time_total=0.0,
                    val=val,
                )
            )
        return result
