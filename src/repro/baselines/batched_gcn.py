"""Batched GCN baseline (reference [1], Kipf & Welling).

The original GCN propagates over the *entire* training graph for every
weight update; mini-batching only masks the loss to a random subset of
training vertices. Each update therefore costs a full-graph forward and
backward pass regardless of batch size — the work-inefficiency that
motivates both layer sampling and this paper's graph sampling.

Reuses the exact same model as the proposed method (:class:`repro.nn.GCN`)
with the full training graph's aggregator, so any accuracy/time difference
in the Figure 2 comparison is attributable to the training scheme alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..graphs.datasets import Dataset
from ..nn.loss import make_loss
from ..nn.network import GCN
from ..nn.optim import Adam
from ..kernels.backends import get_backend
from ..propagation.spmm import MeanAggregator
from ..train.evaluation import Evaluator
from ..train.trainer import EpochRecord, TrainResult

__all__ = ["BatchedGCNConfig", "BatchedGCNTrainer"]


@dataclass(frozen=True)
class BatchedGCNConfig:
    """Batched-GCN training hyperparameters."""

    hidden_dims: tuple[int, ...] = (128, 128)
    batch_size: int = 256
    lr: float = 0.01
    epochs: int = 10
    eval_every: int = 1
    concat: bool = True
    seed: int = 0
    # Kernel-registry SpMM backend for the full-graph propagation
    # ("scipy" or "numpy"); the dispatch seam of repro.kernels.backends.
    spmm_backend: str = "scipy"

    def __post_init__(self) -> None:
        if self.batch_size < 1 or self.epochs < 1:
            raise ValueError("batch_size and epochs must be positive")
        get_backend(self.spmm_backend)


class BatchedGCNTrainer:
    """Full-graph-propagation GCN with mini-batched loss masking."""

    def __init__(self, dataset: Dataset, config: BatchedGCNConfig) -> None:
        self.dataset = dataset
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.train_graph, self.train_vmap = dataset.graph.induced_subgraph(
            dataset.train_idx
        )
        self.train_features = dataset.features[self.train_vmap]
        self.train_labels = dataset.labels[self.train_vmap]
        self.aggregator = MeanAggregator(
            self.train_graph, backend=config.spmm_backend
        )
        self.model = GCN(
            dataset.features.shape[1],
            list(config.hidden_dims),
            dataset.num_classes,
            concat=config.concat,
            seed=config.seed,
        )
        self.loss = make_loss(dataset.task)
        self.optimizer = Adam(lr=config.lr)
        self.evaluator = Evaluator(dataset)

    def train_iteration(self, batch: np.ndarray) -> float:
        """One update: full-graph propagation, loss masked to ``batch``."""
        self.model.zero_grad()
        logits = self.model.forward(self.train_features, self.aggregator, train=True)
        batch_logits = logits[batch]
        batch_labels = self.train_labels[batch]
        batch_loss = self.loss.forward(batch_logits, batch_labels)
        grad = np.zeros_like(logits)
        grad[batch] = self.loss.backward(batch_logits, batch_labels)
        self.model.backward(grad)
        self.optimizer.step(self.model.parameter_groups())
        return batch_loss

    def train(self, *, epochs: int | None = None) -> TrainResult:
        """Run minibatch training (full propagation per update)."""
        cfg = self.config
        total_epochs = epochs if epochs is not None else cfg.epochs
        result = TrainResult()
        n_train = self.train_graph.num_vertices
        wall_total = 0.0
        for epoch in range(total_epochs):
            t0 = time.perf_counter()
            order = self.rng.permutation(n_train)
            losses = []
            for lo in range(0, n_train, cfg.batch_size):
                batch = order[lo : lo + cfg.batch_size]
                losses.append(self.train_iteration(batch))
                result.iterations += 1
            wall_total += time.perf_counter() - t0
            val = (
                self.evaluator.evaluate(self.model, "val")
                if (epoch + 1) % cfg.eval_every == 0
                else None
            )
            result.epochs.append(
                EpochRecord(
                    epoch=epoch,
                    train_loss=float(np.mean(losses)),
                    wall_seconds_total=wall_total,
                    sim_time_total=0.0,
                    val=val,
                )
            )
        return result
