"""Bipartite computation blocks for layer-sampling baselines.

Layer-sampling GCNs (GraphSAGE, FastGCN) do not propagate over a whole
(sub)graph; each layer is a bipartite computation from a *source support*
(the layer-(l-1) nodes that were sampled) to a *destination support* (the
layer-l nodes). A :class:`SampledBlock` captures one such bipartite step:

* ``num_src`` source rows, ``num_dst`` destination rows;
* a flat neighbor index array (positions into the source support) with a
  CSR-style ``indptr`` so destinations can have ragged neighbor lists
  (GraphSAGE fan-out is fixed; FastGCN intersections are ragged and can be
  empty — the sparsity problem Section II-B points out);
* optional per-edge weights (FastGCN importance rescaling);
* ``self_pos`` — each destination's own position in the source support
  (GraphSAGE always re-includes the destination nodes in the next
  support), or -1 when absent.

The block provides the mean-aggregation forward and its exact adjoint so
baseline layers backpropagate through sampled neighborhoods correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels import ops as kernel_ops

__all__ = ["SampledBlock", "positions_in"]


def positions_in(universe: np.ndarray, items: np.ndarray) -> np.ndarray:
    """Positions of ``items`` within sorted unique array ``universe``.

    Raises if any item is missing — supports are constructed to be closed.
    """
    pos = np.searchsorted(universe, items)
    if np.any(pos >= universe.shape[0]) or np.any(universe[np.minimum(pos, universe.shape[0]-1)] != items):
        raise ValueError("items not contained in universe")
    return pos


@dataclass(frozen=True)
class SampledBlock:
    """One bipartite aggregation step of a layer-sampled GCN."""

    num_src: int
    num_dst: int
    indptr: np.ndarray  # int64[num_dst + 1]
    neighbor_pos: np.ndarray  # int64[num_edges], positions into src rows
    self_pos: np.ndarray  # int64[num_dst], position of dst node in src rows
    edge_weight: np.ndarray | None = None  # float64[num_edges] (FastGCN)
    # True: divide by neighbor count (GraphSAGE mean). False: plain
    # (weighted) sum — FastGCN folds all normalization into edge_weight.
    mean_normalize: bool = True

    def __post_init__(self) -> None:
        if self.indptr.shape[0] != self.num_dst + 1:
            raise ValueError("indptr must have num_dst + 1 entries")
        if self.indptr[0] != 0 or self.indptr[-1] != self.neighbor_pos.shape[0]:
            raise ValueError("indptr endpoints inconsistent with neighbor_pos")
        if self.self_pos.shape[0] != self.num_dst:
            raise ValueError("self_pos must have num_dst entries")
        if self.neighbor_pos.size and (
            self.neighbor_pos.min() < 0 or self.neighbor_pos.max() >= self.num_src
        ):
            raise ValueError("neighbor positions out of source range")
        if self.edge_weight is not None and self.edge_weight.shape != self.neighbor_pos.shape:
            raise ValueError("edge_weight must align with neighbor_pos")

    @property
    def num_edges(self) -> int:
        return self.neighbor_pos.shape[0]

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def _normalizers(self, dtype=np.float64) -> np.ndarray:
        # Computed in float64 (exact reciprocals of small integers where
        # representable) and cast, so the float32 path sees the rounded
        # reference values.
        if not self.mean_normalize:
            return np.ones(self.num_dst, dtype=dtype)
        deg = self.degrees.astype(np.float64)
        inv = np.divide(1.0, deg, out=np.zeros_like(deg), where=deg > 0)
        return inv.astype(dtype, copy=False)

    def aggregate(self, h_src: np.ndarray) -> np.ndarray:
        """Weighted-mean neighbor aggregation: (num_dst, f) output.

        The gather + segment-sum is the bipartite SpMM of the
        layer-sampling baselines; it dispatches through
        :func:`repro.kernels.ops.gather_segment_sum` (metered there).
        """
        if h_src.shape[0] != self.num_src:
            raise ValueError("h_src rows must equal num_src")
        out = kernel_ops.gather_segment_sum(
            h_src,
            self.neighbor_pos,
            self.indptr,
            self.num_dst,
            weights=self.edge_weight,
        )
        out *= self._normalizers(out.dtype)[:, None]
        return out

    def aggregate_backward(self, grad_dst: np.ndarray) -> np.ndarray:
        """Adjoint of :meth:`aggregate`: scatter grads back to src rows."""
        if grad_dst.shape[0] != self.num_dst:
            raise ValueError("grad rows must equal num_dst")
        scaled = grad_dst * self._normalizers(grad_dst.dtype)[:, None]
        per_edge = np.repeat(scaled, self.degrees, axis=0)
        if self.edge_weight is not None:
            w = self.edge_weight
            if w.dtype != per_edge.dtype:
                w = w.astype(per_edge.dtype)
            per_edge = per_edge * w[:, None]
        return kernel_ops.scatter_add_rows(
            per_edge, self.neighbor_pos, self.num_src
        )

    def gather_self(self, h_src: np.ndarray) -> np.ndarray:
        """Destination nodes' own previous-layer features (zeros if absent)."""
        out = np.zeros((self.num_dst, h_src.shape[1]), dtype=h_src.dtype)
        present = self.self_pos >= 0
        out[present] = h_src[self.self_pos[present]]
        return out

    def gather_self_backward(self, grad_dst: np.ndarray) -> np.ndarray:
        """Adjoint of :meth:`gather_self` (scatter-add to src rows)."""
        out = np.zeros((self.num_src, grad_dst.shape[1]), dtype=grad_dst.dtype)
        present = self.self_pos >= 0
        np.add.at(out, self.self_pos[present], grad_dst[present])
        return out
