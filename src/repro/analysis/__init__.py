"""Analytic models: Eq. 1 complexity and speedup helpers."""

from .complexity import (
    eq1_forward_ops,
    gs_gcn_batch_ops,
    gs_gcn_epoch_ops,
    layer_sampling_batch_ops,
    layer_sampling_epoch_ops,
    layer_sampling_support_sizes,
    work_ratio_vs_depth,
)
from .roofline import (
    KernelProfile,
    aggregation_kernel_profile,
    gemm_kernel_profile,
    roofline_point,
    roofline_report,
)
from .speedup import amdahl_speedup, efficiency, gemm_simulated_time, speedup_curve

__all__ = [
    "eq1_forward_ops",
    "gs_gcn_batch_ops",
    "gs_gcn_epoch_ops",
    "layer_sampling_support_sizes",
    "layer_sampling_batch_ops",
    "layer_sampling_epoch_ops",
    "work_ratio_vs_depth",
    "KernelProfile",
    "roofline_point",
    "roofline_report",
    "gemm_kernel_profile",
    "aggregation_kernel_profile",
    "amdahl_speedup",
    "gemm_simulated_time",
    "speedup_curve",
    "efficiency",
]
