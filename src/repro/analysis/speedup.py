"""Speedup-curve helpers shared by the scaling experiments."""

from __future__ import annotations

import numpy as np

from ..parallel.machine import MachineSpec

__all__ = [
    "amdahl_speedup",
    "gemm_simulated_time",
    "speedup_curve",
    "efficiency",
]


def amdahl_speedup(cores: int, serial_fraction: float) -> float:
    """Classic Amdahl bound ``1 / (s + (1 - s)/p)``."""
    if cores <= 0:
        raise ValueError("cores must be positive")
    if not (0.0 <= serial_fraction <= 1.0):
        raise ValueError("serial_fraction must lie in [0, 1]")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / cores)


def gemm_simulated_time(
    flops: float, machine: MachineSpec, *, cores: int
) -> float:
    """Dense weight-application time under the MKL-like Amdahl model."""
    if flops < 0:
        raise ValueError("flops must be non-negative")
    if cores <= 0:
        raise ValueError("cores must be positive")
    s = machine.gemm_serial_fraction
    return flops * machine.cost_flop * (s + (1.0 - s) / cores)


def speedup_curve(times: dict[int, float]) -> dict[int, float]:
    """Speedups relative to the 1-core entry of a {cores: time} mapping."""
    if 1 not in times:
        raise ValueError("need a 1-core baseline entry")
    base = times[1]
    return {c: (base / t if t > 0 else float("inf")) for c, t in times.items()}


def efficiency(times: dict[int, float]) -> dict[int, float]:
    """Parallel efficiency (speedup / cores) of a {cores: time} mapping."""
    return {c: s / c for c, s in speedup_curve(times).items()}
