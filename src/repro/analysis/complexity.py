"""Analytic complexity models (Section III-B of the paper).

Equation 1 gives the forward-propagation operation count of an L-layer GCN
batch; specializations cover the paper's three regimes:

* graph-sampling GCN (this paper): ``O(L * |V| * f * (f + d_GS))`` per
  epoch — linear in depth and graph size;
* layer sampling, small batch (GraphSAGE-style, Case 1):
  ``O(d_LS^L * |V| * f * (f + d_LS))`` — "neighbor explosion";
* layer sampling, large batch (Case 2): ``O(L * |V| * f * (f + d_LS))``
  — linear again but at the cost of convergence/accuracy.

These functions are exercised directly by the Table II experiment and the
unit tests that verify the crossover claims of Section III-B.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "eq1_forward_ops",
    "gs_gcn_batch_ops",
    "gs_gcn_epoch_ops",
    "layer_sampling_support_sizes",
    "layer_sampling_batch_ops",
    "layer_sampling_epoch_ops",
    "work_ratio_vs_depth",
]


def eq1_forward_ops(
    edge_counts: list[int] | np.ndarray,
    node_counts: list[int] | np.ndarray,
    feature_dims: list[int] | np.ndarray,
) -> float:
    """Equation 1 verbatim.

    ``sum_l ( |E_l| * f_l + |V_{l+1}| * f_l * f_{l+1} )`` where
    ``edge_counts[l]`` is the inter-layer edge count between layers l and
    l+1, ``node_counts[l]`` the node count of layer l (length L+1), and
    ``feature_dims[l]`` the feature size of layer l (length L+1).
    """
    edge_counts = np.asarray(edge_counts, dtype=np.float64)
    node_counts = np.asarray(node_counts, dtype=np.float64)
    feature_dims = np.asarray(feature_dims, dtype=np.float64)
    layers = edge_counts.shape[0]
    if node_counts.shape[0] != layers + 1 or feature_dims.shape[0] != layers + 1:
        raise ValueError("need L edge counts and L+1 node counts / feature dims")
    agg = (edge_counts * feature_dims[:-1]).sum()
    weights = (node_counts[1:] * feature_dims[:-1] * feature_dims[1:]).sum()
    return float(agg + weights)


def gs_gcn_batch_ops(
    *, num_layers: int, subgraph_size: int, subgraph_degree: float, f: int
) -> float:
    """Graph-sampling GCN batch: ``L * n_sub * f * (f + d_GS)``."""
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    return num_layers * subgraph_size * f * (f + subgraph_degree)


def gs_gcn_epoch_ops(
    *, num_layers: int, num_vertices: int, subgraph_degree: float, f: int
) -> float:
    """Graph-sampling GCN epoch: ``L * |V| * f * (f + d_GS)``."""
    return gs_gcn_batch_ops(
        num_layers=num_layers,
        subgraph_size=num_vertices,
        subgraph_degree=subgraph_degree,
        f=f,
    )


def layer_sampling_support_sizes(
    batch_size: int, fanouts: list[int] | tuple[int, ...], num_vertices: int | None = None
) -> list[int]:
    """Per-layer node counts of an edge-based layer sampler.

    ``fanouts[l]`` neighbors are drawn for each node when stepping from
    layer ``L-l`` down to ``L-l-1``; sizes are capped at ``num_vertices``
    when given (a batch cannot involve more nodes than the graph has).
    Returned deepest-first: ``[|V^(0)|, ..., |V^(L)| = batch_size]``.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    sizes = [batch_size]
    for fanout in fanouts:
        nxt = sizes[-1] * fanout
        if num_vertices is not None:
            nxt = min(nxt, num_vertices)
        sizes.append(nxt)
    return sizes[::-1]


def layer_sampling_batch_ops(
    *,
    batch_size: int,
    fanouts: list[int] | tuple[int, ...],
    f: int,
    num_vertices: int | None = None,
) -> float:
    """Eq. 1 applied to a layer-sampled batch (exact, not asymptotic)."""
    sizes = layer_sampling_support_sizes(batch_size, fanouts, num_vertices)
    layers = len(fanouts)
    # Edges between layer l and l+1: every node of layer l+1 pulls its
    # fanout (deepest fanout is fanouts[-1] when stepping to layer 0).
    rev_fanouts = list(fanouts)[::-1]
    edge_counts = [sizes[l + 1] * rev_fanouts[l] for l in range(layers)]
    dims = [f] * (layers + 1)
    return eq1_forward_ops(edge_counts, sizes, dims)


def layer_sampling_epoch_ops(
    *,
    num_train: int,
    batch_size: int,
    fanouts: list[int] | tuple[int, ...],
    f: int,
    num_vertices: int | None = None,
) -> float:
    """Layer-sampling epoch: batch ops times ``num_train / batch_size``."""
    batches = -(-num_train // batch_size)
    return batches * layer_sampling_batch_ops(
        batch_size=batch_size, fanouts=fanouts, f=f, num_vertices=num_vertices
    )


def work_ratio_vs_depth(
    *,
    num_layers: int,
    num_train: int,
    batch_size: int,
    fanout: int,
    f: int,
    subgraph_degree: float,
    num_vertices: int | None = None,
) -> float:
    """Epoch work of layer sampling relative to graph sampling.

    The quantity behind Table II's depth scaling: grows roughly like
    ``fanout^L / L`` until support sizes saturate at the graph size.
    """
    ls = layer_sampling_epoch_ops(
        num_train=num_train,
        batch_size=batch_size,
        fanouts=[fanout] * num_layers,
        f=f,
        num_vertices=num_vertices,
    )
    gs = gs_gcn_epoch_ops(
        num_layers=num_layers,
        num_vertices=num_train,
        subgraph_degree=subgraph_degree,
        f=f,
    )
    return ls / gs
