"""Roofline analysis of the training kernels.

Classifies each kernel (feature aggregation, weight application, sampler
probing/updates) by arithmetic intensity — flops per byte moved — against
a machine's compute and bandwidth rooflines. The analysis explains *why*
the paper's scaling figures look the way they do: weight application is
compute-bound (scales with cores until the MKL Amdahl term bites), feature
aggregation is bandwidth-bound (capped near the DRAM saturation point),
and the sampler is latency/occupancy-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.machine import MachineSpec

__all__ = [
    "KernelProfile",
    "roofline_point",
    "gemm_kernel_profile",
    "aggregation_kernel_profile",
    "roofline_report",
]


@dataclass(frozen=True)
class KernelProfile:
    """One kernel's flop and byte totals."""

    name: str
    flops: float
    bytes_moved: float

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_moved <= 0:
            raise ValueError("flops must be >= 0 and bytes > 0")

    @property
    def arithmetic_intensity(self) -> float:
        return self.flops / self.bytes_moved


def roofline_point(
    profile: KernelProfile, machine: MachineSpec, *, cores: int
) -> dict[str, float]:
    """Attainable performance and binding resource under the roofline.

    Peak compute scales with cores (1/cost_flop per core per unit time in
    model units); peak bandwidth scales only to the DRAM saturation point.
    Returns attainable flop rate, the two ceilings, and the classification.
    """
    if cores <= 0:
        raise ValueError("cores must be positive")
    peak_compute = cores / machine.cost_flop
    eff_bw_cores = min(float(cores), machine.dram_saturation_cores)
    peak_bandwidth_flops = (
        profile.arithmetic_intensity * eff_bw_cores / machine.dram_cost_per_byte
    )
    attainable = min(peak_compute, peak_bandwidth_flops)
    return {
        "arithmetic_intensity": profile.arithmetic_intensity,
        "peak_compute": peak_compute,
        "bandwidth_ceiling": peak_bandwidth_flops,
        "attainable": attainable,
        "compute_bound": float(peak_compute <= peak_bandwidth_flops),
        # Intensity at which the two ceilings cross for this core count.
        "ridge_intensity": peak_compute
        * machine.dram_cost_per_byte
        / eff_bw_cores,
    }


def gemm_kernel_profile(n: int, f_in: int, f_out: int) -> KernelProfile:
    """One weight application: 2*n*f_in*f_out flops over the operand and
    result traffic (weights assumed cache-resident across rows)."""
    flops = 2.0 * n * f_in * f_out
    bytes_moved = 8.0 * (n * f_in + n * f_out + f_in * f_out)
    return KernelProfile("weight_application", flops, bytes_moved)


def aggregation_kernel_profile(n: int, d: float, f: int) -> KernelProfile:
    """One feature aggregation: n*d*f adds over gathered features plus the
    index stream (Eq. 3's traffic at gamma=1, Q=1)."""
    flops = n * d * f
    bytes_moved = 8.0 * n * f + 2.0 * n * d
    return KernelProfile("feature_aggregation", flops, bytes_moved)


def roofline_report(
    *,
    n: int,
    d: float,
    f: int,
    machine: MachineSpec,
    cores: int,
) -> list[dict[str, object]]:
    """Roofline rows for the two training kernels at one configuration."""
    rows: list[dict[str, object]] = []
    for profile in (
        gemm_kernel_profile(n, f, f),
        aggregation_kernel_profile(n, d, f),
    ):
        point = roofline_point(profile, machine, cores=cores)
        rows.append(
            {
                "kernel": profile.name,
                "intensity_flops_per_byte": point["arithmetic_intensity"],
                "ridge_intensity": point["ridge_intensity"],
                "bound": "compute" if point["compute_bound"] else "bandwidth",
                "attainable": point["attainable"],
            }
        )
    return rows
