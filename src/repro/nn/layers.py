"""GCN and dense layers with explicit forward/backward.

The GCN layer implements exactly the propagation of Section II-A /
Algorithm 1 of the paper:

    H_neigh = (A_hat) H W_neigh          (mean aggregation, then weights)
    H_self  = H W_self
    H_out   = sigma( H_neigh || H_self )  (concat + activation)

where ``A_hat = D^{-1} A`` is supplied as an aggregator object exposing
``forward`` (the spmm) and ``backward`` (its adjoint). Layers are
framework-free: each caches what its backward pass needs and returns input
gradients explicitly, so the training loop is a plain loop over layers. All
parameters and gradients live in per-layer dicts keyed by name, which is
what the optimizers consume.

Every matrix multiply dispatches through :mod:`repro.kernels`. Layers run
in one of two regimes, chosen by the constructor arguments:

* **reference** (``workspace=None``, the default): each product allocates
  its result, exactly the seed-era computation sequence — float64 results
  are bit-identical to pre-kernel-layer code;
* **workspace** (``workspace=`` a :class:`repro.kernels.Workspace`):
  pre-activations, activations and gradient products land in named arena
  buffers that persist across iterations, so steady-state training stops
  allocating on the hot path. Buffer keys are prefixed with ``ws_prefix``
  so one arena serves a whole network.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..kernels import ops as kernel_ops
from ..kernels.workspace import Workspace
from .activations import relu, relu_grad
from .init import xavier_uniform

__all__ = ["Aggregator", "GCNLayer", "DenseLayer", "Dropout"]


class Aggregator(Protocol):
    """Anything that can apply ``A_hat`` and its adjoint (see spmm)."""

    def forward(self, features: np.ndarray) -> np.ndarray:
        """Apply the aggregation operator ``A_hat`` to row features."""
        ...

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Apply the adjoint ``A_hat^T`` to row gradients."""
        ...


class GCNLayer:
    """One graph-convolution layer with separate self/neighbor weights.

    Parameters
    ----------
    in_dim, out_dim:
        Input feature size ``f^(l-1)`` and per-branch output size. With
        ``concat=True`` (the paper's default) the layer's actual output
        dimension is ``2 * out_dim`` (neighbor || self).
    activation:
        ``"relu"`` or ``"identity"``.
    concat:
        Concatenate the two branches (GraphSAGE-style) instead of summing.
    dtype:
        Parameter/activation dtype. Weights are always drawn in float64
        from ``rng`` (so the random stream and float64 values match the
        reference path) and then cast.
    workspace / ws_prefix:
        Arena for buffer reuse; ``None`` keeps the allocate-per-call
        reference behavior.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        *,
        activation: str = "relu",
        concat: bool = True,
        bias: bool = True,
        normalize: bool = False,
        rng: np.random.Generator,
        dtype=np.float64,
        workspace: Workspace | None = None,
        ws_prefix: str = "gcn",
    ) -> None:
        if activation not in ("relu", "identity"):
            raise ValueError(f"unsupported activation {activation!r}")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.concat = concat
        self.use_bias = bias
        # GraphSAGE-style L2 row normalization of the layer output
        # (reference [2] normalizes embeddings to the unit hypersphere).
        self.normalize = normalize
        self.dtype = np.dtype(dtype)
        self.workspace = workspace
        self.ws_prefix = ws_prefix
        self.params: dict[str, np.ndarray] = {
            "W_self": xavier_uniform(in_dim, out_dim, rng=rng, dtype=self.dtype),
            "W_neigh": xavier_uniform(in_dim, out_dim, rng=rng, dtype=self.dtype),
        }
        if bias:
            self.params["b_self"] = np.zeros(out_dim, dtype=self.dtype)
            self.params["b_neigh"] = np.zeros(out_dim, dtype=self.dtype)
        self.grads: dict[str, np.ndarray] = {
            k: np.zeros_like(v) for k, v in self.params.items()
        }
        # Backward cache, populated by forward(train=True).
        self._cache: dict[str, object] | None = None

    @property
    def output_dim(self) -> int:
        return 2 * self.out_dim if self.concat else self.out_dim

    def _buf(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        assert self.workspace is not None
        return self.workspace.buffer((self.ws_prefix, name), shape, self.dtype)

    def forward(
        self, features: np.ndarray, aggregator: Aggregator, *, train: bool = True
    ) -> np.ndarray:
        """Propagate features one layer; caches activations when training."""
        h_agg = aggregator.forward(features)
        if self.workspace is None:
            z_neigh = kernel_ops.gemm(h_agg, self.params["W_neigh"])
            z_self = kernel_ops.gemm(features, self.params["W_self"])
            if self.use_bias:
                z_neigh = z_neigh + self.params["b_neigh"]
                z_self = z_self + self.params["b_self"]
            if self.concat:
                z = np.concatenate([z_neigh, z_self], axis=1)
            else:
                z = z_neigh + z_self
            act = relu(z) if self.activation == "relu" else z
        else:
            n = features.shape[0]
            z = self._buf("z", (n, self.output_dim))
            if self.concat:
                # Write both branches straight into their halves of z —
                # the concat disappears.
                z_neigh = z[:, : self.out_dim]
                z_self = z[:, self.out_dim :]
                kernel_ops.gemm(h_agg, self.params["W_neigh"], out=z_neigh)
                kernel_ops.gemm(features, self.params["W_self"], out=z_self)
                if self.use_bias:
                    z_neigh += self.params["b_neigh"]
                    z_self += self.params["b_self"]
            else:
                kernel_ops.gemm(h_agg, self.params["W_neigh"], out=z)
                kernel_ops.gemm_accumulate(
                    z,
                    features,
                    self.params["W_self"],
                    scratch=self._buf("z_scratch", (n, self.out_dim)),
                )
                if self.use_bias:
                    z += self.params["b_neigh"]
                    z += self.params["b_self"]
            if self.activation == "relu":
                act = kernel_ops.relu(z, out=self._buf("act", z.shape))
            else:
                act = z
        if self.normalize:
            norms = np.linalg.norm(act, axis=1, keepdims=True)
            norms = np.maximum(norms, 1e-12)
            out = act / norms
        else:
            norms = None
            out = act
        if train:
            self._cache = {
                "features": features,
                "h_agg": h_agg,
                "z": z,
                "norms": norms,
                "out": out if self.normalize else None,
                "aggregator": aggregator,
            }
        else:
            self._cache = None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return gradient w.r.t. the input."""
        if self._cache is None:
            raise RuntimeError("backward called without a cached forward(train=True)")
        features: np.ndarray = self._cache["features"]  # type: ignore[assignment]
        h_agg: np.ndarray = self._cache["h_agg"]  # type: ignore[assignment]
        z: np.ndarray = self._cache["z"]  # type: ignore[assignment]
        aggregator: Aggregator = self._cache["aggregator"]  # type: ignore[assignment]

        if self.normalize:
            # y = a / ||a||: dL/da = (dy - y * <y, dy>) / ||a||.
            norms: np.ndarray = self._cache["norms"]  # type: ignore[assignment]
            y: np.ndarray = self._cache["out"]  # type: ignore[assignment]
            inner = np.sum(y * grad_out, axis=1, keepdims=True)
            grad_out = (grad_out - y * inner) / norms
        ws = self.workspace
        if ws is None:
            dz = relu_grad(z, grad_out) if self.activation == "relu" else grad_out
        elif self.activation == "relu":
            dz = kernel_ops.relu_backward(z, grad_out, out=self._buf("dz", z.shape))
        else:
            dz = grad_out
        if self.concat:
            dz_neigh = dz[:, : self.out_dim]
            dz_self = dz[:, self.out_dim :]
        else:
            dz_neigh = dz
            dz_self = dz

        dw_scratch = (
            self._buf("dW_scratch", (self.in_dim, self.out_dim))
            if ws is not None
            else None
        )
        kernel_ops.gemm_accumulate(
            self.grads["W_neigh"], h_agg.T, dz_neigh, scratch=dw_scratch
        )
        kernel_ops.gemm_accumulate(
            self.grads["W_self"], features.T, dz_self, scratch=dw_scratch
        )
        if self.use_bias:
            self.grads["b_neigh"] += dz_neigh.sum(axis=0)
            self.grads["b_self"] += dz_self.sum(axis=0)

        n = features.shape[0]
        d_h_agg = kernel_ops.gemm(
            dz_neigh,
            self.params["W_neigh"].T,
            out=self._buf("d_h_agg", (n, self.in_dim)) if ws is not None else None,
        )
        d_features = kernel_ops.gemm(
            dz_self,
            self.params["W_self"].T,
            out=self._buf("d_features", (n, self.in_dim)) if ws is not None else None,
        )
        d_features += aggregator.backward(d_h_agg)
        return d_features

    def zero_grad(self) -> None:
        """Reset accumulated parameter gradients to zero."""
        for g in self.grads.values():
            g[...] = 0.0


class DenseLayer:
    """Fully-connected layer (the classifier head, PREDICT in Algorithm 1)."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        *,
        activation: str = "identity",
        rng: np.random.Generator,
        dtype=np.float64,
        workspace: Workspace | None = None,
        ws_prefix: str = "dense",
    ) -> None:
        if activation not in ("relu", "identity"):
            raise ValueError(f"unsupported activation {activation!r}")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.dtype = np.dtype(dtype)
        self.workspace = workspace
        self.ws_prefix = ws_prefix
        self.params: dict[str, np.ndarray] = {
            "W": xavier_uniform(in_dim, out_dim, rng=rng, dtype=self.dtype),
            "b": np.zeros(out_dim, dtype=self.dtype),
        }
        self.grads: dict[str, np.ndarray] = {
            k: np.zeros_like(v) for k, v in self.params.items()
        }
        self._cache: dict[str, np.ndarray] | None = None

    @property
    def output_dim(self) -> int:
        return self.out_dim

    def _buf(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        assert self.workspace is not None
        return self.workspace.buffer((self.ws_prefix, name), shape, self.dtype)

    def forward(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        """Affine transform (+ optional ReLU); caches inputs when training."""
        if self.workspace is None:
            z = kernel_ops.gemm(x, self.params["W"]) + self.params["b"]
            out = relu(z) if self.activation == "relu" else z
        else:
            z = kernel_ops.gemm(
                x, self.params["W"], out=self._buf("z", (x.shape[0], self.out_dim))
            )
            z += self.params["b"]
            if self.activation == "relu":
                out = kernel_ops.relu(z, out=self._buf("act", z.shape))
            else:
                out = z
        self._cache = {"x": x, "z": z} if train else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate dW/db; return the gradient w.r.t. the input."""
        if self._cache is None:
            raise RuntimeError("backward called without a cached forward(train=True)")
        x, z = self._cache["x"], self._cache["z"]
        ws = self.workspace
        if ws is None:
            dz = relu_grad(z, grad_out) if self.activation == "relu" else grad_out
        elif self.activation == "relu":
            dz = kernel_ops.relu_backward(z, grad_out, out=self._buf("dz", z.shape))
        else:
            dz = grad_out
        kernel_ops.gemm_accumulate(
            self.grads["W"],
            x.T,
            dz,
            scratch=self._buf("dW_scratch", (self.in_dim, self.out_dim))
            if ws is not None
            else None,
        )
        self.grads["b"] += dz.sum(axis=0)
        return kernel_ops.gemm(
            dz,
            self.params["W"].T,
            out=self._buf("dx", (dz.shape[0], self.in_dim))
            if ws is not None
            else None,
        )

    def zero_grad(self) -> None:
        """Reset accumulated parameter gradients to zero."""
        for g in self.grads.values():
            g[...] = 0.0


class Dropout:
    """Inverted dropout; identity when ``rate == 0`` or evaluating."""

    def __init__(self, rate: float, *, rng: np.random.Generator) -> None:
        if not (0.0 <= rate < 1.0):
            raise ValueError("dropout rate must lie in [0, 1)")
        self.rate = rate
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        """Apply an inverted-dropout mask (identity when evaluating).

        The mask is materialized in ``x``'s own (floating) dtype: a
        float32 activation stream stays float32 instead of being silently
        promoted through a float64 mask.
        """
        if not train or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        dtype = x.dtype if x.dtype.kind == "f" else np.dtype(np.float64)
        mask = self.rng.random(x.shape) < keep
        self._mask = mask.astype(dtype) / dtype.type(keep)
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Propagate gradients through the mask used in the last forward."""
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
