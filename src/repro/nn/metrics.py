"""Classification metrics — F1-micro is the paper's headline metric.

Implemented from scratch (no sklearn): micro/macro F1 for both task types,
plus plain accuracy. For single-label tasks predictions are argmax class
ids; for multi-label tasks predictions are 0/1 matrices.
"""

from __future__ import annotations

import numpy as np

__all__ = ["f1_micro", "f1_macro", "accuracy", "confusion_counts"]


def _as_indicator(y: np.ndarray, num_classes: int) -> np.ndarray:
    """Class ids -> one-hot; indicator matrices pass through."""
    y = np.asarray(y)
    if y.ndim == 1:
        out = np.zeros((y.shape[0], num_classes), dtype=np.float64)
        out[np.arange(y.shape[0]), y.astype(np.int64)] = 1.0
        return out
    return y.astype(np.float64)


def confusion_counts(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-class (tp, fp, fn) counts for either label format."""
    if num_classes is None:
        if y_true.ndim == 2:
            num_classes = y_true.shape[1]
        else:
            num_classes = int(max(y_true.max(initial=0), y_pred.max(initial=0))) + 1
    t = _as_indicator(y_true, num_classes)
    p = _as_indicator(y_pred, num_classes)
    tp = (t * p).sum(axis=0)
    fp = ((1.0 - t) * p).sum(axis=0)
    fn = (t * (1.0 - p)).sum(axis=0)
    return tp, fp, fn


def f1_micro(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: int | None = None
) -> float:
    """Micro-averaged F1: global tp/fp/fn pooled over classes."""
    tp, fp, fn = confusion_counts(y_true, y_pred, num_classes)
    tp_s, fp_s, fn_s = tp.sum(), fp.sum(), fn.sum()
    denom = 2.0 * tp_s + fp_s + fn_s
    return float(2.0 * tp_s / denom) if denom > 0 else 0.0


def f1_macro(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: int | None = None
) -> float:
    """Macro-averaged F1: unweighted mean of per-class F1.

    Classes with no true and no predicted samples are excluded from the
    average (so a perfect prediction scores 1.0 even when some of the
    ``num_classes`` labels never occur in the evaluated split).
    """
    tp, fp, fn = confusion_counts(y_true, y_pred, num_classes)
    denom = 2.0 * tp + fp + fn
    present = denom > 0
    if not np.any(present):
        return 0.0
    f1 = 2.0 * tp[present] / denom[present]
    return float(f1.mean())


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Exact-match accuracy (per-row for multi-label)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.ndim == 1:
        return float((y_true == y_pred).mean()) if y_true.size else 0.0
    return float(np.all(y_true == y_pred, axis=1).mean()) if y_true.size else 0.0
