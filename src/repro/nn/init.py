"""Weight initializers (Glorot/Xavier family, as used by GCN/GraphSAGE)."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "zeros"]


def xavier_uniform(
    fan_in: int, fan_out: int, *, rng: np.random.Generator, dtype=np.float64
) -> np.ndarray:
    """Glorot uniform: U(-a, a) with ``a = sqrt(6 / (fan_in + fan_out))``.

    Always drawn in float64 (the generator stream is dtype-independent,
    so float32 weights are the rounded float64 reference weights), then
    cast to ``dtype``.
    """
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    a = np.sqrt(6.0 / (fan_in + fan_out))
    w = rng.uniform(-a, a, size=(fan_in, fan_out))
    return w.astype(dtype, copy=False)


def xavier_normal(
    fan_in: int, fan_out: int, *, rng: np.random.Generator, dtype=np.float64
) -> np.ndarray:
    """Glorot normal: N(0, 2 / (fan_in + fan_out)); drawn in float64 then
    cast to ``dtype`` (same stream for every dtype)."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    std = np.sqrt(2.0 / (fan_in + fan_out))
    w = rng.standard_normal((fan_in, fan_out)) * std
    return w.astype(dtype, copy=False)


def zeros(*shape: int) -> np.ndarray:
    """Zero-initialized float64 array of the given shape."""
    return np.zeros(shape, dtype=np.float64)
