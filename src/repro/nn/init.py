"""Weight initializers (Glorot/Xavier family, as used by GCN/GraphSAGE)."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "zeros"]


def xavier_uniform(
    fan_in: int, fan_out: int, *, rng: np.random.Generator
) -> np.ndarray:
    """Glorot uniform: U(-a, a) with ``a = sqrt(6 / (fan_in + fan_out))``."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    a = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-a, a, size=(fan_in, fan_out))


def xavier_normal(
    fan_in: int, fan_out: int, *, rng: np.random.Generator
) -> np.ndarray:
    """Glorot normal: N(0, 2 / (fan_in + fan_out))."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.standard_normal((fan_in, fan_out)) * std


def zeros(*shape: int) -> np.ndarray:
    """Zero-initialized float64 array of the given shape."""
    return np.zeros(shape, dtype=np.float64)
