"""Learning-rate schedules.

Schedules are callables ``step -> lr`` that the trainer applies before
each optimizer step (the TF reference code of the baselines uses constant
rates; schedules are provided for the extension experiments and examples).
"""

from __future__ import annotations

import math

__all__ = ["ConstantLR", "StepDecayLR", "CosineAnnealingLR", "WarmupLR", "apply_schedule"]


class ConstantLR:
    """Always the base rate."""

    def __init__(self, base_lr: float) -> None:
        if base_lr <= 0:
            raise ValueError("base_lr must be positive")
        self.base_lr = base_lr

    def __call__(self, step: int) -> float:
        return self.base_lr


class StepDecayLR:
    """Multiply by ``gamma`` every ``step_size`` steps."""

    def __init__(self, base_lr: float, *, step_size: int, gamma: float = 0.5) -> None:
        if base_lr <= 0 or step_size <= 0 or not (0 < gamma <= 1):
            raise ValueError("invalid schedule parameters")
        self.base_lr = base_lr
        self.step_size = step_size
        self.gamma = gamma

    def __call__(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)


class CosineAnnealingLR:
    """Cosine decay from ``base_lr`` to ``min_lr`` over ``total_steps``."""

    def __init__(
        self, base_lr: float, *, total_steps: int, min_lr: float = 0.0
    ) -> None:
        if base_lr <= 0 or total_steps <= 0 or min_lr < 0 or min_lr > base_lr:
            raise ValueError("invalid schedule parameters")
        self.base_lr = base_lr
        self.total_steps = total_steps
        self.min_lr = min_lr

    def __call__(self, step: int) -> float:
        t = min(step, self.total_steps) / self.total_steps
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * t)
        )


class WarmupLR:
    """Linear warmup over ``warmup_steps``, then delegate to ``after``."""

    def __init__(self, after, *, warmup_steps: int) -> None:
        if warmup_steps < 1:
            raise ValueError("warmup_steps must be >= 1")
        self.after = after
        self.warmup_steps = warmup_steps

    def __call__(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.after(self.warmup_steps) * (step + 1) / self.warmup_steps
        return self.after(step)


def apply_schedule(optimizer, schedule, step: int) -> float:
    """Set ``optimizer.lr`` from the schedule; returns the applied rate."""
    lr = schedule(step)
    if lr <= 0:
        raise ValueError(f"schedule produced non-positive lr {lr} at step {step}")
    optimizer.lr = lr
    return lr
