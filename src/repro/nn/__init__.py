"""From-scratch neural-network kernels: GCN layers, losses, Adam, metrics."""

from .activations import leaky_relu, log_softmax, relu, sigmoid, softmax
from .gradcheck import check_gradients, max_relative_error, numerical_gradient
from .init import xavier_normal, xavier_uniform
from .layers import DenseLayer, Dropout, GCNLayer
from .loss import SigmoidCrossEntropy, SoftmaxCrossEntropy, make_loss
from .metrics import accuracy, confusion_counts, f1_macro, f1_micro
from .network import GCN
from .optim import SGD, Adam
from .schedule import (
    ConstantLR,
    CosineAnnealingLR,
    StepDecayLR,
    WarmupLR,
    apply_schedule,
)

__all__ = [
    "relu",
    "leaky_relu",
    "sigmoid",
    "softmax",
    "log_softmax",
    "xavier_uniform",
    "xavier_normal",
    "GCNLayer",
    "DenseLayer",
    "Dropout",
    "SoftmaxCrossEntropy",
    "SigmoidCrossEntropy",
    "make_loss",
    "Adam",
    "SGD",
    "ConstantLR",
    "StepDecayLR",
    "CosineAnnealingLR",
    "WarmupLR",
    "apply_schedule",
    "GCN",
    "f1_micro",
    "f1_macro",
    "accuracy",
    "confusion_counts",
    "numerical_gradient",
    "check_gradients",
    "max_relative_error",
]
