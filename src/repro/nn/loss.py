"""Loss functions (LOSS step of Algorithm 1), forward + gradient.

Two losses cover the paper's tasks:

* :class:`SoftmaxCrossEntropy` — single-label (Reddit).
* :class:`SigmoidCrossEntropy` — multi-label (PPI, Yelp, Amazon), one
  independent logistic per class, implemented with the max-trick stable
  formulation ``max(x,0) - x*y + log(1 + exp(-|x|))``.

Both return the mean loss over vertices and the gradient with respect to
the logits scaled the same way (so gradient magnitudes are independent of
batch size, as in the TF reference implementations).
"""

from __future__ import annotations

import numpy as np

from .activations import sigmoid, softmax

__all__ = ["SoftmaxCrossEntropy", "SigmoidCrossEntropy", "make_loss"]


def _loss_dtype(logits: np.ndarray) -> np.dtype:
    """Targets compute in the logits' floating dtype (float32 logits must
    not be promoted through float64 targets on the fast path)."""
    return logits.dtype if logits.dtype.kind == "f" else np.dtype(np.float64)


class SoftmaxCrossEntropy:
    """Mean softmax cross-entropy over rows; targets are int class ids."""

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        """Mean negative log-likelihood of the target classes."""
        if logits.ndim != 2:
            raise ValueError("logits must be (batch, classes)")
        targets = np.asarray(targets)
        if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
            raise ValueError("targets must be 1-D class ids matching batch")
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=1))
        batch = np.arange(logits.shape[0])
        nll = log_z - shifted[batch, targets]
        return float(nll.mean())

    def backward(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """d(mean loss)/d(logits) = (softmax - onehot) / batch."""
        p = softmax(logits, axis=1)
        batch = np.arange(logits.shape[0])
        p[batch, np.asarray(targets)] -= 1.0
        return p / logits.shape[0]

    def predict(self, logits: np.ndarray) -> np.ndarray:
        """Hard class predictions (argmax)."""
        return logits.argmax(axis=1)


class SigmoidCrossEntropy:
    """Mean (over rows) of summed per-class logistic cross-entropy.

    Targets are a 0/1 matrix of the same shape as the logits.
    """

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        """Mean over rows of summed per-class logistic cross-entropy."""
        targets = np.asarray(targets, dtype=_loss_dtype(logits))
        if targets.shape != logits.shape:
            raise ValueError(
                f"targets shape {targets.shape} != logits shape {logits.shape}"
            )
        per_elem = (
            np.maximum(logits, 0.0)
            - logits * targets
            + np.log1p(np.exp(-np.abs(logits)))
        )
        return float(per_elem.sum(axis=1).mean())

    def backward(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """d(mean loss)/d(logits) = (sigmoid(x) - y) / batch."""
        targets = np.asarray(targets, dtype=_loss_dtype(logits))
        return (sigmoid(logits) - targets) / logits.shape[0]

    def predict(self, logits: np.ndarray) -> np.ndarray:
        """Per-class hard predictions (threshold at probability 0.5)."""
        return (logits > 0.0).astype(np.float64)


def make_loss(task: str):
    """Loss factory keyed by dataset task type (``"single"``/``"multi"``)."""
    if task == "single":
        return SoftmaxCrossEntropy()
    if task == "multi":
        return SigmoidCrossEntropy()
    raise ValueError(f"unknown task {task!r}")
