"""Loss functions (LOSS step of Algorithm 1), forward + gradient.

Two losses cover the paper's tasks:

* :class:`SoftmaxCrossEntropy` — single-label (Reddit).
* :class:`SigmoidCrossEntropy` — multi-label (PPI, Yelp, Amazon), one
  independent logistic per class, implemented with the max-trick stable
  formulation ``max(x,0) - x*y + log(1 + exp(-|x|))``.

Both return the mean loss over vertices and the gradient with respect to
the logits scaled the same way (so gradient magnitudes are independent of
batch size, as in the TF reference implementations).

Both also accept optional per-row ``weights`` — the GraphSAINT loss
normalization (:mod:`repro.sampling.norm`): with weights
``lambda_v = 1/(n p_v)`` the loss becomes the *weighted sum*
``sum_v lambda_v L_v`` (no batch mean — the weights already carry the
``1/n`` scale and sum to ~1 in expectation over subgraphs), an unbiased
estimator of the full-graph mean loss; gradients are scaled row-wise the
same way. ``weights=None`` is exactly the historical unweighted mean.
"""

from __future__ import annotations

import numpy as np

from .activations import sigmoid, softmax

__all__ = ["SoftmaxCrossEntropy", "SigmoidCrossEntropy", "make_loss"]


def _loss_dtype(logits: np.ndarray) -> np.dtype:
    """Targets compute in the logits' floating dtype (float32 logits must
    not be promoted through float64 targets on the fast path)."""
    return logits.dtype if logits.dtype.kind == "f" else np.dtype(np.float64)


def _check_weights(weights: np.ndarray, batch: int, dtype: np.dtype) -> np.ndarray:
    """Validate per-row loss weights and cast to the computation dtype."""
    w = np.asarray(weights, dtype=dtype)
    if w.ndim != 1 or w.shape[0] != batch:
        raise ValueError(f"weights must be 1-D of length {batch}, got {w.shape}")
    return w


class SoftmaxCrossEntropy:
    """Mean softmax cross-entropy over rows; targets are int class ids."""

    def forward(
        self,
        logits: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> float:
        """Mean negative log-likelihood of the target classes.

        With ``weights``, the weighted *sum* of per-row NLLs instead (the
        GraphSAINT unbiased-loss estimator; see module docstring).
        """
        if logits.ndim != 2:
            raise ValueError("logits must be (batch, classes)")
        targets = np.asarray(targets)
        if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
            raise ValueError("targets must be 1-D class ids matching batch")
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=1))
        batch = np.arange(logits.shape[0])
        nll = log_z - shifted[batch, targets]
        if weights is None:
            return float(nll.mean())
        w = _check_weights(weights, logits.shape[0], _loss_dtype(logits))
        return float((w * nll).sum())

    def backward(
        self,
        logits: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> np.ndarray:
        """d(loss)/d(logits): ``(softmax - onehot) / batch`` unweighted,
        row-scaled by the weights (no batch division) when weighted."""
        p = softmax(logits, axis=1)
        batch = np.arange(logits.shape[0])
        p[batch, np.asarray(targets)] -= 1.0
        if weights is None:
            return p / logits.shape[0]
        w = _check_weights(weights, logits.shape[0], _loss_dtype(logits))
        return p * w[:, None]

    def predict(self, logits: np.ndarray) -> np.ndarray:
        """Hard class predictions (argmax)."""
        return logits.argmax(axis=1)


class SigmoidCrossEntropy:
    """Mean (over rows) of summed per-class logistic cross-entropy.

    Targets are a 0/1 matrix of the same shape as the logits.
    """

    def forward(
        self,
        logits: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> float:
        """Mean over rows of summed per-class logistic cross-entropy.

        With ``weights``, the weighted *sum* over rows instead (the
        GraphSAINT unbiased-loss estimator; see module docstring).
        """
        targets = np.asarray(targets, dtype=_loss_dtype(logits))
        if targets.shape != logits.shape:
            raise ValueError(
                f"targets shape {targets.shape} != logits shape {logits.shape}"
            )
        per_elem = (
            np.maximum(logits, 0.0)
            - logits * targets
            + np.log1p(np.exp(-np.abs(logits)))
        )
        per_row = per_elem.sum(axis=1)
        if weights is None:
            return float(per_row.mean())
        w = _check_weights(weights, logits.shape[0], _loss_dtype(logits))
        return float((w * per_row).sum())

    def backward(
        self,
        logits: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> np.ndarray:
        """d(loss)/d(logits): ``(sigmoid(x) - y) / batch`` unweighted,
        row-scaled by the weights (no batch division) when weighted."""
        targets = np.asarray(targets, dtype=_loss_dtype(logits))
        grad = sigmoid(logits) - targets
        if weights is None:
            return grad / logits.shape[0]
        w = _check_weights(weights, logits.shape[0], _loss_dtype(logits))
        return grad * w[:, None]

    def predict(self, logits: np.ndarray) -> np.ndarray:
        """Per-class hard predictions (threshold at probability 0.5)."""
        return (logits > 0.0).astype(np.float64)


def make_loss(task: str):
    """Loss factory keyed by dataset task type (``"single"``/``"multi"``)."""
    if task == "single":
        return SoftmaxCrossEntropy()
    if task == "multi":
        return SigmoidCrossEntropy()
    raise ValueError(f"unknown task {task!r}")
