"""The GCN network: a stack of GCN layers plus a dense classifier head.

This composes the pieces of Algorithm 1: L graph-convolution layers
(lines 6–9) followed by PREDICT (line 11, a dense layer producing logits).
The same network object runs on any graph — during training it is fed the
sampled subgraph's aggregator; at evaluation time the full graph's — which
is precisely the graph-sampling design of Section III-A (weights are shared
between the subgraph GCN and the full-graph GCN).
"""

from __future__ import annotations

import numpy as np

from ..kernels.workspace import Workspace
from .layers import Aggregator, DenseLayer, Dropout, GCNLayer
from .optim import ParamGroup

__all__ = ["GCN"]


class GCN:
    """Multi-layer GCN with neighbor/self weights and concat aggregation.

    Parameters
    ----------
    in_dim:
        Input attribute dimension ``f^(0)``.
    hidden_dims:
        Per-branch hidden sizes, one per GCN layer (length = L). With
        ``concat=True`` each layer outputs ``2 *`` its hidden size.
    num_classes:
        Output logits dimension.
    dropout:
        Input dropout rate applied before every GCN layer (0 disables).
    dtype:
        Parameter/activation dtype (see :mod:`repro.kernels.policy`).
        Weights are drawn in float64 from the seeded stream then cast, so
        a float32 network holds the rounded reference weights.
    workspace:
        Optional :class:`repro.kernels.Workspace` shared by every layer
        (buffer keys are prefixed ``layer{i}`` / ``head``); ``None``
        keeps seed-equivalent allocate-per-call behavior.
    """

    def __init__(
        self,
        in_dim: int,
        hidden_dims: list[int] | tuple[int, ...],
        num_classes: int,
        *,
        concat: bool = True,
        bias: bool = True,
        dropout: float = 0.0,
        normalize: bool = False,
        seed: int = 0,
        dtype=np.float64,
        workspace: Workspace | None = None,
    ) -> None:
        if not hidden_dims:
            raise ValueError("need at least one GCN layer")
        rng = np.random.default_rng(seed)
        self.dtype = np.dtype(dtype)
        self.workspace = workspace
        self.layers: list[GCNLayer] = []
        self.dropouts: list[Dropout] = []
        dim = in_dim
        for i, h in enumerate(hidden_dims):
            layer = GCNLayer(
                dim,
                h,
                activation="relu",
                concat=concat,
                bias=bias,
                normalize=normalize,
                rng=rng,
                dtype=self.dtype,
                workspace=workspace,
                ws_prefix=f"layer{i}",
            )
            self.layers.append(layer)
            self.dropouts.append(Dropout(dropout, rng=rng))
            dim = layer.output_dim
        self.head = DenseLayer(
            dim,
            num_classes,
            activation="identity",
            rng=rng,
            dtype=self.dtype,
            workspace=workspace,
            ws_prefix="head",
        )
        self.in_dim = in_dim
        self.num_classes = num_classes

    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def parameter_groups(self) -> list[ParamGroup]:
        """(params, grads) dict pairs for every layer plus the head."""
        groups: list[ParamGroup] = [(l.params, l.grads) for l in self.layers]
        groups.append((self.head.params, self.head.grads))
        return groups

    def num_parameters(self) -> int:
        """Total learnable scalar count across all layers."""
        return sum(
            p.size for params, _ in self.parameter_groups() for p in params.values()
        )

    def zero_grad(self) -> None:
        """Reset accumulated gradients in every layer and the head."""
        for layer in self.layers:
            layer.zero_grad()
        self.head.zero_grad()

    # ------------------------------------------------------------------
    def forward(
        self, features: np.ndarray, aggregator: Aggregator, *, train: bool = True
    ) -> np.ndarray:
        """Full forward pass; returns logits for every vertex of the graph."""
        h = features
        for drop, layer in zip(self.dropouts, self.layers):
            h = drop.forward(h, train=train)
            h = layer.forward(h, aggregator, train=train)
        return self.head.forward(h, train=train)

    def backward(self, grad_logits: np.ndarray) -> np.ndarray:
        """Backprop from logits gradient; accumulates into layer grads."""
        g = self.head.backward(grad_logits)
        for drop, layer in zip(reversed(self.dropouts), reversed(self.layers)):
            g = layer.backward(g)
            g = drop.backward(g)
        return g

    # ------------------------------------------------------------------
    def embeddings(
        self, features: np.ndarray, aggregator: Aggregator
    ) -> np.ndarray:
        """Vertex embeddings H^(L) (the layer activations before PREDICT)."""
        h = features
        for layer in self.layers:
            h = layer.forward(h, aggregator, train=False)
        return h

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat copy of all parameters (for checkpoint/restore in tests)."""
        out: dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for k, v in layer.params.items():
                out[f"layer{i}.{k}"] = v.copy()
        for k, v in self.head.params.items():
            out[f"head.{k}"] = v.copy()
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Copy parameters from a :meth:`state_dict` snapshot in place."""
        for i, layer in enumerate(self.layers):
            for k in layer.params:
                layer.params[k][...] = state[f"layer{i}.{k}"]
        for k in self.head.params:
            self.head.params[k][...] = state[f"head.{k}"]
