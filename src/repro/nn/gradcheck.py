"""Numerical gradient checking (central differences).

Used throughout the test suite to validate every analytic backward pass:
layers, losses, and whole networks. ``check_gradients`` perturbs a sample
of parameter entries (checking all entries of a 512-wide layer would be
slow and adds nothing) and compares against the analytic gradient with a
relative-error criterion robust to near-zero gradients.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["numerical_gradient", "check_gradients", "max_relative_error"]


def numerical_gradient(
    f: Callable[[], float],
    param: np.ndarray,
    *,
    eps: float = 1e-6,
    sample: int | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Central-difference gradient of ``f`` w.r.t. entries of ``param``.

    Returns ``(flat_indices, grads)`` for the checked entries. When
    ``sample`` is given, only that many randomly-chosen entries are
    perturbed.
    """
    flat = param.reshape(-1)
    if sample is not None and sample < flat.size:
        if rng is None:
            rng = np.random.default_rng(0)
        idx = rng.choice(flat.size, size=sample, replace=False)
    else:
        idx = np.arange(flat.size)
    grads = np.empty(idx.shape[0], dtype=np.float64)
    for j, i in enumerate(idx):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = f()
        flat[i] = orig - eps
        f_minus = f()
        flat[i] = orig
        grads[j] = (f_plus - f_minus) / (2.0 * eps)
    return idx, grads


def max_relative_error(
    analytic: np.ndarray, numeric: np.ndarray, *, floor: float = 1e-8
) -> float:
    """``max |a - n| / max(|a|, |n|, floor)`` over entries."""
    analytic = np.asarray(analytic, dtype=np.float64)
    numeric = np.asarray(numeric, dtype=np.float64)
    scale = np.maximum(np.maximum(np.abs(analytic), np.abs(numeric)), floor)
    return float((np.abs(analytic - numeric) / scale).max(initial=0.0))


def check_gradients(
    loss_fn: Callable[[], float],
    params: dict[str, np.ndarray],
    analytic_grads: dict[str, np.ndarray],
    *,
    eps: float = 1e-6,
    sample: int = 20,
    tol: float = 1e-5,
    rng: np.random.Generator | None = None,
) -> dict[str, float]:
    """Check every parameter tensor; returns per-name max relative error.

    Raises ``AssertionError`` naming the first offending tensor when any
    error exceeds ``tol``.
    """
    errors: dict[str, float] = {}
    for name, p in params.items():
        idx, numeric = numerical_gradient(
            loss_fn, p, eps=eps, sample=sample, rng=rng
        )
        analytic = analytic_grads[name].reshape(-1)[idx]
        err = max_relative_error(analytic, numeric)
        errors[name] = err
        if err > tol:
            raise AssertionError(
                f"gradient check failed for {name!r}: max rel error {err:.3e} > {tol:.1e}"
            )
    return errors
