"""Numerically-stable activations with explicit forward/backward pairs."""

from __future__ import annotations

import numpy as np

__all__ = ["relu", "relu_grad", "sigmoid", "softmax", "log_softmax", "leaky_relu", "leaky_relu_grad"]


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit: elementwise ``max(x, 0)``."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
    """Gradient through ReLU given pre-activation ``x``."""
    return np.where(x > 0.0, grad_out, 0.0)


def leaky_relu(x: np.ndarray, alpha: float = 0.01) -> np.ndarray:
    """Leaky ReLU: ``x`` for positives, ``alpha * x`` otherwise."""
    return np.where(x > 0.0, x, alpha * x)


def leaky_relu_grad(x: np.ndarray, grad_out: np.ndarray, alpha: float = 0.01) -> np.ndarray:
    """Gradient through leaky ReLU given pre-activation ``x``."""
    return np.where(x > 0.0, grad_out, alpha * grad_out)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Stable logistic: never exponentiates a positive argument.

    Dtype-preserving for floating inputs (float32 stays float32);
    integer/bool inputs compute in float64.
    """
    dtype = x.dtype if x.dtype.kind == "f" else np.dtype(np.float64)
    out = np.empty_like(x, dtype=dtype)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax (max-shifted)."""
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable ``log(softmax(x))`` (max-shifted)."""
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
