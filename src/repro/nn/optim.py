"""Optimizers (the ADAM step of Algorithm 1).

Optimizers operate on a flat list of ``(params, grads)`` dict pairs — one
pair per layer — updating parameters in place. State (Adam moments) is
keyed by ``(pair index, name)`` so layers can be heterogeneous.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Adam", "SGD", "ParamGroup"]

ParamGroup = tuple[dict[str, np.ndarray], dict[str, np.ndarray]]


class SGD:
    """Plain (optionally L2-regularized) stochastic gradient descent."""

    def __init__(self, lr: float = 0.01, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.weight_decay = weight_decay

    def step(self, groups: list[ParamGroup]) -> None:
        """Apply one gradient-descent update to every parameter."""
        for params, grads in groups:
            for name, p in params.items():
                g = grads[name]
                if self.weight_decay and p.ndim > 1:
                    g = g + self.weight_decay * p
                p -= self.lr * g


class Adam:
    """Adam (Kingma & Ba) with bias correction and optional L2 decay.

    Matches the TF1 defaults used by the paper's reference code:
    ``beta1=0.9, beta2=0.999, eps=1e-8``.
    """

    def __init__(
        self,
        lr: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must lie in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m: dict[tuple[int, str], np.ndarray] = {}
        self._v: dict[tuple[int, str], np.ndarray] = {}

    def step(self, groups: list[ParamGroup]) -> None:
        """Apply one bias-corrected Adam update to every parameter."""
        self.t += 1
        b1t = 1.0 - self.beta1**self.t
        b2t = 1.0 - self.beta2**self.t
        for gi, (params, grads) in enumerate(groups):
            for name, p in params.items():
                g = grads[name]
                if self.weight_decay and p.ndim > 1:
                    g = g + self.weight_decay * p
                key = (gi, name)
                if key not in self._m:
                    self._m[key] = np.zeros_like(p)
                    self._v[key] = np.zeros_like(p)
                m, v = self._m[key], self._v[key]
                m *= self.beta1
                m += (1.0 - self.beta1) * g
                v *= self.beta2
                v += (1.0 - self.beta2) * np.square(g)
                m_hat = m / b1t
                v_hat = v / b2t
                p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset(self) -> None:
        """Drop all moment state (used when re-initializing a model)."""
        self.t = 0
        self._m.clear()
        self._v.clear()
