"""Command-line experiment runner.

Regenerate any paper artifact without writing code::

    python -m repro.cli table1
    python -m repro.cli fig2 --epoch-scale 0.5
    python -m repro.cli fig3 --hidden 512 --datasets ppi reddit
    python -m repro.cli fig4
    python -m repro.cli table2
    python -m repro.cli ablations
    python -m repro.cli serve-bench --queries 3000
    python -m repro.cli all --out results/

Observability (see ``docs/observability.md``)::

    python -m repro.cli train-bench --out results/
    python -m repro.cli obs-report --trace results/OBS_train_bench.json

``train-bench`` runs one instrumented training run and exports the trace
(``OBS_train_bench.json`` + a Chrome ``trace_event`` file next to it);
``obs-report`` renders the per-phase breakdown table of any exported
trace. Each subcommand prints the paper-style table; ``--out DIR``
additionally writes it to ``DIR/<name>.txt``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from .experiments import (
    ablations,
    extensions,
    fig2,
    fig3,
    fig4,
    serving,
    table1,
    table2,
)
from .experiments.common import format_table, write_bench_json

__all__ = ["main", "build_parser"]


def _emit(name: str, text: str, out: pathlib.Path | None) -> None:
    print(text)
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{name}.txt").write_text(text + "\n")
        print(f"[written to {out / (name + '.txt')}]")


def _run_table1(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    _emit("table1", table1.format_results(table1.run(seed=args.seed)), out)


def _run_fig2(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    results = fig2.run(
        datasets=args.datasets,
        epoch_scale=args.epoch_scale,
        hidden=args.hidden or 128,
        seed=args.seed,
    )
    _emit("fig2", fig2.format_results(results), out)


def _run_fig3(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    from .experiments.plotting import ascii_speedup_plot

    hidden = (args.hidden,) if args.hidden else (512, 1024)
    results = fig3.run(
        datasets=args.datasets, hidden_dims=hidden, seed=args.seed
    )
    curves: dict[str, dict[int, float]] = {}
    for row in results["rows"]:
        key = f"{row['dataset']}/h{row['hidden']}"
        curves.setdefault(key, {})[row["cores"]] = row["iteration_speedup"]
    text = fig3.format_results(results) + "\n\n" + ascii_speedup_plot(
        curves, title="Figure 3A: iteration speedup vs cores"
    )
    _emit("fig3", text, out)


def _run_fig4(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    from .experiments.plotting import ascii_speedup_plot

    results = fig4.run(datasets=args.datasets, seed=args.seed)
    curves: dict[str, dict[int, float]] = {}
    for row in results["panel_a"]:
        curves.setdefault(row["dataset"], {})[row["p_inter"]] = row[
            "sampling_speedup"
        ]
    text = fig4.format_results(results) + "\n\n" + ascii_speedup_plot(
        curves, title="Figure 4A: sampling speedup vs p_inter"
    )
    _emit("fig4", text, out)


def _run_table2(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    results = table2.run(hidden=args.hidden or 128, seed=args.seed)
    _emit("table2", table2.format_results(results), out)


def _run_ablations(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    pieces = [
        ("X1: feature-only partitioning", ablations.run_partitioning(seed=args.seed)),
        (
            "X1b: measured gamma_P of real partitioners",
            ablations.run_partitioner_gamma(seed=args.seed),
        ),
        ("X2: Dashboard eta sweep", ablations.run_dashboard_eta(seed=args.seed)),
        ("X8: alias table vs Dashboard", ablations.run_alias_contrast()),
        ("X3: degree cap (Amazon)", ablations.run_degree_cap(seed=args.seed)),
        (
            "X4: sampler comparison (PPI)",
            ablations.run_sampler_comparison(seed=args.seed),
        ),
    ]
    text = "\n\n".join(
        format_table(res["rows"], title=title) for title, res in pieces
    )
    _emit("ablations", text, out)


def _run_extensions(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    pieces = [
        ("X6: depth vs accuracy", extensions.run_depth_accuracy(seed=args.seed)),
        (
            "X7: fixed budget, growing graph",
            extensions.run_budget_scaling(seed=args.seed),
        ),
    ]
    text = "\n\n".join(
        format_table(res["rows"], title=title) for title, res in pieces
    )
    _emit("extensions", text, out)


def _run_serve_bench(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    """Replay the Zipf query trace through the serving configurations."""
    results = serving.run(
        num_queries=args.queries,
        load_factor=args.load_factor,
        seed=args.seed,
    )
    _emit("serve_bench", serving.format_results(results), out)
    if out is not None:
        path = write_bench_json(
            out / "BENCH_serve_bench.json", "serve_bench", results
        )
        print(f"[written to {path}]")


def _run_report(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    """Assemble all tables in benchmarks/results/ into one document."""
    results_dir = (
        pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "results"
    )
    if not results_dir.is_dir():
        print(
            f"no results found at {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
        return
    order = [
        "table1_datasets",
        "fig2_time_accuracy",
        "fig3_scaling_h512",
        "fig3_scaling_h1024",
        "fig4_sampler_scaling",
        "table2_deeper_gcn",
        "ablation_partitioning",
        "ablation_partitioner_gamma",
        "ablation_dashboard_eta",
        "ablation_alias_vs_dashboard",
        "ablation_degree_cap",
        "ablation_samplers",
        "extension_depth_accuracy",
        "extension_budget_scaling",
        "serving",
    ]
    files = {p.stem: p for p in sorted(results_dir.glob("*.txt"))}
    sections = [
        files.pop(name).read_text().rstrip() for name in order if name in files
    ]
    sections += [p.read_text().rstrip() for p in files.values()]
    _emit("report", "\n\n".join(sections), out)


def _run_train_bench(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    """One instrumented training run; exports the trace and its report.

    The run is small (one dataset profile, a few epochs) because the
    point is the *trace*, not the accuracy: the exported
    ``OBS_train_bench.json`` is the per-phase time breakdown the
    acceptance test checks (sample/forward/backward spans must cover
    >= 95% of iteration wall time).
    """
    from . import obs
    from .experiments.common import EXPERIMENT_SCALES
    from .graphs.datasets import make_dataset
    from .train.config import TrainConfig
    from .train.trainer import GraphSamplingTrainer

    name = (args.datasets or ["ppi"])[0]
    dataset = make_dataset(name, scale=EXPERIMENT_SCALES[name], seed=args.seed)
    hidden = args.hidden or 128
    config = TrainConfig(
        hidden_dims=(hidden, hidden),
        epochs=max(1, int(round(3 * args.epoch_scale))),
        seed=args.seed,
    )
    trainer = GraphSamplingTrainer(dataset, config)
    obs.reset()
    with obs.enabled():
        result = trainer.train()
    doc = obs.export.trace_document("train_bench")
    doc["meta"] = {
        "dataset": name,
        "hidden": hidden,
        "epochs": config.epochs,
        "iterations": result.iterations,
        "final_val_f1": result.final_val_f1,
    }
    _emit("train_bench", obs.export.render_report(doc), out)
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        path = out / "OBS_train_bench.json"
        import json

        path.write_text(json.dumps(doc, indent=2) + "\n")
        chrome = obs.export.write_chrome_trace(out / "train_bench.chrome.json")
        print(f"[written to {path}]\n[written to {chrome}]")


def _run_obs_report(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    """Render the per-phase breakdown of an exported trace document."""
    from .obs import export as obs_export

    if args.trace is None:
        print("obs-report requires --trace PATH (an OBS_*.json export)")
        raise SystemExit(2)
    doc = obs_export.load_trace(args.trace)
    _emit("obs_report", obs_export.render_report(doc), out)


_COMMANDS = {
    "table1": _run_table1,
    "extensions": _run_extensions,
    "fig2": _run_fig2,
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "table2": _run_table2,
    "ablations": _run_ablations,
    "serve-bench": _run_serve_bench,
    "train-bench": _run_train_bench,
    "obs-report": _run_obs_report,
    "report": _run_report,
}


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the experiment runner."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + ["all"],
        help="which artifact to regenerate",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=None,
        help="dataset profiles (default: all four)",
    )
    parser.add_argument(
        "--hidden", type=int, default=None, help="hidden dimension override"
    )
    parser.add_argument(
        "--epoch-scale",
        type=float,
        default=1.0,
        help="scale factor on fig2's per-dataset epoch recipes",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=3000,
        help="serve-bench: number of requests in the replayed trace",
    )
    parser.add_argument(
        "--load-factor",
        type=float,
        default=20.0,
        help="serve-bench: offered rate as a multiple of naive capacity",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to write result tables into",
    )
    parser.add_argument(
        "--trace",
        type=pathlib.Path,
        default=None,
        help="obs-report: path to an exported OBS_*.json / trace document",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point: run the selected experiment(s); returns exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "all":
        # obs-report needs an explicit --trace; everything else self-runs.
        names = [n for n in sorted(_COMMANDS) if n != "obs-report"]
    else:
        names = [args.experiment]
    for name in names:
        _COMMANDS[name](args, args.out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
